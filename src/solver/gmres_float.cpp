#include "solver/gmres_impl.hpp"
#include "solver/instantiate.hpp"

namespace batchlin::solver {

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_GMRES, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_GMRES_BOUND, float, float)

}  // namespace batchlin::solver
