# Empty dependencies file for test_direct_ops.
# This may be replaced when dependencies are built.
