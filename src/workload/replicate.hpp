// Batch replication and slicing utilities.
//
// The paper extracts a handful of unique per-cell systems and replicates
// them to emulate a full mesh (§4.1); `replicate` does exactly that, with
// an optional small per-copy value perturbation so the copies are not
// bitwise identical. `slice` extracts a contiguous sub-batch — the building
// block of the explicit two-stack scaling mode (§2.2).
#pragma once

#include <cstdint>

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"

namespace batchlin::work {

/// Expands `unique` cyclically to `batch_size` items. Each copy's values
/// are scaled by (1 + eps) with |eps| <= perturbation (0 = exact copies).
template <typename T>
mat::batch_csr<T> replicate(const mat::batch_csr<T>& unique,
                            index_type batch_size,
                            double perturbation = 0.0,
                            std::uint64_t seed = 0);

/// Copies batch items [begin, end) into a new batch (shared pattern kept).
template <typename T>
mat::batch_csr<T> slice(const mat::batch_csr<T>& batch, index_type begin,
                        index_type end);

/// Same for batched dense objects (vectors and dense matrices).
template <typename T>
mat::batch_dense<T> slice(const mat::batch_dense<T>& batch,
                          index_type begin, index_type end);

}  // namespace batchlin::work
