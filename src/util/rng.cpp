#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace batchlin {

std::vector<index_type> rng::distinct_sorted(index_type lo, index_type hi,
                                             index_type count)
{
    BATCHLIN_ENSURE_MSG(hi >= lo, "empty range");
    const index_type range = hi - lo + 1;
    BATCHLIN_ENSURE_MSG(count <= range, "more draws than range elements");
    // Floyd's algorithm keeps memory proportional to `count` even for wide
    // ranges, which matters when sampling sparsity positions of large rows.
    std::vector<index_type> result;
    result.reserve(count);
    for (index_type j = range - count; j < range; ++j) {
        const index_type t = uniform_int(0, j);
        const index_type candidate = lo + t;
        if (std::find(result.begin(), result.end(), candidate) !=
            result.end()) {
            result.push_back(lo + j);
        } else {
            result.push_back(candidate);
        }
    }
    std::sort(result.begin(), result.end());
    return result;
}

}  // namespace batchlin
