#include "solver/instantiate.hpp"
#include "solver/richardson_impl.hpp"

namespace batchlin::solver {

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_RICHARDSON, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_RICHARDSON_BOUND, double, double)

}  // namespace batchlin::solver
