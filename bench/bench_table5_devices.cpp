// Table 5 reproduction: GPU specifications of the performance model.
//
// Prints the Table 5 rows (FP64 peak, HBM bandwidth, SLM size) for the
// four modeled devices plus the additional model parameters (documented
// calibration constants; see EXPERIMENTS.md).
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    std::printf("Table 5: GPU specifications (paper rows + model "
                "parameters)\n\n");
    std::printf("%-28s", "");
    for (const auto& d : perf::paper_devices()) {
        std::printf(" | %10s", d.name.c_str());
    }
    std::printf("\n");
    rule(80);

    auto row_f = [](const char* label, auto getter) {
        std::printf("%-28s", label);
        for (const auto& d : perf::paper_devices()) {
            std::printf(" | %10.6g", getter(d));
        }
        std::printf("\n");
    };
    std::printf("--- paper Table 5 rows\n");
    row_f("FP64 Peak (TFLOPs)",
          [](const perf::device_spec& d) { return d.fp64_peak_tflops; });
    row_f("HBM BW Peak (TB/s)",
          [](const perf::device_spec& d) { return d.hbm_bw_tbs; });
    row_f("Shared Local Mem. (KB)", [](const perf::device_spec& d) {
        return static_cast<double>(d.slm_per_core_bytes) / 1024.0;
    });
    std::printf("--- model parameters (calibration, see EXPERIMENTS.md)\n");
    row_f("cores (SM / Xe-core)", [](const perf::device_spec& d) {
        return static_cast<double>(d.num_cores);
    });
    row_f("stacks", [](const perf::device_spec& d) {
        return static_cast<double>(d.num_stacks);
    });
    row_f("SLM BW per core (GB/s)",
          [](const perf::device_spec& d) { return d.slm_bw_core_gbs; });
    row_f("L2/L3 BW (TB/s)",
          [](const perf::device_spec& d) { return d.l2_bw_tbs; });
    row_f("L2/L3 size (MB)", [](const perf::device_spec& d) {
        return static_cast<double>(d.l2_size_bytes) / (1024.0 * 1024.0);
    });
    row_f("kernel launch (us)",
          [](const perf::device_spec& d) { return d.kernel_launch_us; });
    row_f("model efficiency",
          [](const perf::device_spec& d) { return d.efficiency; });

    std::printf("\nprogramming model:          ");
    for (const auto& d : perf::paper_devices()) {
        std::printf(" | %10s", xpu::to_string(d.model).c_str());
    }
    std::printf("\n");
    return 0;
}
