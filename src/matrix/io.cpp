#include "matrix/io.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/error.hpp"

namespace batchlin::mat {

namespace {

/// Builds CSR arrays from coordinate triplets (sorted and deduplicated;
/// duplicates sum, the MatrixMarket convention).
template <typename T>
batch_csr<T> from_coordinates(index_type rows, index_type cols,
                              std::vector<std::tuple<index_type, index_type,
                                                     T>> entries)
{
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) {
                  return std::tie(std::get<0>(a), std::get<1>(a)) <
                         std::tie(std::get<0>(b), std::get<1>(b));
              });
    std::vector<index_type> row_ptrs(rows + 1, 0);
    std::vector<index_type> col_idxs;
    std::vector<T> vals;
    // Duplicate coordinates accumulate, the MatrixMarket convention.
    index_type prev_i = -1;
    index_type prev_j = -1;
    for (const auto& [i, j, v] : entries) {
        if (i == prev_i && j == prev_j) {
            vals.back() += v;
        } else {
            col_idxs.push_back(j);
            vals.push_back(v);
            ++row_ptrs[i + 1];
            prev_i = i;
            prev_j = j;
        }
    }
    for (index_type r = 0; r < rows; ++r) {
        row_ptrs[r + 1] += row_ptrs[r];
    }
    batch_csr<T> result(1, rows, cols, std::move(row_ptrs),
                        std::move(col_idxs));
    std::copy(vals.begin(), vals.end(), result.item_values(0));
    return result;
}

std::string next_content_line(std::istream& in)
{
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line[0] != '%') {
            return line;
        }
    }
    return {};
}

}  // namespace

template <typename T>
batch_csr<T> read_matrix_market(std::istream& in)
{
    std::string header;
    BATCHLIN_ENSURE_MSG(static_cast<bool>(std::getline(in, header)),
                        "empty MatrixMarket stream");
    std::istringstream hs(header);
    std::string banner, object, format, field, symmetry;
    hs >> banner >> object >> format >> field >> symmetry;
    BATCHLIN_ENSURE_MSG(banner == "%%MatrixMarket" && object == "matrix",
                        "not a MatrixMarket matrix header");
    BATCHLIN_ENSURE_MSG(format == "coordinate",
                        "only coordinate format is supported");
    BATCHLIN_ENSURE_MSG(field == "real" || field == "integer",
                        "only real/integer fields are supported");
    const bool symmetric = symmetry == "symmetric";
    BATCHLIN_ENSURE_MSG(symmetric || symmetry == "general",
                        "only general/symmetric symmetry is supported");

    std::istringstream sizes(next_content_line(in));
    index_type rows = 0, cols = 0;
    size_type count = 0;
    sizes >> rows >> cols >> count;
    BATCHLIN_ENSURE_MSG(rows > 0 && cols > 0, "invalid size line");

    std::vector<std::tuple<index_type, index_type, T>> entries;
    entries.reserve(static_cast<std::size_t>(symmetric ? 2 * count : count));
    for (size_type e = 0; e < count; ++e) {
        std::istringstream ls(next_content_line(in));
        index_type i = 0, j = 0;
        double v = 0.0;
        ls >> i >> j >> v;
        BATCHLIN_ENSURE_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                            "coordinate out of range");
        entries.emplace_back(i - 1, j - 1, static_cast<T>(v));
        if (symmetric && i != j) {
            entries.emplace_back(j - 1, i - 1, static_cast<T>(v));
        }
    }
    return from_coordinates(rows, cols, std::move(entries));
}

template <typename T>
batch_csr<T> read_matrix_market_file(const std::string& path)
{
    std::ifstream in(path);
    BATCHLIN_ENSURE_MSG(in.good(), "cannot open file: " + path);
    return read_matrix_market<T>(in);
}

template <typename T>
void write_matrix_market(std::ostream& out, const batch_csr<T>& matrix,
                         index_type batch)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << matrix.rows() << " " << matrix.cols() << " " << matrix.nnz()
        << "\n";
    out << std::setprecision(17);
    const T* vals = matrix.item_values(batch);
    for (index_type i = 0; i < matrix.rows(); ++i) {
        for (index_type k = matrix.row_ptrs()[i];
             k < matrix.row_ptrs()[i + 1]; ++k) {
            out << i + 1 << " " << matrix.col_idxs()[k] + 1 << " " << vals[k]
                << "\n";
        }
    }
}

template <typename T>
void write_batch(std::ostream& out, const batch_csr<T>& matrix)
{
    out << "%%BatchCsr " << matrix.num_batch_items() << " " << matrix.rows()
        << " " << matrix.cols() << " " << matrix.nnz() << "\n";
    for (index_type i = 0; i <= matrix.rows(); ++i) {
        out << matrix.row_ptrs()[i] << (i == matrix.rows() ? "\n" : " ");
    }
    for (index_type k = 0; k < matrix.nnz(); ++k) {
        out << matrix.col_idxs()[k] << (k + 1 == matrix.nnz() ? "\n" : " ");
    }
    out << std::setprecision(17);
    for (index_type b = 0; b < matrix.num_batch_items(); ++b) {
        const T* vals = matrix.item_values(b);
        for (index_type k = 0; k < matrix.nnz(); ++k) {
            out << vals[k] << (k + 1 == matrix.nnz() ? "\n" : " ");
        }
    }
}

template <typename T>
void write_batch_file(const std::string& path, const batch_csr<T>& matrix)
{
    std::ofstream out(path);
    BATCHLIN_ENSURE_MSG(out.good(), "cannot open file for write: " + path);
    write_batch(out, matrix);
}

template <typename T>
batch_csr<T> read_batch(std::istream& in)
{
    std::string header;
    BATCHLIN_ENSURE_MSG(static_cast<bool>(std::getline(in, header)),
                        "empty batch stream");
    std::istringstream hs(header);
    std::string banner;
    index_type items = 0, rows = 0, cols = 0, nnz = 0;
    hs >> banner >> items >> rows >> cols >> nnz;
    BATCHLIN_ENSURE_MSG(banner == "%%BatchCsr", "not a BatchCsr header");
    std::vector<index_type> row_ptrs(rows + 1);
    for (auto& p : row_ptrs) {
        in >> p;
    }
    std::vector<index_type> col_idxs(nnz);
    for (auto& c : col_idxs) {
        in >> c;
    }
    batch_csr<T> matrix(items, rows, cols, std::move(row_ptrs),
                        std::move(col_idxs));
    for (index_type b = 0; b < items; ++b) {
        T* vals = matrix.item_values(b);
        for (index_type k = 0; k < nnz; ++k) {
            in >> vals[k];
        }
    }
    BATCHLIN_ENSURE_MSG(!in.fail(), "truncated BatchCsr stream");
    return matrix;
}

template <typename T>
batch_csr<T> read_batch_file(const std::string& path)
{
    std::ifstream in(path);
    BATCHLIN_ENSURE_MSG(in.good(), "cannot open file: " + path);
    return read_batch<T>(in);
}

#define BATCHLIN_INSTANTIATE_IO(T)                                          \
    template batch_csr<T> read_matrix_market<T>(std::istream&);             \
    template batch_csr<T> read_matrix_market_file<T>(const std::string&);   \
    template void write_matrix_market(std::ostream&, const batch_csr<T>&,   \
                                      index_type);                          \
    template void write_batch(std::ostream&, const batch_csr<T>&);          \
    template void write_batch_file(const std::string&,                      \
                                   const batch_csr<T>&);                    \
    template batch_csr<T> read_batch<T>(std::istream&);                     \
    template batch_csr<T> read_batch_file<T>(const std::string&)

BATCHLIN_INSTANTIATE_IO(float);
BATCHLIN_INSTANTIATE_IO(double);

}  // namespace batchlin::mat
