// Figure 4b reproduction: runtime of the SYCL batched solvers on one stack
// of the PVC vs the number of matrices, for a fixed 64x64 3-point stencil
// problem. The paper's claim: once the GPU is saturated the runtime grows
// linearly in the batch size (additional systems wait for resident ones).
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    const index_type rows = 64;
    const perf::device_spec device = perf::pvc_1s();

    const index_type items = measurement_batch(64);
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 42);
    const auto b = work::random_rhs<double>(items, rows, 7);
    const measured_solve cg =
        measure(device, a, b, stencil_options(solver::solver_type::cg));
    const measured_solve bicg = measure(
        device, a, b, stencil_options(solver::solver_type::bicgstab));

    std::printf("Figure 4b: scaling w.r.t. number of matrices "
                "(3pt stencil 64x64, %s)\n\n",
                device.name.c_str());
    std::printf("%10s | %12s %12s | %12s %12s\n", "batch", "BatchCg[ms]",
                "per-2^13", "BiCGSTAB[ms]", "per-2^13");
    rule(70);
    const double cg_base = projected_ms(device, cg, 1 << 13);
    const double bicg_base = projected_ms(device, bicg, 1 << 13);
    for (int p = 13; p <= 17; ++p) {
        const index_type batch = 1 << p;
        const double cg_ms = projected_ms(device, cg, batch);
        const double bicg_ms = projected_ms(device, bicg, batch);
        std::printf("%10d | %12.3f %12.3f | %12.3f %12.3f\n", batch, cg_ms,
                    cg_ms / cg_base, bicg_ms, bicg_ms / bicg_base);
    }
    std::printf("\n(the per-2^13 column doubling with the batch size is the "
                "paper's linear batch scaling)\n");
    return 0;
}
