# Empty dependencies file for batched_from_files.
# This may be replaced when dependencies are built.
