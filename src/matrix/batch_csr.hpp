// BatchCsr: batched CSR matrices with one shared sparsity pattern
// (paper §3.1, Fig. 2).
//
// All systems of the problem space share a sparsity pattern, so the row
// pointers and column indexes are stored once; only the numeric values are
// replicated per batch item. Storage cost (Fig. 2):
//   num_items × nnz values  +  (rows+1) row pointers  +  nnz column indexes.
#pragma once

#include <vector>

#include "matrix/storage.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/span.hpp"

namespace batchlin::mat {

template <typename T>
class batch_csr {
public:
    using value_type = T;

    batch_csr() = default;

    /// Builds a batch from a shared pattern; values are zero-initialized.
    /// `row_ptrs` has rows+1 entries; `col_idxs` has row_ptrs[rows] entries.
    batch_csr(index_type num_batch_items, index_type rows, index_type cols,
              std::vector<index_type> row_ptrs,
              std::vector<index_type> col_idxs);

    index_type num_batch_items() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type cols() const { return cols_; }
    /// Non-zeros per batch item (the shared pattern's count).
    index_type nnz() const { return nnz_; }

    const std::vector<index_type>& row_ptrs() const { return row_ptrs_; }
    const std::vector<index_type>& col_idxs() const { return col_idxs_; }

    T* item_values(index_type batch)
    {
        require_native();
        return values_.data() + item_offset(batch);
    }
    const T* item_values(index_type batch) const
    {
        require_native();
        return values_.data() + item_offset(batch);
    }

    /// Device view of one item's values; matrix values are read-only during
    /// the solve, hence tagged constant (L3-cacheable, §4.4).
    xpu::dspan<const T> item_span(index_type batch) const
    {
        return {item_values(batch), nnz_, xpu::mem_space::constant};
    }
    xpu::dspan<T> item_span_mutable(index_type batch)
    {
        return {item_values(batch), nnz_, xpu::mem_space::global};
    }

    std::vector<T>& values()
    {
        require_native();
        return values_;
    }
    const std::vector<T>& values() const
    {
        require_native();
        return values_;
    }

    /// How the values are stored; fp32 means `values_fp32()` is live and
    /// the native-typed accessors above must not be used.
    storage_precision storage_mode() const { return storage_; }

    /// Converts the values array in place. fp32 -> native round trips keep
    /// only fp32 accuracy (the narrowing happened on the way in); callers
    /// that need the original matrix back retain a native copy instead.
    /// For 4-byte T, fp32 collapses to native (see effective_storage).
    void set_storage_precision(storage_precision mode);

    float* item_values_fp32(index_type batch)
    {
        require_fp32();
        return values32_.data() + item_offset(batch);
    }
    const float* item_values_fp32(index_type batch) const
    {
        require_fp32();
        return values32_.data() + item_offset(batch);
    }
    xpu::dspan<const float> item_span_fp32(index_type batch) const
    {
        return {item_values_fp32(batch), nnz_, xpu::mem_space::constant};
    }
    std::vector<float>& values_fp32()
    {
        require_fp32();
        return values32_;
    }
    const std::vector<float>& values_fp32() const
    {
        require_fp32();
        return values32_;
    }

    /// Value at (row, col) of one item, or 0 when outside the pattern.
    T at(index_type batch, index_type row, index_type col) const;

    /// Throws when the pattern is malformed: non-monotonic row pointers,
    /// column indexes out of range or unsorted within a row, duplicates.
    void validate() const;

    /// Position of each row's diagonal entry within the values array, or -1
    /// when the diagonal is not part of the pattern. Used by the Jacobi and
    /// ILU0 preconditioner generation.
    std::vector<index_type> diagonal_positions() const;

    /// Total storage in bytes including the shared pattern (Fig. 2).
    /// Honest under fp32 mode: the native array is released on conversion,
    /// so the value term really is half-width.
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size()) * sizeof(T) +
               static_cast<size_type>(values32_.size()) * sizeof(float) +
               static_cast<size_type>(row_ptrs_.size() + col_idxs_.size()) *
                   sizeof(index_type);
    }

    /// Bytes one solve streams for this item's values (storage-aware);
    /// feeds the perfmodel constant-footprint accounting.
    size_type value_bytes_per_item() const
    {
        const size_type width = storage_ == storage_precision::fp32
                                    ? sizeof(float)
                                    : sizeof(T);
        return static_cast<size_type>(nnz_) * width;
    }

private:
    void require_native() const
    {
        BATCHLIN_ENSURE_MSG(storage_ == storage_precision::native,
                            "native-typed value access on an fp32-storage "
                            "batch_csr");
    }
    void require_fp32() const
    {
        BATCHLIN_ENSURE_MSG(storage_ == storage_precision::fp32,
                            "fp32 value access on a native-storage "
                            "batch_csr");
    }

    size_type item_offset(index_type batch) const
    {
        BATCHLIN_ENSURE_DIMS(batch >= 0 && batch < num_batch_,
                             "batch index out of range");
        return static_cast<size_type>(batch) * nnz_;
    }

    index_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type cols_ = 0;
    index_type nnz_ = 0;
    storage_precision storage_ = storage_precision::native;
    std::vector<index_type> row_ptrs_;
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
    std::vector<float> values32_;
};

}  // namespace batchlin::mat
