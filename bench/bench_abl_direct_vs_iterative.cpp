// Ablation: batched iterative vs batched direct solvers (paper §1).
//
// The paper's thesis: inside a non-linear loop the iterative solver wins
// because (a) it runs as ONE fused kernel with SLM locality while the
// direct solve needs two kernels with a dense workspace in between, and
// (b) it can start from the previous solution, shortening the iteration.
// This bench sweeps the initial-guess quality and prints where the
// iterative solver's advantage over the dense-LU direct baseline comes
// from; the tridiagonal case additionally compares against the Thomas
// solver (cuThomasBatch-style, one lane per system).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "solver/direct.hpp"

using namespace bench;

namespace {

/// Measured direct dense-LU solve projected onto the device model.
measured_solve measure_dense_lu(const perf::device_spec& device,
                                const mat::batch_csr<double>& a,
                                const mat::batch_dense<double>& b)
{
    measured_solve m;
    m.measured_items = a.num_batch_items();
    m.rows = a.rows();
    mat::batch_dense<double> x(m.measured_items, m.rows, 1);
    log::batch_log logger(m.measured_items);
    xpu::queue q(device.make_policy());
    solver::run_dense_lu(q, a, b, x, logger, {0, m.measured_items});
    m.result.stats = q.stats();
    m.result.config =
        solver::choose_launch_config(device.make_policy(), m.rows);
    m.constant_bytes_per_system =
        static_cast<size_type>(a.nnz() + a.rows()) * sizeof(double);
    m.mean_iterations = 1.0;
    return m;
}

/// Iterative solve warm-started from a perturbed exact solution:
/// guess = x_exact * (1 + noise).
measured_solve measure_warm(const perf::device_spec& device,
                            const mat::batch_csr<double>& a,
                            const mat::batch_dense<double>& b,
                            double guess_noise)
{
    const index_type items = a.num_batch_items();
    const index_type rows = a.rows();
    // Exact solutions via the direct baseline.
    mat::batch_dense<double> x_exact(items, rows, 1);
    {
        log::batch_log logger(items);
        xpu::queue q(device.make_policy());
        solver::run_dense_lu(q, a, b, x_exact, logger, {0, items});
    }
    mat::batch_dense<double> x = x_exact;
    rng gen(4242);
    if (guess_noise >= 1.0) {
        x.fill(0.0);  // cold start
    } else {
        for (double& v : x.values()) {
            v *= 1.0 + guess_noise * gen.uniform(-1.0, 1.0);
        }
    }

    measured_solve m;
    m.measured_items = items;
    m.rows = rows;
    xpu::queue q(device.make_policy());
    m.result = solver::solve<double>(q, a, b, x, pele_options());
    m.mean_iterations = m.result.log.mean_iterations();
    const solver::batch_matrix<double> variant = a;
    const perf::solve_profile p =
        make_profile<double>(m.result, variant, 1);
    m.constant_bytes_per_system = p.constant_footprint_per_system;
    return m;
}

}  // namespace

int main()
{
    const index_type target = 1 << 17;
    const perf::device_spec device = perf::pvc_1s();
    const work::mechanism mech = work::mechanism_by_name("dodecane_lu");
    const index_type items = measurement_batch(mech.num_unique);
    const auto a = work::generate_mechanism_batch<double>(mech, items);
    const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);

    std::printf("Ablation: batched iterative vs direct (paper §1), "
                "%s (%dx%d), 2^17 systems, %s\n\n",
                mech.name.c_str(), mech.rows, mech.rows,
                device.name.c_str());

    const measured_solve direct = measure_dense_lu(device, a, b);
    std::printf("direct dense LU:   %10.3f ms  (2 kernels, dense %dx%d "
                "workspace per system)\n",
                projected_ms(device, direct, target), mech.rows,
                mech.rows);

    std::printf("\nBatchBicgstab+Jacobi vs initial-guess quality:\n");
    std::printf("%16s | %12s | %12s | %10s\n", "guess error", "iters",
                "time [ms]", "vs direct");
    rule(62);
    const double direct_ms = projected_ms(device, direct, target);
    for (const double noise : {1.0, 0.5, 1e-1, 1e-2, 1e-3, 1e-4}) {
        const measured_solve warm = measure_warm(device, a, b, noise);
        const double ms = projected_ms(device, warm, target);
        std::printf("%16s | %12.1f | %12.3f | %9.2fx\n",
                    noise >= 1.0 ? "cold (zero)"
                                 : std::to_string(noise).c_str(),
                    warm.mean_iterations, ms, direct_ms / ms);
    }

    // Tridiagonal side-by-side: Thomas vs BatchCg.
    std::printf("\ntridiagonal case (64x64 stencil): Thomas direct vs "
                "BatchCg\n");
    const index_type st_items = measurement_batch(64);
    const auto tri = work::stencil_3pt<double>(st_items, 64, 42);
    const auto tri_b = work::random_rhs<double>(st_items, 64, 7);
    measured_solve thomas;
    {
        thomas.measured_items = st_items;
        thomas.rows = 64;
        mat::batch_dense<double> x(st_items, 64, 1);
        log::batch_log logger(st_items);
        xpu::queue q(device.make_policy());
        solver::run_thomas(q, tri, tri_b, x, logger, {0, st_items});
        thomas.result.stats = q.stats();
        thomas.result.config =
            solver::choose_launch_config(device.make_policy(), 64);
        thomas.constant_bytes_per_system =
            static_cast<size_type>(tri.nnz() + 64) * sizeof(double);
    }
    const measured_solve cg = measure(
        device, solver::batch_matrix<double>(tri), tri_b,
        stencil_options(solver::solver_type::cg));
    std::printf("  Thomas: %8.3f ms   BatchCg (cold): %8.3f ms\n",
                projected_ms(device, thomas, target),
                projected_ms(device, cg, target));
    std::printf("\n(the direct solve is guess-independent; the iterative "
                "solve overtakes it once the outer loop provides a good "
                "guess — the §1 argument)\n");
    return 0;
}
