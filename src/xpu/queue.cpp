#include "xpu/queue.hpp"

#include <algorithm>
#include <chrono>

namespace batchlin::xpu {

double queue::now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::byte* scratch_pool::acquire(size_type bytes)
{
    if (static_cast<size_type>(storage_.size()) < bytes) {
        storage_.resize(static_cast<std::size_t>(bytes));
    }
    std::fill_n(storage_.data(), static_cast<std::size_t>(bytes),
                std::byte{0});
    return storage_.data();
}

void queue::prepare_launch(int num_threads)
{
    while (static_cast<int>(arena_pool_.size()) < num_threads) {
        arena_pool_.emplace_back(policy_.slm_bytes_per_group);
    }
    if (static_cast<int>(thread_stats_.size()) < num_threads) {
        thread_stats_.resize(static_cast<std::size_t>(num_threads));
    }
    // Zero only the blocks this launch merges; stale entries beyond
    // `num_threads` (from a launch with more threads) are never read.
    for (int t = 0; t < num_threads; ++t) {
        thread_stats_[static_cast<std::size_t>(t)] = counters{};
    }
}

batch_range stack_partition(index_type num_items, index_type num_stacks,
                            index_type stack_id)
{
    BATCHLIN_ENSURE_MSG(num_stacks > 0, "need at least one stack");
    BATCHLIN_ENSURE_MSG(stack_id >= 0 && stack_id < num_stacks,
                        "stack id out of range");
    const index_type base = num_items / num_stacks;
    const index_type extra = num_items % num_stacks;
    const index_type begin =
        stack_id * base + (stack_id < extra ? stack_id : extra);
    const index_type len = base + (stack_id < extra ? 1 : 0);
    return {begin, begin + len};
}

queue make_stack_queue(const queue& parent)
{
    exec_policy policy = parent.policy();
    policy.num_stacks = 1;
    return queue(policy);
}

}  // namespace batchlin::xpu
