#pragma once
// conc:: shims — the atomic/mutex/futex vocabulary the lock-free serve and
// shard protocols are written against.
//
// Default build: pure aliases onto std::atomic / std::mutex plus direct
// futex syscalls — zero overhead, bit-for-bit the previous hand-written
// code. Checked build (-DBATCHLIN_CONC_CHECK=ON, mirroring the
// BATCHLIN_XPU_CHECK pattern): every operation reports to the
// conc::engine model checker when one is driving the calling thread, so
// the *production* ring/doorbell/reply-slot/lane code — not a transcript
// of it — runs under exhaustive schedule exploration and vector-clock
// race detection. Off-engine threads (normal unit tests in the checked
// build) fall through to the raw std::atomic operation.
//
// Instrumented-mode modeling notes:
//  * values are sequentially consistent; memory_order arguments feed the
//    happens-before tracking only (see DESIGN.md §13),
//  * compare_exchange_weak never fails spuriously under the engine,
//  * futexes grant no happens-before edge — ordering must travel through
//    the word, exactly like the real syscall.

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__linux__)
#include <climits>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(BATCHLIN_CONC_CHECK)
#include <source_location>
#include <type_traits>

#include "conc/engine.hpp"
#endif

namespace batchlin::conc::detail {

/// Blocks until `word` is woken or its value is observed != `expected`.
/// May return spuriously; callers re-check the predicate in a loop.
inline void raw_futex_wait(std::atomic<std::uint32_t>& word, std::uint32_t expected)
{
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
            FUTEX_WAIT_PRIVATE, expected, nullptr, nullptr, 0);
#else
    word.wait(expected, std::memory_order_acquire);
#endif
}

/// Wakes every thread blocked in raw_futex_wait on `word`.
inline void raw_futex_wake_all(std::atomic<std::uint32_t>& word)
{
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
            FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
#else
    word.notify_all();
#endif
}

}  // namespace batchlin::conc::detail

#if !defined(BATCHLIN_CONC_CHECK)

namespace batchlin::conc {

template <typename T>
using atomic = std::atomic<T>;

using mutex = std::mutex;

/// True when a model-checking engine drives the calling thread (never, in
/// the default build) — callers use it to skip spin loops under the engine.
inline bool active() { return false; }

inline void futex_wait(std::atomic<std::uint32_t>& word, std::uint32_t expected)
{
    detail::raw_futex_wait(word, expected);
}

inline void futex_wake_all(std::atomic<std::uint32_t>& word)
{
    detail::raw_futex_wake_all(word);
}

/// Race-detector hooks on non-atomic payload data; free in this build.
inline void plain_read(const void*) {}
inline void plain_write(const void*) {}

inline void yield() { std::this_thread::yield(); }

}  // namespace batchlin::conc

#else  // BATCHLIN_CONC_CHECK

namespace batchlin::conc {

inline bool active() { return engine::active() != nullptr; }

namespace detail {

/// Failure order implied by the one-order compare_exchange overloads.
inline std::memory_order strip_release(std::memory_order mo)
{
    if (mo == std::memory_order_acq_rel) {
        return std::memory_order_acquire;
    }
    if (mo == std::memory_order_release) {
        return std::memory_order_relaxed;
    }
    return mo;
}

}  // namespace detail

/// Drop-in std::atomic replacement that reports to the active engine.
template <typename T>
class atomic {
public:
    atomic() noexcept = default;
    constexpr atomic(T v) noexcept : v_(v) {}  // NOLINT(google-explicit-constructor)
    atomic(const atomic&) = delete;
    atomic& operator=(const atomic&) = delete;

    T load(std::memory_order mo = std::memory_order_seq_cst,
           const std::source_location& loc = std::source_location::current()) const
    {
        if (engine* e = engine::active()) {
            e->op_point(op_kind::atomic_load, this, to_site(loc));
            T v = v_.load(std::memory_order_seq_cst);
            e->sync_acquire(this, mo);
            return v;
        }
        return v_.load(mo);
    }

    void store(T v, std::memory_order mo = std::memory_order_seq_cst,
               const std::source_location& loc = std::source_location::current())
    {
        if (engine* e = engine::active()) {
            e->op_point(op_kind::atomic_store, this, to_site(loc));
            v_.store(v, std::memory_order_seq_cst);
            e->sync_store(this, mo);
            return;
        }
        v_.store(v, mo);
    }

    T exchange(T v, std::memory_order mo = std::memory_order_seq_cst,
               const std::source_location& loc = std::source_location::current())
    {
        if (engine* e = engine::active()) {
            e->op_point(op_kind::atomic_rmw, this, to_site(loc));
            T old = v_.exchange(v, std::memory_order_seq_cst);
            e->sync_rmw(this, mo);
            return old;
        }
        return v_.exchange(v, mo);
    }

    T fetch_add(T v, std::memory_order mo = std::memory_order_seq_cst,
                const std::source_location& loc = std::source_location::current())
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    {
        if (engine* e = engine::active()) {
            e->op_point(op_kind::atomic_rmw, this, to_site(loc));
            T old = v_.fetch_add(v, std::memory_order_seq_cst);
            e->sync_rmw(this, mo);
            return old;
        }
        return v_.fetch_add(v, mo);
    }

    T fetch_sub(T v, std::memory_order mo = std::memory_order_seq_cst,
                const std::source_location& loc = std::source_location::current())
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    {
        if (engine* e = engine::active()) {
            e->op_point(op_kind::atomic_rmw, this, to_site(loc));
            T old = v_.fetch_sub(v, std::memory_order_seq_cst);
            e->sync_rmw(this, mo);
            return old;
        }
        return v_.fetch_sub(v, mo);
    }

    bool compare_exchange_strong(
        T& expected, T desired, std::memory_order success, std::memory_order failure,
        const std::source_location& loc = std::source_location::current())
    {
        if (engine* e = engine::active()) {
            e->op_point(op_kind::atomic_rmw, this, to_site(loc));
            bool ok = v_.compare_exchange_strong(expected, desired,
                                                 std::memory_order_seq_cst,
                                                 std::memory_order_seq_cst);
            if (ok) {
                e->sync_rmw(this, success);
            } else {
                e->sync_acquire(this, failure);
            }
            return ok;
        }
        return v_.compare_exchange_strong(expected, desired, success, failure);
    }

    bool compare_exchange_strong(
        T& expected, T desired, std::memory_order mo = std::memory_order_seq_cst,
        const std::source_location& loc = std::source_location::current())
    {
        return compare_exchange_strong(expected, desired, mo,
                                       detail::strip_release(mo), loc);
    }

    bool compare_exchange_weak(
        T& expected, T desired, std::memory_order success, std::memory_order failure,
        const std::source_location& loc = std::source_location::current())
    {
        // Modeled as strong: the engine does not inject spurious CAS failure.
        return compare_exchange_strong(expected, desired, success, failure, loc);
    }

    bool compare_exchange_weak(
        T& expected, T desired, std::memory_order mo = std::memory_order_seq_cst,
        const std::source_location& loc = std::source_location::current())
    {
        return compare_exchange_strong(expected, desired, mo,
                                       detail::strip_release(mo), loc);
    }

    T operator++()
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    {
        return static_cast<T>(fetch_add(T{1}) + T{1});
    }

    T operator+=(T v)
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    {
        return static_cast<T>(fetch_add(v) + v);
    }

    T operator-=(T v)
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    {
        return static_cast<T>(fetch_sub(v) - v);
    }

    operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

    /// Underlying word, for the futex syscall in engine-off execution.
    std::atomic<T>& raw() { return v_; }
    const std::atomic<T>& raw() const { return v_; }

private:
    std::atomic<T> v_{};
};

/// Drop-in std::mutex replacement (BasicLockable + try_lock). Not usable
/// with std::condition_variable — cv-coupled mutexes stay std::mutex.
class mutex {
public:
    mutex() = default;
    mutex(const mutex&) = delete;
    mutex& operator=(const mutex&) = delete;

    void lock(const std::source_location& loc = std::source_location::current())
    {
        if (engine* e = engine::active()) {
            e->mutex_lock(this, to_site(loc));
            return;
        }
        m_.lock();
    }

    void unlock(const std::source_location& loc = std::source_location::current())
    {
        if (engine* e = engine::active()) {
            e->mutex_unlock(this, to_site(loc));
            return;
        }
        m_.unlock();
    }

    bool try_lock(const std::source_location& loc = std::source_location::current())
    {
        if (engine* e = engine::active()) {
            return e->mutex_try_lock(this, to_site(loc));
        }
        return m_.try_lock();
    }

private:
    std::mutex m_;
};

inline void futex_wait(atomic<std::uint32_t>& word, std::uint32_t expected,
                       const std::source_location& loc = std::source_location::current())
{
    if (engine* e = engine::active()) {
        e->futex_wait(&word, word.raw(), expected, to_site(loc));
        return;
    }
    detail::raw_futex_wait(word.raw(), expected);
}

inline void futex_wake_all(atomic<std::uint32_t>& word,
                           const std::source_location& loc = std::source_location::current())
{
    if (engine* e = engine::active()) {
        e->futex_wake_all(&word, to_site(loc));
        return;
    }
    detail::raw_futex_wake_all(word.raw());
}

inline void plain_read(const void* addr,
                       const std::source_location& loc = std::source_location::current())
{
    if (engine* e = engine::active()) {
        e->plain_read(addr, to_site(loc));
    }
}

inline void plain_write(const void* addr,
                        const std::source_location& loc = std::source_location::current())
{
    if (engine* e = engine::active()) {
        e->plain_write(addr, to_site(loc));
    }
}

inline void yield(const std::source_location& loc = std::source_location::current())
{
    if (engine* e = engine::active()) {
        e->yield(to_site(loc));
        return;
    }
    std::this_thread::yield();
}

}  // namespace batchlin::conc

#endif  // BATCHLIN_CONC_CHECK
