// Property-based suites: randomized sparsity patterns and values, swept
// over seeds with parameterized gtest. These pin the library's invariants
// rather than specific examples:
//  * SpMV agrees across all three formats on any shared pattern;
//  * format conversions round-trip losslessly;
//  * every Krylov solver reaches the requested tolerance on random
//    diagonally-dominant batches (verified against the true residual);
//  * all dispatch paths produce equivalent solutions;
//  * ILU(0) reproduces A on the pattern positions for any pattern;
//  * counters are deterministic and respect the memory-space invariants;
//  * equilibration normalizes row infinity-norms.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "blas/matrix_view.hpp"
#include "matrix/conversions.hpp"
#include "matrix/operations.hpp"
#include "matrix/properties.hpp"
#include "precond/ilu0.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "util/rng.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;

namespace {

/// Random shared-pattern, diagonally-dominant, non-symmetric batch.
mat::batch_csr<double> random_batch(std::uint64_t seed, index_type items,
                                    index_type rows, double density)
{
    bl::rng gen(seed);
    std::vector<index_type> row_ptrs(rows + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type i = 0; i < rows; ++i) {
        std::set<index_type> cols{i};  // always keep the diagonal
        const index_type extras = std::max<index_type>(
            1, static_cast<index_type>(density * rows));
        for (index_type e = 0; e < extras; ++e) {
            cols.insert(gen.uniform_int(0, rows - 1));
        }
        for (index_type c : cols) {
            col_idxs.push_back(c);
        }
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
    mat::batch_csr<double> a(items, rows, rows, std::move(row_ptrs),
                             std::move(col_idxs));
    for (index_type b = 0; b < items; ++b) {
        double* vals = a.item_values(b);
        for (index_type i = 0; i < rows; ++i) {
            double off_sum = 0.0;
            index_type diag_k = -1;
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                if (a.col_idxs()[k] == i) {
                    diag_k = k;
                    continue;
                }
                vals[k] = gen.uniform(-1.0, 1.0);
                off_sum += std::abs(vals[k]);
            }
            vals[diag_k] = (1.2 + gen.uniform(0.0, 0.8)) * (off_sum + 0.5);
        }
    }
    return a;
}

/// Random SPD batch with a symmetric shared pattern (for BatchCg).
mat::batch_csr<double> random_spd_batch(std::uint64_t seed,
                                        index_type items, index_type rows,
                                        double density)
{
    bl::rng gen(seed);
    // Build a symmetric pattern: sample (i, j) pairs and mirror them.
    std::vector<std::set<index_type>> pattern(rows);
    for (index_type i = 0; i < rows; ++i) {
        pattern[i].insert(i);
    }
    const index_type extras = std::max<index_type>(
        1, static_cast<index_type>(density * rows * rows / 2));
    for (index_type e = 0; e < extras; ++e) {
        const index_type i = gen.uniform_int(0, rows - 1);
        const index_type j = gen.uniform_int(0, rows - 1);
        pattern[i].insert(j);
        pattern[j].insert(i);
    }
    std::vector<index_type> row_ptrs(rows + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type i = 0; i < rows; ++i) {
        for (index_type c : pattern[i]) {
            col_idxs.push_back(c);
        }
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
    mat::batch_csr<double> a(items, rows, rows, std::move(row_ptrs),
                             std::move(col_idxs));
    for (index_type b = 0; b < items; ++b) {
        double* vals = a.item_values(b);
        // Symmetric off-diagonal values, then lift the diagonal to strict
        // dominance => SPD by Gershgorin.
        for (index_type i = 0; i < rows; ++i) {
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                const index_type j = a.col_idxs()[k];
                if (j > i) {
                    vals[k] = gen.uniform(-1.0, 1.0);
                }
            }
        }
        for (index_type i = 0; i < rows; ++i) {
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                const index_type j = a.col_idxs()[k];
                if (j < i) {
                    vals[k] = a.at(b, j, i);
                }
            }
        }
        for (index_type i = 0; i < rows; ++i) {
            double off_sum = 0.0;
            index_type diag_k = -1;
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                if (a.col_idxs()[k] == i) {
                    diag_k = k;
                } else {
                    off_sum += std::abs(vals[k]);
                }
            }
            vals[diag_k] = off_sum + 0.5 + gen.uniform(0.0, 1.0);
        }
    }
    return a;
}

}  // namespace

// ---------------------------------------------------------------------
class RandomPattern : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomPattern, SpmvAgreesAcrossFormats)
{
    const auto csr = random_batch(GetParam(), 5, 37, 0.25);
    const auto x = work::random_rhs<double>(5, 37, GetParam() + 1);
    xpu::queue q(xpu::make_sycl_policy());
    mat::batch_dense<double> y_csr(5, 37, 1), y_ell(5, 37, 1),
        y_dense(5, 37, 1);
    mat::apply<double>(q, csr, x, y_csr);
    mat::apply<double>(q, mat::to_ell(csr), x, y_ell);
    mat::apply<double>(q, mat::to_dense(csr), x, y_dense);
    for (std::size_t i = 0; i < y_csr.values().size(); ++i) {
        EXPECT_NEAR(y_csr.values()[i], y_ell.values()[i], 1e-12);
        EXPECT_NEAR(y_csr.values()[i], y_dense.values()[i], 1e-12);
    }
}

TEST_P(RandomPattern, ConversionsRoundTripLosslessly)
{
    const auto csr = random_batch(GetParam(), 4, 29, 0.3);
    const auto via_ell = mat::to_csr(mat::to_ell(csr));
    EXPECT_EQ(via_ell.row_ptrs(), csr.row_ptrs());
    EXPECT_EQ(via_ell.col_idxs(), csr.col_idxs());
    EXPECT_EQ(via_ell.values(), csr.values());
    const auto via_dense = mat::to_csr(mat::to_dense(csr));
    // Random values are never exactly zero, so the pattern is preserved.
    EXPECT_EQ(via_dense.row_ptrs(), csr.row_ptrs());
    EXPECT_EQ(via_dense.values(), csr.values());
}

TEST_P(RandomPattern, Ilu0ReproducesAOnPattern)
{
    const auto a = random_batch(GetParam(), 2, 24, 0.35);
    precond::ilu0<double> pc(a);
    xpu::counters stats;
    xpu::slm_arena arena(1 << 20);
    xpu::group g(0, 32, 16, arena, stats);
    std::vector<double> work_buf(a.nnz() + a.rows());
    pc.generate(g, batchlin::blas::item_view(a, 1),
                {work_buf.data(),
                 static_cast<index_type>(work_buf.size()),
                 xpu::mem_space::global});
    // Rebuild L*U densely and compare on the pattern.
    const index_type n = a.rows();
    std::vector<double> l(n * n, 0.0), u(n * n, 0.0);
    for (index_type i = 0; i < n; ++i) {
        l[i * n + i] = 1.0;
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            const index_type j = a.col_idxs()[k];
            (j < i ? l : u)[i * n + j] = work_buf[k];
        }
    }
    for (index_type i = 0; i < n; ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            const index_type j = a.col_idxs()[k];
            double prod = 0.0;
            for (index_type m = 0; m < n; ++m) {
                prod += l[i * n + m] * u[m * n + j];
            }
            EXPECT_NEAR(prod, a.item_values(1)[k], 1e-9)
                << "(" << i << "," << j << ")";
        }
    }
}

TEST_P(RandomPattern, EquilibrationNormalizesRows)
{
    auto a = random_batch(GetParam(), 3, 31, 0.3);
    const auto s = mat::compute_equilibration(a);
    mat::scale_system(a, s);
    for (index_type item = 0; item < 3; ++item) {
        for (index_type i = 0; i < a.rows(); ++i) {
            double row_max = 0.0;
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                row_max =
                    std::max(row_max, std::abs(a.item_values(item)[k]));
            }
            EXPECT_LE(row_max, 1.0 + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPattern,
                         ::testing::Values(11u, 23u, 37u, 51u, 68u, 79u,
                                           97u, 113u));

// ---------------------------------------------------------------------
using solve_param = std::tuple<std::uint64_t, solver::solver_type>;

class RandomSolve : public ::testing::TestWithParam<solve_param> {};

TEST_P(RandomSolve, ReachesToleranceOnRandomDominantBatches)
{
    const auto [seed, kind] = GetParam();
    const index_type items = 10;
    const index_type rows = 45;
    // CG requires SPD input; the other solvers get the general batch.
    const auto a_csr = kind == solver::solver_type::cg
                           ? random_spd_batch(seed, items, rows, 0.25)
                           : random_batch(seed, items, rows, 0.25);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(items, rows, seed + 5);
    mat::batch_dense<double> x(items, rows, 1);

    solver::solve_options opts;
    opts.solver = kind;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-9, 400);
    opts.gmres_restart = 25;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), items);
    const auto rel = solver::relative_residual_norms(a, b, x);
    for (double r : rel) {
        EXPECT_LE(r, 5e-8);
    }
}

TEST_P(RandomSolve, AllDispatchPathsAgree)
{
    const auto [seed, kind] = GetParam();
    const index_type items = 6;
    const index_type rows = 26;
    const auto csr = kind == solver::solver_type::cg
                         ? random_spd_batch(seed, items, rows, 0.3)
                         : random_batch(seed, items, rows, 0.3);
    const auto b = work::random_rhs<double>(items, rows, seed + 9);

    solver::solve_options opts;
    opts.solver = kind;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-11, 400);
    opts.gmres_restart = 20;
    xpu::queue q(xpu::make_sycl_policy());

    auto run_on = [&](const solver::batch_matrix<double>& a) {
        mat::batch_dense<double> x(items, rows, 1);
        solver::solve(q, a, b, x, opts);
        return x;
    };
    const auto x_csr = run_on(csr);
    const auto x_ell = run_on(mat::to_ell(csr));
    const auto x_dense = run_on(mat::to_dense(csr));
    for (std::size_t i = 0; i < x_csr.values().size(); ++i) {
        EXPECT_NEAR(x_csr.values()[i], x_ell.values()[i], 1e-7);
        EXPECT_NEAR(x_csr.values()[i], x_dense.values()[i], 1e-7);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsTimesSolvers, RandomSolve,
    ::testing::Combine(::testing::Values(7u, 19u, 42u, 88u),
                       ::testing::Values(solver::solver_type::cg,
                                         solver::solver_type::bicgstab,
                                         solver::solver_type::gmres)),
    [](const ::testing::TestParamInfo<solve_param>& tpi) {
        return "seed" + std::to_string(std::get<0>(tpi.param)) + "_" +
               solver::to_string(std::get<1>(tpi.param));
    });

// ---------------------------------------------------------------------
// Counter invariants.
// ---------------------------------------------------------------------

TEST(CounterInvariants, SolvesAreCounterDeterministic)
{
    const auto a_csr = random_batch(3, 20, 33, 0.25);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(20, 33, 4);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    auto run = [&] {
        mat::batch_dense<double> x(20, 33, 1);
        xpu::queue q(xpu::make_sycl_policy());
        return solver::solve(q, a, b, x, opts).stats;
    };
    const xpu::counters c1 = run();
    const xpu::counters c2 = run();
    EXPECT_DOUBLE_EQ(c1.flops, c2.flops);
    EXPECT_DOUBLE_EQ(c1.slm_bytes, c2.slm_bytes);
    EXPECT_DOUBLE_EQ(c1.constant_read_bytes, c2.constant_read_bytes);
    EXPECT_DOUBLE_EQ(c1.total_iterations, c2.total_iterations);
    EXPECT_EQ(c1.slm_footprint_bytes, c2.slm_footprint_bytes);
}

TEST(CounterInvariants, NoSlmTrafficWithoutSlmPlacement)
{
    // slm_mode::none + single-sub-group reduction => nothing touches SLM.
    const auto a_csr = random_spd_batch(5, 8, 14, 0.2);  // CG needs SPD
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(8, 14, 6);
    mat::batch_dense<double> x(8, 14, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    opts.slm = solver::slm_mode::none;
    opts.sub_group_size = 16;
    opts.reduction = xpu::reduce_path::sub_group;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_DOUBLE_EQ(result.stats.slm_bytes, 0.0);
    EXPECT_EQ(result.stats.slm_footprint_bytes, 0);
    EXPECT_EQ(result.log.num_converged(), 8);
}

TEST(CounterInvariants, CudaModelNeverUsesSubGroup16)
{
    const auto a_csr = random_batch(9, 6, 22, 0.3);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(6, 22, 2);
    mat::batch_dense<double> x(6, 22, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    xpu::queue q(xpu::make_cuda_policy(192 * 1024));
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.config.sub_group_size, 32);
    EXPECT_EQ(result.config.reduction, xpu::reduce_path::sub_group);
    // Requesting sub-group 16 on the CUDA model must be rejected.
    opts.sub_group_size = 16;
    EXPECT_THROW(solver::solve(q, a, b, x, opts), bl::error);
}

TEST(CounterInvariants, SyclSmallSystemUsesLessSlmThanGroupPath)
{
    const auto a_csr = random_batch(13, 12, 16, 0.25);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(12, 16, 3);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.sub_group_size = 16;

    auto slm_bytes_for = [&](xpu::reduce_path path) {
        mat::batch_dense<double> x(12, 16, 1);
        solver::solve_options o = opts;
        o.reduction = path;
        xpu::queue q(xpu::make_sycl_policy());
        return solver::solve(q, a, b, x, o).stats.slm_bytes;
    };
    EXPECT_LT(slm_bytes_for(xpu::reduce_path::sub_group),
              slm_bytes_for(xpu::reduce_path::group));
}
