// serve::detail::reply_slot — the waiter-bit futex completion slot a
// solve ticket blocks on.
//
// This replaces `std::promise` so the worker controls *when* and
// *whether* waiters are woken: resolution stores the reply and publishes
// `state` (release); the futex wake is issued only for slots a waiter
// actually registered on, and in persistent mode it is further deferred
// until the whole batch is resolved. A client whose window of requests
// was fused into one launch then wakes exactly once and finds every
// ticket already ready, instead of being woken mid-batch and re-blocking
// on each subsequent ticket — on a host that time-shares clients and
// workers, those saved sleep/wake pairs are the difference between a
// launch-bound and a scheduler-bound service.
//
// Extracted from service.hpp and generified over the payload so the
// conc:: model checker (scripts/check.sh config 9) can drive this exact
// resolver/waiter protocol with small payloads: the no-lost-wake
// property and its mutants in tests/test_conc.cpp run *this* code.
#pragma once

#include <cstdint>
#include <utility>

#include "conc/shim.hpp"
#include "serve/futex.hpp"

namespace batchlin::serve::detail {

/// Slot states. A slot starts `pending`; a blocking waiter CAS-es it to
/// `pending_waiting` before sleeping on the futex; the resolver exchanges
/// it to `ready` and wakes only if the old value carried the waiter bit.
/// A resolution that nobody is sleeping on therefore costs one exchange
/// and zero syscalls — the common case when a client's window of requests
/// was fused into one batch and the client is asleep on the *first*
/// ticket while the rest resolve.
inline constexpr std::uint32_t slot_pending = 0;
inline constexpr std::uint32_t slot_ready = 1;
inline constexpr std::uint32_t slot_pending_waiting = 2;

/// Completion slot one ticket waits on; `Payload` is the reply type.
template <typename Payload>
struct reply_slot {
    conc::atomic<std::uint32_t> state{slot_pending};
    Payload reply{};

    /// Stores the reply ahead of `resolve()`. The payload itself is
    /// plain data — the release on `state` is what publishes it — so the
    /// store is hooked into the race detector.
    void store_reply(Payload&& value)
    {
        conc::plain_write(static_cast<const void*>(&reply));
        reply = std::move(value);
    }

    /// Publishes the reply already stored via `store_reply`. Returns the
    /// futex word to wake if a waiter registered before resolution, else
    /// null; the caller wakes it immediately or defers to a batch sweep.
    conc::atomic<std::uint32_t>* resolve()
    {
        const std::uint32_t old =
            state.exchange(slot_ready, std::memory_order_acq_rel);
        return old == slot_pending_waiting ? &state : nullptr;
    }

    /// Blocks until resolved and moves the payload out (the ticket-side
    /// half of the protocol). `spin` bounds the pre-park spin: under load
    /// the resolving batch is usually mid-flight, and catching the
    /// release store here skips a futex sleep/wake pair. Deliberately no
    /// sched_yield in the spin — on a loaded host each yield is a
    /// scheduler round-trip, and a chain of them per get() turns a
    /// batching service scheduler-bound. Under the model checker the
    /// spin is skipped: it cannot make progress in a controlled schedule.
    Payload wait_and_take(int spin = 64)
    {
        std::uint32_t r = state.load(std::memory_order_acquire);
        const int spin_max = conc::active() ? 0 : spin;
        for (int i = 0; r == slot_pending && i < spin_max; ++i) {
            r = state.load(std::memory_order_acquire);
        }
        while (r != slot_ready) {
            // Register as a waiter so the resolver knows to issue a wake,
            // then park. The CAS failing with `ready` means resolution
            // beat the registration; failing with `pending_waiting`
            // means a spurious futex return left our registration in
            // place — park again.
            std::uint32_t expected = slot_pending;
            state.compare_exchange_strong(expected, slot_pending_waiting,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
            if (expected == slot_ready) {
                break;
            }
            // Qualified: ADL on conc::atomic would also find the conc::
            // shim overload in the checked build.
            detail::futex_wait(state, slot_pending_waiting);
            r = state.load(std::memory_order_acquire);
        }
        conc::plain_write(static_cast<const void*>(&reply));
        return std::move(reply);
    }
};

}  // namespace batchlin::serve::detail
