# Empty compiler generated dependencies file for bench_abl_precond.
# This may be replaced when dependencies are built.
