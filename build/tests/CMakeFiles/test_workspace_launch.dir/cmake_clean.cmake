file(REMOVE_RECURSE
  "CMakeFiles/test_workspace_launch.dir/test_workspace_launch.cpp.o"
  "CMakeFiles/test_workspace_launch.dir/test_workspace_launch.cpp.o.d"
  "test_workspace_launch"
  "test_workspace_launch.pdb"
  "test_workspace_launch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workspace_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
