// Tuned batched SpMV device kernels, one per matrix format (paper §3.2).
//
//  * BatchCsr uses the sub-group-to-row mapping: a sub-group cooperates on
//    one row and combines partials with sub-group (sub-warp) reductions —
//    good for general patterns with row-length variation.
//  * BatchEll maps one work-item to one row; the column-major padded layout
//    makes the accesses coalesced and no inter-thread reduction is needed.
//  * BatchDense maps one work-item to one row of the dense block.
//
// All kernels charge flops and per-space traffic: the shared pattern arrays
// (row pointers / column indexes) are read-only and shared between ALL
// work-groups, so they are charged as constant (L3-cacheable) traffic; the
// value arrays carry their own space tag (constant for the system matrix,
// SLM when applying SLM-resident preconditioner factors).
#pragma once

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "xpu/group.hpp"

namespace batchlin::blas {

/// Indexed gathers (x[col_idxs[k]]) are charged at memory-transaction
/// granularity rather than element granularity: the lanes of a sub-group
/// hit scattered addresses, so each access moves a whole SLM bank line /
/// cache transaction. This is what Intel Advisor counts, and it is the
/// reason the batched solvers are SLM-traffic-dominated in the paper's
/// Fig. 8 (≈3 TB through SLM for dodecane_lu at 2^17).
inline constexpr double gather_transaction_bytes = 32.0;

namespace detail {

/// Charges `count` gathered element reads of `s` at transaction size.
template <typename T>
void charge_gather(xpu::group& g, const dspan<T>& s, double count)
{
    const double bytes = count * gather_transaction_bytes;
    switch (s.space) {
    case mem_space::slm:
        g.stats().slm_bytes += bytes;
        break;
    case mem_space::constant:
        g.stats().constant_read_bytes += bytes;
        break;
    case mem_space::global:
        g.stats().global_read_bytes += bytes;
        break;
    }
}

}  // namespace detail

/// y = A x for one CSR batch item (sub-group-per-row mapping). S is the
/// storage type of the values (float under fp32 storage): each value
/// widens to T on read, so the arithmetic — and the result — stays in
/// compute precision while the streamed value bytes shrink. The traffic
/// charge below is storage-honest automatically: charge_read sizes by the
/// span's element type.
template <typename T, typename S>
void spmv(xpu::group& g, const csr_view<T, S>& a, dspan<const T> x,
          dspan<T> y)
{
    // Lane-occupancy of the sub-group-per-row mapping: every row is
    // processed by a full sub-group, so rows shorter than the sub-group
    // leave lanes idle (the inefficiency that motivates BatchEll's
    // item-per-row mapping for few-nnz rows, §3.2). The idle lanes still
    // issue the FMA slots, which the flop charge reflects.
    const index_type sg = g.sub_group_size();
    double issued_slots = 0.0;
    g.for_items(a.rows, [&](index_type row) {
        T sum{};
        for (index_type k = a.row_ptrs[row]; k < a.row_ptrs[row + 1]; ++k) {
            sum += a.values[k] * x[a.col_idxs[k]];
        }
        y[row] = sum;
        issued_slots += round_up(a.row_ptrs[row + 1] - a.row_ptrs[row], sg);
    });
    g.stats().flops += 2.0 * issued_slots;
    // Pattern traffic: row pointers + column indexes, shared by all groups.
    g.stats().constant_read_bytes +=
        static_cast<double>(a.rows + 1 + a.nnz) * sizeof(index_type);
    detail::charge_read(g, a.values, a.nnz);
    detail::charge_gather(g, x, a.nnz);  // gathered x reads, one per nnz
    detail::charge_write(g, y, a.rows);
    // Sub-group-per-row combines partials with shuffles: no SLM traffic,
    // but one extra reduction step per row.
    g.stats().flops += static_cast<double>(a.rows);
}

/// y = A x for one ELL batch item (work-item-per-row mapping; padded slots
/// multiply by zero exactly as the hardware kernel does).
template <typename T, typename S>
void spmv(xpu::group& g, const ell_view<T, S>& a, dspan<const T> x,
          dspan<T> y)
{
    g.for_items(a.rows, [&](index_type row) {
        T sum{};
        for (index_type k = 0; k < a.width; ++k) {
            const index_type col = a.col_idxs[k * a.rows + row];
            if (col != mat::ell_padding) {
                sum += a.values[k * a.rows + row] * x[col];
            }
        }
        y[row] = sum;
    });
    const double stored = static_cast<double>(a.rows) * a.width;
    g.stats().flops += 2.0 * stored;  // padding lanes still issue FMAs
    g.stats().constant_read_bytes += stored * sizeof(index_type);
    detail::charge_read(g, a.values, static_cast<index_type>(stored));
    detail::charge_gather(g, x, stored);
    detail::charge_write(g, y, a.rows);
}

/// y = A x for one dense batch item (work-item-per-row mapping).
template <typename T, typename S>
void spmv(xpu::group& g, const dense_view<T, S>& a, dspan<const T> x,
          dspan<T> y)
{
    g.for_items(a.rows, [&](index_type row) {
        T sum{};
        for (index_type col = 0; col < a.cols; ++col) {
            sum += a.values[row * a.cols + col] * x[col];
        }
        y[row] = sum;
    });
    const double entries = static_cast<double>(a.rows) * a.cols;
    g.stats().flops += 2.0 * entries;
    detail::charge_read(g, a.values, static_cast<index_type>(entries));
    detail::charge_read(g, x, static_cast<index_type>(entries));
    detail::charge_write(g, y, a.rows);
}

/// y = alpha * A x + beta * y, fused form used by the residual updates.
template <typename View, typename T>
void advanced_spmv(xpu::group& g, T alpha, const View& a, dspan<const T> x,
                   T beta, dspan<T> y, dspan<T> scratch)
{
    spmv(g, a, x, scratch);
    // Implicit view-of-const conversion (not a re-aggregation) so the
    // sanitizer tag of an instrumented scratch span stays attached.
    axpby<T>(g, alpha, scratch, beta, y);
}

}  // namespace batchlin::blas
