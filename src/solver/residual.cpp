#include "solver/residual.hpp"

#include <cmath>

#include "util/error.hpp"

namespace batchlin::solver {

namespace {

template <typename T, typename MatBatch>
void accumulate_residuals(const MatBatch& a, const mat::batch_dense<T>& b,
                          const mat::batch_dense<T>& x,
                          std::vector<double>& out);

template <typename T>
void accumulate_residuals(const mat::batch_csr<T>& a,
                          const mat::batch_dense<T>& b,
                          const mat::batch_dense<T>& x,
                          std::vector<double>& out)
{
    const bool compressed =
        a.storage_mode() == mat::storage_precision::fp32;
#pragma omp parallel for schedule(static)
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        const T* vals = compressed ? nullptr : a.item_values(item);
        const float* vals32 =
            compressed ? a.item_values_fp32(item) : nullptr;
        double sq = 0.0;
        for (index_type i = 0; i < a.rows(); ++i) {
            double r = static_cast<double>(b.at(item, i, 0));
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                const double v = compressed
                                     ? static_cast<double>(vals32[k])
                                     : static_cast<double>(vals[k]);
                r -= v * static_cast<double>(x.at(item, a.col_idxs()[k], 0));
            }
            sq += r * r;
        }
        out[item] = std::sqrt(sq);
    }
}

template <typename T>
void accumulate_residuals(const mat::batch_ell<T>& a,
                          const mat::batch_dense<T>& b,
                          const mat::batch_dense<T>& x,
                          std::vector<double>& out)
{
#pragma omp parallel for schedule(static)
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        double sq = 0.0;
        for (index_type i = 0; i < a.rows(); ++i) {
            double r = static_cast<double>(b.at(item, i, 0));
            for (index_type k = 0; k < a.ell_width(); ++k) {
                const index_type col = a.col_at(i, k);
                if (col != mat::ell_padding) {
                    r -= static_cast<double>(a.val_at(item, i, k)) *
                         static_cast<double>(x.at(item, col, 0));
                }
            }
            sq += r * r;
        }
        out[item] = std::sqrt(sq);
    }
}

template <typename T>
void accumulate_residuals(const mat::batch_dense<T>& a,
                          const mat::batch_dense<T>& b,
                          const mat::batch_dense<T>& x,
                          std::vector<double>& out)
{
#pragma omp parallel for schedule(static)
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        double sq = 0.0;
        for (index_type i = 0; i < a.rows(); ++i) {
            double r = static_cast<double>(b.at(item, i, 0));
            for (index_type j = 0; j < a.cols(); ++j) {
                r -= static_cast<double>(a.at(item, i, j)) *
                     static_cast<double>(x.at(item, j, 0));
            }
            sq += r * r;
        }
        out[item] = std::sqrt(sq);
    }
}

}  // namespace

template <typename T>
std::vector<double> residual_norms(const batch_matrix<T>& a,
                                   const mat::batch_dense<T>& b,
                                   const mat::batch_dense<T>& x)
{
    const index_type items =
        std::visit([](const auto& m) { return m.num_batch_items(); }, a);
    BATCHLIN_ENSURE_DIMS(b.num_batch_items() == items &&
                             x.num_batch_items() == items,
                         "batch sizes must match");
    std::vector<double> out(items, 0.0);
    std::visit([&](const auto& m) { accumulate_residuals(m, b, x, out); },
               a);
    return out;
}

template <typename T>
std::vector<double> relative_residual_norms(const batch_matrix<T>& a,
                                            const mat::batch_dense<T>& b,
                                            const mat::batch_dense<T>& x)
{
    std::vector<double> res = residual_norms(a, b, x);
    for (index_type item = 0;
         item < static_cast<index_type>(res.size()); ++item) {
        double bnorm = 0.0;
        for (index_type i = 0; i < b.rows(); ++i) {
            const double v = static_cast<double>(b.at(item, i, 0));
            bnorm += v * v;
        }
        bnorm = std::sqrt(bnorm);
        if (bnorm > 0.0) {
            res[item] /= bnorm;
        }
    }
    return res;
}

#define BATCHLIN_INSTANTIATE_RESIDUAL(T)                                   \
    template std::vector<double> residual_norms<T>(                        \
        const batch_matrix<T>&, const mat::batch_dense<T>&,                \
        const mat::batch_dense<T>&);                                       \
    template std::vector<double> relative_residual_norms<T>(               \
        const batch_matrix<T>&, const mat::batch_dense<T>&,                \
        const mat::batch_dense<T>&)

BATCHLIN_INSTANTIATE_RESIDUAL(float);
BATCHLIN_INSTANTIATE_RESIDUAL(double);

}  // namespace batchlin::solver
