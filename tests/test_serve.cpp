// Tests for serve::solve_service and the coalesced-assembly path behind
// it: bit-identical equivalence with solo solves across worker counts and
// batching windows, deadline expiry, admission control (reject and block),
// coalescing behavior, drain/stop semantics, and statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "batchlin/batchlin.hpp"
#include "serve/ring.hpp"

namespace bl = batchlin;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace serve = batchlin::serve;
namespace work = batchlin::work;
namespace stop = batchlin::stop;
using bl::index_type;
using std::chrono::microseconds;
using std::chrono::milliseconds;

namespace {

solver::solve_options cg_opts()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = bl::precond::type::jacobi;
    opts.criterion = stop::relative(1e-8, 100);
    return opts;
}

solver::solve_options bicgstab_opts()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = bl::precond::type::none;
    opts.criterion = stop::relative(1e-7, 120);
    return opts;
}

/// True when BATCHLIN_LAUNCH_MODE sweeps the suite into persistent mode,
/// which has no batching windows: tests asserting window semantics skip.
bool persistent_mode_env()
{
    const char* env = std::getenv("BATCHLIN_LAUNCH_MODE");
    return env != nullptr && std::string(env) == "persistent";
}

template <typename T>
serve::solve_request<T> make_request(mat::batch_csr<T> a,
                                     const solver::solve_options& opts,
                                     std::uint64_t rhs_seed)
{
    serve::solve_request<T> req;
    const index_type items = a.num_batch_items();
    const index_type rows = a.rows();
    req.b = work::random_rhs<T>(items, rows, rhs_seed);
    req.x = mat::batch_dense<T>(items, rows, 1);
    req.a = std::move(a);
    req.opts = opts;
    return req;
}

}  // namespace

TEST(Assemble, CanCoalesceRequiresMatchingPattern)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(2, 16, 1);
    const solver::batch_matrix<double> same_pattern =
        work::stencil_3pt<double>(5, 16, 99);
    const solver::batch_matrix<double> other_rows =
        work::stencil_3pt<double>(2, 24, 1);
    const solver::batch_matrix<double> other_pattern =
        work::stencil_banded<double>(2, 16, 2, 1);
    EXPECT_TRUE(solver::can_coalesce(a, same_pattern));
    EXPECT_FALSE(solver::can_coalesce(a, other_rows));
    EXPECT_FALSE(solver::can_coalesce(a, other_pattern));
    EXPECT_FALSE(
        solver::can_coalesce(a, solver::batch_matrix<double>(
                                    mat::to_ell(std::get<mat::batch_csr<
                                                    double>>(a)))));
}

TEST(Assemble, CoalescedSolveMatchesSoloSolveBitwise)
{
    // Three requests over one pattern, different values and sizes.
    std::vector<mat::batch_csr<double>> as;
    as.push_back(work::stencil_3pt<double>(3, 20, 11));
    as.push_back(work::stencil_3pt<double>(1, 20, 12));
    as.push_back(work::stencil_3pt<double>(4, 20, 13));
    const auto opts = cg_opts();

    std::vector<mat::batch_dense<double>> bs;
    std::vector<mat::batch_dense<double>> solo_x;
    std::vector<bl::log::batch_log> solo_logs;
    for (std::size_t i = 0; i < as.size(); ++i) {
        bs.push_back(work::random_rhs<double>(as[i].num_batch_items(), 20,
                                              100 + i));
        solo_x.emplace_back(as[i].num_batch_items(), 20, 1);
        bl::xpu::queue q(bl::xpu::make_sycl_policy());
        const solver::batch_matrix<double> a = as[i];
        solo_logs.push_back(
            solver::solve(q, a, bs[i], solo_x[i], opts).log);
    }

    std::vector<solver::batch_matrix<double>> variants(as.begin(),
                                                       as.end());
    std::vector<mat::batch_dense<double>> fused_x;
    for (const auto& a : as) {
        fused_x.emplace_back(a.num_batch_items(), 20, 1);
    }
    std::vector<solver::assembly_part<double>> parts;
    for (std::size_t i = 0; i < as.size(); ++i) {
        parts.push_back({&variants[i], &bs[i], &fused_x[i]});
    }
    bl::xpu::queue q(bl::xpu::make_sycl_policy());
    const solver::solve_result combined =
        solver::solve_coalesced<double>(q, parts, opts);
    EXPECT_EQ(combined.log.num_systems(), 8);

    index_type offset = 0;
    for (std::size_t i = 0; i < as.size(); ++i) {
        const index_type items = as[i].num_batch_items();
        EXPECT_EQ(fused_x[i].values(), solo_x[i].values()) << "part " << i;
        const bl::log::batch_log part =
            solver::split_log(combined.log, offset, items);
        EXPECT_EQ(part.all_iterations(), solo_logs[i].all_iterations());
        EXPECT_EQ(part.all_residual_norms(),
                  solo_logs[i].all_residual_norms());
        offset += items;
    }
}

TEST(Assemble, MixedPatternPartsAreRejected)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(2, 16, 1);
    const solver::batch_matrix<double> c =
        work::stencil_3pt<double>(2, 24, 2);
    const auto b16 = work::random_rhs<double>(2, 16, 3);
    const auto b24 = work::random_rhs<double>(2, 24, 4);
    mat::batch_dense<double> x16(2, 16, 1);
    mat::batch_dense<double> x24(2, 24, 1);
    std::vector<solver::assembly_part<double>> parts{{&a, &b16, &x16},
                                                     {&c, &b24, &x24}};
    bl::xpu::queue q(bl::xpu::make_sycl_policy());
    EXPECT_THROW(solver::solve_coalesced<double>(q, parts, cg_opts()),
                 bl::error);
}

// The tentpole correctness property: routing requests through the service
// produces bit-identical solutions and identical convergence records to
// solo solves, for every worker count, batching window, and spill-zeroing
// mode. This also pins down that skipping the spill zero-fill (the serve
// hot-path default) cannot change results.
TEST(Serve, RepliesBitIdenticalToSoloSolvesAcrossConfigs)
{
    struct spec {
        index_type items;
        index_type rows;
        solver::solve_options opts;
        std::uint64_t seed;
    };
    std::vector<spec> specs;
    specs.push_back({3, 24, cg_opts(), 21});
    specs.push_back({1, 24, cg_opts(), 22});  // coalesces with the first
    specs.push_back({2, 32, bicgstab_opts(), 23});
    specs.push_back({2, 24, cg_opts(), 24});

    // Reference: solo solves on a fresh queue each.
    std::vector<mat::batch_dense<double>> want_x;
    std::vector<bl::log::batch_log> want_log;
    for (const spec& s : specs) {
        auto a = work::stencil_3pt<double>(s.items, s.rows, s.seed);
        const auto b =
            work::random_rhs<double>(s.items, s.rows, s.seed + 1000);
        mat::batch_dense<double> x(s.items, s.rows, 1);
        bl::xpu::queue q(bl::xpu::make_sycl_policy());
        const solver::batch_matrix<double> variant = a;
        want_log.push_back(solver::solve(q, variant, b, x, s.opts).log);
        want_x.push_back(std::move(x));
    }

    for (const int workers : {1, 3}) {
        for (const long wait_us : {0L, 2000L}) {
            for (const bool skip_zeroing : {true, false}) {
                serve::service_config cfg;
                cfg.workers = workers;
                cfg.max_batch = 8;
                cfg.max_wait = microseconds(wait_us);
                cfg.skip_spill_zeroing = skip_zeroing;
                serve::solve_service service(bl::xpu::make_sycl_policy(),
                                             cfg);
                std::vector<serve::solve_service::ticket<double>> tickets;
                for (const spec& s : specs) {
                    tickets.push_back(service.submit(make_request(
                        work::stencil_3pt<double>(s.items, s.rows, s.seed),
                        s.opts, s.seed + 1000)));
                }
                for (std::size_t i = 0; i < specs.size(); ++i) {
                    serve::solve_reply<double> reply = tickets[i].get();
                    ASSERT_EQ(reply.status, serve::request_status::ok)
                        << reply.error;
                    EXPECT_EQ(reply.x.values(), want_x[i].values())
                        << "workers=" << workers << " wait=" << wait_us
                        << " skip=" << skip_zeroing << " req=" << i;
                    EXPECT_EQ(reply.log.all_iterations(),
                              want_log[i].all_iterations());
                    EXPECT_EQ(reply.log.all_residual_norms(),
                              want_log[i].all_residual_norms());
                    EXPECT_GE(reply.fused_systems, specs[i].items);
                }
            }
        }
    }
}

TEST(Serve, FloatRequestsAreServedAndKeptApartFromDouble)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(50);
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    solver::solve_options fopts;
    fopts.solver = solver::solver_type::cg;
    fopts.preconditioner = bl::precond::type::jacobi;
    fopts.criterion = stop::relative(1e-4, 100);

    auto fticket = service.submit(make_request(
        work::stencil_3pt<float>(2, 16, 31), fopts, 77));
    auto dticket = service.submit(
        make_request(work::stencil_3pt<double>(2, 16, 31), cg_opts(), 77));
    const auto freply = fticket.get();
    const auto dreply = dticket.get();
    ASSERT_EQ(freply.status, serve::request_status::ok) << freply.error;
    ASSERT_EQ(dreply.status, serve::request_status::ok) << dreply.error;
    // Different precisions never share a fused launch.
    EXPECT_EQ(freply.fused_systems, 2);
    EXPECT_EQ(dreply.fused_systems, 2);
    EXPECT_EQ(freply.log.num_converged(), 2);
    EXPECT_EQ(dreply.log.num_converged(), 2);
}

TEST(Serve, CompatibleRequestsCoalesceIntoOneLaunch)
{
    if (persistent_mode_env()) {
        GTEST_SKIP() << "persistent mode has no batching windows";
    }
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_batch = 16;
    cfg.max_wait = milliseconds(500);  // generous window: all 5 must fuse
    cfg.idle_flush = microseconds(0);  // hold the window even when idle
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    std::vector<serve::solve_service::ticket<double>> tickets;
    for (int i = 0; i < 5; ++i) {
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(1, 16, 41), cg_opts(),
                         200 + static_cast<std::uint64_t>(i))));
    }
    for (auto& t : tickets) {
        const auto reply = t.get();
        ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
        EXPECT_EQ(reply.fused_systems, 5);
    }
    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.submitted_requests, 5u);
    EXPECT_EQ(s.completed_requests, 5u);
    EXPECT_EQ(s.completed_systems, 5u);
    EXPECT_EQ(s.batches_launched, 1u);
    ASSERT_GT(s.batch_size_histogram.size(), 5u);
    EXPECT_EQ(s.batch_size_histogram[5], 1u);
    EXPECT_DOUBLE_EQ(s.mean_batch_size, 5.0);
    EXPECT_GT(s.p50_latency_seconds, 0.0);
    EXPECT_GE(s.p99_latency_seconds, s.p50_latency_seconds);
}

TEST(Serve, ExpiredRequestsAreNeverSolved)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(100);
    cfg.idle_flush = microseconds(0);  // the leader must hold its window
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    // A leader with a long window delays the doomed request past its
    // deadline; the worker must expire it without solving.
    auto leader = service.submit(
        make_request(work::stencil_3pt<double>(1, 16, 51), cg_opts(), 301));
    auto doomed_req = make_request(work::stencil_3pt<double>(1, 24, 52),
                                   cg_opts(), 302);
    doomed_req.deadline = microseconds(1);
    std::this_thread::sleep_for(milliseconds(5));
    auto doomed = service.submit(std::move(doomed_req));

    const auto doomed_reply = doomed.get();
    EXPECT_EQ(doomed_reply.status, serve::request_status::expired);
    EXPECT_TRUE(doomed_reply.log.all_iterations().empty());
    // The initial guess comes back untouched.
    for (const double v : doomed_reply.x.values()) {
        EXPECT_EQ(v, 0.0);
    }
    const auto leader_reply = leader.get();
    EXPECT_EQ(leader_reply.status, serve::request_status::ok);
    service.drain();
    EXPECT_EQ(service.stats().expired_requests, 1u);
}

TEST(Serve, AlreadyExpiredDeadlineIsRefusedAtAdmission)
{
    // Deadline checkpoint 1: a caller computing a relative deadline from
    // a stale clock can submit one that is already negative. It must
    // resolve `expired` at admission — before routing, before the queue —
    // and never be read as "no deadline" (the zero sentinel next door).
    serve::service_config cfg;
    cfg.workers = 1;
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    auto stale_req = make_request(work::stencil_3pt<double>(2, 16, 53),
                                  cg_opts(), 303);
    stale_req.deadline = microseconds(-1);
    const auto stale_reply = service.submit(std::move(stale_req)).get();
    EXPECT_EQ(stale_reply.status, serve::request_status::expired);
    EXPECT_TRUE(stale_reply.log.all_iterations().empty());
    for (const double v : stale_reply.x.values()) {
        EXPECT_EQ(v, 0.0);
    }
    // The zero default still means "no deadline", not "expired now".
    const auto ok_reply =
        service
            .submit(make_request(work::stencil_3pt<double>(2, 16, 53),
                                 cg_opts(), 303))
            .get();
    EXPECT_EQ(ok_reply.status, serve::request_status::ok);
    service.drain();
    const auto s = service.stats();
    EXPECT_EQ(s.expired_requests, 1u);
    EXPECT_EQ(s.completed_requests, 1u);
    // The admission refusal was accounted before routing: no shard saw it.
    std::uint64_t routed = 0;
    for (const auto& ss : s.shards) {
        routed += ss.routed_requests;
    }
    EXPECT_EQ(routed, 1u);
}

TEST(Serve, BoundedQueueRejectsWhenFull)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_batch = 1;
    cfg.max_wait = milliseconds(0);
    cfg.max_queue_systems = 2;
    cfg.on_full = serve::overflow_policy::reject;
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    // Keep submitting until admission control trips: the single worker
    // cannot drain a fast submitter forever with a bound of 2 systems.
    bool saw_rejection = false;
    std::vector<serve::solve_service::ticket<double>> tickets;
    for (int i = 0; i < 200 && !saw_rejection; ++i) {
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(2, 48, 61), cg_opts(),
                         400 + static_cast<std::uint64_t>(i))));
        saw_rejection = service.stats().rejected_requests > 0;
    }
    std::uint64_t rejected = 0;
    for (auto& t : tickets) {
        const auto reply = t.get();
        if (reply.status == serve::request_status::rejected) {
            ++rejected;
            EXPECT_TRUE(reply.log.all_iterations().empty());
        } else {
            EXPECT_EQ(reply.status, serve::request_status::ok);
        }
    }
    EXPECT_TRUE(saw_rejection);
    EXPECT_EQ(service.stats().rejected_requests, rejected);
    // A too-large single request can never be admitted.
    auto huge = service.submit(
        make_request(work::stencil_3pt<double>(3, 16, 62), cg_opts(), 500));
    EXPECT_EQ(huge.get().status, serve::request_status::rejected);
}

TEST(Serve, BlockPolicyWaitsForSpaceInsteadOfRejecting)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_batch = 1;
    cfg.max_wait = milliseconds(0);
    cfg.max_queue_systems = 1;
    cfg.on_full = serve::overflow_policy::block;
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    std::vector<serve::solve_service::ticket<double>> tickets;
    for (int i = 0; i < 20; ++i) {
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(1, 16, 71), cg_opts(),
                         600 + static_cast<std::uint64_t>(i))));
    }
    for (auto& t : tickets) {
        EXPECT_EQ(t.get().status, serve::request_status::ok);
    }
    // Replies are fulfilled before the stats commit; quiesce the workers
    // so the counters below are final.
    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.rejected_requests, 0u);
    EXPECT_EQ(s.completed_requests, 20u);
}

TEST(Serve, StopDrainsQueuedWorkAndRejectsLateSubmits)
{
    serve::service_config cfg;
    cfg.workers = 2;
    cfg.max_wait = milliseconds(20);
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    std::vector<serve::solve_service::ticket<double>> tickets;
    for (int i = 0; i < 6; ++i) {
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(1, 16, 81), cg_opts(),
                         700 + static_cast<std::uint64_t>(i))));
    }
    service.stop();
    EXPECT_FALSE(service.accepting());
    // Everything admitted before stop() still gets solved.
    for (auto& t : tickets) {
        EXPECT_EQ(t.get().status, serve::request_status::ok);
    }
    auto late = service.submit(
        make_request(work::stencil_3pt<double>(1, 16, 82), cg_opts(), 800));
    EXPECT_EQ(late.get().status, serve::request_status::rejected);
    service.stop();  // idempotent
}

TEST(Serve, MalformedRequestsThrowAtSubmit)
{
    serve::solve_service service(bl::xpu::make_sycl_policy(), {});
    // Mismatched right-hand-side batch size.
    serve::solve_request<double> bad;
    bad.a = work::stencil_3pt<double>(2, 16, 91);
    bad.b = work::random_rhs<double>(3, 16, 92);
    bad.x = mat::batch_dense<double>(2, 16, 1);
    bad.opts = cg_opts();
    EXPECT_THROW(service.submit(std::move(bad)), bl::error);
    // record_history cannot be scattered per request.
    auto hist = make_request(work::stencil_3pt<double>(2, 16, 93),
                             cg_opts(), 94);
    hist.opts.record_history = true;
    EXPECT_THROW(service.submit(std::move(hist)), bl::error);
}

TEST(Serve, StatsTrackSubmittedAndQueueDepth)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(0);
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);
    const auto idle = service.stats();
    EXPECT_EQ(idle.submitted_requests, 0u);
    EXPECT_EQ(idle.queue_depth_requests, 0u);
    EXPECT_EQ(idle.solves_per_sec, 0.0);

    auto t = service.submit(make_request(
        work::stencil_3pt<double>(4, 16, 95), cg_opts(), 96));
    ASSERT_EQ(t.get().status, serve::request_status::ok);
    service.drain();
    const auto after = service.stats();
    EXPECT_EQ(after.submitted_requests, 1u);
    EXPECT_EQ(after.submitted_systems, 4u);
    EXPECT_EQ(after.completed_systems, 4u);
    EXPECT_EQ(after.queue_depth_requests, 0u);
    EXPECT_EQ(after.queue_depth_systems, 0u);
    EXPECT_GT(after.solves_per_sec, 0.0);
    EXPECT_GT(after.uptime_seconds, 0.0);
}

// ---------------------------------------------------------------------
// Serve-layer resilience: structured failure of throwing solves, launch
// fault retry with backoff, degradation to solo solves, and the circuit
// breaker that suspends coalescing under a fault storm.
// ---------------------------------------------------------------------

namespace {

/// A policy whose worker queue rejects the kernel launches listed in
/// `faulted_launches` (0-based per-worker launch counter).
bl::xpu::exec_policy faulted_policy(
    const std::vector<std::uint64_t>& faulted_launches)
{
    bl::xpu::exec_policy policy = bl::xpu::make_sycl_policy();
    for (const std::uint64_t launch : faulted_launches) {
        policy.faults.events.push_back(
            {bl::xpu::fault_kind::launch_fail, launch, 0, 1,
             bl::xpu::fault_target::slm, bl::xpu::poison_mode::nan});
    }
    return policy;
}

}  // namespace

TEST(ServeResilience, ThrowingSolveFailsTicketNotService)
{
    // ILU + ELL passes submit's shape validation but throws
    // unsupported_combination inside the worker's solve: the ticket must
    // resolve `failed` with the message, and the worker must survive to
    // serve the next (healthy) request.
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(0);
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    serve::solve_request<double> poisoned;
    poisoned.a = mat::to_ell(work::stencil_3pt<double>(2, 16, 61));
    poisoned.b = work::random_rhs<double>(2, 16, 62);
    poisoned.x = mat::batch_dense<double>(2, 16, 1);
    poisoned.opts = cg_opts();
    poisoned.opts.preconditioner = bl::precond::type::ilu;
    auto doomed = service.submit(std::move(poisoned));

    const auto failed_reply = doomed.get();
    EXPECT_EQ(failed_reply.status, serve::request_status::failed);
    EXPECT_NE(failed_reply.error.find("BatchIlu"), std::string::npos)
        << failed_reply.error;
    // The request's storage comes back even on failure.
    EXPECT_EQ(failed_reply.b.num_batch_items(), 2);

    auto healthy = service.submit(make_request(
        work::stencil_3pt<double>(2, 16, 63), cg_opts(), 64));
    const auto ok_reply = healthy.get();
    ASSERT_EQ(ok_reply.status, serve::request_status::ok) << ok_reply.error;
    EXPECT_EQ(ok_reply.attempts, 1);
    EXPECT_EQ(ok_reply.log.num_converged(), 2);

    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.failed_requests, 1u);
    EXPECT_EQ(s.completed_requests, 1u);
    // A thrown std::exception is not a device fault; no retry happened.
    EXPECT_EQ(s.launch_faults, 0u);
    EXPECT_EQ(s.launch_retries, 0u);
}

TEST(ServeResilience, TransientLaunchFaultIsRetriedToSuccess)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(0);
    cfg.launch_retries = 2;
    cfg.retry_backoff = microseconds(1);
    serve::solve_service service(faulted_policy({0}), cfg);

    auto ticket = service.submit(make_request(
        work::stencil_3pt<double>(3, 16, 71), cg_opts(), 72));
    const auto reply = ticket.get();
    ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
    EXPECT_EQ(reply.attempts, 2);
    EXPECT_EQ(reply.log.num_converged(), 3);

    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.launch_faults, 1u);
    EXPECT_EQ(s.launch_retries, 1u);
    EXPECT_EQ(s.recovered_requests, 1u);
    EXPECT_EQ(s.degraded_launches, 0u);
    EXPECT_EQ(s.failed_requests, 0u);
    EXPECT_EQ(s.completed_requests, 1u);
}

TEST(ServeResilience, ExhaustedRetriesDegradeToSoloSolves)
{
    serve::service_config cfg;
    cfg.workers = 1;
    // max_batch 2 cuts the window short the moment both requests are in.
    cfg.max_batch = 2;
    cfg.max_wait = milliseconds(500);
    cfg.idle_flush = microseconds(0);  // both requests must fuse
    cfg.launch_retries = 2;
    cfg.retry_backoff = microseconds(1);
    // Launches 0..2 (the fused attempt and both retries) fail; the solo
    // re-solves land on later, clean launch ids.
    serve::solve_service service(faulted_policy({0, 1, 2}), cfg);

    auto t1 = service.submit(make_request(
        work::stencil_3pt<double>(1, 16, 73), cg_opts(), 74));
    auto t2 = service.submit(make_request(
        work::stencil_3pt<double>(1, 16, 73), cg_opts(), 75));
    const auto r1 = t1.get();
    const auto r2 = t2.get();
    ASSERT_EQ(r1.status, serve::request_status::ok) << r1.error;
    ASSERT_EQ(r2.status, serve::request_status::ok) << r2.error;
    EXPECT_GT(r1.attempts, 1);

    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.launch_faults, 3u);
    EXPECT_EQ(s.degraded_launches, 1u);
    EXPECT_GE(s.recovered_requests, 1u);
    EXPECT_EQ(s.failed_requests, 0u);
    EXPECT_EQ(s.completed_requests, 2u);
}

TEST(ServeResilience, PersistentFaultFailsWithStructuredError)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(0);
    cfg.launch_retries = 1;
    cfg.retry_backoff = microseconds(1);
    std::vector<std::uint64_t> storm;
    for (std::uint64_t launch = 0; launch < 10; ++launch) {
        storm.push_back(launch);
    }
    serve::solve_service service(faulted_policy(storm), cfg);

    auto ticket = service.submit(make_request(
        work::stencil_3pt<double>(2, 16, 76), cg_opts(), 77));
    const auto reply = ticket.get();
    EXPECT_EQ(reply.status, serve::request_status::failed);
    // Fused: attempts 1+1, then solo: 1+1 more — four in total, spelled
    // out in the structured error message.
    EXPECT_EQ(reply.attempts, 4);
    EXPECT_NE(reply.error.find("device fault persisted through 4"),
              std::string::npos)
        << reply.error;
    EXPECT_NE(reply.error.find("launch_fail"), std::string::npos)
        << reply.error;

    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.launch_faults, 4u);
    EXPECT_EQ(s.launch_retries, 2u);
    EXPECT_EQ(s.degraded_launches, 1u);
    EXPECT_EQ(s.failed_requests, 1u);
    EXPECT_EQ(s.recovered_requests, 0u);
    EXPECT_EQ(s.completed_requests, 0u);
}

TEST(ServeResilience, FaultStormTripsTheBreakerAndSuspendsCoalescing)
{
    serve::service_config cfg;
    cfg.workers = 1;
    // Small enough to keep the storm phase fast, large enough that two
    // compatible requests would reliably fuse were the breaker closed
    // (max_batch 2 cuts the window short once both are queued).
    cfg.max_batch = 2;
    cfg.max_wait = milliseconds(100);
    cfg.launch_retries = 0;
    cfg.retry_backoff = microseconds(1);
    cfg.breaker_window = 4;
    cfg.breaker_fault_ratio = 0.5;
    cfg.breaker_cooldown = 16;
    // Every launch of the storm phase faults: each of the four requests
    // burns its fused attempt and its solo re-solve (2 launches each).
    std::vector<std::uint64_t> storm;
    for (std::uint64_t launch = 0; launch < 8; ++launch) {
        storm.push_back(launch);
    }
    serve::solve_service service(faulted_policy(storm), cfg);

    for (int i = 0; i < 4; ++i) {
        auto ticket = service.submit(make_request(
            work::stencil_3pt<double>(1, 16, 81), cg_opts(),
            82 + static_cast<std::uint64_t>(i)));
        EXPECT_EQ(ticket.get().status, serve::request_status::failed);
    }
    service.drain();
    const serve::service_stats tripped = service.stats();
    EXPECT_EQ(tripped.breaker_trips, 1u);
    EXPECT_TRUE(tripped.breaker_active);

    // While the breaker is open, compatible requests are NOT coalesced:
    // each gets its own (clean) launch even inside a generous window.
    auto t1 = service.submit(make_request(
        work::stencil_3pt<double>(1, 16, 83), cg_opts(), 84));
    auto t2 = service.submit(make_request(
        work::stencil_3pt<double>(1, 16, 83), cg_opts(), 85));
    const auto r1 = t1.get();
    const auto r2 = t2.get();
    ASSERT_EQ(r1.status, serve::request_status::ok) << r1.error;
    ASSERT_EQ(r2.status, serve::request_status::ok) << r2.error;
    EXPECT_EQ(r1.fused_systems, 1);
    EXPECT_EQ(r2.fused_systems, 1);
    service.drain();
    EXPECT_EQ(service.stats().breaker_trips, 1u);
}

// ---------------------------------------------------------------------
// Launch modes: graph_replay and persistent must be bit-identical to the
// direct path, recordings must be reused via rebind() across batches, a
// faulted replay must re-record (never replay a poisoned graph), and the
// persistent ring must behave as a bounded lock-free MPMC queue.
// ---------------------------------------------------------------------

namespace {

solver::solve_options gmres_opts()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::gmres;
    opts.preconditioner = bl::precond::type::jacobi;
    opts.criterion = stop::relative(1e-8, 200);
    opts.gmres_restart = 20;
    return opts;
}

solver::solve_options richardson_opts()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::richardson;
    opts.preconditioner = bl::precond::type::jacobi;
    opts.richardson_relaxation = 1.0;
    opts.criterion = stop::relative(1e-8, 500);
    return opts;
}

bl::xpu::exec_policy mode_policy(bl::xpu::launch_mode mode)
{
    bl::xpu::exec_policy policy = bl::xpu::make_sycl_policy();
    policy.launch_mode = mode;
    return policy;
}

}  // namespace

TEST(Serve, LaunchModesBitIdenticalToDirectAcrossSolvers)
{
    const std::vector<solver::solve_options> all_opts{
        cg_opts(), bicgstab_opts(), gmres_opts(), richardson_opts()};
    const std::vector<bl::xpu::launch_mode> modes{
        bl::xpu::launch_mode::direct, bl::xpu::launch_mode::graph_replay,
        bl::xpu::launch_mode::persistent};

    for (std::size_t oi = 0; oi < all_opts.size(); ++oi) {
        const solver::solve_options& opts = all_opts[oi];
        const std::uint64_t seed = 500 + 10 * oi;
        std::vector<std::vector<double>> mode_x;
        std::vector<std::vector<index_type>> mode_iters;
        std::vector<std::vector<double>> mode_res;
        for (const bl::xpu::launch_mode mode : modes) {
            serve::service_config cfg;
            cfg.workers = 1;
            cfg.max_batch = 8;
            cfg.max_wait = milliseconds(5);
            serve::solve_service service(mode_policy(mode), cfg);
            std::vector<serve::solve_service::ticket<double>> tickets;
            for (int r = 0; r < 3; ++r) {
                tickets.push_back(service.submit(make_request(
                    work::stencil_3pt<double>(2, 24, seed), opts,
                    seed + 100 + static_cast<std::uint64_t>(r))));
            }
            std::vector<double> xs;
            std::vector<index_type> iters;
            std::vector<double> res;
            for (auto& t : tickets) {
                const serve::solve_reply<double> reply = t.get();
                ASSERT_EQ(reply.status, serve::request_status::ok)
                    << reply.error;
                xs.insert(xs.end(), reply.x.values().begin(),
                          reply.x.values().end());
                const auto ri = reply.log.all_iterations();
                iters.insert(iters.end(), ri.begin(), ri.end());
                const auto rr = reply.log.all_residual_norms();
                res.insert(res.end(), rr.begin(), rr.end());
            }
            mode_x.push_back(std::move(xs));
            mode_iters.push_back(std::move(iters));
            mode_res.push_back(std::move(res));
        }
        for (std::size_t m = 1; m < modes.size(); ++m) {
            EXPECT_EQ(mode_x[m], mode_x[0])
                << "solver " << oi << " mode " << m;
            EXPECT_EQ(mode_iters[m], mode_iters[0])
                << "solver " << oi << " mode " << m;
            EXPECT_EQ(mode_res[m], mode_res[0])
                << "solver " << oi << " mode " << m;
        }
    }
}

TEST(Serve, GraphReplayReusesRecordingAcrossRebinds)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.max_wait = microseconds(0);
    serve::solve_service service(
        mode_policy(bl::xpu::launch_mode::graph_replay), cfg);

    for (int round = 0; round < 6; ++round) {
        const std::uint64_t rhs_seed =
            700 + static_cast<std::uint64_t>(round);
        auto ticket = service.submit(make_request(
            work::stencil_3pt<double>(2, 20, 131), cg_opts(), rhs_seed));
        const serve::solve_reply<double> reply = ticket.get();
        ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
        // Bit-identical to a direct solo solve of the same batch: the
        // recording was rebound to this round's values, not re-recorded.
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(2, 20, 131);
        const auto b = work::random_rhs<double>(2, 20, rhs_seed);
        mat::batch_dense<double> x(2, 20, 1);
        bl::xpu::queue q(bl::xpu::make_sycl_policy());
        solver::solve(q, a, b, x, cg_opts());
        EXPECT_EQ(reply.x.values(), x.values()) << "round " << round;
    }
    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.launches_recorded, 1u);
    EXPECT_EQ(s.replays, 6u);
    EXPECT_EQ(s.rebind_only, 5u);
    EXPECT_EQ(s.batches_launched, 6u);
}

TEST(Serve, PersistentModeServesThroughTheRing)
{
    serve::service_config cfg;
    cfg.workers = 2;
    cfg.max_batch = 8;
    serve::solve_service service(
        mode_policy(bl::xpu::launch_mode::persistent), cfg);

    std::vector<serve::solve_service::ticket<double>> tickets;
    for (int i = 0; i < 24; ++i) {
        tickets.push_back(service.submit(make_request(
            work::stencil_3pt<double>(1, 16, 151), cg_opts(),
            900 + static_cast<std::uint64_t>(i))));
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const serve::solve_reply<double> reply = tickets[i].get();
        ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(1, 16, 151);
        const auto b = work::random_rhs<double>(
            1, 16, 900 + static_cast<std::uint64_t>(i));
        mat::batch_dense<double> x(1, 16, 1);
        bl::xpu::queue q(bl::xpu::make_sycl_policy());
        solver::solve(q, a, b, x, cg_opts());
        EXPECT_EQ(reply.x.values(), x.values()) << "request " << i;
    }
    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.completed_requests, 24u);
    EXPECT_EQ(s.queue_depth_requests, 0u);
    EXPECT_EQ(s.queue_depth_systems, 0u);
    EXPECT_GT(s.launches_recorded, 0u);
    // Every fused launch of the resident loop is a graph submission.
    EXPECT_EQ(s.replays, s.batches_launched);
    service.stop();
    // Late submits are rejected, exactly like the locked admission path.
    auto late = service.submit(make_request(
        work::stencil_3pt<double>(1, 16, 151), cg_opts(), 999));
    EXPECT_EQ(late.get().status, serve::request_status::rejected);
}

TEST(Serve, IdleFlushLaunchesLoneRequestEarly)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_batch = 64;
    cfg.max_wait = milliseconds(2000);
    cfg.idle_flush = microseconds(50);
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    const auto t0 = std::chrono::steady_clock::now();
    auto ticket = service.submit(make_request(
        work::stencil_3pt<double>(1, 16, 161), cg_opts(), 1000));
    ASSERT_EQ(ticket.get().status, serve::request_status::ok);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    // The admission queue is empty behind the lone leader, so the window
    // flushes after ~idle_flush instead of holding the 2 s max_wait.
    EXPECT_LT(elapsed, milliseconds(500));
}

TEST(Serve, ZeroIdleFlushHoldsTheFullWindow)
{
    if (persistent_mode_env()) {
        GTEST_SKIP() << "persistent mode has no batching windows";
    }
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = milliseconds(300);
    cfg.idle_flush = microseconds(0);
    serve::solve_service service(bl::xpu::make_sycl_policy(), cfg);

    const auto t0 = std::chrono::steady_clock::now();
    auto ticket = service.submit(make_request(
        work::stencil_3pt<double>(1, 16, 162), cg_opts(), 1001));
    ASSERT_EQ(ticket.get().status, serve::request_status::ok);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(elapsed, milliseconds(250));
}

TEST(Serve, RingIsBoundedFifoAndHandsBackOwnership)
{
    serve::mpmc_ring<int> ring(3);  // rounds up to the next power of two
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_TRUE(ring.empty());
    int v = -1;
    EXPECT_FALSE(ring.try_pop(v));
    for (int i = 0; i < 4; ++i) {
        int value = i;
        EXPECT_TRUE(ring.try_push(value));
    }
    int overflow = 99;
    EXPECT_FALSE(ring.try_push(overflow));
    EXPECT_EQ(overflow, 99);  // a failed push leaves the value untouched
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.try_pop(v));
        EXPECT_EQ(v, i);  // FIFO
    }
    EXPECT_FALSE(ring.try_pop(v));
    // Freed capacity is reusable (the sequence counters lap correctly).
    int again = 7;
    EXPECT_TRUE(ring.try_push(again));
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 7);
}

TEST(Serve, RingSurvivesConcurrentProducersAndConsumers)
{
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr int kPerProducer = 20000;
    serve::mpmc_ring<int> ring(64);
    std::atomic<long long> sum{0};
    std::atomic<int> popped{0};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&ring, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                int value = p * kPerProducer + i;
                while (!ring.try_push(value)) {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            int v;
            while (popped.load(std::memory_order_relaxed) <
                   kProducers * kPerProducer) {
                if (ring.try_pop(v)) {
                    sum.fetch_add(v, std::memory_order_relaxed);
                    popped.fetch_add(1, std::memory_order_relaxed);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    const long long n = static_cast<long long>(kProducers) * kPerProducer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(Serve, RingCapacityOneRoundsUpToTwo)
{
    // The cell index is a mask of the cursor, so capacity is clamped to a
    // power of two >= 2; the degenerate request must still yield a working
    // ring, not a zero-mask one.
    serve::mpmc_ring<int> ring(1);
    EXPECT_EQ(ring.capacity(), 2u);
    int a = 10;
    int b = 20;
    int c = 30;
    EXPECT_TRUE(ring.try_push(a));
    EXPECT_TRUE(ring.try_push(b));
    EXPECT_FALSE(ring.try_push(c));
    EXPECT_EQ(c, 30);
    int v = 0;
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 10);
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, 20);
    EXPECT_FALSE(ring.try_pop(v));
    // A zero-capacity request degrades the same way.
    serve::mpmc_ring<int> zero(0);
    EXPECT_EQ(zero.capacity(), 2u);
}

TEST(Serve, RingWrapsAroundAtIndexOverflow)
{
    // The cursors are raw size_t positions; the seq/pos discrimination is
    // done in differences, so the counters overflowing SIZE_MAX must be
    // invisible. The test seam starts both cursors just below the wrap.
    const std::size_t start = std::numeric_limits<std::size_t>::max() - 2;
    serve::mpmc_ring<int> ring(4, start);
    // Fill across the wrap point, drain, and lap a few more times.
    for (int lap = 0; lap < 3; ++lap) {
        for (int i = 0; i < 4; ++i) {
            int value = lap * 10 + i;
            ASSERT_TRUE(ring.try_push(value));
        }
        int overflow = 99;
        EXPECT_FALSE(ring.try_push(overflow));
        for (int i = 0; i < 4; ++i) {
            int v = -1;
            ASSERT_TRUE(ring.try_pop(v));
            EXPECT_EQ(v, lap * 10 + i);  // FIFO across the wrap
        }
        int v = -1;
        EXPECT_FALSE(ring.try_pop(v));
        EXPECT_TRUE(ring.empty());
    }
}

TEST(Serve, RingFullProducerBacksOffUntilConsumerDrains)
{
    // A full ring rejects without damaging the value; the producer's
    // backoff loop (exactly what submit_to_ring does) makes progress as
    // soon as the consumer frees a cell.
    constexpr int kItems = 1000;
    serve::mpmc_ring<int> ring(2);
    std::atomic<int> rejections{0};
    std::thread producer([&] {
        for (int i = 0; i < kItems; ++i) {
            int value = i;
            while (!ring.try_push(value)) {
                EXPECT_EQ(value, i);  // failed push leaves the value intact
                rejections.fetch_add(1, std::memory_order_relaxed);
                std::this_thread::yield();
            }
        }
    });
    std::vector<int> got;
    got.reserve(kItems);
    while (static_cast<int>(got.size()) < kItems) {
        int v = -1;
        if (ring.try_pop(v)) {
            got.push_back(v);
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kItems));
    for (int i = 0; i < kItems; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
    }
    int leftover = -1;
    EXPECT_FALSE(ring.try_pop(leftover));
}

TEST(ServeResilience, FaultedReplayReRecordsInsteadOfReplayingPoisonedGraph)
{
    serve::service_config cfg;
    cfg.workers = 1;
    cfg.max_wait = microseconds(0);
    cfg.launch_retries = 2;
    cfg.retry_backoff = microseconds(1);
    // Launch 0 (the first batch's replay) is clean; launch 1 (the second
    // batch's replay after a rebind) faults. The retry must re-record and
    // submit a fresh graph — replaying the invalidated one would bypass
    // the launch path and hide the fault.
    bl::xpu::exec_policy policy = faulted_policy({1});
    policy.launch_mode = bl::xpu::launch_mode::graph_replay;
    serve::solve_service service(policy, cfg);

    auto t1 = service.submit(make_request(
        work::stencil_3pt<double>(2, 20, 141), cg_opts(), 801));
    ASSERT_EQ(t1.get().status, serve::request_status::ok);
    auto t2 = service.submit(make_request(
        work::stencil_3pt<double>(2, 20, 141), cg_opts(), 802));
    const serve::solve_reply<double> r2 = t2.get();
    ASSERT_EQ(r2.status, serve::request_status::ok) << r2.error;
    EXPECT_EQ(r2.attempts, 2);

    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.launch_faults, 1u);
    EXPECT_EQ(s.launch_retries, 1u);
    EXPECT_EQ(s.recovered_requests, 1u);
    EXPECT_EQ(s.failed_requests, 0u);
    // Batch 1 recorded; batch 2 rebound and its replay faulted, so the
    // retry recorded again: two recordings, three graph submissions.
    EXPECT_EQ(s.launches_recorded, 2u);
    EXPECT_EQ(s.replays, 3u);
    EXPECT_EQ(s.rebind_only, 1u);
}
