// Dense LU factorization with partial pivoting.
//
// This is the reference direct solver used by
//  * the test suite (to validate iterative solutions against exact ones),
//  * the BatchIsai preconditioner generation (per-row small dense solves),
//  * the chemistry workload generator (conditioning checks).
// Matrices are stored row-major.
#pragma once

#include <vector>

#include "util/math.hpp"

namespace batchlin {

/// In-place LU factorization with partial pivoting of an n-by-n row-major
/// matrix. On return `a` holds L (unit diagonal, below) and U (on/above the
/// diagonal) and `piv[i]` is the row swapped into position i at step i.
/// Returns false when a pivot underflows (numerically singular matrix).
template <typename T>
bool lu_factorize(index_type n, T* a, index_type* piv);

/// Solves L U x = P b given the output of lu_factorize; `x` holds b on entry
/// and the solution on return.
template <typename T>
void lu_solve(index_type n, const T* a, const index_type* piv, T* x);

/// Convenience wrapper: solves a (copy of a) dense system, returning false on
/// singular input. `a` is row-major n*n, `b`/`x` length n.
template <typename T>
bool dense_solve(index_type n, std::vector<T> a, std::vector<T> b,
                 std::vector<T>& x);

/// Infinity-norm condition number estimate via explicit inverse (only used on
/// the small systems of this problem space, n <= ~2000).
template <typename T>
double condition_number_inf(index_type n, const std::vector<T>& a);

}  // namespace batchlin
