// BatchBicgstab kernel.
//
// Preconditioned BiCGSTAB in the fused single-kernel form; this is the
// solver the paper benchmarks on all PeleLM inputs (the chemistry systems
// are non-SPD, §4.3). Convergence is checked per system both at the
// half-step (on s) and after the full step (on r). Breakdown of the
// shadow-residual correlation or of the stabilization denominator exits
// the loop with the last valid iterate.
#pragma once

#include <cmath>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"
#include "solver/kernel_common.hpp"
#include "solver/run_decl.hpp"

namespace batchlin::solver {

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_bicgstab_bound(xpu::queue& q, const MatBatch& a,
                        const Precond& precond, const mat::batch_dense<T>& b,
                        mat::batch_dense<T>& x, const stop::criterion& crit,
                        const bound_plan& slots, const kernel_config& config,
                        spill_view<T> spill, log::batch_log& logger,
                        xpu::batch_range range)
{
    // Recordable closure: operands enter by address of caller-owned
    // storage, configuration structs by value (see run_decl.hpp).
    const MatBatch* const a_ptr = &a;
    const Precond* const precond_ptr = &precond;
    const mat::batch_dense<T>* const b_ptr = &b;
    mat::batch_dense<T>* const x_out = &x;
    const bound_plan* const slots_ptr = &slots;
    log::batch_log* const logger_ptr = &logger;

    q.run_batch(
        range.size(), config.work_group_size, config.sub_group_size,
        [=](xpu::group& g) {
            const index_type batch = g.id();
            const index_type local = batch - range.begin;
            workspace_binder<T> bind(g, *slots_ptr, spill.for_group(local));
            // Plan order: r, p, v, s, t, p_hat, s_hat, r_hat, x, precond.
            xpu::dspan<T> r = bind.take("r");
            xpu::dspan<T> p = bind.take("p");
            xpu::dspan<T> v = bind.take("v");
            xpu::dspan<T> s = bind.take("s");
            xpu::dspan<T> t = bind.take("t");
            xpu::dspan<T> p_hat = bind.take("p_hat");
            xpu::dspan<T> s_hat = bind.take("s_hat");
            xpu::dspan<T> r_hat = bind.take("r_hat");
            xpu::dspan<T> x_loc = bind.take("x");
            xpu::dspan<T> pc_work = bind.take_optional("precond");

            const auto a_view = blas::item_view_as<S>(*a_ptr, batch);
            const auto b_view =
                b_ptr->item_span(batch, xpu::mem_space::constant);
            auto x_global = x_out->item_span(batch);

            const auto pc = precond_ptr->generate(g, a_view, pc_work);

            blas::copy<T>(g, x_global, x_loc);
            // r = b - A x; the shadow residual is frozen at r0.
            blas::spmv<T>(g, a_view, x_loc, r);
            blas::axpby<T>(g, T{1}, b_view, T{-1}, r);
            blas::copy<T>(g, r, r_hat);
            blas::fill<T>(g, p, T{0});
            blas::fill<T>(g, v, T{0});

            const T rhs_norm = blas::nrm2<T>(g, b_view, config.reduction);
            T res_norm = blas::nrm2<T>(g, r, config.reduction);

            T rho = T{1};
            T alpha = T{1};
            T omega = T{1};

            index_type iter = 0;
            log::solve_status status = log::solve_status::max_iterations;
            if (stop::zero_rhs_short_circuit(crit, rhs_norm)) {
                // ||b|| == 0 under a relative tolerance: defined as solved
                // by x = 0 exactly (see stop::zero_rhs_short_circuit).
                blas::fill<T>(g, x_loc, T{0});
                res_norm = T{0};
                status = log::solve_status::converged;
            } else if (stop::is_converged(crit, res_norm, rhs_norm)) {
                status = log::solve_status::converged;
            } else if (!is_finite(res_norm)) {
                status = log::solve_status::non_finite;
            }
            while (status == log::solve_status::max_iterations &&
                   iter < crit.max_iterations) {
                const T rho_new =
                    blas::dot<T>(g, r_hat, r, config.reduction);
                // Stabilization breakdown is tested before the shadow
                // residual: an exact omega == 0 also zeroes the next
                // rho_new, and labeling that as breakdown_rho would
                // misdirect the fallback chain.
                if (omega == T{0}) {
                    status = log::solve_status::breakdown_omega;
                    break;
                }
                if (rho_new == T{0}) {
                    status = log::solve_status::breakdown_rho;
                    break;
                }
                const T beta = (rho_new / rho) * (alpha / omega);
                // p = r + beta * (p - omega * v).
                blas::axpy<T>(g, -omega, v, p);
                blas::axpby<T>(g, T{1}, r, beta, p);

                pc.apply(g, p, p_hat);
                blas::spmv<T>(g, a_view, p_hat, v);
                const T rv = blas::dot<T>(g, r_hat, v, config.reduction);
                if (rv == T{0}) {
                    status = log::solve_status::direction_annihilated;
                    break;
                }
                alpha = rho_new / rv;

                // s = r - alpha * v.
                blas::copy<T>(g, r, s);
                blas::axpy<T>(g, -alpha, v, s);
                const T s_norm = blas::nrm2<T>(g, s, config.reduction);
                ++iter;
                logger_ptr->record_iteration(batch, iter - 1,
                                             static_cast<double>(s_norm));
                if (!is_finite(s_norm)) {
                    res_norm = s_norm;
                    status = log::solve_status::non_finite;
                    break;
                }
                if (stop::is_converged(crit, s_norm, rhs_norm)) {
                    blas::axpy<T>(g, alpha, p_hat, x_loc);
                    res_norm = s_norm;
                    status = log::solve_status::converged;
                    break;
                }

                pc.apply(g, s, s_hat);
                blas::spmv<T>(g, a_view, s_hat, t);
                const T tt = blas::dot<T>(g, t, t, config.reduction);
                if (tt == T{0}) {
                    blas::axpy<T>(g, alpha, p_hat, x_loc);
                    res_norm = s_norm;
                    status = log::solve_status::breakdown_omega;
                    break;
                }
                omega = blas::dot<T>(g, t, s, config.reduction) / tt;

                // x += alpha * p_hat + omega * s_hat.
                blas::axpy<T>(g, alpha, p_hat, x_loc);
                blas::axpy<T>(g, omega, s_hat, x_loc);
                // r = s - omega * t.
                blas::copy<T>(g, s, r);
                blas::axpy<T>(g, -omega, t, r);

                res_norm = blas::nrm2<T>(g, r, config.reduction);
                logger_ptr->record_iteration(batch, iter - 1,
                                             static_cast<double>(res_norm));
                rho = rho_new;
                if (!is_finite(res_norm)) {
                    status = log::solve_status::non_finite;
                    break;
                }
                if (stop::is_converged(crit, res_norm, rhs_norm)) {
                    status = log::solve_status::converged;
                }
            }

            blas::copy<T>(g, x_loc, x_global);
            record_outcome(g, *logger_ptr, batch, iter, res_norm, status);
        },
        range.begin, "batch_bicgstab");
}

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_bicgstab(xpu::queue& q, const MatBatch& a, const Precond& precond,
                  const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                  const stop::criterion& crit, const slm_plan& plan,
                  const kernel_config& config, log::batch_log& logger,
                  xpu::batch_range range)
{
    const bound_plan slots(plan);  // resolved once, host side (§3.5)
    spill_buffer<T> spill(q, plan, range.size());
    run_bicgstab_bound<T, MatBatch, Precond, S>(q, a, precond, b, x, crit, slots, config,
                       spill.view(), logger, range);
}

}  // namespace batchlin::solver
