// Per-system convergence logging (paper §3: "monitor the solver convergence
// for each system in the batch individually").
//
// Each work-group records its own iteration count, final (implicit)
// residual norm, and convergence flag; the host-side summary aggregates
// them for reporting and for the benchmark tables.
#pragma once

#include <cstdint>
#include <vector>

#include "util/math.hpp"

namespace batchlin::log {

/// Result record of one batch solve, indexed by batch entry.
class batch_log {
public:
    batch_log() = default;
    explicit batch_log(index_type num_systems)
        : iterations_(num_systems, 0),
          residual_norms_(num_systems, 0.0),
          converged_(num_systems, 0)
    {}

    index_type num_systems() const
    {
        return static_cast<index_type>(iterations_.size());
    }

    /// Called by the work-group solving system `batch` when it exits.
    void record(index_type batch, index_type iterations,
                double residual_norm, bool converged)
    {
        iterations_[batch] = iterations;
        residual_norms_[batch] = residual_norm;
        converged_[batch] = converged ? 1 : 0;
    }

    index_type iterations(index_type batch) const
    {
        return iterations_[batch];
    }
    double residual_norm(index_type batch) const
    {
        return residual_norms_[batch];
    }
    bool converged(index_type batch) const
    {
        return converged_[batch] != 0;
    }

    const std::vector<index_type>& all_iterations() const
    {
        return iterations_;
    }
    const std::vector<double>& all_residual_norms() const
    {
        return residual_norms_;
    }

    index_type num_converged() const;
    index_type min_iterations() const;
    index_type max_iterations() const;
    double mean_iterations() const;
    double max_residual_norm() const;

    /// Enables per-iteration residual recording (off by default: the
    /// history costs num_systems x max_iters doubles).
    void enable_history(index_type max_iterations);
    bool history_enabled() const { return history_stride_ > 0; }

    /// Called by the solver kernel after iteration `iter` (0-based) of
    /// system `batch`; no-op unless history is enabled.
    void record_iteration(index_type batch, index_type iter,
                          double residual_norm)
    {
        if (history_stride_ > 0 && iter < history_stride_) {
            history_[static_cast<std::size_t>(batch) * history_stride_ +
                     iter] = residual_norm;
        }
    }

    /// Residual norm of system `batch` after iteration `iter`, or NaN when
    /// outside the recorded range.
    double residual_at(index_type batch, index_type iter) const;

    /// Geometric-mean per-iteration contraction factor of system `batch`
    /// estimated from the recorded history (a least-squares fit of the
    /// log-residual slope); NaN without history or with < 3 iterations.
    /// Values < 1 indicate convergence; smaller is faster.
    double convergence_rate(index_type batch) const;

private:
    std::vector<index_type> iterations_;
    std::vector<double> residual_norms_;
    std::vector<std::uint8_t> converged_;
    index_type history_stride_ = 0;
    std::vector<double> history_;
};

}  // namespace batchlin::log
