file(REMOVE_RECURSE
  "../bench/bench_abl_reduction"
  "../bench/bench_abl_reduction.pdb"
  "CMakeFiles/bench_abl_reduction.dir/bench_abl_reduction.cpp.o"
  "CMakeFiles/bench_abl_reduction.dir/bench_abl_reduction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
