# Empty dependencies file for bench_abl_subgroup.
# This may be replaced when dependencies are built.
