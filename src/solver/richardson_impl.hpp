// BatchRichardson kernel (library extension; on Ginkgo's batched roadmap).
//
// Preconditioned Richardson iteration x += omega * M (b - A x): the
// simplest batched iterative solver, useful as a smoother and as the
// bottom baseline of the solver hierarchy. With M = diag(A)^{-1} and
// omega = 1 this is the classic Jacobi iteration, convergent on the
// diagonally dominant problem space. Same fused-kernel structure as the
// Krylov solvers: one work-group per system, SLM-planned workspace,
// per-system convergence monitoring.
#pragma once

#include <cmath>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"
#include "solver/kernel_common.hpp"
#include "solver/run_decl.hpp"

namespace batchlin::solver {

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_richardson_bound(xpu::queue& q, const MatBatch& a,
                          const Precond& precond,
                          const mat::batch_dense<T>& b,
                          mat::batch_dense<T>& x, const stop::criterion& crit,
                          const bound_plan& slots,
                          const kernel_config& config, spill_view<T> spill,
                          T relaxation, log::batch_log& logger,
                          xpu::batch_range range)
{
    // Recordable closure: operands enter by address of caller-owned
    // storage, configuration structs by value (see run_decl.hpp).
    const MatBatch* const a_ptr = &a;
    const Precond* const precond_ptr = &precond;
    const mat::batch_dense<T>* const b_ptr = &b;
    mat::batch_dense<T>* const x_out = &x;
    const bound_plan* const slots_ptr = &slots;
    log::batch_log* const logger_ptr = &logger;

    q.run_batch(
        range.size(), config.work_group_size, config.sub_group_size,
        [=](xpu::group& g) {
            const index_type batch = g.id();
            const index_type local = batch - range.begin;
            workspace_binder<T> bind(g, *slots_ptr, spill.for_group(local));
            // Plan order: r, z, t, x, precond.
            xpu::dspan<T> r = bind.take("r");
            xpu::dspan<T> z = bind.take("z");
            xpu::dspan<T> t = bind.take("t");
            xpu::dspan<T> x_loc = bind.take("x");
            xpu::dspan<T> pc_work = bind.take_optional("precond");

            const auto a_view = blas::item_view_as<S>(*a_ptr, batch);
            const auto b_view =
                b_ptr->item_span(batch, xpu::mem_space::constant);
            auto x_global = x_out->item_span(batch);

            const auto pc = precond_ptr->generate(g, a_view, pc_work);

            blas::copy<T>(g, x_global, x_loc);
            blas::spmv<T>(g, a_view, x_loc, r);
            blas::axpby<T>(g, T{1}, b_view, T{-1}, r);

            const T rhs_norm = blas::nrm2<T>(g, b_view, config.reduction);
            T res_norm = blas::nrm2<T>(g, r, config.reduction);

            index_type iter = 0;
            log::solve_status status = log::solve_status::max_iterations;
            if (stop::zero_rhs_short_circuit(crit, rhs_norm)) {
                // ||b|| == 0 under a relative tolerance: defined as solved
                // by x = 0 exactly (see stop::zero_rhs_short_circuit).
                blas::fill<T>(g, x_loc, T{0});
                res_norm = T{0};
                status = log::solve_status::converged;
            } else if (stop::is_converged(crit, res_norm, rhs_norm)) {
                status = log::solve_status::converged;
            } else if (!is_finite(res_norm)) {
                status = log::solve_status::non_finite;
            }
            while (status == log::solve_status::max_iterations &&
                   iter < crit.max_iterations) {
                pc.apply(g, r, z);
                blas::axpy<T>(g, relaxation, z, x_loc);
                // r -= omega * A z keeps the residual consistent without a
                // second SpMV against x.
                blas::spmv<T>(g, a_view, z, t);
                blas::axpy<T>(g, -relaxation, t, r);
                res_norm = blas::nrm2<T>(g, r, config.reduction);
                ++iter;
                logger_ptr->record_iteration(batch, iter - 1,
                                             static_cast<double>(res_norm));
                if (!is_finite(res_norm)) {
                    status = log::solve_status::non_finite;
                    break;
                }
                if (stop::is_converged(crit, res_norm, rhs_norm)) {
                    status = log::solve_status::converged;
                }
            }

            blas::copy<T>(g, x_loc, x_global);
            record_outcome(g, *logger_ptr, batch, iter, res_norm, status);
        },
        range.begin, "batch_richardson");
}

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_richardson(xpu::queue& q, const MatBatch& a,
                    const Precond& precond, const mat::batch_dense<T>& b,
                    mat::batch_dense<T>& x, const stop::criterion& crit,
                    const slm_plan& plan, const kernel_config& config,
                    T relaxation, log::batch_log& logger,
                    xpu::batch_range range)
{
    const bound_plan slots(plan);  // resolved once, host side (§3.5)
    spill_buffer<T> spill(q, plan, range.size());
    run_richardson_bound<T, MatBatch, Precond, S>(q, a, precond, b, x, crit, slots, config,
                         spill.view(), relaxation, logger, range);
}

}  // namespace batchlin::solver
