// Structural and numerical properties of batched matrices.
//
// The paper lists the properties that drive format/solver selection (§3:
// entry sizes, nnz, shared pattern, conditioning). These helpers back both
// the dispatch heuristics and the workload-generator self-checks.
#pragma once

#include "matrix/batch_csr.hpp"

namespace batchlin::mat {

/// Summary of a shared sparsity pattern.
struct pattern_stats {
    index_type rows = 0;
    index_type cols = 0;
    index_type nnz = 0;
    index_type min_row_nnz = 0;
    index_type max_row_nnz = 0;
    double avg_row_nnz = 0.0;
    /// Maximum |col - row| over the pattern.
    index_type bandwidth = 0;
    /// True when the pattern contains every diagonal entry.
    bool full_diagonal = false;
    /// True when (i, j) in pattern implies (j, i) in pattern.
    bool symmetric_pattern = false;
};

template <typename T>
pattern_stats analyze_pattern(const batch_csr<T>& matrix);

/// True when item `batch` is numerically symmetric to tolerance `tol`.
template <typename T>
bool is_symmetric(const batch_csr<T>& matrix, index_type batch, T tol);

/// True when every row of item `batch` is (weakly) diagonally dominant and
/// the diagonal entries are all non-zero.
template <typename T>
bool is_diagonally_dominant(const batch_csr<T>& matrix, index_type batch);

/// Row-balance measure of the pattern: max_row_nnz / avg_row_nnz. Values
/// near 1 indicate balanced rows where BatchEll wastes no padding (§3.1).
template <typename T>
double row_imbalance(const batch_csr<T>& matrix);

}  // namespace batchlin::mat
