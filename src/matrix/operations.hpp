// Host-level batched matrix operations.
//
// The batched SpMV (`apply`) is the standalone counterpart of the device
// kernels the solvers fuse (§3.2): one launch, one work-group per system.
// The two-sided diagonal scaling is the equilibration step the PeleLM
// workflow applies before solving (it improves the conditioning of the
// BDF Jacobians and the effectiveness of the scalar Jacobi preconditioner).
#pragma once

#include <variant>

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "xpu/queue.hpp"

namespace batchlin::mat {

template <typename T>
using any_batch =
    std::variant<batch_dense<T>, batch_csr<T>, batch_ell<T>>;

/// y_i = A_i x_i for every batch item, as one fused kernel launch.
template <typename T>
void apply(xpu::queue& q, const any_batch<T>& a, const batch_dense<T>& x,
           batch_dense<T>& y);

/// y_i = alpha * A_i x_i + beta * y_i.
template <typename T>
void advanced_apply(xpu::queue& q, T alpha, const any_batch<T>& a,
                    const batch_dense<T>& x, T beta, batch_dense<T>& y);

/// Batched transpose: one pass builds the transposed shared pattern and
/// the per-item permutation, then every item's values are scattered. The
/// result preserves the shared-pattern invariant.
template <typename T>
batch_csr<T> transpose(const batch_csr<T>& a);

/// Per-system row/column scaling vectors for equilibration.
template <typename T>
struct batch_scaling {
    batch_dense<T> row;  ///< left diagonal, one column per system
    batch_dense<T> col;  ///< right diagonal
};

/// Computes the two-sided scaling that equilibrates each system's rows to
/// unit infinity-norm and then its columns (one Ruiz-style pass) —
/// in-place applicable to CSR batches.
template <typename T>
batch_scaling<T> compute_equilibration(const batch_csr<T>& a);

/// A_i <- diag(row_i) * A_i * diag(col_i); use with scale_rhs/unscale to
/// solve the equilibrated system.
template <typename T>
void scale_system(batch_csr<T>& a, const batch_scaling<T>& s);

/// b_i <- diag(row_i) * b_i (apply before solving the scaled system).
template <typename T>
void scale_rhs(batch_dense<T>& b, const batch_scaling<T>& s);

/// x_i <- diag(col_i) * x_i (recover the unscaled solution afterwards).
template <typename T>
void unscale_solution(batch_dense<T>& x, const batch_scaling<T>& s);

}  // namespace batchlin::mat
