// Conversions between the batched matrix formats (paper §3.1).
//
// Conversions preserve the shared-pattern property: the pattern is derived
// once (from item 0 for dense sources — the problem space guarantees all
// items share it) and values are converted per item.
#pragma once

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"

namespace batchlin::mat {

/// Dense -> CSR. The pattern is the set of positions that are non-zero in
/// ANY batch item, keeping the shared-pattern invariant exact.
template <typename T>
batch_csr<T> to_csr(const batch_dense<T>& dense);

/// CSR -> dense.
template <typename T>
batch_dense<T> to_dense(const batch_csr<T>& csr);

/// CSR -> ELL; the width is the maximum row length of the shared pattern.
template <typename T>
batch_ell<T> to_ell(const batch_csr<T>& csr);

/// ELL -> CSR (padding slots are dropped).
template <typename T>
batch_csr<T> to_csr(const batch_ell<T>& ell);

/// ELL -> dense.
template <typename T>
batch_dense<T> to_dense(const batch_ell<T>& ell);

/// Dense -> ELL (via the shared dense pattern).
template <typename T>
batch_ell<T> to_ell(const batch_dense<T>& dense);

}  // namespace batchlin::mat
