#!/usr/bin/env bash
# Runs the host-throughput benchmark and writes BENCH_host_throughput.json
# at the repo root, comparing against the recorded pre-optimization baseline
# (scripts/bench_host_baseline.env, measured on the seed revision of this
# machine — re-record it with `bench_host_throughput --json` on a checkout
# that predates the host-throughput engine).
#
# Usage: scripts/bench_host.sh [build-dir]
set -euo pipefail

BUILD_DIR=${1:-build}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

# shellcheck source=bench_host_baseline.env
source scripts/bench_host_baseline.env

cmake -B "$BUILD_DIR" -S . -G Ninja >/dev/null
cmake --build "$BUILD_DIR" --target bench_host_throughput

"$BUILD_DIR/bench/bench_host_throughput" \
  --min-time "${BENCH_MIN_TIME:-3}" \
  --baseline "cg=${BASELINE_CG},bicgstab=${BASELINE_BICGSTAB},gmres=${BASELINE_GMRES}" \
  --json BENCH_host_throughput.json
