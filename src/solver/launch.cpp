#include "solver/launch.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace batchlin::solver {

kernel_config choose_launch_config(const xpu::exec_policy& policy,
                                   index_type rows,
                                   index_type sub_group_override,
                                   const xpu::reduce_path* reduction_override)
{
    BATCHLIN_ENSURE_MSG(rows > 0, "empty system");
    kernel_config config;

    if (sub_group_override != 0) {
        BATCHLIN_ENSURE_MSG(policy.supports_sub_group(sub_group_override),
                            "requested sub-group size not supported");
        config.sub_group_size = sub_group_override;
    } else {
        // §3.6: sub-group 16 for small matrices, 32 for large ones —
        // provided the device offers the choice at all.
        const index_type preferred =
            rows <= policy.sub_group_switch_rows ? 16 : 32;
        config.sub_group_size = policy.supports_sub_group(preferred)
                                    ? preferred
                                    : policy.allowed_sub_group_sizes.front();
    }

    // Work-group size: the number of rows when it is divisible by the
    // sub-group size, otherwise the next round-up (§3.6), capped by the
    // device maximum (work-items then grid-stride over rows).
    config.work_group_size =
        std::min(round_up(std::max(rows, config.sub_group_size),
                          config.sub_group_size),
                 policy.max_work_group_size);

    if (reduction_override != nullptr) {
        BATCHLIN_ENSURE_MSG(*reduction_override != xpu::reduce_path::group ||
                                policy.has_group_reduction,
                            "group reduction not available on this model");
        config.reduction = *reduction_override;
    } else if (!policy.has_group_reduction) {
        // CUDA path: only warp-level reductions exist (§3.2).
        config.reduction = xpu::reduce_path::sub_group;
    } else {
        config.reduction = rows <= policy.sub_group_reduce_rows
                               ? xpu::reduce_path::sub_group
                               : xpu::reduce_path::group;
    }
    return config;
}

double thread_utilization(const kernel_config& config, index_type rows)
{
    if (config.work_group_size <= 0) {
        return 0.0;
    }
    const index_type active = std::min(rows, config.work_group_size);
    return static_cast<double>(active) / config.work_group_size;
}

}  // namespace batchlin::solver
