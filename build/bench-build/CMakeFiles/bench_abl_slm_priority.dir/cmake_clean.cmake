file(REMOVE_RECURSE
  "../bench/bench_abl_slm_priority"
  "../bench/bench_abl_slm_priority.pdb"
  "CMakeFiles/bench_abl_slm_priority.dir/bench_abl_slm_priority.cpp.o"
  "CMakeFiles/bench_abl_slm_priority.dir/bench_abl_slm_priority.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_slm_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
