#pragma once
// Umbrella for the conc:: concurrency model-checking layer.
//
//   shim.hpp   — conc::atomic / conc::mutex / conc::futex_* vocabulary the
//                production protocols compile against (aliases by default,
//                instrumented under BATCHLIN_CONC_CHECK),
//   engine.hpp — the exploring scheduler + race detector (always declared;
//                only reachable through the shims in the checked build, or
//                directly from model-check tests).

#include "conc/engine.hpp"
#include "conc/shim.hpp"
