// Small integer and floating-point helpers shared across modules.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace batchlin {

using index_type = std::int32_t;
using size_type = std::int64_t;

/// Integer ceiling division for non-negative operands.
constexpr index_type ceil_div(index_type a, index_type b)
{
    return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr index_type round_up(index_type a, index_type b)
{
    return ceil_div(a, b) * b;
}

/// Returns true when `a` and `b` agree to a relative tolerance scaled by
/// `scale` (used for FP comparisons across reduction orders).
template <typename T>
bool close(T a, T b, T rel_tol, T scale = T{1})
{
    const T mag = std::max({std::abs(a), std::abs(b), scale});
    return std::abs(a - b) <= rel_tol * mag;
}

/// True when `v` is neither NaN nor infinite. The solver kernels guard
/// their residual-norm recurrences with this: one comparison per iteration
/// that turns silent NaN propagation into a reported `non_finite` status.
template <typename T>
inline bool is_finite(T v)
{
    return std::isfinite(v);
}

/// Machine epsilon-derived default solver tolerance for a value type.
template <typename T>
constexpr T default_tolerance()
{
    if constexpr (std::is_same_v<T, float>) {
        return 1e-5f;
    } else {
        return 1e-11;
    }
}

}  // namespace batchlin
