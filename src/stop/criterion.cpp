#include "stop/criterion.hpp"

namespace batchlin::stop {

std::string to_string(tolerance_type type)
{
    return type == tolerance_type::absolute ? "absolute" : "relative";
}

}  // namespace batchlin::stop
