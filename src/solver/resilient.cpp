#include "solver/resilient.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "matrix/conversions.hpp"
#include "solver/direct.hpp"
#include "solver/residual.hpp"
#include "xpu/fault.hpp"

namespace batchlin::solver {
namespace {

double now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Gathers the listed items of a dense multivector into a fresh batch.
template <typename T>
mat::batch_dense<T> gather_dense(const mat::batch_dense<T>& src,
                                 const std::vector<index_type>& items)
{
    mat::batch_dense<T> out(static_cast<index_type>(items.size()),
                            src.rows(), src.cols());
    for (index_type j = 0; j < out.num_batch_items(); ++j) {
        std::copy_n(src.item_values(items[static_cast<std::size_t>(j)]),
                    src.item_size(), out.item_values(j));
    }
    return out;
}

template <typename T>
mat::batch_csr<T> gather_items(const mat::batch_csr<T>& src,
                               const std::vector<index_type>& items)
{
    mat::batch_csr<T> out(static_cast<index_type>(items.size()), src.rows(),
                          src.cols(), src.row_ptrs(), src.col_idxs());
    for (index_type j = 0; j < out.num_batch_items(); ++j) {
        std::copy_n(src.item_values(items[static_cast<std::size_t>(j)]),
                    src.nnz(), out.item_values(j));
    }
    return out;
}

template <typename T>
mat::batch_ell<T> gather_items(const mat::batch_ell<T>& src,
                               const std::vector<index_type>& items)
{
    mat::batch_ell<T> out(static_cast<index_type>(items.size()), src.rows(),
                          src.cols(), src.ell_width());
    out.col_idxs() = src.col_idxs();
    for (index_type j = 0; j < out.num_batch_items(); ++j) {
        std::copy_n(src.item_values(items[static_cast<std::size_t>(j)]),
                    src.stored_per_item(), out.item_values(j));
    }
    return out;
}

template <typename T>
mat::batch_dense<T> gather_items(const mat::batch_dense<T>& src,
                                 const std::vector<index_type>& items)
{
    return gather_dense(src, items);
}

/// Gathers the listed items of the matrix batch, keeping its format.
template <typename T>
batch_matrix<T> gather_matrix(const batch_matrix<T>& a,
                              const std::vector<index_type>& items)
{
    return std::visit(
        [&](const auto& m) -> batch_matrix<T> {
            return gather_items(m, items);
        },
        a);
}

/// The direct terminal stage wants CSR; dense and ELL convert losslessly.
template <typename T>
mat::batch_csr<T> as_csr(const batch_matrix<T>& a)
{
    if (const auto* csr = std::get_if<mat::batch_csr<T>>(&a)) {
        return *csr;
    }
    if (const auto* ell = std::get_if<mat::batch_ell<T>>(&a)) {
        return mat::to_csr(*ell);
    }
    return mat::to_csr(std::get<mat::batch_dense<T>>(a));
}

/// Host-side 2-norm of each item of `v`.
template <typename T>
std::vector<double> item_norms(const mat::batch_dense<T>& v)
{
    std::vector<double> norms(static_cast<std::size_t>(
        v.num_batch_items()));
    for (index_type i = 0; i < v.num_batch_items(); ++i) {
        double sum = 0.0;
        const T* vals = v.item_values(i);
        for (size_type k = 0; k < v.item_size(); ++k) {
            const double e = static_cast<double>(vals[k]);
            sum += e * e;
        }
        norms[static_cast<std::size_t>(i)] = std::sqrt(sum);
    }
    return norms;
}

/// Runs one stage over the gathered scope with launch retries. Returns the
/// per-system log of the scope; on exhausted retries every system of the
/// scope is marked `device_fault`.
template <typename T>
log::batch_log run_stage(xpu::queue& q, const fallback_stage& stage,
                         const batch_matrix<T>& a,
                         const mat::batch_dense<T>& b,
                         mat::batch_dense<T>& x, index_type launch_retries,
                         index_type& retries_used)
{
    const index_type n = b.num_batch_items();
    for (index_type attempt = 0;; ++attempt) {
        try {
            if (stage.direct) {
                const mat::batch_csr<T> csr = as_csr(a);
                log::batch_log lg(n);
                run_dense_lu(q, csr, b, x, lg, {0, n});
                return lg;
            }
            return solve(q, a, b, x, stage.opts).log;
        } catch (const xpu::device_error&) {
            if (attempt >= launch_retries) {
                log::batch_log lg(n);
                for (index_type i = 0; i < n; ++i) {
                    lg.record(i, 0, 0.0, log::solve_status::device_fault);
                }
                return lg;
            }
            ++retries_used;
        }
    }
}

/// Demotes claimed convergences whose explicit residual violates the
/// (slackened) stop target to `device_fault` — the silent-corruption
/// detector. Returns how many systems were demoted.
template <typename T>
index_type verify_converged(const batch_matrix<T>& a,
                            const mat::batch_dense<T>& b,
                            const mat::batch_dense<T>& x,
                            const stop::criterion& crit, double slack,
                            log::batch_log& lg)
{
    const std::vector<double> explicit_res = residual_norms(a, b, x);
    const std::vector<double> rhs_norms = item_norms(b);
    index_type demoted = 0;
    for (index_type i = 0; i < lg.num_systems(); ++i) {
        if (lg.status(i) != log::solve_status::converged) {
            continue;
        }
        const std::size_t si = static_cast<std::size_t>(i);
        const double target =
            crit.type == stop::tolerance_type::absolute
                ? crit.tolerance
                : crit.tolerance * rhs_norms[si];
        // `!(<=)` also demotes NaN explicit residuals. A zero target
        // (zero rhs) accepts only an exact zero residual, which the
        // defined x = 0 short circuit produces.
        if (!(explicit_res[si] <= std::max(target * slack, target))) {
            lg.record(i, lg.iterations(i), explicit_res[si],
                      log::solve_status::device_fault);
            ++demoted;
        }
    }
    return demoted;
}

}  // namespace

resilient_options default_chain(const solve_options& primary)
{
    resilient_options r;
    r.chain.push_back({primary, false});

    solve_options bicg = primary;
    bicg.solver = solver_type::bicgstab;
    bicg.criterion.max_iterations =
        std::max<index_type>(2 * primary.criterion.max_iterations, 200);
    r.chain.push_back({bicg, false});

    solve_options gm = primary;
    gm.solver = solver_type::gmres;
    gm.gmres_restart = std::max<index_type>(2 * primary.gmres_restart, 30);
    gm.criterion.max_iterations = bicg.criterion.max_iterations;
    r.chain.push_back({gm, false});

    fallback_stage direct_stage;
    direct_stage.opts = primary;
    direct_stage.direct = true;
    r.chain.push_back(direct_stage);
    return r;
}

template <typename T>
resilient_result solve_resilient(xpu::queue& q, const batch_matrix<T>& a,
                                 const mat::batch_dense<T>& b,
                                 mat::batch_dense<T>& x,
                                 const resilient_options& opts)
{
    BATCHLIN_ENSURE_MSG(!opts.chain.empty(),
                        "resilient chain must have at least one stage");
    const double start = now_seconds();
    const index_type n = b.num_batch_items();

    resilient_result out;
    out.log = log::batch_log(n);
    out.history.resize(static_cast<std::size_t>(n));

    // Stage 0 runs the whole batch in place, so a healthy batch takes the
    // exact path a plain solve() takes, plus one status scan.
    const fallback_stage& primary = opts.chain.front();
    log::batch_log stage_log =
        run_stage(q, primary, a, b, x, opts.launch_retries,
                  out.launch_retries_used);
    if (opts.verify_residuals) {
        verify_converged(a, b, x, primary.opts.criterion, opts.verify_slack,
                         stage_log);
    }

    std::vector<index_type> scope;  // systems still unhealthy
    for (index_type i = 0; i < n; ++i) {
        out.history[static_cast<std::size_t>(i)].push_back(
            {0, stage_log.status(i), stage_log.iterations(i),
             stage_log.residual_norm(i)});
        out.log.record(i, stage_log.iterations(i),
                       stage_log.residual_norm(i), stage_log.status(i));
        if (stage_log.status(i) == log::solve_status::converged) {
            ++out.first_try;
        } else {
            scope.push_back(i);
        }
    }

    for (index_type stage_idx = 1;
         stage_idx < static_cast<index_type>(opts.chain.size()) &&
         !scope.empty();
         ++stage_idx) {
        const fallback_stage& stage =
            opts.chain[static_cast<std::size_t>(stage_idx)];
        batch_matrix<T> sub_a = gather_matrix(a, scope);
        mat::batch_dense<T> sub_b = gather_dense(b, scope);
        // Zero initial guess: the unhealthy iterate may carry poisoned
        // values that would instantly re-trip the non-finite guards.
        mat::batch_dense<T> sub_x(static_cast<index_type>(scope.size()),
                                  x.rows(), x.cols());

        log::batch_log sub_log =
            run_stage(q, stage, sub_a, sub_b, sub_x, opts.launch_retries,
                      out.launch_retries_used);
        if (opts.verify_residuals) {
            verify_converged(sub_a, sub_b, sub_x, stage.opts.criterion,
                             opts.verify_slack, sub_log);
        }

        std::vector<index_type> still_unhealthy;
        for (index_type j = 0;
             j < static_cast<index_type>(scope.size()); ++j) {
            const index_type i = scope[static_cast<std::size_t>(j)];
            out.history[static_cast<std::size_t>(i)].push_back(
                {stage_idx, sub_log.status(j), sub_log.iterations(j),
                 sub_log.residual_norm(j)});
            out.log.record(i, sub_log.iterations(j),
                           sub_log.residual_norm(j), sub_log.status(j));
            if (sub_log.status(j) == log::solve_status::converged) {
                std::copy_n(sub_x.item_values(j), x.item_size(),
                            x.item_values(i));
                ++out.recovered;
            } else {
                still_unhealthy.push_back(i);
            }
        }
        scope = std::move(still_unhealthy);
    }

    out.failed = static_cast<index_type>(scope.size());
    out.wall_seconds = now_seconds() - start;
    return out;
}

template resilient_result solve_resilient<float>(
    xpu::queue&, const batch_matrix<float>&, const mat::batch_dense<float>&,
    mat::batch_dense<float>&, const resilient_options&);
template resilient_result solve_resilient<double>(
    xpu::queue&, const batch_matrix<double>&,
    const mat::batch_dense<double>&, mat::batch_dense<double>&,
    const resilient_options&);

}  // namespace batchlin::solver
