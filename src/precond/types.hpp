// Preconditioner type tags shared by the dispatch layer.
#pragma once

#include <string>

#include "util/math.hpp"

namespace batchlin::precond {

/// Workspace slots (in compute-type T units) needed to hold `elems`
/// storage-type S payload elements. The preconditioner workspace is a
/// T-typed span carved out by the planner; reduced-precision payloads
/// (fp32 factors, inverse diagonals, ISAI values) are packed into its
/// leading bytes via xpu::reinterpret_span, so fp32 payloads consume half
/// the planned slots — which is exactly the SLM-pressure relief the
/// storage policy is after.
template <typename T, typename S>
constexpr size_type packed_elems(size_type elems)
{
    return (elems * sizeof(S) + sizeof(T) - 1) / sizeof(T);
}

/// Runtime-selectable preconditioner kinds (paper Table 3).
enum class type {
    /// No preconditioning (M = I).
    none,
    /// Scalar Jacobi: M = diag(A)^{-1}.
    jacobi,
    /// Incomplete LU with zero fill-in, applied by two sparse
    /// triangular solves.
    ilu,
    /// Incomplete sparse approximate inverse on the pattern of A,
    /// applied as an SpMV (requires BatchCsr, Table 3).
    isai,
    /// Block-Jacobi: inverse of the block diagonal, applied as small
    /// dense solves on vector segments (requires BatchCsr; library
    /// extension beyond Table 3, a Ginkgo batched feature).
    block_jacobi,
};

inline std::string to_string(type t)
{
    switch (t) {
    case type::none:
        return "none";
    case type::jacobi:
        return "jacobi";
    case type::ilu:
        return "ilu";
    case type::isai:
        return "isai";
    case type::block_jacobi:
        return "block-jacobi";
    }
    return "?";
}

}  // namespace batchlin::precond
