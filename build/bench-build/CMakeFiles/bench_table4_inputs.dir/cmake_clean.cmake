file(REMOVE_RECURSE
  "../bench/bench_table4_inputs"
  "../bench/bench_table4_inputs.pdb"
  "CMakeFiles/bench_table4_inputs.dir/bench_table4_inputs.cpp.o"
  "CMakeFiles/bench_table4_inputs.dir/bench_table4_inputs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_inputs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
