#include "precond/block_jacobi.hpp"

#include <cmath>

#include "util/error.hpp"

namespace batchlin::precond {

namespace {

index_type find_in_row(const std::vector<index_type>& row_ptrs,
                       const std::vector<index_type>& col_idxs,
                       index_type row, index_type col)
{
    index_type lo = row_ptrs[row];
    index_type hi = row_ptrs[row + 1] - 1;
    while (lo <= hi) {
        const index_type mid = lo + (hi - lo) / 2;
        if (col_idxs[mid] == col) {
            return mid;
        }
        if (col_idxs[mid] < col) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return -1;
}

}  // namespace

template <typename T, typename S>
block_jacobi<T, S>::block_jacobi(const mat::batch_csr<T>& a,
                                 index_type block_size)
    : rows_(a.rows()), block_size_(block_size)
{
    BATCHLIN_ENSURE_MSG(block_size >= 1, "block size must be positive");
    BATCHLIN_ENSURE_MSG(a.rows() == a.cols(),
                        "block-Jacobi requires square systems");
    const index_type blocks = ceil_div(rows_, block_size_);
    block_starts_.resize(blocks + 1);
    for (index_type b = 0; b <= blocks; ++b) {
        block_starts_[b] = std::min(b * block_size_, rows_);
    }
    factor_offsets_.resize(blocks);
    gather_offsets_.resize(blocks);
    size_type gather_total = 0;
    factor_elems_ = 0;
    for (index_type b = 0; b < blocks; ++b) {
        const index_type bs = block_starts_[b + 1] - block_starts_[b];
        factor_offsets_[b] = factor_elems_;
        gather_offsets_[b] = gather_total;
        factor_elems_ += static_cast<size_type>(bs) * bs;
        gather_total += static_cast<size_type>(bs) * bs;
    }
    gather_pos_.assign(gather_total, -1);
    for (index_type b = 0; b < blocks; ++b) {
        const index_type begin = block_starts_[b];
        const index_type bs = block_starts_[b + 1] - begin;
        index_type* table = gather_pos_.data() + gather_offsets_[b];
        bool any_diag = false;
        for (index_type i = 0; i < bs; ++i) {
            for (index_type j = 0; j < bs; ++j) {
                table[i * bs + j] = find_in_row(a.row_ptrs(), a.col_idxs(),
                                                begin + i, begin + j);
                any_diag = any_diag || (i == j && table[i * bs + j] >= 0);
            }
        }
        BATCHLIN_ENSURE_MSG(any_diag,
                            "block-Jacobi: a diagonal block has no entry "
                            "inside the sparsity pattern");
    }
}

template <typename T, typename S>
typename block_jacobi<T, S>::applier block_jacobi<T, S>::generate(
    xpu::group& g, const blas::csr_view<T, S>& a, xpu::dspan<T> work) const
{
    BATCHLIN_ENSURE_DIMS(a.rows == rows_, "matrix does not match metadata");
    // The dense diagonal blocks are gathered, factorized, and stored in
    // the storage precision S, packed into the T-typed workspace.
    xpu::dspan<S> fwork = xpu::reinterpret_span<S>(
        work, static_cast<index_type>(factor_elems_));
    double flops = 0.0;
    for (index_type b = 0; b < num_blocks(); ++b) {
        const index_type bs = block_starts_[b + 1] - block_starts_[b];
        const index_type* table = gather_pos_.data() + gather_offsets_[b];
        S* dense = fwork.data + factor_offsets_[b];
        // Gather the diagonal block (zeros outside the pattern).
        for (index_type e = 0; e < bs * bs; ++e) {
            dense[e] =
                table[e] >= 0 ? static_cast<S>(a.values[table[e]]) : S{0};
        }
        // In-place Doolittle LU without pivoting: the blocks inherit the
        // diagonal dominance of the problem space.
        for (index_type k = 0; k < bs; ++k) {
            BATCHLIN_ENSURE_MSG(dense[k * bs + k] != S{0},
                                "block-Jacobi: zero pivot (block not "
                                "diagonally dominant)");
            const S inv_pivot = S{1} / dense[k * bs + k];
            for (index_type i = k + 1; i < bs; ++i) {
                const S factor = dense[i * bs + k] * inv_pivot;
                dense[i * bs + k] = factor;
                for (index_type j = k + 1; j < bs; ++j) {
                    dense[i * bs + j] -= factor * dense[k * bs + j];
                }
            }
        }
        flops += (2.0 / 3.0) * bs * bs * bs;
    }
    g.barrier();
    g.stats().flops += flops;
    blas::detail::charge_read(g, a.values,
                              static_cast<index_type>(factor_elems_));
    blas::detail::charge_write(g, fwork,
                               static_cast<index_type>(factor_elems_));
    // Implicit view-of-const conversion keeps the sanitizer tag attached
    // to the factor storage the applier references.
    return {this, fwork};
}

template <typename T, typename S>
void block_jacobi<T, S>::applier::apply(xpu::group& g,
                                        xpu::dspan<const T> r,
                                        xpu::dspan<T> z) const
{
    const block_jacobi& meta = *parent;
    double flops = 0.0;
    // Blocks are independent: on hardware each is handled by one
    // sub-group; the simulator sweeps them in order.
    for (index_type b = 0; b < meta.num_blocks(); ++b) {
        const index_type begin = meta.block_starts_[b];
        const index_type bs = meta.block_starts_[b + 1] - begin;
        const S* dense = factors.data + meta.factor_offsets_[b];
        // Forward substitution (unit lower), straight into z.
        for (index_type i = 0; i < bs; ++i) {
            T sum = r[begin + i];
            for (index_type j = 0; j < i; ++j) {
                sum -= dense[i * bs + j] * z[begin + j];
            }
            z[begin + i] = sum;
        }
        // Backward substitution (upper).
        for (index_type i = bs - 1; i >= 0; --i) {
            T sum = z[begin + i];
            for (index_type j = i + 1; j < bs; ++j) {
                sum -= dense[i * bs + j] * z[begin + j];
            }
            z[begin + i] = sum / dense[i * bs + i];
        }
        flops += 2.0 * bs * bs;
    }
    g.barrier();
    g.stats().flops += flops;
    blas::detail::charge_read(
        g, factors, static_cast<index_type>(meta.factor_elems_));
    blas::detail::charge_read(g, r, meta.rows_);
    blas::detail::charge_write(g, z, meta.rows_);
}

template class block_jacobi<float>;
template class block_jacobi<double>;
template class block_jacobi<double, float>;

}  // namespace batchlin::precond
