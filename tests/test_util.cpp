// Unit tests for src/util: math helpers, RNG determinism, dense LU.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/dense_lu.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace bl = batchlin;

TEST(Math, CeilDiv)
{
    EXPECT_EQ(bl::ceil_div(0, 16), 0);
    EXPECT_EQ(bl::ceil_div(1, 16), 1);
    EXPECT_EQ(bl::ceil_div(16, 16), 1);
    EXPECT_EQ(bl::ceil_div(17, 16), 2);
    EXPECT_EQ(bl::ceil_div(32, 16), 2);
}

TEST(Math, RoundUp)
{
    EXPECT_EQ(bl::round_up(0, 16), 0);
    EXPECT_EQ(bl::round_up(22, 16), 32);   // drm19 rows on sub-group 16
    EXPECT_EQ(bl::round_up(33, 16), 48);   // gri12
    EXPECT_EQ(bl::round_up(54, 16), 64);   // gri30 / dodecane_lu
    EXPECT_EQ(bl::round_up(144, 16), 144); // isooctane divides evenly
    EXPECT_EQ(bl::round_up(33, 32), 64);
}

TEST(Math, Close)
{
    EXPECT_TRUE(bl::close(1.0, 1.0 + 1e-13, 1e-12));
    EXPECT_FALSE(bl::close(1.0, 1.1, 1e-12));
}

TEST(Error, EnsureThrowsWithLocation)
{
    try {
        BATCHLIN_ENSURE_MSG(false, "broken invariant");
        FAIL() << "expected throw";
    } catch (const bl::error& e) {
        EXPECT_NE(std::string(e.what()).find("broken invariant"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_util.cpp"),
                  std::string::npos);
    }
}

TEST(Error, DimensionMismatchIsDistinctType)
{
    EXPECT_THROW(BATCHLIN_ENSURE_DIMS(false, "dims"),
                 bl::dimension_mismatch);
    EXPECT_THROW(BATCHLIN_UNSUPPORTED("combo"),
                 bl::unsupported_combination);
}

TEST(Rng, DeterministicAcrossInstances)
{
    bl::rng a(123);
    bl::rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    bl::rng a(1);
    bl::rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 16 && !any_diff; ++i) {
        any_diff = a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, DistinctSortedProducesDistinctSortedValues)
{
    bl::rng gen(9);
    const auto draw = gen.distinct_sorted(0, 99, 40);
    ASSERT_EQ(draw.size(), 40u);
    for (std::size_t i = 1; i < draw.size(); ++i) {
        EXPECT_LT(draw[i - 1], draw[i]);
    }
    for (bl::index_type v : draw) {
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 99);
    }
}

TEST(Rng, DistinctSortedFullRange)
{
    bl::rng gen(5);
    const auto draw = gen.distinct_sorted(3, 7, 5);
    const std::vector<bl::index_type> expect{3, 4, 5, 6, 7};
    EXPECT_EQ(draw, expect);
}

TEST(Rng, DistinctSortedRejectsOversizedRequest)
{
    bl::rng gen(5);
    EXPECT_THROW(gen.distinct_sorted(0, 3, 5), bl::error);
}

TEST(DenseLu, SolvesKnownSystem)
{
    // [[2,1],[1,3]] x = [3,5] -> x = [4/5, 7/5].
    std::vector<double> a{2, 1, 1, 3};
    std::vector<double> b{3, 5};
    std::vector<double> x;
    ASSERT_TRUE(bl::dense_solve<double>(2, a, b, x));
    EXPECT_NEAR(x[0], 0.8, 1e-14);
    EXPECT_NEAR(x[1], 1.4, 1e-14);
}

TEST(DenseLu, PivotingHandlesZeroLeadingEntry)
{
    std::vector<double> a{0, 1, 1, 0};
    std::vector<double> b{2, 3};
    std::vector<double> x;
    ASSERT_TRUE(bl::dense_solve<double>(2, a, b, x));
    EXPECT_NEAR(x[0], 3.0, 1e-14);
    EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(DenseLu, DetectsSingularMatrix)
{
    std::vector<double> a{1, 2, 2, 4};
    std::vector<double> b{1, 2};
    std::vector<double> x;
    EXPECT_FALSE(bl::dense_solve<double>(2, a, b, x));
}

TEST(DenseLu, RandomRoundTrip)
{
    const bl::index_type n = 24;
    bl::rng gen(31);
    std::vector<double> a(n * n);
    for (auto& v : a) {
        v = gen.uniform(-1.0, 1.0);
    }
    for (bl::index_type i = 0; i < n; ++i) {
        a[i * n + i] += n;  // dominance avoids accidental singularity
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) {
        v = gen.uniform(-2.0, 2.0);
    }
    std::vector<double> b(n, 0.0);
    for (bl::index_type i = 0; i < n; ++i) {
        for (bl::index_type j = 0; j < n; ++j) {
            b[i] += a[i * n + j] * x_true[j];
        }
    }
    std::vector<double> x;
    ASSERT_TRUE(bl::dense_solve<double>(n, a, b, x));
    for (bl::index_type i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], x_true[i], 1e-10);
    }
}

TEST(DenseLu, ConditionNumberOfIdentityIsOne)
{
    std::vector<double> eye{1, 0, 0, 1};
    EXPECT_NEAR(bl::condition_number_inf<double>(2, eye), 1.0, 1e-12);
}

TEST(DenseLu, ConditionNumberDetectsIllConditioning)
{
    std::vector<double> a{1, 1, 1, 1 + 1e-10};
    EXPECT_GT(bl::condition_number_inf<double>(2, a), 1e9);
}

TEST(DenseLu, FloatInstantiationWorks)
{
    std::vector<float> a{4, 1, 1, 3};
    std::vector<float> b{1, 2};
    std::vector<float> x;
    ASSERT_TRUE(bl::dense_solve<float>(2, a, b, x));
    EXPECT_NEAR(x[0], 1.0f / 11.0f, 1e-6f);
    EXPECT_NEAR(x[1], 7.0f / 11.0f, 1e-6f);
}
