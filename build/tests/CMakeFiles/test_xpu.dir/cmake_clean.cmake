file(REMOVE_RECURSE
  "CMakeFiles/test_xpu.dir/test_xpu.cpp.o"
  "CMakeFiles/test_xpu.dir/test_xpu.cpp.o.d"
  "test_xpu"
  "test_xpu.pdb"
  "test_xpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
