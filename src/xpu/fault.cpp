#include "xpu/fault.hpp"

#include "xpu/group.hpp"

namespace batchlin::xpu {

void slm_arena::check_alloc_fault()
{
    if (alloc_fail_countdown_-- == 0) {
        throw device_error(__FILE__, __LINE__,
                           "injected fault: SLM allocation failed "
                           "(xpu::fault_kind::alloc_fail)");
    }
}

void group::fault_strike()
{
    ++fault_barriers_;
    if (fault_barriers_ < fault_event_->phase) {
        return;
    }
    std::byte* base = slm_.storage();
    size_type bytes = slm_.used();
    if (fault_event_->target == fault_target::spill &&
        fault_spill_ != nullptr && fault_spill_bytes_ > 0) {
        base = fault_spill_;
        bytes = fault_spill_bytes_;
    }
    const fault_event ev = *fault_event_;
    fault_event_ = nullptr;  // strike exactly once
    if (base == nullptr || bytes < 8) {
        return;  // nothing allocated yet: the fault lands in the void
    }
    // 8-byte aligned offset inside the region, chosen from the seed so
    // reruns corrupt the identical spot.
    const std::uint64_t pick =
        fault_mix(fault_seed_, (static_cast<std::uint64_t>(id_) << 20) ^
                                   static_cast<std::uint64_t>(ev.phase));
    const size_type slots = bytes / 8;
    std::byte* hit =
        base + static_cast<size_type>(
                   pick % static_cast<std::uint64_t>(slots)) *
                   8;
    if (ev.mode == poison_mode::nan) {
        // 0xFF..FF is a (negative, quiet) NaN for float and double.
        for (int i = 0; i < 8; ++i) {
            hit[i] = std::byte{0xff};
        }
    } else {
        hit[static_cast<size_type>(pick >> 32) % 8] ^=
            std::byte{static_cast<unsigned char>(
                1u << (static_cast<unsigned>(pick >> 40) % 8u))};
    }
}

std::uint64_t fault_mix(std::uint64_t a, std::uint64_t b)
{
    // splitmix64-style avalanche over the xor of both inputs.
    std::uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

fault_plan random_fault_plan(unsigned seed,
                            const fault_schedule_config& config)
{
    BATCHLIN_ENSURE_MSG(config.fault_rate >= 0.0 &&
                            config.fault_rate <= 1.0,
                        "fault rate must be a probability");
    BATCHLIN_ENSURE_MSG(config.num_groups > 0 && config.max_phase > 0,
                        "fault schedule needs positive group and phase "
                        "ranges");
    fault_plan plan;
    plan.seed = seed;
    const auto threshold = static_cast<std::uint64_t>(
        config.fault_rate * 18446744073709551615.0);
    for (std::uint64_t launch = 0; launch < config.num_launches; ++launch) {
        const std::uint64_t roll = fault_mix(seed, launch);
        if (roll > threshold) {
            continue;
        }
        fault_event ev;
        ev.launch = launch;
        // Independent draws so the kind does not correlate with the hit
        // decision above.
        const std::uint64_t pick = fault_mix(roll, 0x600dcafe);
        switch (pick % 4) {
        case 0:
            ev.kind = fault_kind::launch_fail;
            break;
        case 1:
            ev.kind = fault_kind::alloc_fail;
            break;
        case 2:
            ev.kind = fault_kind::poison;
            ev.mode = poison_mode::nan;
            break;
        default:
            ev.kind = fault_kind::poison;
            ev.mode = poison_mode::bitflip;
            break;
        }
        ev.group = static_cast<index_type>(
            fault_mix(pick, 1) % static_cast<std::uint64_t>(
                                     config.num_groups));
        if (ev.kind == fault_kind::alloc_fail) {
            // Solver kernels bind a handful of workspace slots; failing
            // one of the first few hits every kernel shape.
            ev.phase = static_cast<index_type>(fault_mix(pick, 2) % 4);
        } else {
            ev.phase = 1 + static_cast<index_type>(
                               fault_mix(pick, 2) %
                               static_cast<std::uint64_t>(
                                   config.max_phase));
        }
        ev.target = fault_mix(pick, 3) % 2 == 0 ? fault_target::slm
                                                : fault_target::spill;
        plan.events.push_back(ev);
    }
    return plan;
}

std::string to_string(fault_kind kind)
{
    switch (kind) {
    case fault_kind::launch_fail:
        return "launch_fail";
    case fault_kind::alloc_fail:
        return "alloc_fail";
    case fault_kind::poison:
        return "poison";
    case fault_kind::device_lost:
        return "device_lost";
    case fault_kind::hang:
        return "hang";
    }
    return "?";
}

std::string to_string(fault_target target)
{
    return target == fault_target::slm ? "slm" : "spill";
}

std::string to_string(poison_mode mode)
{
    return mode == poison_mode::nan ? "nan" : "bitflip";
}

}  // namespace batchlin::xpu
