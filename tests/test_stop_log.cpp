// Unit tests for stopping criteria and the per-system convergence logger.
#include <gtest/gtest.h>

#include "log/logger.hpp"
#include "stop/criterion.hpp"
#include "util/error.hpp"

namespace bl = batchlin;
using namespace batchlin::stop;
using batchlin::log::batch_log;

TEST(Criterion, AbsoluteIgnoresRhsNorm)
{
    const criterion c = absolute(1e-6);
    EXPECT_TRUE(is_converged(c, 1e-7, 1000.0));
    EXPECT_TRUE(is_converged(c, 1e-6, 0.0));
    EXPECT_FALSE(is_converged(c, 1e-5, 1000.0));
}

TEST(Criterion, RelativeScalesWithRhsNorm)
{
    const criterion c = relative(1e-6);
    EXPECT_TRUE(is_converged(c, 1e-4, 1000.0));   // 1e-4 <= 1e-6 * 1e3
    EXPECT_FALSE(is_converged(c, 1e-2, 1000.0));
    EXPECT_FALSE(is_converged(c, 1e-7, 0.0));     // zero rhs: only r=0 passes
    EXPECT_TRUE(is_converged(c, 0.0, 0.0));
}

TEST(Criterion, ValidateRejectsBadConfigs)
{
    criterion c = relative(0.0);
    EXPECT_THROW(c.validate(), bl::error);
    c = relative(1e-6, 0);
    EXPECT_THROW(c.validate(), bl::error);
    c = relative(1e-6, 10);
    EXPECT_NO_THROW(c.validate());
}

TEST(Criterion, FactoriesSetFields)
{
    const criterion a = absolute(1e-8, 50);
    EXPECT_EQ(a.type, tolerance_type::absolute);
    EXPECT_EQ(a.tolerance, 1e-8);
    EXPECT_EQ(a.max_iterations, 50);
    EXPECT_EQ(to_string(a.type), "absolute");
    EXPECT_EQ(to_string(relative(1e-3).type), "relative");
}

TEST(Logger, RecordsPerSystem)
{
    batch_log log(4);
    log.record(0, 10, 1e-11, true);
    log.record(1, 200, 3e-4, false);
    log.record(2, 15, 2e-12, true);
    log.record(3, 12, 5e-12, true);
    EXPECT_EQ(log.num_systems(), 4);
    EXPECT_EQ(log.num_converged(), 3);
    EXPECT_EQ(log.iterations(1), 200);
    EXPECT_FALSE(log.converged(1));
    EXPECT_TRUE(log.converged(2));
    EXPECT_EQ(log.min_iterations(), 10);
    EXPECT_EQ(log.max_iterations(), 200);
    EXPECT_NEAR(log.mean_iterations(), (10 + 200 + 15 + 12) / 4.0, 1e-12);
    EXPECT_EQ(log.max_residual_norm(), 3e-4);
}

TEST(Logger, EmptyLogIsWellDefined)
{
    batch_log log;
    EXPECT_EQ(log.num_systems(), 0);
    EXPECT_EQ(log.num_converged(), 0);
    EXPECT_EQ(log.min_iterations(), 0);
    EXPECT_EQ(log.max_iterations(), 0);
    EXPECT_EQ(log.mean_iterations(), 0.0);
    EXPECT_EQ(log.max_residual_norm(), 0.0);
}
