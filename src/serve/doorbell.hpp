// serve::doorbell — the futex parking protocol of the persistent-worker
// admission ring.
//
// Producers push into a lock-free ring and must not take a mutex just to
// wake a sleeping consumer; consumers must not burn a core polling an
// empty ring. The doorbell closes the classic sleep/wake race with a
// Dekker-style seq_cst handshake:
//
//   producer: publish work (ring_pending seq_cst increment, then push)
//             -> if parked > 0: bump word (release) + futex wake
//   consumer: heard = word (acquire)
//             -> parked++ (seq_cst)
//             -> re-check "work pending / stopping" AND word == heard
//             -> futex_wait(word, heard)
//             -> parked--
//
// Either the producer's pending-increment is visible to the consumer's
// re-check (the consumer does not sleep), or the consumer's parked++ is
// visible to the producer's parked check (the producer rings). The
// generation re-check `word == heard` closes the remaining window where
// the wake lands between the re-check and the sleep: the bump changes
// the word, so the stale `heard` makes futex_wait return immediately.
// PR 9's satellite audit walked these paths; the conc:: model checker
// now proves them (and their mutants fail) in tests/test_conc.cpp.
//
// Extracted from solve_service so the model-checked property drives the
// production protocol, not a transcript of it.
#pragma once

#include <cstdint>
#include <utility>

#include "conc/shim.hpp"
#include "serve/futex.hpp"

namespace batchlin::serve {

struct doorbell {
    /// Wake generation counter; the futex word workers sleep on.
    conc::atomic<std::uint32_t> word{0};
    /// Number of workers registered as parked (or about to re-check).
    conc::atomic<int> parked{0};

    /// Producer side: ring only when somebody may be sleeping. The
    /// caller must have published its work with seq_cst ordering (see
    /// the file comment) *before* calling.
    void ring()
    {
        if (parked.load(std::memory_order_seq_cst) > 0) {
            ring_always();
        }
    }

    /// Unconditional ring — shutdown paths use this so a worker parking
    /// concurrently with stop() always observes a fresh generation.
    void ring_always()
    {
        word.fetch_add(1, std::memory_order_release);
        detail::futex_wake_all(word);
    }

    /// Consumer side: parks until the next ring unless `keep_awake()`
    /// (work pending, stopping, ...) or a generation change says not to.
    /// May return spuriously; callers re-check their predicate in their
    /// poll loop, exactly like a raw futex wait.
    template <typename KeepAwake>
    void park(KeepAwake&& keep_awake)
    {
        const std::uint32_t heard = word.load(std::memory_order_acquire);
        parked.fetch_add(1, std::memory_order_seq_cst);
        if (!keep_awake() &&
            word.load(std::memory_order_acquire) == heard) {
            detail::futex_wait(word, heard);
        }
        parked.fetch_sub(1, std::memory_order_seq_cst);
    }
};

}  // namespace batchlin::serve
