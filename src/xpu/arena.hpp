// Shared-local-memory (SLM) arena.
//
// Each work-group owns one arena whose capacity equals the device's SLM
// budget per work-group (128 KB per Xe-core on the PVC, §2.2). The solver's
// SLM planner (§3.5) decides which vectors are placed here; allocation is a
// bump pointer because the set of allocations is fixed for the lifetime of
// one solver kernel.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/fault.hpp"
#include "xpu/span.hpp"

namespace batchlin::xpu {

/// Per-work-group bump allocator standing in for shared local memory.
class slm_arena {
public:
    explicit slm_arena(size_type capacity_bytes);

    /// Allocates `n` elements of T, aligned to alignof(T). Throws when the
    /// request exceeds the remaining capacity — the planner must never let
    /// this happen, so a throw here indicates a planner bug.
    template <typename T>
    dspan<T> alloc(index_type n)
    {
        if (alloc_fail_countdown_ >= 0) {
            // Disarmed (the default, -1) costs one load+compare; the
            // countdown bookkeeping and the throw live out of line.
            check_alloc_fault();
        }
        const size_type offset = align_up(used_, alignof(T));
        const size_type bytes = static_cast<size_type>(n) * sizeof(T);
        BATCHLIN_ENSURE_MSG(offset + bytes <= capacity_,
                            "SLM arena overflow: planner allocated beyond "
                            "the device SLM budget");
        used_ = offset + bytes;
        if (used_ > high_water_) {
            high_water_ = used_;
        }
        dspan<T> out{reinterpret_cast<T*>(buffer_.data() + offset), n,
                     mem_space::slm};
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr && checker_->active()) {
            out.tag = checker_->register_slm_region(bytes);
        }
#endif
        return out;
    }

    /// Releases all allocations (start of the next work-group's kernel).
    void reset()
    {
        used_ = 0;
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr && checker_->active()) {
            checker_->on_slm_reset();
        }
#endif
    }

#ifdef BATCHLIN_XPU_CHECK
    /// Attaches the sanitizer for the coming launch (nullptr detaches);
    /// subsequent allocations hand out tagged, shadow-tracked spans.
    void set_checker(check::group_checker* checker) { checker_ = checker; }
#endif

    /// Prepares a pooled arena for the next kernel launch: releases all
    /// allocations AND restarts the high-water tracking, so a reused arena
    /// reports exactly the footprint a freshly constructed one would. The
    /// queue calls this once per launch per thread.
    void begin_launch()
    {
        used_ = 0;
        high_water_ = 0;
        alloc_fail_countdown_ = -1;
    }

    /// Arms the fault injector: the `nth` (0-based) allocation after this
    /// call throws `device_error`. Negative disarms. The queue arms the
    /// arena only for the faulted group and disarms right after it.
    void arm_alloc_failure(index_type nth) { alloc_fail_countdown_ = nth; }

    /// Armed-countdown slow path of `alloc` (fault.cpp).
    void check_alloc_fault();

    /// Raw backing storage, for the fault injector's poison strikes (the
    /// simulator analogue of a physical-memory fault, which does not go
    /// through the allocation interface either).
    std::byte* storage() { return buffer_.data(); }

    size_type capacity() const { return capacity_; }
    size_type used() const { return used_; }
    /// Largest concurrent footprint seen since construction; this is the
    /// per-work-group SLM requirement that limits occupancy.
    size_type high_water() const { return high_water_; }

private:
    static size_type align_up(size_type value, size_type alignment)
    {
        return (value + alignment - 1) / alignment * alignment;
    }

    std::vector<std::byte> buffer_;
    size_type capacity_;
    size_type used_ = 0;
    size_type high_water_ = 0;
    index_type alloc_fail_countdown_ = -1;
#ifdef BATCHLIN_XPU_CHECK
    check::group_checker* checker_ = nullptr;
#endif
};

}  // namespace batchlin::xpu
