// batchlin — batched sparse iterative solvers with a SYCL-like execution
// model and an analytic GPU performance model.
//
// Umbrella header: includes the entire public API. Fine-grained headers
// are available under the src/ module directories (util/, xpu/, matrix/,
// blas/, precond/, stop/, log/, solver/, serve/, shard/, perfmodel/,
// workload/).
#pragma once

// Utilities
#include "util/dense_lu.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

// Execution-model simulator (SYCL-like queues, work-groups, SLM)
#include "xpu/arena.hpp"
#include "xpu/counters.hpp"
#include "xpu/fault.hpp"
#include "xpu/graph.hpp"
#include "xpu/group.hpp"
#include "xpu/policy.hpp"
#include "xpu/queue.hpp"
#include "xpu/span.hpp"

// Batched matrix formats
#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/conversions.hpp"
#include "matrix/io.hpp"
#include "matrix/operations.hpp"
#include "matrix/properties.hpp"

// Device-side building blocks
#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"

// Preconditioners
#include "precond/block_jacobi.hpp"
#include "precond/identity.hpp"
#include "precond/ilu0.hpp"
#include "precond/isai.hpp"
#include "precond/jacobi.hpp"
#include "precond/types.hpp"

// Stopping criteria and logging
#include "log/logger.hpp"
#include "stop/criterion.hpp"

// Solvers and dispatch
#include "solver/assemble.hpp"
#include "solver/dispatch.hpp"
#include "solver/handle.hpp"
#include "solver/launch.hpp"
#include "solver/options.hpp"
#include "solver/record.hpp"
#include "solver/refined.hpp"
#include "solver/direct.hpp"
#include "solver/resilient.hpp"
#include "solver/residual.hpp"
#include "solver/trsv.hpp"
#include "solver/workspace.hpp"

// Dynamic-batching solve service
#include "serve/service.hpp"
#include "serve/stats.hpp"

// Multi-device sharded serving (device registry, cost-model routing)
#include "shard/lane.hpp"
#include "shard/registry.hpp"
#include "shard/router.hpp"

// Performance model and roofline analysis
#include "perfmodel/cluster.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/device_spec.hpp"
#include "perfmodel/roofline.hpp"

// Workload generators
#include "workload/chemistry.hpp"
#include "workload/replicate.hpp"
#include "workload/stencil.hpp"
