#include "workload/chemistry.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/replicate.hpp"

namespace batchlin::work {

std::vector<mechanism> pele_mechanisms()
{
    // Table 4, row for row.
    return {
        {"drm19", 67, 22, 438},
        {"gri12", 73, 33, 978},
        {"gri30", 90, 54, 2560},
        {"dodecane_lu", 78, 54, 2332},
        {"isooctane", 72, 144, 6135},
    };
}

mechanism mechanism_by_name(const std::string& name)
{
    for (const mechanism& m : pele_mechanisms()) {
        if (m.name == name) {
            return m;
        }
    }
    BATCHLIN_ENSURE_MSG(false, "unknown mechanism: " + name);
    return {};
}

namespace {

/// Builds the shared sparsity pattern with exactly `mech.nnz` entries:
/// full diagonal, dense last row and last column (temperature coupling),
/// and deterministic pseudo-random species-coupling fill.
void build_pattern(const mechanism& mech, std::vector<index_type>& row_ptrs,
                   std::vector<index_type>& col_idxs, rng& gen)
{
    const index_type n = mech.rows;
    const index_type base = n + 2 * (n - 1);  // diag + last row + last col
    BATCHLIN_ENSURE_MSG(mech.nnz >= base,
                        "mechanism nnz too small for the base pattern");
    index_type remaining = mech.nnz - base;
    const index_type interior = n - 1;  // rows/cols 0..n-2
    BATCHLIN_ENSURE_MSG(
        remaining <= interior * (interior - 1),
        "mechanism nnz exceeds the available pattern positions");

    // Distribute the remaining couplings over the interior rows as evenly
    // as the per-row capacity allows (chemistry Jacobians are dense-ish and
    // fairly balanced, which is also why BatchEll suits them, §3.1).
    std::vector<std::set<index_type>> pattern(n);
    for (index_type i = 0; i < n; ++i) {
        pattern[i].insert(i);            // diagonal
        pattern[i].insert(n - 1);        // last column
    }
    for (index_type j = 0; j < n; ++j) {
        pattern[n - 1].insert(j);        // last row
    }
    std::vector<index_type> capacity(n, 0);
    for (index_type i = 0; i < interior; ++i) {
        capacity[i] = interior - static_cast<index_type>(
                                     pattern[i].size() - 1);  // excl last col
    }
    index_type cursor = 0;
    while (remaining > 0) {
        const index_type i = cursor % interior;
        ++cursor;
        if (capacity[i] <= 0) {
            continue;
        }
        // Rejection-sample a free interior position; at high fill ratios
        // fall back to a deterministic scan from a random offset so the
        // construction always terminates.
        bool placed = false;
        for (int attempt = 0; attempt < 16 && !placed; ++attempt) {
            const index_type j = gen.uniform_int(0, interior - 1);
            placed = pattern[i].insert(j).second;
        }
        if (!placed) {
            const index_type start = gen.uniform_int(0, interior - 1);
            for (index_type step = 0; step < interior && !placed; ++step) {
                const index_type j = (start + step) % interior;
                placed = pattern[i].insert(j).second;
            }
        }
        if (placed) {
            --capacity[i];
            --remaining;
        }
    }

    row_ptrs.assign(n + 1, 0);
    col_idxs.clear();
    for (index_type i = 0; i < n; ++i) {
        for (index_type j : pattern[i]) {
            col_idxs.push_back(j);
        }
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
}

}  // namespace

template <typename T>
mat::batch_csr<T> generate_mechanism(const mechanism& mech,
                                     std::uint64_t seed)
{
    rng gen(seed);
    std::vector<index_type> row_ptrs;
    std::vector<index_type> col_idxs;
    build_pattern(mech, row_ptrs, col_idxs, gen);
    mat::batch_csr<T> a(mech.num_unique, mech.rows, mech.rows,
                        std::move(row_ptrs), std::move(col_idxs));
    BATCHLIN_ENSURE_MSG(a.nnz() == mech.nnz,
                        "generated pattern does not match Table 4 nnz");

    // Values: A = I - gamma*J with J the species-coupling Jacobian. Each
    // unique matrix gets its own gamma (time-step dependent) and J draw;
    // the diagonal is lifted to strict dominance, matching the stiff-BDF
    // systems' character (non-symmetric, well conditioned after Jacobi).
    const auto& rp = a.row_ptrs();
    const auto& ci = a.col_idxs();
    for (index_type u = 0; u < mech.num_unique; ++u) {
        T* vals = a.item_values(u);
        const double gamma = gen.uniform(0.05, 0.3);
        for (index_type i = 0; i < mech.rows; ++i) {
            double off_sum = 0.0;
            index_type diag_k = -1;
            for (index_type k = rp[i]; k < rp[i + 1]; ++k) {
                if (ci[k] == i) {
                    diag_k = k;
                    continue;
                }
                const double j_entry = gen.normal(0.0, 1.0);
                vals[k] = static_cast<T>(-gamma * j_entry);
                off_sum += std::abs(static_cast<double>(vals[k]));
            }
            // diag = 1 - gamma*J_ii lifted above the off-diagonal mass.
            const double dominance = gen.uniform(1.1, 1.6);
            vals[diag_k] = static_cast<T>(1.0 + dominance * off_sum);
        }
    }
    return a;
}

template <typename T>
mat::batch_csr<T> generate_mechanism_batch(const mechanism& mech,
                                           index_type batch_size,
                                           std::uint64_t seed)
{
    const mat::batch_csr<T> unique = generate_mechanism<T>(mech, seed);
    return replicate(unique, batch_size, 1e-3, seed ^ 0x9e3779b9u);
}

template <typename T>
mat::batch_dense<T> mechanism_rhs(index_type num_items, index_type rows,
                                  std::uint64_t seed)
{
    mat::batch_dense<T> b(num_items, rows, 1);
    rng gen(seed);
    for (T& v : b.values()) {
        v = static_cast<T>(gen.uniform(-1.0, 1.0));
    }
    return b;
}

#define BATCHLIN_INSTANTIATE_CHEMISTRY(T)                                  \
    template mat::batch_csr<T> generate_mechanism<T>(const mechanism&,     \
                                                     std::uint64_t);       \
    template mat::batch_csr<T> generate_mechanism_batch<T>(                \
        const mechanism&, index_type, std::uint64_t);                      \
    template mat::batch_dense<T> mechanism_rhs<T>(index_type, index_type,  \
                                                  std::uint64_t)

BATCHLIN_INSTANTIATE_CHEMISTRY(float);
BATCHLIN_INSTANTIATE_CHEMISTRY(double);

}  // namespace batchlin::work
