// Shared infrastructure of the fused batched solver kernels.
//
// Every solver follows the same shape (paper §3.2–§3.5): one launch, one
// work-group per system, workspace vectors bound SLM-or-global according to
// the planner, preconditioner generated in-kernel, per-system convergence
// monitoring recorded to the logger. The binder below hands each kernel its
// vectors in exactly the planner's priority order.
#pragma once

#include "log/logger.hpp"
#include "matrix/batch_dense.hpp"
#include "solver/launch.hpp"
#include "solver/workspace.hpp"
#include "stop/criterion.hpp"
#include "xpu/group.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

/// Binds the planner's entries to storage for one work-group: SLM entries
/// are carved from the group's arena, spilled entries from this group's
/// slice of the global backing array. Entries MUST be taken in plan order.
template <typename T>
class workspace_binder {
public:
    workspace_binder(xpu::group& g, const slm_plan& plan, T* group_backing)
        : g_(g), plan_(plan), backing_(group_backing)
    {}

    /// Takes the next entry, which must be named `name` (kernels and the
    /// planner's priority lists must agree exactly).
    xpu::dspan<T> take(const char* name)
    {
        BATCHLIN_ENSURE_MSG(
            next_ < static_cast<index_type>(plan_.entries.size()),
            "kernel requested more workspace entries than planned");
        const slm_plan::entry& e =
            plan_.entries[static_cast<std::size_t>(next_)];
        BATCHLIN_ENSURE_MSG(e.name == name,
                            "workspace order mismatch: expected " + e.name);
        ++next_;
        const index_type elems = static_cast<index_type>(e.elems);
        if (e.in_slm) {
            return g_.slm().alloc<T>(elems);
        }
        xpu::dspan<T> span{backing_ + spill_offset_, elems,
                           xpu::mem_space::global};
        spill_offset_ += e.elems;
        return span;
    }

    /// Takes the next entry when it is named `name`; returns an empty span
    /// otherwise (used for the optional preconditioner workspace).
    xpu::dspan<T> take_optional(const char* name)
    {
        if (next_ < static_cast<index_type>(plan_.entries.size()) &&
            plan_.entries[static_cast<std::size_t>(next_)].name == name) {
            return take(name);
        }
        return {};
    }

private:
    xpu::group& g_;
    const slm_plan& plan_;
    T* backing_;
    size_type spill_offset_ = 0;
    index_type next_ = 0;
};

/// Host-side backing store for the spilled workspace of one launch: a
/// contiguous slice of `plan.global_elems_per_group` per work-group.
template <typename T>
struct spill_buffer {
    spill_buffer(const slm_plan& plan, index_type num_groups)
        : per_group(plan.global_elems_per_group),
          storage(static_cast<std::size_t>(per_group) * num_groups)
    {}

    T* for_group(index_type local_group)
    {
        return storage.data() +
               static_cast<size_type>(local_group) * per_group;
    }

    size_type per_group;
    std::vector<T> storage;
};

/// Records one system's outcome: logger entry plus iteration counter.
template <typename T>
void record_outcome(xpu::group& g, log::batch_log& logger, index_type batch,
                    index_type iterations, T residual_norm, bool converged)
{
    logger.record(batch, iterations, static_cast<double>(residual_norm),
                  converged);
    g.stats().total_iterations += static_cast<double>(iterations);
}

}  // namespace batchlin::solver
