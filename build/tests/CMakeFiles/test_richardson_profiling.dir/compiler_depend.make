# Empty compiler generated dependencies file for test_richardson_profiling.
# This may be replaced when dependencies are built.
