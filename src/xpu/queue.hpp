// Batched kernel launch queue.
//
// `queue::run_batch` is the simulator's equivalent of submitting one fused
// ND-range kernel with `num_groups` work-groups (one per batch entry,
// §3.2/§3.4). Work-groups execute concurrently across OpenMP threads; each
// thread owns a private SLM arena sized to the device budget and a private
// counter block, merged after the launch so results are independent of the
// host thread count.
//
// Launch resources are pooled: the per-thread arenas, the per-thread
// counter blocks, and the spill scratch backing all live on the queue and
// are reused across launches, so a steady-state `run_batch` performs no
// heap allocation. The paper's argument about amortizing per-launch
// overhead (§3.4) applies to the simulator host just as it does to the
// device runtime.
#pragma once

#include <omp.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/arena.hpp"
#include "xpu/counters.hpp"
#include "xpu/graph.hpp"
#include "xpu/group.hpp"
#include "xpu/policy.hpp"

namespace batchlin::xpu {

/// Half-open range of batch entries assigned to one stack under explicit
/// scaling (§2.2): entries [begin, end).
struct batch_range {
    index_type begin = 0;
    index_type end = 0;

    index_type size() const { return end - begin; }
};

/// Splits `num_items` across `num_stacks` stacks as the PVC driver does under
/// implicit scaling: contiguous, near-equal chunks.
batch_range stack_partition(index_type num_items, index_type num_stacks,
                            index_type stack_id);

/// Profiling record of one kernel launch — the simulator's analogue of a
/// SYCL event with profiling info enabled.
struct launch_record {
    counters stats;
    double wall_seconds = 0.0;
    index_type num_groups = 0;
    index_type work_group_size = 0;
    index_type sub_group_size = 0;
};

/// Grow-only scratch backing reused across the launches of one queue.
/// The solvers carve the spilled (global-memory) workspace of each launch
/// from here, keyed by the required byte size: the buffer grows when a
/// launch needs more and is reused as-is otherwise, so repeated solves of
/// the same shape stop paying a heap allocation per solve. Acquired blocks
/// are zero-filled by default, matching the freshly value-initialized
/// backing the solvers previously allocated per launch; callers that
/// provably overwrite every element they read (the serve:: hot path) may
/// opt out of the fill.
class scratch_pool {
public:
    /// Returns a block of at least `bytes` bytes, aligned for any
    /// fundamental type. The block is zero-filled when `zeroed` is true
    /// (the default); with `zeroed == false` it carries whatever the
    /// previous acquisition left behind, which is only safe when the
    /// caller writes every element before reading it. Valid until the
    /// next `acquire` on this pool.
    std::byte* acquire(size_type bytes, bool zeroed = true);

    size_type capacity() const
    {
        return static_cast<size_type>(storage_.size());
    }

private:
    std::vector<std::byte> storage_;
};

/// In-order queue bound to one execution policy (device + programming model).
///
/// Threading contract: a queue is NOT thread-safe. `run_batch` parallelizes
/// internally, but the launch resources it pools (arenas, counter blocks,
/// spill scratch, statistics) belong to one launch at a time, so two host
/// threads must never call `run_batch` on the same queue concurrently —
/// give each thread its own queue instead (`serve::solve_service` owns one
/// queue per worker for exactly this reason). Debug builds detect and
/// reject concurrent launches; release builds do not check.
class queue {
public:
    explicit queue(exec_policy policy) : policy_(std::move(policy)) {}

    const exec_policy& policy() const { return policy_; }

    /// Cumulative statistics of every launch since the last reset.
    const counters& stats() const { return stats_; }
    void reset_stats() { stats_ = counters{}; }

    /// Launches one fused batched kernel: `body(group&)` runs once per
    /// work-group, with work-group `g` solving batch entry `first_group +
    /// g.id()`. This is the single-kernel strategy of §3.4 — exactly one
    /// launch is charged regardless of batch size. `kernel_label` names the
    /// kernel in sanitizer reports (xpu::check) and costs nothing otherwise.
    template <typename KernelBody>
    void run_batch(index_type num_groups, index_type work_group_size,
                   index_type sub_group_size, KernelBody&& body,
                   index_type first_group = 0,
                   const char* kernel_label = "kernel")
    {
        BATCHLIN_ENSURE_MSG(num_groups >= 0, "negative group count");
        BATCHLIN_ENSURE_MSG(work_group_size > 0 &&
                                work_group_size <= policy_.max_work_group_size,
                            "work-group size outside device limits");
        BATCHLIN_ENSURE_MSG(work_group_size % sub_group_size == 0,
                            "SYCL requires the work-group size to be "
                            "divisible by the sub-group size");
        BATCHLIN_ENSURE_MSG(policy_.supports_sub_group(sub_group_size),
                            "sub-group size not supported by this device");
#ifndef BATCHLIN_XPU_CHECK
        // The sanitizer must never silently no-op: without the checked
        // build, a non-none level is a configuration error, not a hint.
        BATCHLIN_ENSURE_MSG(policy_.check_level == check_level::none,
                            "exec_policy::check_level requires a build "
                            "configured with -DBATCHLIN_XPU_CHECK=ON");
        (void)kernel_label;
#endif

        if (recorder_ != nullptr) {
            // Recording: capture the validated launch as a graph node.
            // Nothing executes, the launch counter does not advance, and
            // no fault fires — the submission happens at replay time.
            recorder_->add(graph_node{
                num_groups, work_group_size, sub_group_size, first_group,
                kernel_label,
                std::function<void(group&)>(std::forward<KernelBody>(body))});
            return;
        }

        run_batch_impl(num_groups, work_group_size, sub_group_size,
                       std::forward<KernelBody>(body), first_group,
                       kernel_label, policy_.emulated_launch_us);
    }

    /// Executes one recorded node, charging `emulated_us` of host launch
    /// cost instead of the policy's eager cost. Replays go through the
    /// same fault dispatch and launch counter as eager submissions.
    void run_recorded(const graph_node& node, double emulated_us);

    /// Charges `us` microseconds of host-side cost (busy-wait, like the
    /// emulated launch overhead). Used for one-time graph record cost.
    static void charge_host_cost(double us)
    {
        if (us > 0.0) {
            emulate_launch_cost(us);
        }
    }

    /// True while a `command_graph` is recording this queue's submissions.
    bool recording() const { return recorder_ != nullptr; }

private:
    /// The eager launch path shared by `run_batch` and graph replay:
    /// fault dispatch, counter advance, group execution, statistics.
    template <typename KernelBody>
    void run_batch_impl(index_type num_groups, index_type work_group_size,
                        index_type sub_group_size, KernelBody&& body,
                        index_type first_group, const char* kernel_label,
                        double emulated_us)
    {
#ifndef BATCHLIN_XPU_CHECK
        (void)kernel_label;
#endif
        // Fault dispatch: the launch counter keys scheduled events, so it
        // advances for every submission — including the ones that fail.
        // An empty plan costs exactly this one branch.
        const std::uint64_t launch_id = launches_submitted_++;
        std::vector<const fault_event*> launch_faults;
        if (!policy_.faults.empty()) {
            for (const fault_event& ev : policy_.faults.events) {
                if (ev.kind == fault_kind::device_lost) {
                    // Sticky interval [launch, revive): the device stays
                    // dead across retries, which only the counter itself
                    // (spent launches, e.g. serve-side probes) escapes.
                    if (ev.launch <= launch_id &&
                        (ev.revive == 0 || launch_id < ev.revive)) {
                        throw device_error(
                            __FILE__, __LINE__,
                            "injected fault: device lost "
                            "(xpu::fault_kind::device_lost)");
                    }
                    continue;
                }
                if (ev.launch != launch_id) {
                    continue;
                }
                if (ev.kind == fault_kind::hang) {
                    // Bounded wedge: block long enough to trip a watchdog
                    // whose timeout is below hang_us, then fail the launch
                    // like the runtime timing out a lost kernel.
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(ev.hang_us));
                    throw device_error(
                        __FILE__, __LINE__,
                        "injected fault: kernel hang timed out "
                        "(xpu::fault_kind::hang)");
                }
                if (ev.kind == fault_kind::launch_fail) {
                    throw device_error(
                        __FILE__, __LINE__,
                        "injected fault: kernel launch rejected "
                        "(xpu::fault_kind::launch_fail)");
                }
                launch_faults.push_back(&ev);
            }
        }

#ifndef NDEBUG
        // Launch resources are owned by one launch at a time (see the
        // class comment); catch concurrent or reentrant launches early.
        BATCHLIN_ENSURE_MSG(!launch_active_.exchange(true),
                            "concurrent run_batch calls on one xpu::queue "
                            "are not allowed; use one queue per thread");
        struct active_reset {
            std::atomic<bool>* flag;
            ~active_reset() { flag->store(false); }
        } launch_guard{&launch_active_};
#endif

        counters launch_stats;
        launch_stats.kernel_launches = 1;
        launch_stats.groups_launched = num_groups;

        // Event clocks are only read with profiling enabled (the SYCL
        // `enable_profiling` property costs nothing when off).
        const double start_seconds = profiling_ ? now_seconds() : 0.0;
        const int max_threads = omp_get_max_threads();
        prepare_launch(max_threads);
        size_type slm_high_water = 0;

        if (max_threads == 1) {
            // Single-host-thread fast path: the fork/join of the parallel
            // region costs more than a small launch's kernel work. Group
            // order, counter accumulation, and error propagation are the
            // ones the one-thread parallel region would produce.
            slm_arena& arena = arena_pool_[0];
            arena.begin_launch();
            counters& local = thread_stats_[0];
#ifdef BATCHLIN_XPU_CHECK
            check::group_checker* chk =
                attach_checker(0, arena, kernel_label);
#endif
            for (index_type g = 0; g < num_groups; ++g) {
                arena.reset();
                group ctx(first_group + g, work_group_size, sub_group_size,
                          arena, local);
                if (!launch_faults.empty()) {
                    arm_group_faults(launch_faults, first_group + g, arena,
                                     ctx, policy_.faults.seed);
                }
#ifdef BATCHLIN_XPU_CHECK
                if (chk != nullptr) {
                    chk->begin_group(first_group + g, work_group_size);
                    ctx.set_checker(chk);
                }
#endif
                body(ctx);
#ifdef BATCHLIN_XPU_CHECK
                if (chk != nullptr) {
                    chk->end_group();
                }
#endif
                if (!launch_faults.empty()) {
                    arena.arm_alloc_failure(-1);
                }
            }
            launch_stats += local;
            finish_launch(launch_stats, arena.high_water(), start_seconds,
                          num_groups, work_group_size, sub_group_size,
                          emulated_us);
            return;
        }

        // Exceptions must not escape the parallel region (that would
        // terminate); capture the first one and rethrow on the host side,
        // like a device-side error reported at synchronization.
        std::exception_ptr first_error = nullptr;
        std::atomic<bool> failed{false};

#pragma omp parallel reduction(max : slm_high_water)
        {
            const int tid = omp_get_thread_num();
            slm_arena& arena = arena_pool_[tid];
            arena.begin_launch();
            counters& local = thread_stats_[tid];
#ifdef BATCHLIN_XPU_CHECK
            check::group_checker* chk =
                attach_checker(tid, arena, kernel_label);
#endif
#pragma omp for schedule(dynamic, 16)
            for (index_type g = 0; g < num_groups; ++g) {
                if (failed.load(std::memory_order_relaxed)) {
                    continue;
                }
                arena.reset();
                group ctx(first_group + g, work_group_size, sub_group_size,
                          arena, local);
                if (!launch_faults.empty()) {
                    arm_group_faults(launch_faults, first_group + g, arena,
                                     ctx, policy_.faults.seed);
                }
                try {
#ifdef BATCHLIN_XPU_CHECK
                    if (chk != nullptr) {
                        chk->begin_group(first_group + g, work_group_size);
                        ctx.set_checker(chk);
                    }
#endif
                    body(ctx);
#ifdef BATCHLIN_XPU_CHECK
                    if (chk != nullptr) {
                        chk->end_group();
                    }
#endif
                } catch (...) {
#pragma omp critical(batchlin_queue_error)
                    {
                        if (!first_error) {
                            first_error = std::current_exception();
                        }
                    }
                    failed.store(true, std::memory_order_relaxed);
                }
                if (!launch_faults.empty()) {
                    arena.arm_alloc_failure(-1);
                }
            }
            slm_high_water = arena.high_water();
        }
        if (first_error) {
            std::rethrow_exception(first_error);
        }

        for (int t = 0; t < max_threads; ++t) {
            launch_stats += thread_stats_[t];
        }
        finish_launch(launch_stats, slm_high_water, start_seconds,
                      num_groups, work_group_size, sub_group_size,
                      emulated_us);
    }

public:
    /// Statistics of the most recent launch only.
    const counters& last_launch_stats() const { return last_launch_; }

    /// Event profiling: when enabled, every launch appends a record (the
    /// SYCL `enable_profiling` property analogue). Off by default. The
    /// history is a bounded ring: only the most recent
    /// `launch_history_capacity()` records are kept, so a long-lived
    /// profiled queue (a serve:: worker) has a fixed memory footprint.
    void enable_profiling(bool on = true) { profiling_ = on; }
    bool profiling_enabled() const { return profiling_; }

    /// Chronological snapshot (oldest first) of the retained records.
    std::vector<launch_record> launch_history() const;
    void clear_launch_history()
    {
        history_.clear();
        history_head_ = 0;
        history_dropped_ = 0;
    }

    /// Resizes the history ring; must be positive. Shrinking keeps the
    /// most recent records. Default: 4096 records.
    void set_launch_history_capacity(size_type capacity);
    size_type launch_history_capacity() const { return history_capacity_; }
    /// Launches recorded and since dropped because the ring was full.
    size_type launch_history_dropped() const { return history_dropped_; }

    /// Spill-workspace scratch reused across this queue's launches.
    scratch_pool& scratch() { return scratch_; }

    /// 0-based count of `run_batch` calls submitted on this queue, failed
    /// launches included — the key `fault_event::launch` matches against.
    std::uint64_t launches_submitted() const { return launches_submitted_; }

    /// Per-thread launch resources currently pooled (for tests/telemetry).
    index_type pooled_threads() const
    {
        return static_cast<index_type>(arena_pool_.size());
    }

private:
    /// Arms per-group fault state for the events scheduled on this launch:
    /// alloc_fail trips the arena's allocation countdown, poison arms the
    /// group context. Poison strikes are confined to the group's own memory
    /// (its SLM arena, or the spill slice the workspace binder registers
    /// via `group::note_global_region`), so concurrent groups never race.
    static void arm_group_faults(
        const std::vector<const fault_event*>& events,
        index_type global_group, slm_arena& arena, group& ctx, unsigned seed)
    {
        for (const fault_event* ev : events) {
            if (ev->group != global_group) {
                continue;
            }
            if (ev->kind == fault_kind::alloc_fail) {
                arena.arm_alloc_failure(ev->phase);
            } else {
                ctx.arm_fault(ev, nullptr, 0, seed);
            }
        }
    }

    static double now_seconds();

    /// Spins for `us` microseconds of wall time. A busy-wait, not a sleep:
    /// a synchronous SYCL submit burns the submitting thread's CPU in the
    /// runtime, and emulating it must do the same so the cost shows up in
    /// end-to-end throughput measurements.
    static void emulate_launch_cost(double us);

    /// Ensures per-thread arenas and counter blocks exist for `num_threads`
    /// threads and zeroes the counter blocks. Allocates only when the host
    /// thread count grew past the pool size; steady state is alloc-free.
    void prepare_launch(int num_threads);

    /// Commits a finished launch: footprint, cumulative and last-launch
    /// stats, and the profiling record when enabled.
    void finish_launch(counters& launch_stats, size_type slm_high_water,
                       double start_seconds, index_type num_groups,
                       index_type work_group_size,
                       index_type sub_group_size, double emulated_us)
    {
        if (emulated_us > 0.0) {
            emulate_launch_cost(emulated_us);
        }
        launch_stats.slm_footprint_bytes = slm_high_water;
        stats_ += launch_stats;
        last_launch_ = launch_stats;
        if (profiling_) {
            record_launch({launch_stats, now_seconds() - start_seconds,
                           num_groups, work_group_size, sub_group_size});
        }
    }

    /// Appends to the history ring, overwriting the oldest record when
    /// the ring is full.
    void record_launch(launch_record record);

#ifdef BATCHLIN_XPU_CHECK
    /// Binds thread `tid`'s pooled checker to the arena for this launch —
    /// or detaches both when the policy runs unchecked — and returns it
    /// for the per-group wiring.
    check::group_checker* attach_checker(int tid, slm_arena& arena,
                                         const char* kernel_label)
    {
        check::group_checker* chk = nullptr;
        if (policy_.check_level != check_level::none) {
            chk = &checker_pool_[static_cast<std::size_t>(tid)];
            chk->configure(policy_.check_level, policy_.lane_order,
                           policy_.lane_order_seed);
            chk->begin_launch(kernel_label);
        }
        arena.set_checker(chk);
        return chk;
    }
#endif

    friend class command_graph;

    exec_policy policy_;
    command_graph* recorder_ = nullptr;
    counters stats_;
    counters last_launch_;
    bool profiling_ = false;
    /// Ring buffer of the most recent launches: chronological order is
    /// [head, end) then [0, head) once the ring has wrapped.
    std::vector<launch_record> history_;
    size_type history_capacity_ = 4096;
    size_type history_head_ = 0;
    size_type history_dropped_ = 0;
    std::vector<slm_arena> arena_pool_;
    std::vector<counters> thread_stats_;
    scratch_pool scratch_;
    std::uint64_t launches_submitted_ = 0;
#ifdef BATCHLIN_XPU_CHECK
    std::vector<check::group_checker> checker_pool_;
#endif
#ifndef NDEBUG
    std::atomic<bool> launch_active_{false};
#endif
};

/// Builds a per-stack queue for explicit scaling: the same device policy
/// restricted to a single stack. Counters start fresh.
queue make_stack_queue(const queue& parent);

}  // namespace batchlin::xpu
