// Tests for the batched direct-solver baselines (Thomas, dense LU), the
// host-level batched apply operations, the equilibration scaling, and the
// per-iteration residual history.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/conversions.hpp"
#include "matrix/operations.hpp"
#include "solver/direct.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
namespace stop = batchlin::stop;

TEST(Thomas, SolvesTridiagonalExactly)
{
    const index_type items = 16;
    const index_type rows = 50;
    const auto a = work::stencil_3pt<double>(items, rows, 5);
    const auto b = work::rhs_for_unit_solution(a);
    mat::batch_dense<double> x(items, rows, 1);
    bl::log::batch_log logger(items);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_thomas(q, a, b, x, logger, {0, items});
    EXPECT_EQ(logger.num_converged(), items);
    for (const double v : x.values()) {
        EXPECT_NEAR(v, 1.0, 1e-10);
    }
    // One launch, exactly like the fused iterative kernels.
    EXPECT_EQ(q.stats().kernel_launches, 1);
}

TEST(Thomas, RejectsNonTridiagonalPatterns)
{
    const auto a = work::generate_mechanism<double>(
        work::mechanism_by_name("drm19"));
    const auto b = work::mechanism_rhs<double>(a.num_batch_items(),
                                               a.rows(), 1);
    mat::batch_dense<double> x(a.num_batch_items(), a.rows(), 1);
    bl::log::batch_log logger(a.num_batch_items());
    xpu::queue q(xpu::make_sycl_policy());
    EXPECT_THROW(
        solver::run_thomas(q, a, b, x, logger, {0, a.num_batch_items()}),
        bl::error);
}

TEST(DenseLu, SolvesGeneralBatchExactly)
{
    const auto mech = work::mechanism_by_name("drm19");
    const auto a = work::generate_mechanism<double>(mech, 3);
    const index_type items = a.num_batch_items();
    const auto b = work::mechanism_rhs<double>(items, a.rows(), 9);
    mat::batch_dense<double> x(items, a.rows(), 1);
    bl::log::batch_log logger(items);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_dense_lu(q, a, b, x, logger, {0, items});
    EXPECT_EQ(logger.num_converged(), items);
    // Two kernels with the allocation in between — the §1 structure of
    // batched direct methods.
    EXPECT_EQ(q.stats().kernel_launches, 2);
    const solver::batch_matrix<double> variant = a;
    const auto res = solver::residual_norms(variant, b, x);
    for (double r : res) {
        EXPECT_LE(r, 1e-9);
    }
}

TEST(DenseLu, FlagsSingularSystems)
{
    // Item 1 made exactly singular (two equal rows).
    auto a = work::stencil_3pt<double>(3, 4, 3);
    auto dense = mat::to_dense(a);
    for (index_type j = 0; j < 4; ++j) {
        dense.at(1, 2, j) = dense.at(1, 1, j);
    }
    const auto a_sing = mat::to_csr(dense);
    const auto b = work::random_rhs<double>(3, 4, 2);
    mat::batch_dense<double> x(3, 4, 1);
    bl::log::batch_log logger(3);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_dense_lu(q, a_sing, b, x, logger, {0, 3});
    EXPECT_TRUE(logger.converged(0));
    EXPECT_FALSE(logger.converged(1));
    EXPECT_TRUE(logger.converged(2));
}

TEST(DirectVsIterative, AgreeOnTheSameBatch)
{
    const index_type items = 12;
    const index_type rows = 40;
    const auto a = work::stencil_3pt<double>(items, rows, 8);
    const auto b = work::random_rhs<double>(items, rows, 9);

    mat::batch_dense<double> x_direct(items, rows, 1);
    bl::log::batch_log logger(items);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_thomas(q, a, b, x_direct, logger, {0, items});

    const solver::batch_matrix<double> variant = a;
    mat::batch_dense<double> x_iter(items, rows, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-12, 500);
    solver::solve(q, variant, b, x_iter, opts);

    for (std::size_t i = 0; i < x_direct.values().size(); ++i) {
        EXPECT_NEAR(x_direct.values()[i], x_iter.values()[i], 1e-8);
    }
}

TEST(Apply, MatchesResidualDefinition)
{
    const index_type items = 6;
    const index_type rows = 30;
    const auto a_csr = work::stencil_3pt<double>(items, rows, 4);
    const mat::any_batch<double> a = a_csr;
    const auto x = work::random_rhs<double>(items, rows, 5);
    mat::batch_dense<double> y(items, rows, 1);
    xpu::queue q(xpu::make_sycl_policy());
    mat::apply(q, a, x, y);
    // b := A x implies residual(a, y(=Ax), x) == 0.
    const solver::batch_matrix<double> variant = a_csr;
    const auto res = solver::residual_norms(variant, y, x);
    for (double r : res) {
        EXPECT_LE(r, 1e-11);
    }
    EXPECT_EQ(q.stats().kernel_launches, 1);
}

TEST(Apply, AllFormatsAgree)
{
    const index_type items = 4;
    const index_type rows = 25;
    const auto csr = work::stencil_3pt<double>(items, rows, 6);
    const auto x = work::random_rhs<double>(items, rows, 7);
    xpu::queue q(xpu::make_sycl_policy());
    mat::batch_dense<double> y_csr(items, rows, 1);
    mat::batch_dense<double> y_ell(items, rows, 1);
    mat::batch_dense<double> y_dense(items, rows, 1);
    mat::apply<double>(q, csr, x, y_csr);
    mat::apply<double>(q, mat::to_ell(csr), x, y_ell);
    mat::apply<double>(q, mat::to_dense(csr), x, y_dense);
    for (std::size_t i = 0; i < y_csr.values().size(); ++i) {
        EXPECT_NEAR(y_csr.values()[i], y_ell.values()[i], 1e-12);
        EXPECT_NEAR(y_csr.values()[i], y_dense.values()[i], 1e-12);
    }
}

TEST(Apply, AdvancedApplyScalesAndAccumulates)
{
    const index_type items = 3;
    const index_type rows = 12;
    const auto a_csr = work::stencil_3pt<double>(items, rows, 2);
    const mat::any_batch<double> a = a_csr;
    const auto x = work::random_rhs<double>(items, rows, 3);
    mat::batch_dense<double> y(items, rows, 1);
    mat::batch_dense<double> ax(items, rows, 1);
    y.fill(2.0);
    xpu::queue q(xpu::make_sycl_policy());
    mat::apply(q, a, x, ax);
    mat::advanced_apply(q, 3.0, a, x, -1.0, y);
    for (index_type item = 0; item < items; ++item) {
        for (index_type i = 0; i < rows; ++i) {
            EXPECT_NEAR(y.at(item, i, 0), 3.0 * ax.at(item, i, 0) - 2.0,
                        1e-11);
        }
    }
}

TEST(Apply, RejectsShapeMismatch)
{
    const auto a_csr = work::stencil_3pt<double>(2, 10, 1);
    const mat::any_batch<double> a = a_csr;
    const auto x = work::random_rhs<double>(2, 10, 1);
    mat::batch_dense<double> y_bad(2, 8, 1);
    xpu::queue q(xpu::make_sycl_policy());
    EXPECT_THROW(mat::apply(q, a, x, y_bad), bl::dimension_mismatch);
}

TEST(Equilibration, UnitInfinityNormRows)
{
    const auto mech = work::mechanism_by_name("gri12");
    auto a = work::generate_mechanism<double>(mech, 21);
    const auto s = mat::compute_equilibration(a);
    mat::scale_system(a, s);
    for (index_type item = 0; item < a.num_batch_items(); item += 7) {
        for (index_type i = 0; i < a.rows(); ++i) {
            double row_max = 0.0;
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                row_max = std::max(
                    row_max, std::abs(a.item_values(item)[k]));
            }
            EXPECT_LE(row_max, 1.0 + 1e-12);
            EXPECT_GT(row_max, 0.0);
        }
    }
}

TEST(Equilibration, ScaledSolveRecoversUnscaledSolution)
{
    const auto mech = work::mechanism_by_name("drm19");
    const auto a_orig = work::generate_mechanism<double>(mech, 33);
    const index_type items = a_orig.num_batch_items();
    auto b = work::mechanism_rhs<double>(items, a_orig.rows(), 13);

    // Reference: solve the unscaled system.
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.criterion = stop::relative(1e-12, 400);
    xpu::queue q(xpu::make_sycl_policy());
    mat::batch_dense<double> x_ref(items, a_orig.rows(), 1);
    solver::solve<double>(q, a_orig, b, x_ref, opts);

    // Equilibrated path: scale, solve, unscale.
    auto a_scaled = a_orig;
    auto b_scaled = b;
    const auto s = mat::compute_equilibration(a_scaled);
    mat::scale_system(a_scaled, s);
    mat::scale_rhs(b_scaled, s);
    mat::batch_dense<double> x(items, a_orig.rows(), 1);
    solver::solve<double>(q, a_scaled, b_scaled, x, opts);
    mat::unscale_solution(x, s);

    for (std::size_t i = 0; i < x.values().size(); ++i) {
        EXPECT_NEAR(x.values()[i], x_ref.values()[i],
                    1e-6 * (1.0 + std::abs(x_ref.values()[i])));
    }
}

TEST(History, RecordsMonotoneResidualsForCg)
{
    const index_type items = 4;
    const index_type rows = 48;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 19);
    const auto b = work::random_rhs<double>(items, rows, 20);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.criterion = stop::relative(1e-10, 200);
    opts.record_history = true;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    ASSERT_TRUE(result.log.history_enabled());
    for (index_type item = 0; item < items; ++item) {
        const index_type iters = result.log.iterations(item);
        ASSERT_GT(iters, 2);
        // First recorded residual finite, final matches the log record.
        EXPECT_TRUE(std::isfinite(result.log.residual_at(item, 0)));
        EXPECT_NEAR(result.log.residual_at(item, iters - 1),
                    result.log.residual_norm(item), 1e-12);
        // Residuals decay overall (CG on SPD: monotone in A-norm; allow
        // small non-monotonicity in the 2-norm but require net decay).
        EXPECT_LT(result.log.residual_at(item, iters - 1),
                  result.log.residual_at(item, 0));
        // Outside the recorded range: NaN.
        EXPECT_TRUE(std::isnan(
            result.log.residual_at(item, opts.criterion.max_iterations)));
    }
}

TEST(History, DisabledByDefault)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(2, 16, 1);
    const auto b = work::random_rhs<double>(2, 16, 2);
    mat::batch_dense<double> x(2, 16, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_FALSE(result.log.history_enabled());
    EXPECT_TRUE(std::isnan(result.log.residual_at(0, 0)));
}
