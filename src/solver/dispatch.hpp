// Multi-level dispatch mechanism (paper §3.3, Fig. 3).
//
// The runtime choices — matrix format, solver, preconditioner, stopping
// criterion, precision, sub-group size, reduction path — funnel into one
// fully templated kernel instantiation, so the fused solver kernel itself
// contains no branches on any of these axes (§3.4). `solve` dispatches the
// whole batch; `solve_range` dispatches a sub-range (explicit stack
// scaling, §2.2).
#pragma once

#include "solver/options.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

/// Solves A_i x_i = b_i for every batch item. `x` carries the initial
/// guess on entry and the solution on return. Throws
/// `unsupported_combination` for the combinations Table 3 excludes
/// (e.g. BatchIsai on a non-CSR matrix).
template <typename T>
solve_result solve(xpu::queue& q, const batch_matrix<T>& a,
                   const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                   const solve_options& opts);

/// Same, restricted to batch entries [range.begin, range.end) — the
/// explicit scaling mode where the caller owns the stack partition.
template <typename T>
solve_result solve_range(xpu::queue& q, const batch_matrix<T>& a,
                         const mat::batch_dense<T>& b,
                         mat::batch_dense<T>& x, const solve_options& opts,
                         xpu::batch_range range);

}  // namespace batchlin::solver
