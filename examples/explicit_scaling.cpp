// Explicit two-stack scaling (paper §2.2).
//
// The implicit mode lets the driver split one launch across both PVC
// stacks; in the explicit mode the user partitions the batch and drives a
// queue per stack. This example runs the same workload both ways and
// checks the answers agree, then shows the per-stack statistics that only
// the explicit mode exposes.
#include <cmath>
#include <cstdio>

#include "batchlin/batchlin.hpp"

using namespace batchlin;

int main()
{
    const work::mechanism mech = work::mechanism_by_name("gri30");
    const index_type items = 720;
    const mat::batch_csr<double> a_csr =
        work::generate_mechanism_batch<double>(mech, items);
    const mat::batch_dense<double> b =
        work::mechanism_rhs<double>(items, mech.rows, 7);

    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-9, 200);

    // --- Implicit scaling: one queue, one launch, driver splits.
    xpu::queue implicit_q(xpu::make_sycl_policy(/*num_stacks=*/2));
    const solver::batch_matrix<double> a = a_csr;
    mat::batch_dense<double> x_implicit(items, mech.rows, 1);
    const auto implicit_result =
        solver::solve(implicit_q, a, b, x_implicit, opts);
    std::printf("implicit scaling: 1 launch, %lld work-groups, "
                "%d/%d converged\n",
                static_cast<long long>(
                    implicit_result.stats.groups_launched),
                implicit_result.log.num_converged(), items);

    // --- Explicit scaling: the user owns the partition; each stack gets
    // its own queue and solves its slice of the batch.
    mat::batch_dense<double> x_explicit(items, mech.rows, 1);
    for (index_type stack = 0; stack < 2; ++stack) {
        const xpu::batch_range range = xpu::stack_partition(items, 2, stack);
        xpu::queue stack_q = xpu::make_stack_queue(implicit_q);
        const auto result =
            solver::solve_range(stack_q, a, b, x_explicit, opts, range);
        double iters = 0.0;
        for (index_type i = range.begin; i < range.end; ++i) {
            iters += result.log.iterations(i);
        }
        std::printf("stack %d: systems [%d, %d), launches %lld, "
                    "mean iterations %.1f\n",
                    stack, range.begin, range.end,
                    static_cast<long long>(result.stats.kernel_launches),
                    iters / range.size());
    }

    // --- The two modes must produce identical solutions.
    double max_diff = 0.0;
    for (std::size_t i = 0; i < x_implicit.values().size(); ++i) {
        max_diff = std::max(max_diff,
                            std::abs(x_implicit.values()[i] -
                                     x_explicit.values()[i]));
    }
    std::printf("max |x_implicit - x_explicit| = %.3e\n", max_diff);

    const auto rel = solver::relative_residual_norms(a, b, x_explicit);
    double worst = 0.0;
    for (double r : rel) {
        worst = std::max(worst, r);
    }
    std::printf("worst relative residual: %.3e\n", worst);
    return max_diff == 0.0 && worst < 1e-7 ? 0 : 1;
}
