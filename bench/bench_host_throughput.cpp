// Host-throughput benchmark: wall-clock solves/sec of the simulator itself.
//
// The figure benches sweep hundreds of solves, and applications like the
// PeleLM Newton loop (§4.1) re-solve the same batch structure over and over.
// Both are limited by the *host* cost of one `solver::solve` round trip —
// launch-resource setup, workspace binding, spill allocation — not by the
// modeled device time. This bench pins that number: it runs a repeated-solve
// sweep of small CG/BiCGSTAB/GMRES batches on one persistent queue (the
// handle-style usage) and reports solves per wall-clock second.
//
// Usage:
//   bench_host_throughput [--json FILE] [--min-time SECONDS]
//                         [--baseline cg=X,bicgstab=Y,gmres=Z]
// `--baseline` takes a previously recorded run (see
// scripts/bench_host_baseline.env) and adds speedup factors to the output.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/timer.hpp"
#include "workload/stencil.hpp"

using namespace bench;

namespace {

/// One problem shape of the repeated-solve sweep: the small-batch,
/// small-system end where host overhead is commensurable with kernel work.
struct sweep_shape {
    index_type items;
    index_type rows;
};

constexpr sweep_shape kSweep[] = {{4, 8}, {8, 16}, {16, 32}};

struct solver_case {
    const char* name;
    solver::solver_type type;
};

constexpr solver_case kSolvers[] = {
    {"cg", solver::solver_type::cg},
    {"bicgstab", solver::solver_type::bicgstab},
    {"gmres", solver::solver_type::gmres},
};

struct throughput_result {
    double solves_per_sec = 0.0;
    double mean_iterations = 0.0;
    long solves = 0;
    double seconds = 0.0;
};

/// Repeats `solve` on one persistent queue until `min_time` has elapsed.
/// The initial guess is reset to zero before every repeat so each solve
/// performs identical work.
throughput_result run_case(xpu::queue& q, solver::solver_type type,
                           double min_time)
{
    solver::solve_options opts;
    opts.solver = type;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-6, 50);

    throughput_result out;
    double iter_sum = 0.0;
    for (const sweep_shape& shape : kSweep) {
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(shape.items, shape.rows, 3);
        const auto b = work::random_rhs<double>(shape.items, shape.rows, 7);
        mat::batch_dense<double> x(shape.items, shape.rows, 1);

        // Warm up allocator, caches, and (post-PR) the queue's pools.
        for (int i = 0; i < 10; ++i) {
            x.fill(0.0);
            (void)solver::solve(q, a, b, x, opts);
        }

        const double shape_time = min_time / std::size(kSweep);
        long solves = 0;
        wall_timer timer;
        double elapsed = 0.0;
        do {
            for (int i = 0; i < 20; ++i) {
                x.fill(0.0);
                const auto result = solver::solve(q, a, b, x, opts);
                iter_sum += result.log.mean_iterations();
            }
            solves += 20;
            elapsed = timer.seconds();
        } while (elapsed < shape_time);
        out.solves += solves;
        out.seconds += elapsed;
    }
    out.solves_per_sec = static_cast<double>(out.solves) / out.seconds;
    out.mean_iterations = iter_sum / static_cast<double>(out.solves);
    return out;
}

std::map<std::string, double> parse_baseline(const char* spec)
{
    // Format: name=value[,name=value...]
    std::map<std::string, double> out;
    std::string s(spec);
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t eq = s.find('=', pos);
        if (eq == std::string::npos) {
            break;
        }
        std::size_t comma = s.find(',', eq);
        if (comma == std::string::npos) {
            comma = s.size();
        }
        out[s.substr(pos, eq - pos)] =
            std::atof(s.substr(eq + 1, comma - eq - 1).c_str());
        pos = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv)
{
    const char* json_path = nullptr;
    double min_time = 0.9;
    std::map<std::string, double> baseline;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
            min_time = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline = parse_baseline(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json FILE] [--min-time SECONDS] "
                         "[--baseline cg=X,bicgstab=Y,gmres=Z]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("Host throughput: repeated-solve sweep "
                "(shapes:");
    for (const sweep_shape& s : kSweep) {
        std::printf(" %dx[%d rows]", s.items, s.rows);
    }
    std::printf("), scalar Jacobi, rtol 1e-6\n\n");
    std::printf("%10s | %12s | %10s | %8s\n", "solver", "solves/sec",
                "mean iters", "speedup");
    rule(52);

    xpu::queue q(xpu::make_sycl_policy());
    std::map<std::string, throughput_result> results;
    for (const solver_case& sc : kSolvers) {
        results[sc.name] = run_case(q, sc.type, min_time);
        const throughput_result& r = results[sc.name];
        if (baseline.count(sc.name) && baseline[sc.name] > 0.0) {
            std::printf("%10s | %12.1f | %10.1f | %7.2fx\n", sc.name,
                        r.solves_per_sec, r.mean_iterations,
                        r.solves_per_sec / baseline[sc.name]);
        } else {
            std::printf("%10s | %12.1f | %10.1f | %8s\n", sc.name,
                        r.solves_per_sec, r.mean_iterations, "n/a");
        }
    }

    // Sweep aggregate: every solver case runs for the same wall-time slice,
    // so the sweep-level solves/sec is the mean of the per-solver rates —
    // the same statistic the recorded baseline rates aggregate to.
    double sweep_rate = 0.0;
    double sweep_baseline = 0.0;
    bool baseline_complete = true;
    for (const solver_case& sc : kSolvers) {
        sweep_rate += results[sc.name].solves_per_sec;
        if (baseline.count(sc.name) && baseline[sc.name] > 0.0) {
            sweep_baseline += baseline[sc.name];
        } else {
            baseline_complete = false;
        }
    }
    sweep_rate /= static_cast<double>(std::size(kSolvers));
    sweep_baseline /= static_cast<double>(std::size(kSolvers));
    rule(52);
    if (baseline_complete) {
        std::printf("%10s | %12.1f | %10s | %7.2fx\n", "sweep", sweep_rate,
                    "", sweep_rate / sweep_baseline);
    } else {
        std::printf("%10s | %12.1f | %10s | %8s\n", "sweep", sweep_rate, "",
                    "n/a");
    }

    if (json_path != nullptr) {
        std::FILE* f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"host_throughput\",\n");
        std::fprintf(f, "  \"sweep_shapes\": [");
        bool first = true;
        for (const sweep_shape& s : kSweep) {
            std::fprintf(f, "%s{\"items\": %d, \"rows\": %d}",
                         first ? "" : ", ", s.items, s.rows);
            first = false;
        }
        std::fprintf(f, "],\n  \"results\": {\n");
        std::size_t printed = 0;
        for (const solver_case& sc : kSolvers) {
            const throughput_result& r = results[sc.name];
            std::fprintf(f, "    \"%s\": {\"solves_per_sec\": %.1f", sc.name,
                         r.solves_per_sec);
            std::fprintf(f, ", \"solves\": %ld, \"seconds\": %.3f",
                         r.solves, r.seconds);
            std::fprintf(f, ", \"mean_iterations\": %.2f",
                         r.mean_iterations);
            if (baseline.count(sc.name) && baseline[sc.name] > 0.0) {
                std::fprintf(
                    f, ", \"baseline_solves_per_sec\": %.1f, ",
                    baseline[sc.name]);
                std::fprintf(f, "\"speedup\": %.3f",
                             r.solves_per_sec / baseline[sc.name]);
            }
            std::fprintf(f, "}%s\n",
                         ++printed < std::size(kSolvers) ? "," : "");
        }
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"sweep\": {\"solves_per_sec\": %.1f",
                     sweep_rate);
        if (baseline_complete) {
            std::fprintf(f,
                         ", \"baseline_solves_per_sec\": %.1f, "
                         "\"speedup\": %.3f",
                         sweep_baseline, sweep_rate / sweep_baseline);
        }
        std::fprintf(f, "}\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    }
    return 0;
}
