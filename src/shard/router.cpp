#include "shard/router.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace batchlin::shard {

namespace {

/// Nominal Krylov sweeps the cost estimate charges: the routing-relevant
/// quantity is relative cost across shards and request shapes, which a
/// fixed sweep count preserves.
constexpr double kNominalSweeps = 16.0;

/// Spill hysteresis, in units of the request's own cost: the affine
/// shard keeps the request until its projected backlog trails the least
/// loaded shard by more than a full fused batch of such requests, so
/// bursts below one batch stay together (and keep coalescing) while
/// anything beyond what one launch can absorb flows to idle shards.
constexpr std::int64_t kSpillBatchFactor = 32;

/// splitmix64 finalizer: decorrelates the coalesce key per shard so the
/// rendezvous draws are independent.
std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/// Uniform draw in (0, 1], never zero (log of it must be finite).
double hash01(std::uint64_t key, std::uint64_t shard)
{
    const std::uint64_t h = mix64(key ^ mix64(shard + 1));
    return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace

router::router(std::vector<perf::device_spec> specs)
    : specs_(std::move(specs))
{
    BATCHLIN_ENSURE_MSG(!specs_.empty(),
                        "router needs at least one shard spec");
}

std::int64_t router::estimate_cost_ns(const perf::device_spec& spec,
                                      index_type items, index_type rows,
                                      index_type nnz_per_item)
{
    // Per sweep and system: the matrix (values + column indices, 12 B per
    // stored element) plus about six row-length vector traversals of the
    // Krylov work set (8 B each).
    const double bytes = static_cast<double>(items) *
                         (static_cast<double>(nnz_per_item) * 12.0 +
                          static_cast<double>(rows) * 6.0 * 8.0) *
                         kNominalSweeps;
    const double bw_bytes_per_sec = perf::sustained_bw_tbs(spec) * 1e12;
    double launch_us = spec.kernel_launch_us;
    if (spec.num_stacks > 1) {
        launch_us += spec.implicit_scaling_overhead_us;
    }
    const double ns =
        launch_us * 1e3 +
        (bw_bytes_per_sec > 0.0 ? bytes / bw_bytes_per_sec * 1e9 : 0.0);
    return std::max<std::int64_t>(1, std::llround(ns));
}

decision router::route(std::uint64_t key, index_type items, index_type rows,
                       index_type nnz_per_item,
                       const std::vector<std::int64_t>& backlog_ns) const
{
    return route(key, items, rows, nnz_per_item, backlog_ns, nullptr);
}

decision router::route(std::uint64_t key, index_type items, index_type rows,
                       index_type nnz_per_item,
                       const std::vector<std::int64_t>& backlog_ns,
                       const std::vector<char>* alive) const
{
    const std::size_t n = specs_.size();
    BATCHLIN_ENSURE_MSG(n > 0, "route on an empty router");
    if (n == 1) {
        return {0, estimate_cost_ns(specs_[0], items, rows, nnz_per_item)};
    }
    BATCHLIN_ENSURE_DIMS(backlog_ns.size() == n,
                         "backlog vector must cover every shard");
    if (alive != nullptr) {
        BATCHLIN_ENSURE_DIMS(alive->size() == n,
                             "alive mask must cover every shard");
        const bool any_alive =
            std::any_of(alive->begin(), alive->end(),
                        [](char a) { return a != 0; });
        if (!any_alive) {
            alive = nullptr;
        }
    }
    const auto routable = [&](std::size_t i) {
        return alive == nullptr || (*alive)[i] != 0;
    };

    std::vector<std::int64_t> cost(n);
    for (std::size_t i = 0; i < n; ++i) {
        cost[i] = estimate_cost_ns(specs_[i], items, rows, nnz_per_item);
    }

    // Weighted rendezvous: score = -ln(u) * cost (the cheaper the shard,
    // the smaller its typical score); the minimum wins. Deterministic in
    // (key, specs, mask), independent of backlog.
    std::size_t affine = n;
    double best = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!routable(i)) {
            continue;
        }
        const double score =
            -std::log(hash01(key, i)) * static_cast<double>(cost[i]);
        if (affine == n || score < best) {
            best = score;
            affine = i;
        }
    }

    // Spill guard: projected completion on the affine shard vs. the least
    // loaded one, with one-batch hysteresis.
    std::size_t least = n;
    std::int64_t least_load = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (!routable(i)) {
            continue;
        }
        const std::int64_t load = backlog_ns[i] + cost[i];
        if (least == n || load < least_load) {
            least_load = load;
            least = i;
        }
    }
    const std::int64_t affine_load = backlog_ns[affine] + cost[affine];
    const std::int64_t margin = cost[affine] * kSpillBatchFactor;
    if (affine != least && affine_load > least_load + margin) {
        return {static_cast<index_type>(least), cost[least]};
    }
    return {static_cast<index_type>(affine), cost[affine]};
}

}  // namespace batchlin::shard
