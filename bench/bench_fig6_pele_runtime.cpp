// Figure 6 reproduction: BatchBicgstab runtime on the PeleLM inputs.
//
// For each of the five mechanisms (Table 4) and batch sizes 2^13..2^17,
// prints the modeled runtime on the NVIDIA A100 and H100 (CUDA execution
// model) and on one/two stacks of the Intel PVC (SYCL execution model).
// All inputs use BatchCsr storage and the scalar Jacobi preconditioner
// (§4.1); the chemistry systems are non-SPD so only BatchBicgstab applies
// (§4.3). The paper's claim: the PVC-2S outperforms both NVIDIA GPUs for
// all inputs and batch sizes.
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    const perf::device_spec devices[] = {perf::a100(), perf::h100(),
                                         perf::pvc_1s(), perf::pvc_2s()};

    std::printf("Figure 6: runtime [ms] of BatchBicgstab(+scalar Jacobi) "
                "on the PeleLM inputs\n\n");
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const index_type items = measurement_batch(mech.num_unique);
        const solver::batch_matrix<double> a =
            work::generate_mechanism_batch<double>(mech, items);
        const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);

        // One measurement per distinct execution policy: the CUDA-model
        // kernels differ (warp-32, no group reduction, different SLM
        // budget), the two PVC variants share kernels.
        const measured_solve on_a100 =
            measure(devices[0], a, b, pele_options());
        const measured_solve on_h100 =
            measure(devices[1], a, b, pele_options());
        const measured_solve on_pvc =
            measure(devices[2], a, b, pele_options());
        const measured_solve* per_device[] = {&on_a100, &on_h100, &on_pvc,
                                              &on_pvc};

        std::printf("(%s)  matrix size: %d x %d, nnz %d, mean iters %.1f\n",
                    mech.name.c_str(), mech.rows, mech.rows, mech.nnz,
                    on_pvc.mean_iterations);
        std::printf("%10s |", "batch");
        for (const auto& d : devices) {
            std::printf(" %10s", d.name.c_str());
        }
        std::printf("\n");
        rule(58);
        for (int p = 13; p <= 17; ++p) {
            const index_type batch = 1 << p;
            std::printf("%10d |", batch);
            for (int d = 0; d < 4; ++d) {
                std::printf(" %10.3f",
                            projected_ms(devices[d], *per_device[d], batch));
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("(paper: PVC-2S fastest for all inputs and batch sizes; "
                "runtimes scale linearly in the batch)\n");
    return 0;
}
