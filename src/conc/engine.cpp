#include "conc/engine.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>
#include <utility>

namespace batchlin::conc {

namespace {

thread_local engine* g_engine = nullptr;
thread_local int g_tid = 0;

std::uint32_t bit(int tid) { return 1u << static_cast<unsigned>(tid); }

std::string format_site(const site& s) {
    // Trim the path to the basename: traces stay readable in test logs.
    const char* base = s.file;
    for (const char* p = s.file; *p; ++p) {
        if (*p == '/') {
            base = p + 1;
        }
    }
    return std::string(base) + ":" + std::to_string(s.line);
}

std::string format_addr(const void* p) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%p", p);
    return std::string(buf);
}

bool is_acquire(std::memory_order mo) {
    return mo == std::memory_order_acquire || mo == std::memory_order_acq_rel ||
           mo == std::memory_order_seq_cst || mo == std::memory_order_consume;
}

bool is_release(std::memory_order mo) {
    return mo == std::memory_order_release || mo == std::memory_order_acq_rel ||
           mo == std::memory_order_seq_cst;
}

}  // namespace

std::string report::summary() const {
    std::string s = ok ? "ok" : "FAILED";
    s += " after " + std::to_string(schedules) + " schedules (+" +
         std::to_string(pruned) + " pruned)";
    if (ok && complete) {
        s += ", state space complete";
    }
    if (!ok) {
        s += "\n  " + failure + "\n  " + trace;
    }
    return s;
}

engine* engine::active() { return g_engine; }
int engine::self() { return g_tid; }
int engine::cur_tid() { return g_tid; }

engine::engine(const options& opts) : opts_(opts) {
    for (int i = 0; i < max_threads; ++i) {
        t_[static_cast<std::size_t>(i)].tid = i;
    }
}

engine::~engine() {
    // Defensive: a run that ended via explore() leaves no live OS threads.
    for (auto& t : t_) {
        if (t.os.joinable()) {
            aborting_ = true;
            if (t.parked) {
                t.sem.release();
            }
            t.os.join();
        }
    }
}

std::string engine::describe(const op_desc& d) {
    const char* k = "?";
    switch (d.kind) {
        case op_kind::none: k = "none"; break;
        case op_kind::atomic_load: k = "load"; break;
        case op_kind::atomic_store: k = "store"; break;
        case op_kind::atomic_rmw: k = "rmw"; break;
        case op_kind::mutex_lock: k = "lock"; break;
        case op_kind::mutex_unlock: k = "unlock"; break;
        case op_kind::futex_wait: k = "futex_wait"; break;
        case op_kind::futex_wake: k = "futex_wake"; break;
        case op_kind::thread_spawn: k = "spawn"; break;
        case op_kind::thread_join: k = "join"; break;
        case op_kind::thread_start: k = "start"; break;
        case op_kind::resume: k = "resume"; break;
        case op_kind::yield: k = "yield"; break;
    }
    return std::string(k) + "@" + format_site(d.where);
}

std::string engine::trace_string() const {
    std::string s = "schedule";
    if (opts_.mode == explore_mode::random) {
        s += " (seed " + std::to_string(opts_.seed0 + static_cast<std::uint64_t>(run_index_)) + ")";
    }
    s += ":";
    const std::size_t cap = 256;
    const std::size_t n = run_trace_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (n > cap && i == cap / 2) {
            s += " ...";
            i = n - cap / 2;
        }
        s += " t" + std::to_string(run_trace_[i].tid);
        if (run_trace_[i].spurious) {
            s += "~";  // spurious futex wake injected here
        }
    }
    return s;
}

void engine::fail_nothrow(const std::string& what) {
    if (!failed_) {
        failed_ = true;
        failure_ = what;
        failure_trace_ = trace_string();
    }
    aborting_ = true;
}

void engine::fail(const std::string& what, const site& s) {
    fail_nothrow(what + " [" + format_site(s) + "]");
    thread_rec& me = cur();
    if (std::uncaught_exceptions() > 0) {
        // Detected mid-unwind (e.g. a dtor touching shared state): let the
        // in-flight exception carry the abort instead of double-throwing.
        me.unwinding = true;
        return;
    }
    deliver_abort(me);
}

void engine::deliver_abort(thread_rec& me) {
    if (me.unwinding) {
        return;  // ops during unwind execute raw, without scheduling
    }
    me.unwinding = true;
    throw abort_execution{};
}

std::string engine::deadlock_message() const {
    std::string msg = "deadlock: every live thread is blocked —";
    for (int i = 0; i < nthreads_; ++i) {
        const thread_rec& t = t_[static_cast<std::size_t>(i)];
        if (t.st == tstat::finished || t.st == tstat::runnable) {
            continue;
        }
        const char* why = t.st == tstat::blocked_futex   ? "futex_wait"
                          : t.st == tstat::blocked_mutex ? "mutex"
                                                         : "join";
        msg += " t" + std::to_string(i) + " in " + why + " at " +
               format_site(t.blocked_at) + ";";
    }
    return msg;
}

bool engine::dependent(const op_desc& a, const op_desc& b) {
    if (a.obj == nullptr || b.obj == nullptr) {
        return true;  // thread events / resumes: conservatively dependent
    }
    if (a.obj != b.obj) {
        return false;
    }
    // Two loads of the same atomic commute; anything else on one object
    // (store/RMW/futex/mutex) conflicts.
    return !(a.kind == op_kind::atomic_load && b.kind == op_kind::atomic_load);
}

engine::choice engine::choose(const std::vector<choice>& allowed, bool finishing) {
    choice ch{};
    if (opts_.mode == explore_mode::random) {
        if (allowed.size() == 1) {
            ch = allowed[0];
        } else {
            std::uniform_int_distribution<std::size_t> d(0, allowed.size() - 1);
            ch = allowed[d(rng_)];
        }
    } else {
        // A thread finishing is dependent with everything (it enables joins
        // and removes an actor), so nothing stays asleep across it.
        if (finishing) {
            sleep_ = 0;
        }
        std::vector<choice> effective;
        effective.reserve(allowed.size());
        for (const choice& c : allowed) {
            if (c.spurious || (sleep_ & bit(c.tid)) == 0) {
                effective.push_back(c);
            }
        }
        if (effective.empty()) {
            // Every candidate is asleep: this schedule is equivalent to an
            // already-explored sibling. Abandon it silently.
            pruned_flag_ = true;
            aborting_ = true;
            throw abort_execution{};
        }
        if (effective.size() == 1) {
            ch = effective[0];
        } else {
            if (depth_ == path_.size()) {
                path_.push_back(node{effective, 0});
            }
            node& nd = path_[depth_];
            if (nd.all.size() != effective.size()) {
                fail_nothrow("nondeterministic test body: replay diverged at depth " +
                             std::to_string(depth_));
                ch = effective[0];
            } else {
                ch = nd.all[nd.next];
                // Branches explored before this one stay asleep below here
                // until a dependent op wakes them (sleep-set/DPOR-lite).
                for (std::size_t i = 0; i < nd.next; ++i) {
                    if (!nd.all[i].spurious) {
                        sleep_ |= bit(nd.all[i].tid);
                    }
                }
            }
            ++depth_;
        }
    }
    // The chosen thread's op executes next: wake every slept thread whose
    // pending op is dependent with it.
    if (opts_.mode == explore_mode::exhaustive) {
        if (ch.spurious) {
            sleep_ = 0;  // wake injection is conservatively dependent with all
        } else {
            const op_desc& ex = t_[static_cast<std::size_t>(ch.tid)].pending;
            std::uint32_t ns = 0;
            for (int i = 0; i < nthreads_; ++i) {
                if ((sleep_ & bit(i)) != 0 &&
                    !dependent(ex, t_[static_cast<std::size_t>(i)].pending)) {
                    ns |= bit(i);
                }
            }
            sleep_ = ns & ~bit(ch.tid);
        }
    }
    run_trace_.push_back(ch);
    return ch;
}

void engine::apply_spurious(const choice& ch) {
    thread_rec& t = t_[static_cast<std::size_t>(ch.tid)];
    --t.spurious_credits;
    t.st = tstat::runnable;
    t.woke_spurious = true;
    t.pending = op_desc{op_kind::resume, t.wait_obj, t.blocked_at};
    t.wait_obj = nullptr;
}

void engine::decide_and_switch(thread_rec& me, bool finishing) {
    std::vector<choice> allowed;
    const bool me_runnable = !finishing && me.st == tstat::runnable;
    const bool forced_self = me_runnable && opts_.preemption_bound >= 0 &&
                             preemptions_ >= opts_.preemption_bound;
    if (forced_self) {
        allowed.push_back(choice{me.tid, false});
    } else {
        for (int i = 0; i < nthreads_; ++i) {
            if (t_[static_cast<std::size_t>(i)].st == tstat::runnable) {
                allowed.push_back(choice{i, false});
            }
        }
        if (allowed.empty()) {
            bool any_live = false;
            for (int i = 0; i < nthreads_; ++i) {
                if (t_[static_cast<std::size_t>(i)].st != tstat::finished) {
                    any_live = true;
                }
            }
            if (!any_live) {
                return;  // final thread finishing; nothing left to run
            }
            // Lost wake / stuck protocol. Spurious wakeups deliberately do
            // not rescue a deadlock: a protocol must not rely on them.
            if (finishing) {
                fail_nothrow(deadlock_message());
                if (t_[0].parked) {
                    t_[0].sem.release();
                }
                return;
            }
            fail(deadlock_message(), me.blocked_at);
            return;  // unwinding thread falls through
        }
        if (opts_.spurious_wakeups > 0) {
            for (int i = 0; i < nthreads_; ++i) {
                const thread_rec& t = t_[static_cast<std::size_t>(i)];
                if (t.st == tstat::blocked_futex && t.spurious_credits > 0) {
                    allowed.push_back(choice{i, true});
                }
            }
        }
    }
    choice ch = choose(allowed, finishing);
    if (ch.spurious) {
        apply_spurious(ch);
    }
    if (ch.tid == me.tid && !ch.spurious && !finishing) {
        return;  // keep running
    }
    if (me_runnable && ch.tid != me.tid) {
        ++preemptions_;  // involuntary switch away from a runnable thread
    }
    t_[static_cast<std::size_t>(ch.tid)].sem.release();
    if (finishing) {
        return;  // caller's OS thread exits; it never parks again
    }
    me.parked = true;
    me.sem.acquire();
    me.parked = false;
    if (aborting_) {
        deliver_abort(me);
    }
}

void engine::op_point(op_kind kind, const void* obj, const site& s) {
    thread_rec& me = cur();
    if (aborting_) {
        deliver_abort(me);
        return;  // unwinding: execute raw
    }
    me.pending = op_desc{kind, obj, s};
    if (++ops_ > opts_.max_ops_per_run) {
        fail("schedule exceeded max_ops_per_run=" + std::to_string(opts_.max_ops_per_run) +
                 " (livelock or unbounded retry loop?)",
             s);
        return;
    }
    decide_and_switch(me, false);
    ++me.clock.c[static_cast<std::size_t>(me.tid)];
}

void engine::sync_acquire(const void* obj, std::memory_order mo) {
    if (aborting_ || !is_acquire(mo)) {
        return;
    }
    cur().clock.join(sync_[obj]);
}

void engine::sync_store(const void* obj, std::memory_order mo) {
    if (aborting_) {
        return;
    }
    if (is_release(mo)) {
        sync_[obj] = cur().clock;
    } else {
        // A relaxed store breaks any release sequence headed on this object.
        sync_[obj].clear();
    }
}

void engine::sync_rmw(const void* obj, std::memory_order mo) {
    if (aborting_) {
        return;
    }
    vclock& rel = sync_[obj];
    if (is_acquire(mo)) {
        cur().clock.join(rel);
    }
    if (is_release(mo)) {
        rel.join(cur().clock);
    }
    // A relaxed RMW continues the release sequence: rel stays as-is.
}

void engine::futex_wait(const void* obj, const std::atomic<std::uint32_t>& word,
                        std::uint32_t expected, const site& s) {
    op_point(op_kind::futex_wait, obj, s);
    if (aborting_) {
        return;
    }
    if (word.load(std::memory_order_relaxed) != expected) {
        return;  // value already moved on: no sleep
    }
    thread_rec& me = cur();
    me.st = tstat::blocked_futex;
    me.wait_obj = obj;
    me.blocked_at = s;
    me.woke_spurious = false;
    decide_and_switch(me, false);
    // Back: a futex_wake, a spurious wake, or abort. A futex grants no
    // happens-before edge — ordering must come from the word itself.
}

void engine::futex_wake_all(const void* obj, const site& s) {
    op_point(op_kind::futex_wake, obj, s);
    if (aborting_) {
        return;
    }
    for (int i = 0; i < nthreads_; ++i) {
        thread_rec& t = t_[static_cast<std::size_t>(i)];
        if (t.st == tstat::blocked_futex && t.wait_obj == obj) {
            t.st = tstat::runnable;
            t.pending = op_desc{op_kind::resume, obj, t.blocked_at};
            t.wait_obj = nullptr;
        }
    }
}

void engine::mutex_lock(const void* obj, const site& s) {
    for (;;) {
        op_point(op_kind::mutex_lock, obj, s);
        if (aborting_) {
            return;
        }
        int& owner = mutex_owner_.try_emplace(obj, -1).first->second;
        thread_rec& me = cur();
        if (owner < 0) {
            owner = me.tid;
            me.clock.join(sync_[obj]);
            return;
        }
        me.st = tstat::blocked_mutex;
        me.wait_obj = obj;
        me.blocked_at = s;
        decide_and_switch(me, false);
        // Woken by unlock: loop and contend again.
    }
}

bool engine::mutex_try_lock(const void* obj, const site& s) {
    op_point(op_kind::mutex_lock, obj, s);
    if (aborting_) {
        return true;  // unwinding: pretend success so unlock pairs up
    }
    int& owner = mutex_owner_.try_emplace(obj, -1).first->second;
    thread_rec& me = cur();
    if (owner < 0) {
        owner = me.tid;
        me.clock.join(sync_[obj]);
        return true;
    }
    return false;
}

void engine::mutex_unlock(const void* obj, const site& s) {
    op_point(op_kind::mutex_unlock, obj, s);
    if (aborting_) {
        return;
    }
    thread_rec& me = cur();
    auto it = mutex_owner_.find(obj);
    if (it == mutex_owner_.end() || it->second != me.tid) {
        fail("mutex unlocked by non-owner", s);
        return;
    }
    it->second = -1;
    sync_[obj] = me.clock;
    for (int i = 0; i < nthreads_; ++i) {
        thread_rec& t = t_[static_cast<std::size_t>(i)];
        if (t.st == tstat::blocked_mutex && t.wait_obj == obj) {
            t.st = tstat::runnable;
            t.pending = op_desc{op_kind::mutex_lock, obj, t.blocked_at};
            t.wait_obj = nullptr;
        }
    }
}

void engine::yield(const site& s) { op_point(op_kind::yield, nullptr, s); }

void engine::plain_read(const void* addr, const site& s) {
    if (aborting_) {
        return;
    }
    thread_rec& me = cur();
    loc_state& loc = mem_[addr];
    const access_rec& w = loc.write;
    if (w.tid >= 0 && w.tid != me.tid &&
        w.epoch > me.clock.c[static_cast<std::size_t>(w.tid)]) {
        fail("data race on " + format_addr(addr) + ": write by t" + std::to_string(w.tid) +
                 " at " + format_site(w.where) + " is unordered with read by t" +
                 std::to_string(me.tid) + " at " + format_site(s),
             s);
        return;
    }
    loc.reads[static_cast<std::size_t>(me.tid)] =
        access_rec{me.tid, me.clock.c[static_cast<std::size_t>(me.tid)], s};
}

void engine::plain_write(const void* addr, const site& s) {
    if (aborting_) {
        return;
    }
    thread_rec& me = cur();
    loc_state& loc = mem_[addr];
    const access_rec& w = loc.write;
    if (w.tid >= 0 && w.tid != me.tid &&
        w.epoch > me.clock.c[static_cast<std::size_t>(w.tid)]) {
        fail("data race on " + format_addr(addr) + ": write by t" + std::to_string(w.tid) +
                 " at " + format_site(w.where) + " is unordered with write by t" +
                 std::to_string(me.tid) + " at " + format_site(s),
             s);
        return;
    }
    for (const access_rec& r : loc.reads) {
        if (r.tid >= 0 && r.tid != me.tid &&
            r.epoch > me.clock.c[static_cast<std::size_t>(r.tid)]) {
            fail("data race on " + format_addr(addr) + ": read by t" + std::to_string(r.tid) +
                     " at " + format_site(r.where) + " is unordered with write by t" +
                     std::to_string(me.tid) + " at " + format_site(s),
                 s);
            return;
        }
    }
    loc.reads.fill(access_rec{});
    loc.write = access_rec{me.tid, me.clock.c[static_cast<std::size_t>(me.tid)], s};
}

int engine::spawn(std::function<void()> body, const site& s) {
    op_point(op_kind::thread_spawn, nullptr, s);
    thread_rec& me = cur();
    if (nthreads_ >= max_threads) {
        fail("too many conc::threads (max " + std::to_string(max_threads - 1) +
                 " spawned)",
             s);
        return 0;
    }
    const int tid = nthreads_++;
    thread_rec& t = t_[static_cast<std::size_t>(tid)];
    t.pending = op_desc{op_kind::thread_start, nullptr, s};
    t.clock = me.clock;  // the child starts after everything the parent did
    t.final_clock.clear();
    t.wait_obj = nullptr;
    t.woke_spurious = false;
    t.spurious_credits = opts_.spurious_wakeups;
    t.unwinding = false;
    t.started = false;
    t.os_joined = false;
    t.body = std::move(body);
    if (aborting_) {
        // Spawn during abort-unwind: never start the body; the handle's
        // join/dtor sees a finished, already-joined thread.
        t.st = tstat::finished;
        t.parked = false;
        t.os_joined = true;
        return tid;
    }
    t.st = tstat::runnable;
    t.parked = true;  // the wrapper's first action is to wait for a grant
    t.os = std::thread(&engine::wrapper, this, tid);
    return tid;
}

void engine::wrapper(int tid) {
    g_engine = this;
    g_tid = tid;
    thread_rec& me = t_[static_cast<std::size_t>(tid)];
    me.sem.acquire();
    me.parked = false;
    if (!aborting_) {
        me.started = true;
        ++me.clock.c[static_cast<std::size_t>(tid)];
        try {
            me.body();
        } catch (const abort_execution&) {
        } catch (const std::exception& ex) {
            fail_nothrow(std::string("exception escaped conc::thread body: ") + ex.what());
        } catch (...) {
            fail_nothrow("unknown exception escaped conc::thread body");
        }
    }
    finish_thread(tid);
    g_engine = nullptr;
}

void engine::finish_thread(int tid) {
    thread_rec& me = t_[static_cast<std::size_t>(tid)];
    me.final_clock = me.clock;
    me.st = tstat::finished;
    for (int i = 0; i < nthreads_; ++i) {
        thread_rec& t = t_[static_cast<std::size_t>(i)];
        if (t.st == tstat::blocked_join && t.wait_obj == &me) {
            t.st = tstat::runnable;
            t.pending = op_desc{op_kind::resume, nullptr, t.blocked_at};
            t.wait_obj = nullptr;
        }
    }
    if (aborting_) {
        // Unwind protocol: the root drains children one at a time from its
        // conc::thread destructors; hand it the baton if it is parked.
        if (t_[0].parked) {
            t_[0].sem.release();
        }
        return;
    }
    decide_and_switch(me, true);
}

void engine::join_thread(int tid, const site& s) {
    thread_rec& target = t_[static_cast<std::size_t>(tid)];
    for (;;) {
        op_point(op_kind::thread_join, &target, s);
        if (aborting_) {
            break;
        }
        if (target.st == tstat::finished) {
            cur().clock.join(target.final_clock);
            break;
        }
        thread_rec& me = cur();
        me.st = tstat::blocked_join;
        me.wait_obj = &target;
        me.blocked_at = s;
        decide_and_switch(me, false);
    }
    if (aborting_ && target.st != tstat::finished && target.parked) {
        target.sem.release();  // drive the child through its abort-unwind
    }
    if (target.os.joinable()) {
        target.os.join();
    }
    target.os_joined = true;
}

void engine::drain_unjoined(int tid) {
    thread_rec& target = t_[static_cast<std::size_t>(tid)];
    if (!aborting_ && target.st != tstat::finished) {
        fail_nothrow("conc::thread destroyed without join()");
    }
    if (target.st != tstat::finished && target.parked) {
        target.sem.release();
    }
    if (target.os.joinable()) {
        target.os.join();
    }
    target.os_joined = true;
}

void engine::begin_run() {
    aborting_ = false;
    pruned_flag_ = false;
    ops_ = 0;
    preemptions_ = 0;
    depth_ = 0;
    sleep_ = 0;
    run_trace_.clear();
    sync_.clear();
    mem_.clear();
    mutex_owner_.clear();
    nthreads_ = 1;
    for (auto& t : t_) {
        t.st = tstat::finished;
        t.pending = op_desc{};
        t.clock.clear();
        t.final_clock.clear();
        t.parked = false;
        t.wait_obj = nullptr;
        t.blocked_at = site{};
        t.woke_spurious = false;
        t.spurious_credits = opts_.spurious_wakeups;
        t.unwinding = false;
        t.started = false;
        t.os_joined = true;
        t.body = nullptr;
        while (t.sem.try_acquire()) {
            // drain permits left over from an aborted schedule
        }
    }
    t_[0].st = tstat::runnable;
    t_[0].started = true;
    if (opts_.mode == explore_mode::random) {
        rng_.seed(opts_.seed0 + static_cast<std::uint64_t>(run_index_));
    }
    g_engine = this;
    g_tid = 0;
}

void engine::end_run() {
    g_engine = nullptr;
    // Safety net: no spawned OS thread may outlive its run.
    for (int i = 1; i < nthreads_; ++i) {
        thread_rec& t = t_[static_cast<std::size_t>(i)];
        if (t.os.joinable()) {
            aborting_ = true;
            if (t.st != tstat::finished && t.parked) {
                t.sem.release();
            }
            t.os.join();
            t.os_joined = true;
        }
    }
    if (pruned_flag_ && !failed_) {
        ++pruned_;
    } else {
        ++schedules_;
    }
    if (opts_.mode == explore_mode::exhaustive) {
        while (!path_.empty()) {
            node& b = path_.back();
            if (b.next + 1 < b.all.size()) {
                ++b.next;
                break;
            }
            path_.pop_back();
        }
    }
    ++run_index_;
}

bool engine::advance() {
    if (failed_) {
        return true;
    }
    if (opts_.mode == explore_mode::exhaustive) {
        return path_.empty() || schedules_ + pruned_ >= opts_.max_schedules;
    }
    return run_index_ >= opts_.seeds;
}

report explore(const options& opts, const std::function<void()>& body) {
    report rep;
    engine eng(opts);
    for (;;) {
        eng.begin_run();
        try {
            body();
        } catch (const abort_execution&) {
        } catch (const std::exception& ex) {
            eng.fail_nothrow(std::string("exception escaped test body: ") + ex.what());
        } catch (...) {
            eng.fail_nothrow("unknown exception escaped test body");
        }
        eng.end_run();
        if (eng.advance()) {
            break;
        }
    }
    rep.ok = !eng.failed_;
    rep.schedules = eng.schedules_;
    rep.pruned = eng.pruned_;
    if (!rep.ok) {
        rep.failure = eng.failure_;
        rep.trace = eng.failure_trace_;
    } else if (eng.opts_.mode == explore_mode::exhaustive) {
        rep.complete = eng.path_.empty();
    }
    return rep;
}

void require(bool cond, const char* what, const std::source_location& loc) {
    if (cond) {
        return;
    }
    if (engine* e = engine::active()) {
        e->fail(std::string("property violated: ") + what, to_site(loc));
        return;
    }
    throw std::logic_error(std::string("conc::require failed outside engine: ") + what);
}

}  // namespace batchlin::conc
