// Error handling utilities for batchlin.
//
// All argument validation in the public API goes through BATCHLIN_ENSURE so
// that failures carry the offending expression and source location. Device
// kernels never throw; validation happens on the host before launch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace batchlin {

/// Exception type thrown by all batchlin precondition violations.
class error : public std::runtime_error {
public:
    error(const char* file, int line, const std::string& what)
        : std::runtime_error(std::string(file) + ":" + std::to_string(line) +
                             ": " + what)
    {}
};

/// Exception thrown when two objects have incompatible dimensions.
class dimension_mismatch : public error {
    using error::error;
};

/// Exception thrown when an unsupported runtime combination is requested
/// (e.g. BatchIsai on a non-CSR matrix, BatchCg on a non-SPD problem class).
class unsupported_combination : public error {
    using error::error;
};

namespace detail {

template <typename Exception>
[[noreturn]] void throw_with_message(const char* file, int line,
                                     const char* expr, const std::string& msg)
{
    std::ostringstream os;
    os << "check `" << expr << "` failed";
    if (!msg.empty()) {
        os << ": " << msg;
    }
    throw Exception(file, line, os.str());
}

}  // namespace detail

}  // namespace batchlin

#define BATCHLIN_ENSURE_MSG(cond, msg)                                      \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::batchlin::detail::throw_with_message<::batchlin::error>(      \
                __FILE__, __LINE__, #cond, (msg));                          \
        }                                                                   \
    } while (false)

#define BATCHLIN_ENSURE(cond) BATCHLIN_ENSURE_MSG(cond, "")

#define BATCHLIN_ENSURE_DIMS(cond, msg)                                     \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::batchlin::detail::throw_with_message<                         \
                ::batchlin::dimension_mismatch>(__FILE__, __LINE__, #cond,  \
                                                (msg));                     \
        }                                                                   \
    } while (false)

#define BATCHLIN_UNSUPPORTED(msg)                                           \
    ::batchlin::detail::throw_with_message<                                 \
        ::batchlin::unsupported_combination>(__FILE__, __LINE__,            \
                                             "supported combination", (msg))
