// Final edge coverage: rectangular apply, empty batches, explicit-stack
// equivalence as a test (not just an example), cross-precision pattern
// stability, and counter behaviour of the two-kernel direct baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/conversions.hpp"
#include "matrix/operations.hpp"
#include "solver/direct.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;

TEST(RectangularApply, TallMatrixTimesVector)
{
    // 4x2 per item: y (len 4) = A x (len 2).
    mat::batch_csr<double> a(2, 4, 2, {0, 1, 2, 3, 4}, {0, 1, 0, 1});
    for (index_type b = 0; b < 2; ++b) {
        for (index_type k = 0; k < 4; ++k) {
            a.item_values(b)[k] = k + 1.0 + b;
        }
    }
    mat::batch_dense<double> x(2, 2, 1);
    x.at(0, 0, 0) = 1.0;
    x.at(0, 1, 0) = 2.0;
    x.at(1, 0, 0) = -1.0;
    x.at(1, 1, 0) = 3.0;
    mat::batch_dense<double> y(2, 4, 1);
    xpu::queue q(xpu::make_sycl_policy());
    mat::apply<double>(q, a, x, y);
    EXPECT_DOUBLE_EQ(y.at(0, 0, 0), 1.0 * 1.0);
    EXPECT_DOUBLE_EQ(y.at(0, 1, 0), 2.0 * 2.0);
    EXPECT_DOUBLE_EQ(y.at(1, 2, 0), 4.0 * -1.0);
    EXPECT_DOUBLE_EQ(y.at(1, 3, 0), 5.0 * 3.0);
}

TEST(RectangularApply, TransposeFlipsShape)
{
    mat::batch_csr<double> a(1, 3, 5, {0, 2, 3, 5}, {0, 4, 2, 1, 3});
    for (index_type k = 0; k < 5; ++k) {
        a.item_values(0)[k] = k + 1.0;
    }
    const auto t = mat::transpose(a);
    EXPECT_EQ(t.rows(), 5);
    EXPECT_EQ(t.cols(), 3);
    EXPECT_EQ(t.at(0, 4, 0), a.at(0, 0, 4));
    EXPECT_EQ(t.at(0, 1, 2), a.at(0, 2, 1));
}

TEST(EmptyBatch, ZeroItemsFlowThroughEveryLayer)
{
    mat::batch_csr<double> a(0, 8, 8,
                             {0, 1, 2, 3, 4, 5, 6, 7, 8},
                             {0, 1, 2, 3, 4, 5, 6, 7});
    const solver::batch_matrix<double> variant = a;
    mat::batch_dense<double> b(0, 8, 1);
    mat::batch_dense<double> x(0, 8, 1);
    solver::solve_options opts;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, variant, b, x, opts);
    EXPECT_EQ(result.log.num_systems(), 0);
    EXPECT_EQ(result.stats.groups_launched, 0);
    EXPECT_EQ(result.stats.kernel_launches, 1);
}

TEST(ExplicitStacks, PartitionedSolvesMatchSingleLaunch)
{
    const auto mech = work::mechanism_by_name("gri12");
    const auto a_csr = work::generate_mechanism_batch<double>(mech, 146);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::mechanism_rhs<double>(146, mech.rows, 3);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-9, 300);

    xpu::queue q2(xpu::make_sycl_policy(2));
    mat::batch_dense<double> x_implicit(146, mech.rows, 1);
    solver::solve(q2, a, b, x_implicit, opts);

    mat::batch_dense<double> x_explicit(146, mech.rows, 1);
    for (index_type stack = 0; stack < 2; ++stack) {
        xpu::queue qs = xpu::make_stack_queue(q2);
        solver::solve_range(qs, a, b, x_explicit, opts,
                            xpu::stack_partition(146, 2, stack));
    }
    EXPECT_EQ(x_implicit.values(), x_explicit.values());
}

TEST(CrossPrecision, ChemistryPatternIdenticalAcrossValueTypes)
{
    const auto mech = work::mechanism_by_name("gri12");
    const auto ad = work::generate_mechanism<double>(mech, 5);
    const auto af = work::generate_mechanism<float>(mech, 5);
    EXPECT_EQ(ad.row_ptrs(), af.row_ptrs());
    EXPECT_EQ(ad.col_idxs(), af.col_idxs());
}

TEST(DirectBaseline, TwoKernelsAndGlobalWorkspaceInCounters)
{
    const auto mech = work::mechanism_by_name("drm19");
    const auto a = work::generate_mechanism<double>(mech, 11);
    const index_type items = a.num_batch_items();
    const auto b = work::mechanism_rhs<double>(items, a.rows(), 2);
    mat::batch_dense<double> x(items, a.rows(), 1);
    bl::log::batch_log logger(items);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_dense_lu(q, a, b, x, logger, {0, items});
    // The §1 structure: two launches, heavy global (dense workspace)
    // traffic, minimal SLM usage.
    EXPECT_EQ(q.stats().kernel_launches, 2);
    EXPECT_GT(q.stats().global_read_bytes, q.stats().slm_bytes);

    // Compare against the fused iterative solve: one launch, SLM-heavy.
    xpu::queue q_iter(xpu::make_sycl_policy());
    const solver::batch_matrix<double> variant = a;
    mat::batch_dense<double> x2(items, a.rows(), 1);
    solver::solve_options opts;
    opts.preconditioner = precond::type::jacobi;
    solver::solve(q_iter, variant, b, x2, opts);
    EXPECT_EQ(q_iter.stats().kernel_launches, 1);
    EXPECT_GT(q_iter.stats().slm_bytes,
              q_iter.stats().global_read_bytes);
}

TEST(ScaledSolveSpeedsConvergence, IllScaledSystems)
{
    // Badly row-scaled systems: equilibration restores Jacobi's bite.
    auto a = work::generate_mechanism<double>(
        work::mechanism_by_name("drm19"), 21);
    const index_type items = a.num_batch_items();
    for (index_type item = 0; item < items; ++item) {
        double* vals = a.item_values(item);
        for (index_type i = 0; i < a.rows(); ++i) {
            const double scale = std::pow(10.0, (i % 7) - 3);
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                vals[k] *= scale;
            }
        }
    }
    auto b = work::mechanism_rhs<double>(items, a.rows(), 6);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-9, 400);
    xpu::queue q(xpu::make_sycl_policy());

    auto a_eq = a;
    auto b_eq = b;
    const auto s = mat::compute_equilibration(a_eq);
    mat::scale_system(a_eq, s);
    mat::scale_rhs(b_eq, s);
    mat::batch_dense<double> x(items, a.rows(), 1);
    const auto result = solver::solve<double>(q, a_eq, b_eq, x, opts);
    mat::unscale_solution(x, s);
    EXPECT_EQ(result.log.num_converged(), items);
    // The criterion was met in the equilibrated space; un-scaling can
    // amplify the residual by up to the row-scale spread (1e3 here), so
    // the original-space check is correspondingly looser.
    const solver::batch_matrix<double> orig = a;
    for (const double r : solver::relative_residual_norms(orig, b, x)) {
        EXPECT_LE(r, 1e-3);
    }
}
