#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over the library sources.
#
# Uses the compile_commands.json of an existing build directory, creating
# a Release configuration with exported compile commands when none is
# present. Degrades gracefully: a container without clang-tidy reports
# the situation and exits 0, so check pipelines that include linting
# still pass where the tool is unavailable.
#
# Usage: scripts/lint.sh [build-dir]
set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
cd "$ROOT"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint: clang-tidy not found on PATH; skipping (install LLVM to enable)"
    exit 0
fi

if [ ! -f "$BUILD/compile_commands.json" ]; then
    echo "lint: exporting compile commands into $BUILD"
    cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cpp' | sort)
echo "lint: checking ${#SOURCES[@]} translation units"

if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD" -quiet "${SOURCES[@]}"
else
    clang-tidy -p "$BUILD" --quiet "${SOURCES[@]}"
fi
echo "lint: clean"
