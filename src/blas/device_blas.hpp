// Device-side BLAS-1 building blocks (paper §3.2).
//
// These are the inlined device functions the batched solvers are composed
// of: dot, norm, axpy-style updates, copies. Each executes within one
// work-group (= one linear system) as a barrier-delimited phase and charges
// its floating-point work and its per-operand memory traffic to the
// work-group's counters, attributed to the operand's memory space. Sharing
// these blocks across all solvers mirrors the paper's code-reuse argument.
#pragma once

#include "xpu/group.hpp"
#include "xpu/span.hpp"

namespace batchlin::blas {

using xpu::dspan;
using xpu::mem_space;

namespace detail {

/// Charges `n` element reads of `s` to the counters of `g`.
template <typename T>
void charge_read(xpu::group& g, const dspan<T>& s, index_type n)
{
    const double bytes = static_cast<double>(n) * sizeof(T);
    switch (s.space) {
    case mem_space::slm:
        g.stats().slm_bytes += bytes;
        break;
    case mem_space::constant:
        g.stats().constant_read_bytes += bytes;
        break;
    case mem_space::global:
        g.stats().global_read_bytes += bytes;
        break;
    }
}

/// Charges `n` element writes of `s`; read-only space is promoted to global
/// (a kernel writing a "constant" operand is outside the model).
template <typename T>
void charge_write(xpu::group& g, const dspan<T>& s, index_type n)
{
    const double bytes = static_cast<double>(n) * sizeof(T);
    if (s.space == mem_space::slm) {
        g.stats().slm_bytes += bytes;
    } else {
        g.stats().global_write_bytes += bytes;
    }
}

}  // namespace detail

/// x[i] = value for all i.
template <typename T>
void fill(xpu::group& g, dspan<T> x, T value)
{
    g.for_items(x.len, [&](index_type i) { x[i] = value; });
    detail::charge_write(g, x, x.len);
}

/// dst = src (lengths must match; validated by the workspace planner).
template <typename T>
void copy(xpu::group& g, dspan<const T> src, dspan<T> dst)
{
    g.for_items(src.len, [&](index_type i) { dst[i] = src[i]; });
    detail::charge_read(g, src, src.len);
    detail::charge_write(g, dst, src.len);
}

/// x *= alpha.
template <typename T>
void scale(xpu::group& g, T alpha, dspan<T> x)
{
    g.for_items(x.len, [&](index_type i) { x[i] *= alpha; });
    g.stats().flops += static_cast<double>(x.len);
    detail::charge_read(g, x, x.len);
    detail::charge_write(g, x, x.len);
}

/// y += alpha * x.
template <typename T>
void axpy(xpu::group& g, T alpha, dspan<const T> x, dspan<T> y)
{
    g.for_items(x.len, [&](index_type i) { y[i] += alpha * x[i]; });
    g.stats().flops += 2.0 * x.len;
    detail::charge_read(g, x, x.len);
    detail::charge_read(g, y, y.len);
    detail::charge_write(g, y, y.len);
}

/// y = alpha * x + beta * y.
template <typename T>
void axpby(xpu::group& g, T alpha, dspan<const T> x, T beta, dspan<T> y)
{
    g.for_items(x.len,
                [&](index_type i) { y[i] = alpha * x[i] + beta * y[i]; });
    g.stats().flops += 3.0 * x.len;
    detail::charge_read(g, x, x.len);
    detail::charge_read(g, y, y.len);
    detail::charge_write(g, y, y.len);
}

/// out[i] = a[i] * b[i] — the scalar-Jacobi application. `a` may be held
/// in a reduced storage type S (fp32 inverse diagonals): the product
/// widens to T, and charge_read sizes the traffic by S automatically.
template <typename T, typename S>
void elementwise_mult(xpu::group& g, dspan<const S> a, dspan<const T> b,
                      dspan<T> out)
{
    g.for_items(a.len, [&](index_type i) {
        out[i] = static_cast<T>(a[i] * b[i]);
    });
    g.stats().flops += static_cast<double>(a.len);
    detail::charge_read(g, a, a.len);
    detail::charge_read(g, b, b.len);
    detail::charge_write(g, out, a.len);
}

/// Work-group dot product using the selected reduction strategy (§3.2).
template <typename T>
T dot(xpu::group& g, dspan<const T> x, dspan<const T> y,
      xpu::reduce_path path)
{
    detail::charge_read(g, x, x.len);
    detail::charge_read(g, y, y.len);
    g.stats().flops += static_cast<double>(x.len);  // multiplies
    return g.reduce_sum<T>(
        x.len, [&](index_type i) { return x[i] * y[i]; }, path);
}

/// Euclidean norm via the same reduction machinery.
template <typename T>
T nrm2(xpu::group& g, dspan<const T> x, xpu::reduce_path path)
{
    detail::charge_read(g, x, x.len);
    g.stats().flops += static_cast<double>(x.len);
    const T sq = g.reduce_sum<T>(
        x.len, [&](index_type i) { return x[i] * x[i]; }, path);
    using std::sqrt;
    return sqrt(sq);
}

}  // namespace batchlin::blas
