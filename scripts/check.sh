#!/usr/bin/env bash
# Builds and tests the three verification configs:
#  1. the default Release build (tier-1: what CI and users run),
#  2. a Debug + ASan/UBSan build (BATCHLIN_SANITIZE=ON), which also keeps
#     assertions alive so the debug-only workspace-binder name checks run,
#     and
#  3. a Debug + ThreadSanitizer build (BATCHLIN_SANITIZE=thread) running
#     the serve:: tests, which exercise the service's submit/worker/reply
#     handoffs from many host threads at once.
# The sanitizer passes are what prove the pooled launch resources, the
# reused spill backing, and the serving layer's locking race- and UB-free.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

JOBS=${1:-$(nproc)}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

echo "== config 1/3: Release (build/)"
cmake -B build -S . -G Ninja >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure | tail -3

echo "== config 2/3: Debug + ASan/UBSan (build-sanitize/)"
cmake -B build-sanitize -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug -DBATCHLIN_SANITIZE=ON >/dev/null
cmake --build build-sanitize -j "$JOBS"
ctest --test-dir build-sanitize -j "$JOBS" --output-on-failure | tail -3

echo "== config 3/3: Debug + TSan, serve tests (build-tsan/)"
cmake -B build-tsan -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug -DBATCHLIN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_serve
# OMP_NUM_THREADS=1: libgomp is not TSan-instrumented, so its barriers
# would report false positives. The serve-layer concurrency under test —
# client threads vs worker threads vs stats readers — is plain std::thread
# and stays fully exercised.
OMP_NUM_THREADS=1 ctest --test-dir build-tsan -R '^(Serve|Assemble)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== all three configs clean"
