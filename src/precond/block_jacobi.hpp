// BatchBlockJacobi: block-Jacobi preconditioner.
//
// The paper's introduction uses block-Jacobi as the canonical example of
// batched functionality ("applying a set of small dense matrices to
// vector segments"), and Ginkgo ships a batched block-Jacobi. M is the
// inverse of the block diagonal of A: rows are partitioned into
// contiguous blocks of (up to) `block_size`; generation extracts each
// diagonal block densely and LU-factorizes it in the preconditioner
// workspace (no pivoting — the problem space is diagonally dominant, and
// the factor storage must stay in the value workspace); application is a
// pair of triangular sweeps per block — exactly the "small dense systems
// applied to vector segments" kernel. Requires BatchCsr.
#pragma once

#include <vector>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "matrix/batch_csr.hpp"
#include "precond/types.hpp"

namespace batchlin::precond {

template <typename T, typename S = T>
class block_jacobi {
public:
    static constexpr type kind = type::block_jacobi;

    /// Precomputes the block partition and, for each block, the positions
    /// of its entries in the CSR values array (shared pattern => done once
    /// on the host). Throws when a diagonal block is entirely outside the
    /// pattern.
    block_jacobi(const mat::batch_csr<T>& a, index_type block_size);

    /// Dense factor storage: sum over blocks of (block rows)^2, packed
    /// at storage width S into the T-typed workspace.
    size_type workspace_elems() const
    {
        return packed_elems<T, S>(factor_elems_);
    }
    /// Static bound used by the dispatch layer before construction.
    static size_type workspace_elems(index_type rows, index_type /*nnz*/,
                                     index_type block_size)
    {
        const index_type blocks = ceil_div(rows, block_size);
        return packed_elems<T, S>(static_cast<size_type>(blocks) *
                                  block_size * block_size);
    }

    struct applier {
        const block_jacobi* parent = nullptr;
        xpu::dspan<const S> factors;

        void apply(xpu::group& g, xpu::dspan<const T> r,
                   xpu::dspan<T> z) const;
    };

    applier generate(xpu::group& g, const blas::csr_view<T, S>& a,
                     xpu::dspan<T> work) const;

    index_type num_blocks() const
    {
        return static_cast<index_type>(block_starts_.size()) - 1;
    }
    index_type block_size() const { return block_size_; }

private:
    friend struct applier;

    index_type rows_ = 0;
    index_type block_size_ = 0;
    size_type factor_elems_ = 0;
    /// block b covers rows [block_starts_[b], block_starts_[b+1]).
    std::vector<index_type> block_starts_;
    /// Offset of block b's dense factor within the workspace.
    std::vector<size_type> factor_offsets_;
    /// For each block, row-major gather table: position in the CSR values
    /// array of entry (i_local, j_local), or -1 when outside the pattern.
    std::vector<index_type> gather_pos_;
    std::vector<size_type> gather_offsets_;
};

}  // namespace batchlin::precond
