#include "precond/ilu0.hpp"

#include "util/error.hpp"

namespace batchlin::precond {

namespace {

/// Position of `col` within CSR row `row`, or -1 when outside the pattern.
index_type find_in_row(const index_type* row_ptrs,
                       const index_type* col_idxs, index_type row,
                       index_type col)
{
    index_type lo = row_ptrs[row];
    index_type hi = row_ptrs[row + 1] - 1;
    while (lo <= hi) {
        const index_type mid = lo + (hi - lo) / 2;
        if (col_idxs[mid] == col) {
            return mid;
        }
        if (col_idxs[mid] < col) {
            lo = mid + 1;
        } else {
            hi = mid - 1;
        }
    }
    return -1;
}

}  // namespace

template <typename T, typename S>
ilu0<T, S>::ilu0(const mat::batch_csr<T>& a)
    : diag_positions_(a.diagonal_positions())
{
    for (index_type i = 0; i < a.rows(); ++i) {
        BATCHLIN_ENSURE_MSG(diag_positions_[i] >= 0,
                            "ILU(0) requires every diagonal entry in the "
                            "sparsity pattern");
    }
}

template <typename T, typename S>
typename ilu0<T, S>::applier ilu0<T, S>::generate(
    xpu::group& g, const blas::csr_view<T, S>& a, xpu::dspan<T> work) const
{
    const index_type packed = static_cast<index_type>(
        packed_elems<T, S>(static_cast<size_type>(a.nnz)));
    xpu::dspan<S> factors =
        xpu::reinterpret_span<S>(work.subspan(0, packed), a.nnz);
    xpu::dspan<T> temp = work.subspan(packed, a.rows);
    const index_type* diag_pos = diag_positions_.data();

    blas::copy(g, a.values, factors);

    // IKJ-variant in-place ILU(0): the elimination is inherently sequential
    // per system, so one lane of the work-group performs it (the batch-level
    // parallelism across work-groups is what the method exploits). The
    // elimination arithmetic runs in the storage precision S.
    double flops = 0.0;
    double lookups = 0.0;
    for (index_type i = 0; i < a.rows; ++i) {
        for (index_type k = a.row_ptrs[i]; k < diag_pos[i]; ++k) {
            const index_type pivot_row = a.col_idxs[k];
            factors[k] = static_cast<S>(factors[k] /
                                        factors[diag_pos[pivot_row]]);
            flops += 1.0;
            for (index_type j = k + 1; j < a.row_ptrs[i + 1]; ++j) {
                const index_type p = find_in_row(a.row_ptrs, a.col_idxs,
                                                 pivot_row, a.col_idxs[j]);
                lookups += 1.0;
                if (p >= 0) {
                    factors[j] -= factors[k] * factors[p];
                    flops += 2.0;
                }
            }
        }
    }
    g.barrier();
    g.stats().flops += flops;
    // Factor updates and pattern lookups all hit the factor storage space,
    // at storage width — half the bytes under fp32 factors.
    const double touched = flops + lookups;
    if (factors.space == xpu::mem_space::slm) {
        g.stats().slm_bytes += touched * sizeof(S);
    } else {
        g.stats().global_read_bytes += touched * sizeof(S);
    }
    // Implicit view-of-const conversion keeps the sanitizer tag attached
    // to the factor storage the applier dereferences.
    return {a.rows, a.nnz, a.row_ptrs, a.col_idxs, diag_pos, factors, temp};
}

template <typename T, typename S>
void ilu0<T, S>::applier::apply(xpu::group& g, xpu::dspan<const T> r,
                                xpu::dspan<T> z) const
{
    // Forward sweep: L temp = r with unit diagonal. The factor reads widen
    // to T; the running sums stay in compute precision.
    double flops = 0.0;
    for (index_type i = 0; i < rows; ++i) {
        T sum = r[i];
        for (index_type k = row_ptrs[i]; k < diag_pos[i]; ++k) {
            sum -= factors[k] * temp[col_idxs[k]];
            flops += 2.0;
        }
        temp[i] = sum;
    }
    g.barrier();
    // Backward sweep: U z = temp.
    for (index_type i = rows - 1; i >= 0; --i) {
        T sum = temp[i];
        for (index_type k = diag_pos[i] + 1; k < row_ptrs[i + 1]; ++k) {
            sum -= factors[k] * z[col_idxs[k]];
            flops += 2.0;
        }
        z[i] = sum / factors[diag_pos[i]];
        flops += 1.0;
    }
    g.barrier();
    g.stats().flops += flops;
    blas::detail::charge_read(g, factors, nnz);
    blas::detail::charge_read(g, r, rows);
    blas::detail::charge_write(g, temp, rows);
    blas::detail::charge_write(g, z, rows);
    g.stats().constant_read_bytes +=
        static_cast<double>(nnz + 2 * rows) * sizeof(index_type);
}

template class ilu0<float>;
template class ilu0<double>;
template class ilu0<double, float>;

}  // namespace batchlin::precond
