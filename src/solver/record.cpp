#include "solver/record.hpp"

#include <algorithm>
#include <type_traits>
#include <variant>

#include "solver/instantiate.hpp"
#include "solver/run_decl.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace batchlin::solver {

// The bound kernels are explicitly instantiated in the per-solver
// translation units; declare those instantiations here (same scheme as
// dispatch.cpp) so this file stays cheap to compile.
#define BATCHLIN_EXTERN_CG_BOUND(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_CG_BOUND(T, S, MatBatch, __VA_ARGS__)
#define BATCHLIN_EXTERN_BICGSTAB_BOUND(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_BICGSTAB_BOUND(T, S, MatBatch, __VA_ARGS__)
#define BATCHLIN_EXTERN_GMRES_BOUND(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_GMRES_BOUND(T, S, MatBatch, __VA_ARGS__)
#define BATCHLIN_EXTERN_RICHARDSON_BOUND(T, S, MatBatch, ...) \
    extern BATCHLIN_INSTANTIATE_RICHARDSON_BOUND(T, S, MatBatch, __VA_ARGS__)

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_CG_BOUND, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_CG_BOUND, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_CG_BOUND, double, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_BICGSTAB_BOUND, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_BICGSTAB_BOUND, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_BICGSTAB_BOUND, double, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_GMRES_BOUND, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_GMRES_BOUND, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_GMRES_BOUND, double, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_RICHARDSON_BOUND, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_RICHARDSON_BOUND, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_EXTERN_RICHARDSON_BOUND, double, float)

namespace {

/// nnz used for preconditioner-workspace sizing, per format (mirrors
/// dispatch.cpp).
template <typename T>
index_type pattern_nnz(const batch_matrix<T>& a)
{
    if (const auto* csr = std::get_if<mat::batch_csr<T>>(&a)) {
        return csr->nnz();
    }
    if (const auto* ell = std::get_if<mat::batch_ell<T>>(&a)) {
        return ell->rows() * ell->ell_width();
    }
    const auto& dense = std::get<mat::batch_dense<T>>(a);
    return static_cast<index_type>(dense.item_size());
}

template <typename T, typename S>
size_type precond_workspace(precond::type p, index_type rows,
                            index_type nnz, index_type block_size)
{
    switch (p) {
    case precond::type::none:
        return precond::identity<T, S>::workspace_elems(rows, nnz);
    case precond::type::jacobi:
        return precond::jacobi<T, S>::workspace_elems(rows, nnz);
    case precond::type::ilu:
        return precond::ilu0<T, S>::workspace_elems(rows, nnz);
    case precond::type::isai:
        return precond::isai<T, S>::workspace_elems(rows, nnz);
    case precond::type::block_jacobi:
        return precond::block_jacobi<T, S>::workspace_elems(rows, nnz,
                                                            block_size);
    }
    return 0;
}

template <typename T>
mat::storage_precision storage_of(const batch_matrix<T>& a)
{
    return std::visit([](const auto& m) { return m.storage_mode(); }, a);
}

}  // namespace

template <typename T>
recorded_solve<T>::recorded_solve(batch_matrix<T> a, mat::batch_dense<T> b,
                                  mat::batch_dense<T> x,
                                  const solve_options& opts, slm_plan plan,
                                  kernel_config config,
                                  index_type total_items)
    : a_(std::move(a)),
      b_(std::move(b)),
      x_(std::move(x)),
      opts_(opts),
      plan_(std::move(plan)),
      slots_(plan_),
      config_(config),
      total_items_(total_items),
      spill_(static_cast<std::size_t>(plan_.global_elems_per_group) *
             static_cast<std::size_t>(total_items)),
      log_(total_items)
{}

template <typename T>
std::unique_ptr<recorded_solve<T>> recorded_solve<T>::record(
    xpu::queue& q, const std::vector<assembly_part<T>>& parts,
    const solve_options& opts)
{
    opts.criterion.validate();
    BATCHLIN_ENSURE_MSG(!opts.record_history,
                        "per-iteration history is not supported for "
                        "recorded solves");
    BATCHLIN_ENSURE_MSG(opts.solver != solver_type::trsv,
                        "BatchTrsv cannot be graph-recorded; use the "
                        "direct launch path");
    const index_type total_items = detail::validate_assembly(parts);
    const index_type rows =
        std::visit([](const auto& m) { return m.rows(); },
                   *parts.front().a);

    // Resolve plan + launch config exactly as solve_range does, so a
    // replay is bit-identical to the eager solve of the same batch.
    // Storage resolution also mirrors solve_range: an fp32 matrix (or an
    // fp32 request on the owned gathered copy) records the S=float
    // kernels; the gathered copy is compressed in place — it is owned, so
    // no per-replay conversion cost exists.
    batch_matrix<T> a = detail::gather_matrix(parts, total_items);
    const mat::storage_precision request_storage = storage_of(a);
    mat::storage_precision eff = mat::effective_storage<T>(opts.storage);
    if (request_storage == mat::storage_precision::fp32) {
        eff = mat::storage_precision::fp32;
    }
    const bool compressed = eff == mat::storage_precision::fp32;
    if (compressed && request_storage == mat::storage_precision::native) {
        std::visit(
            [](auto& m) {
                m.set_storage_precision(mat::storage_precision::fp32);
            },
            a);
    }
    const index_type nnz = pattern_nnz(a);
    const xpu::reduce_path* reduction_override =
        opts.reduction ? &*opts.reduction : nullptr;
    const kernel_config config = choose_launch_config(
        q.policy(), rows, opts.sub_group_size, reduction_override);
    const size_type pc_elems =
        compressed ? precond_workspace<T, float>(opts.preconditioner, rows,
                                                 nnz, opts.block_jacobi_size)
                   : precond_workspace<T, T>(opts.preconditioner, rows, nnz,
                                             opts.block_jacobi_size);
    slm_plan plan = plan_workspace(opts.solver, rows, nnz, pc_elems,
                                   q.policy().slm_bytes_per_group,
                                   sizeof(T), opts.gmres_restart, opts.slm);
    plan.zero_spill = opts.zero_spill;

    mat::batch_dense<T> b(total_items, rows, 1);
    mat::batch_dense<T> x(total_items, rows, 1);
    auto b_out = b.values().begin();
    auto x_out = x.values().begin();
    for (const assembly_part<T>& part : parts) {
        b_out = std::copy(part.b->values().begin(), part.b->values().end(),
                          b_out);
        x_out = std::copy(part.x->values().begin(), part.x->values().end(),
                          x_out);
    }

    std::unique_ptr<recorded_solve> rs(
        new recorded_solve(std::move(a), std::move(b), std::move(x), opts,
                           std::move(plan), config, total_items));
    rs->request_storage_ = request_storage;

    const xpu::batch_range range{0, total_items};
    const spill_view<T> spill{rs->spill_.data(),
                              rs->plan_.global_elems_per_group};

    // Level 3 of the record dispatch: the solver axis. Captures in the
    // recorded closure point into rs-owned storage only. The storage tag
    // threads the S axis through the lambda (mirrors dispatch.cpp).
    auto record_solver = [&](auto storage_tag, auto& concrete,
                             auto pc_owned) {
        using S = typename decltype(storage_tag)::type;
        using MatBatch = std::decay_t<decltype(concrete)>;
        using Precond = typename decltype(pc_owned)::element_type;
        auto& pc = *pc_owned;
        switch (opts.solver) {
        case solver_type::cg:
            run_cg_bound<T, MatBatch, Precond, S>(
                q, concrete, pc, rs->b_, rs->x_, opts.criterion, rs->slots_,
                rs->config_, spill, rs->log_, range);
            break;
        case solver_type::bicgstab:
            run_bicgstab_bound<T, MatBatch, Precond, S>(
                q, concrete, pc, rs->b_, rs->x_, opts.criterion, rs->slots_,
                rs->config_, spill, rs->log_, range);
            break;
        case solver_type::gmres:
            run_gmres_bound<T, MatBatch, Precond, S>(
                q, concrete, pc, rs->b_, rs->x_, opts.criterion, rs->slots_,
                rs->config_, spill, opts.gmres_restart, rs->log_, range);
            break;
        case solver_type::richardson:
            run_richardson_bound<T, MatBatch, Precond, S>(
                q, concrete, pc, rs->b_, rs->x_, opts.criterion, rs->slots_,
                rs->config_, spill,
                static_cast<T>(opts.richardson_relaxation), rs->log_,
                range);
            break;
        case solver_type::trsv:
            BATCHLIN_UNSUPPORTED("BatchTrsv cannot be graph-recorded");
        }
        rs->precond_ = std::move(pc_owned);
    };

    // Level 2: the preconditioner axis, constructed ONCE from the owned
    // (address-stable) combined matrix; `if constexpr` keeps the illegal
    // Table-3 combinations from instantiating (mirrors dispatch.cpp).
    auto record_precond = [&](auto storage_tag, auto& concrete) {
        using S = typename decltype(storage_tag)::type;
        using MatBatch = std::decay_t<decltype(concrete)>;
        constexpr bool is_csr =
            std::is_same_v<MatBatch, mat::batch_csr<T>>;
        switch (opts.preconditioner) {
        case precond::type::none:
            record_solver(storage_tag, concrete,
                          std::make_shared<precond::identity<T, S>>());
            return;
        case precond::type::jacobi:
            if constexpr (is_csr) {
                record_solver(
                    storage_tag, concrete,
                    std::make_shared<precond::jacobi<T, S>>(concrete));
            } else {
                record_solver(storage_tag, concrete,
                              std::make_shared<precond::jacobi<T, S>>());
            }
            return;
        case precond::type::ilu:
            if constexpr (is_csr) {
                record_solver(
                    storage_tag, concrete,
                    std::make_shared<precond::ilu0<T, S>>(concrete));
                return;
            }
            BATCHLIN_UNSUPPORTED("BatchIlu requires the BatchCsr format");
        case precond::type::isai:
            if constexpr (is_csr) {
                record_solver(
                    storage_tag, concrete,
                    std::make_shared<precond::isai<T, S>>(concrete));
                return;
            }
            BATCHLIN_UNSUPPORTED("BatchIsai requires the BatchCsr format");
        case precond::type::block_jacobi:
            if constexpr (is_csr) {
                record_solver(storage_tag, concrete,
                              std::make_shared<precond::block_jacobi<T, S>>(
                                  concrete, opts.block_jacobi_size));
                return;
            }
            BATCHLIN_UNSUPPORTED(
                "BatchBlockJacobi requires the BatchCsr format");
        }
    };

    xpu::command_graph recorder;
    recorder.begin_recording(q);
    try {
        // Level 1: the format axis (storage already resolved above).
        std::visit(
            [&](auto& concrete) {
                if (compressed) {
                    record_precond(std::type_identity<float>{}, concrete);
                } else {
                    record_precond(std::type_identity<T>{}, concrete);
                }
            },
            rs->a_);
        recorder.end_recording();
    } catch (...) {
        if (recorder.recording()) {
            recorder.end_recording();
        }
        throw;
    }
    rs->exec_ = recorder.finalize();
    return rs;
}

template <typename T>
bool recorded_solve<T>::compatible(
    const std::vector<assembly_part<T>>& parts,
    const solve_options& opts) const
{
    if (!exec_.valid() || !(opts == opts_) || parts.empty()) {
        return false;
    }
    index_type items = 0;
    for (const assembly_part<T>& part : parts) {
        if (part.a == nullptr || part.b == nullptr || part.x == nullptr) {
            return false;
        }
        items += part.items();
    }
    if (items != total_items_) {
        return false;
    }
    // The caller's batcher guarantees the parts are mutually coalescible;
    // checking the leader against the recorded pattern covers the batch.
    // Storage compares against the *request-side* mode — a_ itself may be
    // compressed beyond what the requests carry (opts-driven).
    return storage_of(*parts.front().a) == request_storage_ &&
           same_shape(a_, *parts.front().a);
}

template <typename T>
void recorded_solve<T>::rebind(const std::vector<assembly_part<T>>& parts)
{
    std::visit(
        [&](auto& combined) {
            using MatBatch = std::decay_t<decltype(combined)>;
            if (combined.storage_mode() == mat::storage_precision::fp32) {
                auto out = combined.values_fp32().begin();
                for (const assembly_part<T>& part : parts) {
                    const auto& m = std::get<MatBatch>(*part.a);
                    if (m.storage_mode() == mat::storage_precision::fp32) {
                        const auto& values = m.values_fp32();
                        out = std::copy(values.begin(), values.end(), out);
                    } else {
                        // Native requests under a compressed recording:
                        // narrow on copy (the opts-driven compression the
                        // record path applied).
                        const auto& values = m.values();
                        out = std::transform(
                            values.begin(), values.end(), out,
                            [](T v) { return static_cast<float>(v); });
                    }
                }
                return;
            }
            auto out = combined.values().begin();
            for (const assembly_part<T>& part : parts) {
                const auto& values =
                    std::get<MatBatch>(*part.a).values();
                out = std::copy(values.begin(), values.end(), out);
            }
        },
        a_);
    auto b_out = b_.values().begin();
    auto x_out = x_.values().begin();
    for (const assembly_part<T>& part : parts) {
        b_out = std::copy(part.b->values().begin(), part.b->values().end(),
                          b_out);
        x_out = std::copy(part.x->values().begin(), part.x->values().end(),
                          x_out);
    }
    ++rebinds_;
}

template <typename T>
double recorded_solve<T>::replay(xpu::queue& q, xpu::submit_cost cost)
{
    if (plan_.zero_spill && !spill_.empty()) {
        // Match the eager path's per-launch zero fill bit-for-bit.
        std::fill(spill_.begin(), spill_.end(), T{});
    }
    wall_timer timer;
    exec_.replay(q, cost);
    return timer.seconds();
}

template <typename T>
void recorded_solve<T>::scatter(
    const std::vector<assembly_part<T>>& parts) const
{
    auto x_in = x_.values().begin();
    for (const assembly_part<T>& part : parts) {
        std::copy_n(x_in, part.x->values().size(),
                    part.x->values().begin());
        x_in += static_cast<std::ptrdiff_t>(part.x->values().size());
    }
}

template class recorded_solve<float>;
template class recorded_solve<double>;

}  // namespace batchlin::solver
