// BatchIsai: incomplete sparse approximate inverse preconditioner.
//
// Computes M with the sparsity pattern of A such that each row of M·A
// matches the corresponding row of the identity on the pattern positions:
// for row i with pattern columns S_i,  sum_{s in S_i} M_is A_{s j} = d_ij
// for all j in S_i. Each row yields a small dense system solved with LU.
// Application is then a single SpMV with M — no triangular solves, which is
// the attraction of ISAI on GPUs. Requires BatchCsr (paper Table 3).
#pragma once

#include <vector>

#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"
#include "matrix/batch_csr.hpp"
#include "precond/types.hpp"

namespace batchlin::precond {

template <typename T, typename S = T>
class isai {
public:
    static constexpr type kind = type::isai;

    /// Captures the shared pattern's per-row gather metadata: for each row,
    /// the positions of the local dense system's entries within the CSR
    /// values array (or -1 when A is zero there).
    explicit isai(const mat::batch_csr<T>& a);

    /// M values live in the workspace (packed at storage width S);
    /// applied as an SpMV.
    static size_type workspace_elems(index_type /*rows*/, index_type nnz)
    {
        return packed_elems<T, S>(static_cast<size_type>(nnz));
    }

    struct applier {
        blas::csr_view<T, S> approx_inverse;

        void apply(xpu::group& g, xpu::dspan<const T> r,
                   xpu::dspan<T> z) const
        {
            blas::spmv(g, approx_inverse, r, z);
        }
    };

    applier generate(xpu::group& g, const blas::csr_view<T, S>& a,
                     xpu::dspan<T> work) const;

    /// Largest per-row dense system order of the pattern (test/model hook).
    index_type max_local_size() const { return max_local_size_; }

private:
    index_type rows_ = 0;
    index_type nnz_ = 0;
    index_type max_local_size_ = 0;
    /// gather_pos_[row_ptrs[i]*?]: flattened s-by-s gather tables. For row i
    /// with s = row length, table entries (j_local * s + s_local) hold the
    /// position of A(col_{s_local}, col_{j_local}) or -1.
    std::vector<index_type> gather_offsets_;
    std::vector<index_type> gather_pos_;
};

}  // namespace batchlin::precond
