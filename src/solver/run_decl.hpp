// Declarations of the fused batched solver kernels.
//
// Definitions live in the *_impl.hpp headers and are explicitly
// instantiated (per value type, matrix format, and preconditioner — the
// template axes of the multi-level dispatch, §3.3) in the per-solver
// translation units, keeping the dispatch layer itself cheap to compile.
#pragma once

#include "log/logger.hpp"
#include "matrix/batch_dense.hpp"
#include "solver/launch.hpp"
#include "solver/workspace.hpp"
#include "stop/criterion.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

/// Preconditioned conjugate gradients (Algorithm 1 of the paper) for the
/// batch entries in `range`; one fused kernel launch.
template <typename T, typename MatBatch, typename Precond>
void run_cg(xpu::queue& q, const MatBatch& a, const Precond& precond,
            const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
            const stop::criterion& crit, const slm_plan& plan,
            const kernel_config& config, log::batch_log& logger,
            xpu::batch_range range);

/// Preconditioned BiCGSTAB — the solver used for the non-SPD PeleLM inputs.
template <typename T, typename MatBatch, typename Precond>
void run_bicgstab(xpu::queue& q, const MatBatch& a, const Precond& precond,
                  const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                  const stop::criterion& crit, const slm_plan& plan,
                  const kernel_config& config, log::batch_log& logger,
                  xpu::batch_range range);

/// Preconditioned Richardson iteration x += relaxation * M(b - A x)
/// (library extension; the baseline/smoother of the solver hierarchy).
template <typename T, typename MatBatch, typename Precond>
void run_richardson(xpu::queue& q, const MatBatch& a,
                    const Precond& precond, const mat::batch_dense<T>& b,
                    mat::batch_dense<T>& x, const stop::criterion& crit,
                    const slm_plan& plan, const kernel_config& config,
                    T relaxation, log::batch_log& logger,
                    xpu::batch_range range);

/// Restarted GMRES(m) with left preconditioning; `restart` == m.
template <typename T, typename MatBatch, typename Precond>
void run_gmres(xpu::queue& q, const MatBatch& a, const Precond& precond,
               const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
               const stop::criterion& crit, const slm_plan& plan,
               const kernel_config& config, index_type restart,
               log::batch_log& logger, xpu::batch_range range);

}  // namespace batchlin::solver
