// Host-throughput benchmark: wall-clock solves/sec of the simulator itself.
//
// The figure benches sweep hundreds of solves, and applications like the
// PeleLM Newton loop (§4.1) re-solve the same batch structure over and over.
// Both are limited by the *host* cost of one `solver::solve` round trip —
// launch-resource setup, workspace binding, spill allocation — not by the
// modeled device time. This bench pins that number: it runs a repeated-solve
// sweep of small CG/BiCGSTAB/GMRES batches on one persistent queue (the
// handle-style usage) and reports solves per wall-clock second.
//
// A second section compares storage precisions on the bandwidth-bound
// sweep (Table 4 chemistry + stencil batches, deep FP64 tolerance): native
// FP64 storage versus fp32 storage with iterative refinement
// (`solve_refined`). There the figure of merit is off-chip traffic —
// constant + global bytes, where the matrix values stream from — and the
// reported "bandwidth-limited solves/sec" divides the device HBM rate by
// the measured bytes per solve. Host wall-clock rates are reported too;
// the simulator is compute-hosted, so the wall clock does NOT see the
// bandwidth win (see DESIGN.md §11).
//
// Usage:
//   bench_host_throughput [--json FILE] [--min-time SECONDS]
//                         [--baseline cg=X,bicgstab=Y,gmres=Z]
// `--baseline` takes a previously recorded run (see
// scripts/bench_host_baseline.env) and adds speedup factors to the output.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common.hpp"
#include "util/timer.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"

using namespace bench;

namespace {

/// One problem shape of the repeated-solve sweep: the small-batch,
/// small-system end where host overhead is commensurable with kernel work.
struct sweep_shape {
    index_type items;
    index_type rows;
};

constexpr sweep_shape kSweep[] = {{4, 8}, {8, 16}, {16, 32}};

struct solver_case {
    const char* name;
    solver::solver_type type;
};

constexpr solver_case kSolvers[] = {
    {"cg", solver::solver_type::cg},
    {"bicgstab", solver::solver_type::bicgstab},
    {"gmres", solver::solver_type::gmres},
};

struct throughput_result {
    double solves_per_sec = 0.0;
    double mean_iterations = 0.0;
    long solves = 0;
    double seconds = 0.0;
};

/// Repeats `solve` on one persistent queue until `min_time` has elapsed.
/// The initial guess is reset to zero before every repeat so each solve
/// performs identical work.
throughput_result run_case(xpu::queue& q, solver::solver_type type,
                           double min_time)
{
    solver::solve_options opts;
    opts.solver = type;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-6, 50);

    throughput_result out;
    double iter_sum = 0.0;
    for (const sweep_shape& shape : kSweep) {
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(shape.items, shape.rows, 3);
        const auto b = work::random_rhs<double>(shape.items, shape.rows, 7);
        mat::batch_dense<double> x(shape.items, shape.rows, 1);

        // Warm up allocator, caches, and (post-PR) the queue's pools.
        for (int i = 0; i < 10; ++i) {
            x.fill(0.0);
            (void)solver::solve(q, a, b, x, opts);
        }

        const double shape_time = min_time / std::size(kSweep);
        long solves = 0;
        wall_timer timer;
        double elapsed = 0.0;
        do {
            for (int i = 0; i < 20; ++i) {
                x.fill(0.0);
                const auto result = solver::solve(q, a, b, x, opts);
                iter_sum += result.log.mean_iterations();
            }
            solves += 20;
            elapsed = timer.seconds();
        } while (elapsed < shape_time);
        out.solves += solves;
        out.seconds += elapsed;
    }
    out.solves_per_sec = static_cast<double>(out.solves) / out.seconds;
    out.mean_iterations = iter_sum / static_cast<double>(out.solves);
    return out;
}

/// Outer FP64 tolerance of the storage comparison. Deep enough that the
/// refinement sweep's extra inner iterations amortize against the longer
/// native solve; both variants deliver true FP64 residuals below it.
constexpr double kStorageTol = 1e-12;

/// One bandwidth-bound problem of the storage comparison.
struct storage_case {
    const char* name;
    solver::solver_type type;
};

struct storage_result {
    index_type items = 0;
    index_type converged = 0;
    index_type sweeps = 0;
    double worst_true_residual = 0.0;
    /// Off-chip traffic (constant + global read + global write bytes) of
    /// one solve over the whole batch, per variant.
    double native_offchip_bytes = 0.0;
    double fp32_offchip_bytes = 0.0;
    /// HBM-rate / bytes-per-solve: the throughput a bandwidth-bound
    /// device sustains on this traffic.
    double native_bw_solves_per_sec = 0.0;
    double fp32_bw_solves_per_sec = 0.0;
    /// Host wall-clock rates (the simulator's own cost, for reference).
    double native_wall_solves_per_sec = 0.0;
    double fp32_wall_solves_per_sec = 0.0;

    double offchip_speedup() const
    {
        return native_offchip_bytes / fp32_offchip_bytes;
    }
};

double offchip_bytes(const xpu::counters& c)
{
    return static_cast<double>(c.constant_read_bytes) +
           static_cast<double>(c.global_read_bytes) +
           static_cast<double>(c.global_write_bytes);
}

/// Wall-clock rate of `fn` (one solve per call) over a `slice`-second run.
template <typename F>
double wall_rate(double slice, F&& fn)
{
    long solves = 0;
    wall_timer timer;
    double elapsed = 0.0;
    do {
        fn();
        ++solves;
        elapsed = timer.seconds();
    } while (elapsed < slice);
    return static_cast<double>(solves) / elapsed;
}

storage_result run_storage_case(xpu::queue& q, const perf::device_spec& dev,
                                const solver::batch_matrix<double>& a,
                                const mat::batch_dense<double>& b,
                                solver::solver_type type, double min_time)
{
    storage_result out;
    out.items =
        std::visit([](const auto& m) { return m.num_batch_items(); }, a);
    const index_type rows =
        std::visit([](const auto& m) { return m.rows(); }, a);

    solver::solve_options opts;
    opts.solver = type;
    opts.preconditioner = precond::type::none;
    opts.criterion = stop::relative(kStorageTol, 500);

    mat::batch_dense<double> x(out.items, rows, 1);

    // Native FP64 storage: the baseline both metrics compare against.
    x.fill(0.0);
    const auto native = solver::solve(q, a, b, x, opts);
    out.native_offchip_bytes = offchip_bytes(native.stats);

    // fp32 storage + iterative refinement. The compressed operator is
    // converted once and reused across repeats — the serving hot path.
    solver::batch_matrix<double> a32 = a;
    std::visit(
        [](auto& m) {
            m.set_storage_precision(mat::storage_precision::fp32);
        },
        a32);
    solver::solve_options copts = opts;
    copts.storage = mat::storage_precision::fp32;
    x.fill(0.0);
    const auto refined = solver::solve_refined(q, a, a32, b, x, copts);
    out.fp32_offchip_bytes = offchip_bytes(refined.stats);
    out.converged = refined.log.num_converged();
    out.sweeps = refined.sweeps;
    for (double r : refined.true_residuals) {
        out.worst_true_residual = std::max(out.worst_true_residual, r);
    }

    const double hbm_bytes_per_sec = dev.hbm_bw_tbs * 1e12;
    out.native_bw_solves_per_sec =
        hbm_bytes_per_sec / out.native_offchip_bytes;
    out.fp32_bw_solves_per_sec = hbm_bytes_per_sec / out.fp32_offchip_bytes;

    const double slice = min_time / 4.0;
    out.native_wall_solves_per_sec = wall_rate(slice, [&] {
        x.fill(0.0);
        (void)solver::solve(q, a, b, x, opts);
    });
    out.fp32_wall_solves_per_sec = wall_rate(slice, [&] {
        x.fill(0.0);
        (void)solver::solve_refined(q, a, a32, b, x, copts);
    });
    return out;
}

std::map<std::string, double> parse_baseline(const char* spec)
{
    // Format: name=value[,name=value...]
    std::map<std::string, double> out;
    std::string s(spec);
    std::size_t pos = 0;
    while (pos < s.size()) {
        const std::size_t eq = s.find('=', pos);
        if (eq == std::string::npos) {
            break;
        }
        std::size_t comma = s.find(',', eq);
        if (comma == std::string::npos) {
            comma = s.size();
        }
        out[s.substr(pos, eq - pos)] =
            std::atof(s.substr(eq + 1, comma - eq - 1).c_str());
        pos = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv)
{
    const char* json_path = nullptr;
    double min_time = 0.9;
    std::map<std::string, double> baseline;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
            min_time = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
            baseline = parse_baseline(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json FILE] [--min-time SECONDS] "
                         "[--baseline cg=X,bicgstab=Y,gmres=Z]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("Host throughput: repeated-solve sweep "
                "(shapes:");
    for (const sweep_shape& s : kSweep) {
        std::printf(" %dx[%d rows]", s.items, s.rows);
    }
    std::printf("), scalar Jacobi, rtol 1e-6\n\n");
    std::printf("%10s | %12s | %10s | %8s\n", "solver", "solves/sec",
                "mean iters", "speedup");
    rule(52);

    xpu::queue q(xpu::make_sycl_policy());
    std::map<std::string, throughput_result> results;
    for (const solver_case& sc : kSolvers) {
        results[sc.name] = run_case(q, sc.type, min_time);
        const throughput_result& r = results[sc.name];
        if (baseline.count(sc.name) && baseline[sc.name] > 0.0) {
            std::printf("%10s | %12.1f | %10.1f | %7.2fx\n", sc.name,
                        r.solves_per_sec, r.mean_iterations,
                        r.solves_per_sec / baseline[sc.name]);
        } else {
            std::printf("%10s | %12.1f | %10.1f | %8s\n", sc.name,
                        r.solves_per_sec, r.mean_iterations, "n/a");
        }
    }

    // Sweep aggregate: every solver case runs for the same wall-time slice,
    // so the sweep-level solves/sec is the mean of the per-solver rates —
    // the same statistic the recorded baseline rates aggregate to.
    double sweep_rate = 0.0;
    double sweep_baseline = 0.0;
    bool baseline_complete = true;
    for (const solver_case& sc : kSolvers) {
        sweep_rate += results[sc.name].solves_per_sec;
        if (baseline.count(sc.name) && baseline[sc.name] > 0.0) {
            sweep_baseline += baseline[sc.name];
        } else {
            baseline_complete = false;
        }
    }
    sweep_rate /= static_cast<double>(std::size(kSolvers));
    sweep_baseline /= static_cast<double>(std::size(kSolvers));
    rule(52);
    if (baseline_complete) {
        std::printf("%10s | %12.1f | %10s | %7.2fx\n", "sweep", sweep_rate,
                    "", sweep_rate / sweep_baseline);
    } else {
        std::printf("%10s | %12.1f | %10s | %8s\n", "sweep", sweep_rate, "",
                    "n/a");
    }

    // Storage-precision section: the bandwidth-bound sweep under native
    // FP64 storage vs fp32 storage + iterative refinement.
    const perf::device_spec storage_dev = perf::pvc_1s();
    const index_type storage_items = 256;
    constexpr storage_case kStorageCases[] = {
        {"dodecane_lu", solver::solver_type::bicgstab},
        {"stencil3pt_ell_128", solver::solver_type::cg},
    };
    std::map<std::string, storage_result> storage_results;
    {
        const auto mechs = work::pele_mechanisms();
        const auto csr = work::generate_mechanism_batch<double>(
            mechs[3], storage_items, 3);
        const auto bc = work::random_rhs<double>(storage_items, csr.rows(), 7);
        storage_results[kStorageCases[0].name] = run_storage_case(
            q, storage_dev, csr, bc, kStorageCases[0].type, min_time);
        const auto ell =
            mat::to_ell(work::stencil_3pt<double>(storage_items, 128, 3));
        const auto bs = work::random_rhs<double>(storage_items, 128, 7);
        storage_results[kStorageCases[1].name] = run_storage_case(
            q, storage_dev, ell, bs, kStorageCases[1].type, min_time);
    }

    std::printf("\nStorage precision: native FP64 vs fp32 + iterative "
                "refinement\n(%d systems, rtol %.0e; off-chip = "
                "constant+global bytes; BW rate = %s HBM / bytes-per-"
                "solve)\n\n",
                storage_items, kStorageTol, storage_dev.name.c_str());
    std::printf("%18s | %9s | %9s | %7s | %7s | %3s | %9s\n", "case",
                "MB native", "MB fp32", "BW x", "wall x", "sw",
                "worst res");
    rule(78);
    double bw_speedup_sum = 0.0;
    for (const storage_case& sc : kStorageCases) {
        const storage_result& r = storage_results[sc.name];
        std::printf("%18s | %9.1f | %9.1f | %6.2fx | %6.2fx | %3d | %9.1e\n",
                    sc.name, r.native_offchip_bytes / 1e6,
                    r.fp32_offchip_bytes / 1e6, r.offchip_speedup(),
                    r.fp32_wall_solves_per_sec / r.native_wall_solves_per_sec,
                    r.sweeps, r.worst_true_residual);
        bw_speedup_sum += r.offchip_speedup();
    }
    const double storage_sweep_speedup =
        bw_speedup_sum / static_cast<double>(std::size(kStorageCases));
    rule(78);
    std::printf("%18s | %9s | %9s | %6.2fx |\n", "sweep", "", "",
                storage_sweep_speedup);

    if (json_path != nullptr) {
        std::FILE* f = std::fopen(json_path, "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path);
            return 1;
        }
        std::fprintf(f, "{\n  \"bench\": \"host_throughput\",\n");
        std::fprintf(f, "  \"sweep_shapes\": [");
        bool first = true;
        for (const sweep_shape& s : kSweep) {
            std::fprintf(f, "%s{\"items\": %d, \"rows\": %d}",
                         first ? "" : ", ", s.items, s.rows);
            first = false;
        }
        std::fprintf(f, "],\n  \"results\": {\n");
        std::size_t printed = 0;
        for (const solver_case& sc : kSolvers) {
            const throughput_result& r = results[sc.name];
            std::fprintf(f, "    \"%s\": {\"solves_per_sec\": %.1f", sc.name,
                         r.solves_per_sec);
            std::fprintf(f, ", \"solves\": %ld, \"seconds\": %.3f",
                         r.solves, r.seconds);
            std::fprintf(f, ", \"mean_iterations\": %.2f",
                         r.mean_iterations);
            if (baseline.count(sc.name) && baseline[sc.name] > 0.0) {
                std::fprintf(
                    f, ", \"baseline_solves_per_sec\": %.1f, ",
                    baseline[sc.name]);
                std::fprintf(f, "\"speedup\": %.3f",
                             r.solves_per_sec / baseline[sc.name]);
            }
            std::fprintf(f, "}%s\n",
                         ++printed < std::size(kSolvers) ? "," : "");
        }
        std::fprintf(f, "  },\n");
        std::fprintf(f, "  \"sweep\": {\"solves_per_sec\": %.1f",
                     sweep_rate);
        if (baseline_complete) {
            std::fprintf(f,
                         ", \"baseline_solves_per_sec\": %.1f, "
                         "\"speedup\": %.3f",
                         sweep_baseline, sweep_rate / sweep_baseline);
        }
        std::fprintf(f, "},\n");
        std::fprintf(f, "  \"storage\": {\n");
        std::fprintf(f,
                     "    \"metric\": \"offchip bytes per solve "
                     "(constant+global)\",\n");
        std::fprintf(f, "    \"device\": \"%s\",\n",
                     storage_dev.name.c_str());
        std::fprintf(f, "    \"items\": %d,\n", storage_items);
        std::fprintf(f, "    \"tolerance\": %.0e,\n", kStorageTol);
        std::fprintf(f, "    \"cases\": {\n");
        printed = 0;
        for (const storage_case& sc : kStorageCases) {
            const storage_result& r = storage_results[sc.name];
            std::fprintf(f, "      \"%s\": {\n", sc.name);
            std::fprintf(f,
                         "        \"native_offchip_bytes\": %.0f, "
                         "\"fp32_offchip_bytes\": %.0f,\n",
                         r.native_offchip_bytes, r.fp32_offchip_bytes);
            std::fprintf(f,
                         "        \"native_bw_solves_per_sec\": %.1f, "
                         "\"fp32_bw_solves_per_sec\": %.1f, "
                         "\"bw_speedup\": %.3f,\n",
                         r.native_bw_solves_per_sec,
                         r.fp32_bw_solves_per_sec, r.offchip_speedup());
            std::fprintf(f,
                         "        \"native_wall_solves_per_sec\": %.2f, "
                         "\"fp32_wall_solves_per_sec\": %.2f,\n",
                         r.native_wall_solves_per_sec,
                         r.fp32_wall_solves_per_sec);
            std::fprintf(f,
                         "        \"sweeps\": %d, \"converged\": %d, "
                         "\"worst_true_residual\": %.2e\n",
                         r.sweeps, r.converged, r.worst_true_residual);
            std::fprintf(f, "      }%s\n",
                         ++printed < std::size(kStorageCases) ? "," : "");
        }
        std::fprintf(f, "    },\n");
        std::fprintf(f, "    \"sweep\": {\"bw_speedup\": %.3f}\n",
                     storage_sweep_speedup);
        std::fprintf(f, "  }\n}\n");
        std::fclose(f);
        std::printf("\nwrote %s\n", json_path);
    }
    return 0;
}
