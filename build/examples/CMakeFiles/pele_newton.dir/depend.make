# Empty dependencies file for pele_newton.
# This may be replaced when dependencies are built.
