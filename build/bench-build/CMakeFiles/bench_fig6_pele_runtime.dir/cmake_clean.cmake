file(REMOVE_RECURSE
  "../bench/bench_fig6_pele_runtime"
  "../bench/bench_fig6_pele_runtime.pdb"
  "CMakeFiles/bench_fig6_pele_runtime.dir/bench_fig6_pele_runtime.cpp.o"
  "CMakeFiles/bench_fig6_pele_runtime.dir/bench_fig6_pele_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pele_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
