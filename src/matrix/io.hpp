// Matrix I/O.
//
// Two formats are supported:
//  * MatrixMarket coordinate files for single matrices — the interchange
//    format the PeleLM matrix sets are distributed in;
//  * a batched container format ("%%BatchCsr") storing one shared pattern
//    plus per-item values, mirroring the paper's batched-solver-from-files
//    example which reads a batch from disk.
#pragma once

#include <iosfwd>
#include <string>

#include "matrix/batch_csr.hpp"

namespace batchlin::mat {

/// Reads a MatrixMarket coordinate file as a single-item batch. Supports
/// `real`/`integer` fields with `general` or `symmetric` symmetry.
template <typename T>
batch_csr<T> read_matrix_market(std::istream& in);
template <typename T>
batch_csr<T> read_matrix_market_file(const std::string& path);

/// Writes batch item `batch` in MatrixMarket coordinate/general form.
template <typename T>
void write_matrix_market(std::ostream& out, const batch_csr<T>& matrix,
                         index_type batch = 0);

/// Writes/reads the full batch (shared pattern once, then per-item values).
template <typename T>
void write_batch(std::ostream& out, const batch_csr<T>& matrix);
template <typename T>
void write_batch_file(const std::string& path, const batch_csr<T>& matrix);
template <typename T>
batch_csr<T> read_batch(std::istream& in);
template <typename T>
batch_csr<T> read_batch_file(const std::string& path);

}  // namespace batchlin::mat
