// Public solve options and result types of the batched solver interface.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "log/logger.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/storage.hpp"
#include "precond/types.hpp"
#include "solver/launch.hpp"
#include "solver/trsv.hpp"
#include "solver/workspace.hpp"
#include "stop/criterion.hpp"
#include "xpu/counters.hpp"

namespace batchlin::solver {

/// Runtime choice of matrix format: a batch is exactly one of the three
/// formats of Table 3; the dispatch layer funnels the variant into the
/// format-templated kernels (§3.3).
template <typename T>
using batch_matrix = std::variant<mat::batch_dense<T>, mat::batch_csr<T>,
                                  mat::batch_ell<T>>;

enum class matrix_format { dense, csr, ell };

template <typename T>
matrix_format format_of(const batch_matrix<T>& a)
{
    if (std::holds_alternative<mat::batch_csr<T>>(a)) {
        return matrix_format::csr;
    }
    if (std::holds_alternative<mat::batch_ell<T>>(a)) {
        return matrix_format::ell;
    }
    return matrix_format::dense;
}

std::string to_string(matrix_format f);

/// All runtime knobs of one batched solve. Every combination of the first
/// four fields corresponds to a cell of Table 3; the remaining fields are
/// the performance-tuning switches of §3.5–3.6 (auto by default).
struct solve_options {
    solver_type solver = solver_type::bicgstab;
    precond::type preconditioner = precond::type::none;
    stop::criterion criterion{};
    /// Krylov basis length for BatchGmres.
    index_type gmres_restart = 10;
    /// Block size for the block-Jacobi preconditioner.
    index_type block_jacobi_size = 4;
    /// Relaxation factor for BatchRichardson.
    double richardson_relaxation = 0.9;
    /// SLM placement strategy (ablations may disable SLM).
    slm_mode slm = slm_mode::priority;
    /// Forced sub-group size; 0 selects by matrix size (§3.6).
    index_type sub_group_size = 0;
    /// Forced reduction strategy; unset selects by matrix size (§3.6).
    std::optional<xpu::reduce_path> reduction{};
    /// Triangle selection for BatchTrsv.
    triangle trsv_triangle = triangle::automatic;
    /// Record the per-iteration residual history of every system (costs
    /// num_systems x max_iterations doubles; off by default).
    bool record_history = false;
    /// Zero-fill the spilled workspace backing before each launch. The
    /// kernels overwrite every spilled element before reading it, so this
    /// only costs time; it stays on by default for exact continuity with
    /// the historical per-launch buffers. serve:: disables it on its hot
    /// path (see service_config::skip_spill_zeroing).
    bool zero_spill = true;
    /// Storage precision of the matrix and preconditioner payloads. The
    /// default follows BATCHLIN_STORAGE (native when unset). fp32 halves
    /// the streamed value/factor bytes on the bandwidth-bound solve path;
    /// compute precision is unaffected (arithmetic widens on read), but
    /// the attainable true residual floors near fp32 epsilon — use
    /// solve_refined (or refine_sweeps in serve) to recover full accuracy.
    mat::storage_precision storage = mat::default_storage_precision();
    /// Maximum iterative-refinement sweeps for serve-routed requests
    /// (solver::solve_refined); 0 solves directly with no refinement.
    /// Part of the options on purpose: the coalescing hash and equality
    /// must separate refined from unrefined traffic.
    index_type refine_sweeps = 0;

    /// Exact member-wise comparison; the serve:: dynamic batcher only
    /// coalesces requests whose options compare equal.
    friend bool operator==(const solve_options&,
                           const solve_options&) = default;
};

/// Outcome of one batched solve: per-system convergence data, the counters
/// of the fused kernel launch, and the resolved execution configuration.
struct solve_result {
    log::batch_log log;
    xpu::counters stats;
    slm_plan plan;
    kernel_config config;
    /// Host wall-clock of the simulated launch (not a device time estimate;
    /// see perfmodel for device projections).
    double wall_seconds = 0.0;
};

}  // namespace batchlin::solver
