# Empty dependencies file for test_stop_log.
# This may be replaced when dependencies are built.
