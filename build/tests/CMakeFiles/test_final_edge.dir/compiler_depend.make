# Empty compiler generated dependencies file for test_final_edge.
# This may be replaced when dependencies are built.
