// Hardware-event counters collected by the xpu execution-model simulator.
//
// Every device-side building block (BLAS-1 ops, SpMV, preconditioner
// application, reductions) attributes its floating-point work and its memory
// traffic to these counters, split by memory space. The performance model
// (src/perfmodel) turns the per-solve totals into estimated device runtimes,
// and the roofline analysis (Fig. 8 of the paper) is computed directly from
// the traffic split.
#pragma once

#include <cstdint>

#include "util/math.hpp"

namespace batchlin::xpu {

/// Accumulated execution statistics of one or more batched kernel launches.
struct counters {
    /// Floating point operations executed.
    double flops = 0.0;
    /// Bytes read from / written to mutable global memory.
    double global_read_bytes = 0.0;
    double global_write_bytes = 0.0;
    /// Bytes moved through shared local memory (SLM).
    double slm_bytes = 0.0;
    /// Bytes read from read-only operands (system matrix values, rhs).
    /// These are the candidates for last-level-cache residency that the
    /// paper observes being served from L3 on the PVC.
    double constant_read_bytes = 0.0;
    /// Number of kernel launches (the paper fuses the whole solve into one).
    std::int64_t kernel_launches = 0;
    /// Number of work-groups executed across all launches.
    std::int64_t groups_launched = 0;
    /// Work-group barriers executed (group-level reductions cost these).
    std::int64_t group_barriers = 0;
    /// Solver iterations summed over all systems in the batch.
    double total_iterations = 0.0;
    /// Largest SLM footprint requested by any work-group (bytes). This is
    /// what limits how many work-groups an Xe-core/SM can keep in flight.
    size_type slm_footprint_bytes = 0;

    counters& operator+=(const counters& other)
    {
        flops += other.flops;
        global_read_bytes += other.global_read_bytes;
        global_write_bytes += other.global_write_bytes;
        slm_bytes += other.slm_bytes;
        constant_read_bytes += other.constant_read_bytes;
        kernel_launches += other.kernel_launches;
        groups_launched += other.groups_launched;
        group_barriers += other.group_barriers;
        total_iterations += other.total_iterations;
        if (other.slm_footprint_bytes > slm_footprint_bytes) {
            slm_footprint_bytes = other.slm_footprint_bytes;
        }
        return *this;
    }

    /// Total bytes moved through any level of the memory hierarchy.
    double total_bytes() const
    {
        return global_read_bytes + global_write_bytes + slm_bytes +
               constant_read_bytes;
    }
};

}  // namespace batchlin::xpu
