file(REMOVE_RECURSE
  "CMakeFiles/test_stop_log.dir/test_stop_log.cpp.o"
  "CMakeFiles/test_stop_log.dir/test_stop_log.cpp.o.d"
  "test_stop_log"
  "test_stop_log.pdb"
  "test_stop_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stop_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
