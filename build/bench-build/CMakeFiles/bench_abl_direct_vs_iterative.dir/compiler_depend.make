# Empty compiler generated dependencies file for bench_abl_direct_vs_iterative.
# This may be replaced when dependencies are built.
