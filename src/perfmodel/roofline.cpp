#include "perfmodel/roofline.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace batchlin::perf {

roofline_report analyze_roofline(const device_spec& device,
                                 const solve_profile& profile)
{
    const time_breakdown t = estimate_time(device, profile);
    const xpu::counters& c = profile.totals;
    roofline_report r;

    // Traffic attribution mirrors the cost model: constants live in the
    // last-level cache ("L3") to the fraction the resident set fits.
    const double resident_constant =
        static_cast<double>(profile.constant_footprint_per_system) *
        t.groups_in_flight;
    const double cached_fraction =
        resident_constant > 0.0
            ? std::min(1.0, static_cast<double>(device.l2_size_bytes) /
                                resident_constant)
            : 1.0;
    const double hbm_bytes = c.global_read_bytes + c.global_write_bytes +
                             (1.0 - cached_fraction) * c.constant_read_bytes;
    const double l3_bytes = cached_fraction * c.constant_read_bytes;
    const double slm_bytes = c.slm_bytes;
    const double all_bytes = hbm_bytes + l3_bytes + slm_bytes;
    const double all_seconds =
        t.hbm_seconds + t.l2_seconds + t.slm_seconds;

    auto fill = [&](traffic_share& s, const std::string& level,
                    double bytes, double seconds) {
        s.level = level;
        s.bytes = bytes;
        s.share_of_bytes = all_bytes > 0.0 ? bytes / all_bytes : 0.0;
        s.seconds = seconds;
        s.share_of_time = all_seconds > 0.0 ? seconds / all_seconds : 0.0;
    };
    fill(r.slm, "SLM", slm_bytes, t.slm_seconds);
    fill(r.l3, "L3", l3_bytes, t.l2_seconds);
    fill(r.hbm, "HBM", hbm_bytes, t.hbm_seconds);

    r.ai_slm = slm_bytes > 0.0 ? c.flops / slm_bytes : 0.0;
    r.ai_l3 = l3_bytes > 0.0 ? c.flops / l3_bytes : 0.0;
    r.ai_hbm = hbm_bytes > 0.0 ? c.flops / hbm_bytes : 0.0;

    r.achieved_gflops =
        t.total_seconds > 0.0 ? c.flops / t.total_seconds * 1e-9 : 0.0;
    const double peak_tflops =
        profile.fp64 ? device.fp64_peak_tflops : device.fp32_peak_tflops;
    r.compute_roof_gflops = peak_tflops * 1e3;
    r.slm_roof_gflops = r.ai_slm * device.slm_bw_core_gbs *
                        device.num_cores;  // GB/s x flop/byte = GFLOP/s
    r.l3_roof_gflops = r.ai_l3 * device.l2_bw_tbs * 1e3;
    r.hbm_roof_gflops = r.ai_hbm * device.hbm_bw_tbs * 1e3;

    // Binding roof: the lowest ceiling above the achieved point.
    r.binding_roof = t.bound_by;
    r.threading_occupancy = t.occupancy;
    return r;
}

void print_roofline(std::ostream& out, const device_spec& device,
                    const roofline_report& r)
{
    auto gb = [](double bytes) { return bytes * 1e-9; };
    out << "Roofline analysis on " << device.name << "\n";
    out << "  achieved:        " << std::fixed << std::setprecision(1)
        << r.achieved_gflops << " GFLOP/s (compute roof "
        << r.compute_roof_gflops << " GFLOP/s)\n";
    out << "  binding roof:    " << r.binding_roof << "\n";
    out << "  XVE threading occupancy: " << std::setprecision(0)
        << r.threading_occupancy * 100.0 << "%\n";
    out << "  arithmetic intensity (flop/byte): SLM " << std::setprecision(3)
        << r.ai_slm << ", L3 " << r.ai_l3 << ", HBM " << r.ai_hbm << "\n";
    out << "  memory traffic breakdown:\n";
    for (const traffic_share* s : {&r.slm, &r.l3, &r.hbm}) {
        out << "    " << std::left << std::setw(4) << s->level << std::right
            << std::setw(12) << std::setprecision(1) << gb(s->bytes)
            << " GB  (" << std::setw(5) << std::setprecision(1)
            << s->share_of_bytes * 100.0 << "% of bytes, " << std::setw(5)
            << s->share_of_time * 100.0 << "% of transaction time)\n";
    }
}

}  // namespace batchlin::perf
