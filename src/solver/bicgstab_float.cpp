#include "solver/bicgstab_impl.hpp"
#include "solver/instantiate.hpp"

namespace batchlin::solver {

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_BICGSTAB, float, float)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_BICGSTAB_BOUND, float, float)

}  // namespace batchlin::solver
