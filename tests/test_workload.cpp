// Tests for the workload generators: the 3-point stencil scaling input and
// the synthetic PeleLM chemistry mechanisms, which must reproduce Table 4
// exactly (sizes, nnz, number of unique systems) and the documented
// numerical character (non-symmetric, diagonally dominant, shared pattern).
#include <gtest/gtest.h>

#include <set>

#include "matrix/properties.hpp"
#include "util/dense_lu.hpp"
#include "matrix/conversions.hpp"
#include "workload/chemistry.hpp"
#include "workload/replicate.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace work = batchlin::work;

TEST(Stencil, StructureMatches3PointStencil)
{
    const auto a = work::stencil_3pt<double>(4, 100);
    EXPECT_EQ(a.rows(), 100);
    EXPECT_EQ(a.nnz(), 298);  // 3n - 2 stored entries
    const auto s = mat::analyze_pattern(a);
    EXPECT_EQ(s.bandwidth, 1);
    EXPECT_TRUE(s.full_diagonal);
    EXPECT_TRUE(s.symmetric_pattern);
}

TEST(Stencil, ItemsAreSpdAndDistinct)
{
    const auto a = work::stencil_3pt<double>(8, 32);
    for (index_type b = 0; b < 8; ++b) {
        EXPECT_TRUE(mat::is_symmetric(a, b, 1e-14));
        EXPECT_TRUE(mat::is_diagonally_dominant(a, b));
    }
    // Distinct diagonal shifts.
    std::set<double> diags;
    for (index_type b = 0; b < 8; ++b) {
        diags.insert(a.at(b, 0, 0));
    }
    EXPECT_GT(diags.size(), 4u);
}

TEST(Stencil, DeterministicForSeed)
{
    const auto a = work::stencil_3pt<double>(4, 16, 99);
    const auto b = work::stencil_3pt<double>(4, 16, 99);
    EXPECT_EQ(a.values(), b.values());
    const auto c = work::stencil_3pt<double>(4, 16, 100);
    EXPECT_NE(a.values(), c.values());
}

TEST(Stencil, UnitSolutionRhs)
{
    const auto a = work::stencil_3pt<double>(3, 20);
    const auto b = work::rhs_for_unit_solution(a);
    // Row sums: interior rows = shift, boundary rows = 1 + shift.
    for (index_type item = 0; item < 3; ++item) {
        const double shift = a.at(item, 0, 0) - 2.0;
        EXPECT_NEAR(b.at(item, 5, 0), shift, 1e-14);
        EXPECT_NEAR(b.at(item, 0, 0), 1.0 + shift, 1e-14);
    }
}

TEST(Chemistry, Table4RowsExact)
{
    const auto mechs = work::pele_mechanisms();
    ASSERT_EQ(mechs.size(), 5u);
    struct row {
        const char* name;
        index_type unique, rows, nnz;
    };
    const row expected[] = {
        {"drm19", 67, 22, 438},        {"gri12", 73, 33, 978},
        {"gri30", 90, 54, 2560},       {"dodecane_lu", 78, 54, 2332},
        {"isooctane", 72, 144, 6135},
    };
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(mechs[i].name, expected[i].name);
        EXPECT_EQ(mechs[i].num_unique, expected[i].unique);
        EXPECT_EQ(mechs[i].rows, expected[i].rows);
        EXPECT_EQ(mechs[i].nnz, expected[i].nnz);
    }
    EXPECT_THROW(work::mechanism_by_name("unknown"), bl::error);
}

class MechanismGeneration
    : public ::testing::TestWithParam<const char*> {};

TEST_P(MechanismGeneration, MatchesTable4AndDocumentedCharacter)
{
    const work::mechanism mech = work::mechanism_by_name(GetParam());
    const auto a = work::generate_mechanism<double>(mech);
    // Exact Table 4 reproduction.
    EXPECT_EQ(a.num_batch_items(), mech.num_unique);
    EXPECT_EQ(a.rows(), mech.rows);
    EXPECT_EQ(a.cols(), mech.rows);
    EXPECT_EQ(a.nnz(), mech.nnz);
    a.validate();
    const auto s = mat::analyze_pattern(a);
    EXPECT_TRUE(s.full_diagonal);
    // Non-SPD (the reason the paper can only use BatchBicgstab, §4.3).
    EXPECT_FALSE(mat::is_symmetric(a, 0, 1e-10));
    // Diagonally dominant BDF-Jacobian character.
    for (index_type b = 0; b < std::min<index_type>(a.num_batch_items(), 8);
         ++b) {
        EXPECT_TRUE(mat::is_diagonally_dominant(a, b)) << "item " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(Table4, MechanismGeneration,
                         ::testing::Values("drm19", "gri12", "gri30",
                                           "dodecane_lu", "isooctane"));

TEST(Chemistry, UniqueItemsAreWellConditionedEnough)
{
    const auto a = work::generate_mechanism<double>(
        work::mechanism_by_name("drm19"));
    const auto dense = mat::to_dense(a);
    for (index_type b = 0; b < 4; ++b) {
        std::vector<double> m(dense.item_values(b),
                              dense.item_values(b) + dense.item_size());
        const double cond =
            bl::condition_number_inf<double>(a.rows(), m);
        EXPECT_LT(cond, 1e4) << "item " << b;
    }
}

TEST(Chemistry, BatchReplicationCyclesUniqueItems)
{
    const work::mechanism mech = work::mechanism_by_name("drm19");
    const auto batch = work::generate_mechanism_batch<double>(mech, 200);
    EXPECT_EQ(batch.num_batch_items(), 200);
    EXPECT_EQ(batch.nnz(), mech.nnz);
    // Items one unique-cycle apart share values up to the perturbation.
    const index_type stride = mech.num_unique;
    for (index_type k = 0; k < batch.nnz(); k += 37) {
        const double v0 = batch.item_values(0)[k];
        const double v1 = batch.item_values(stride)[k];
        EXPECT_NEAR(v1, v0, std::abs(v0) * 5e-3 + 1e-12);
    }
}

TEST(Replicate, ExactCopiesWithoutPerturbation)
{
    const auto unique = work::stencil_3pt<double>(3, 8);
    const auto batch = work::replicate(unique, 7, 0.0);
    EXPECT_EQ(batch.num_batch_items(), 7);
    for (index_type b = 0; b < 7; ++b) {
        const index_type src = b % 3;
        for (index_type k = 0; k < unique.nnz(); ++k) {
            EXPECT_EQ(batch.item_values(b)[k], unique.item_values(src)[k]);
        }
    }
}

TEST(Replicate, SliceExtractsSubBatch)
{
    const auto batch = work::stencil_3pt<double>(10, 8);
    const auto part = work::slice(batch, 4, 9);
    EXPECT_EQ(part.num_batch_items(), 5);
    EXPECT_EQ(part.row_ptrs(), batch.row_ptrs());
    for (index_type k = 0; k < batch.nnz(); ++k) {
        EXPECT_EQ(part.item_values(0)[k], batch.item_values(4)[k]);
    }
    EXPECT_THROW(work::slice(batch, 8, 12), bl::dimension_mismatch);

    const auto rhs = work::random_rhs<double>(10, 8, 1);
    const auto rhs_part = work::slice(rhs, 4, 9);
    EXPECT_EQ(rhs_part.num_batch_items(), 5);
    EXPECT_EQ(rhs_part.at(0, 3, 0), rhs.at(4, 3, 0));
}

TEST(Chemistry, GenerationIsDeterministic)
{
    const work::mechanism mech = work::mechanism_by_name("gri12");
    const auto a = work::generate_mechanism<double>(mech, 7);
    const auto b = work::generate_mechanism<double>(mech, 7);
    EXPECT_EQ(a.values(), b.values());
    EXPECT_EQ(a.col_idxs(), b.col_idxs());
}
