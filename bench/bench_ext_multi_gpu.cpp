// Extension bench: multi-GPU scaling on a Sunspot/Aurora node (§4.2).
//
// The paper's closing observation in §4.2 is that the embarrassing batch
// parallelism extends trivially to multiple GPUs over MPI ranks. This
// bench distributes the 2^17-system PeleLM workload over 1-6 PVC GPUs of
// one Aurora node and reports the modeled speedup and parallel
// efficiency; the only loss is the fixed scatter/gather overhead, so the
// efficiency is governed by the per-rank batch staying large enough.
//
// The node's devices are enumerated through `shard::registry` — the same
// registry the sharded serve layer runs on — so the repo has exactly one
// device-enumeration path rather than ad-hoc per-bench device lists.
#include <cstdio>

#include "common.hpp"
#include "perfmodel/cluster.hpp"
#include "shard/registry.hpp"

using namespace bench;
namespace shard = batchlin::shard;

int main()
{
    const work::mechanism mech = work::mechanism_by_name("dodecane_lu");
    const index_type items = measurement_batch(mech.num_unique);
    const solver::batch_matrix<double> a =
        work::generate_mechanism_batch<double>(mech, items);
    const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);
    const measured_solve m = measure(perf::pvc_2s(), a, b, pele_options());

    std::printf("Extension: multi-GPU scaling on one Aurora node "
                "(%s, BatchBicgstab+Jacobi, 6x PVC)\n\n",
                mech.name.c_str());
    for (const index_type target :
         {index_type{1} << 13, index_type{1} << 17, index_type{1} << 21}) {
        std::printf("batch %d systems:\n", target);
        std::printf("%8s | %14s | %12s | %9s | %11s\n", "GPUs",
                    "items/GPU", "time [ms]", "speedup", "efficiency");
        rule(66);
        perf::solve_profile profile;
        const double factor =
            static_cast<double>(target) / m.measured_items;
        profile.totals = perf::scale_counters(m.result.stats, factor);
        profile.num_systems = target;
        profile.work_group_size = m.result.config.work_group_size;
        profile.thread_utilization =
            solver::thread_utilization(m.result.config, m.rows);
        profile.constant_footprint_per_system =
            m.constant_bytes_per_system;
        for (index_type gpus = 1; gpus <= 6; ++gpus) {
            const shard::registry node = shard::registry::uniform(
                gpus, "PVC-2S", perf::pvc_2s().make_policy());
            perf::cluster_spec cluster = perf::aurora_node(node.size());
            cluster.device = node.at(0).spec;
            const perf::cluster_time t =
                perf::estimate_cluster_time(cluster, profile);
            std::printf("%8d | %14d | %12.3f | %8.2fx | %10.1f%%\n", gpus,
                        t.max_items_per_device, t.total_seconds * 1e3,
                        t.speedup, t.efficiency * 100.0);
        }
        std::printf("\n");
    }
    std::printf("(no solver communication: efficiency stays near 100%% "
                "while the per-GPU batch keeps the device saturated; the "
                "small 2^13 batch shows the distribution-overhead floor)\n");
    return 0;
}
