// Execution policy: which programming model the kernels are compiled for.
//
// The paper ports the same solver kernels between two programming models:
//  * SYCL/DPC++ on Intel PVC — sub-group sizes 16 or 32, work-group-level
//    reduction primitives, SLM allocated from the L1 (§2.3, §3.2).
//  * CUDA on NVIDIA A100/H100 — warp size fixed at 32, only warp-level
//    reductions available (§3.2).
// exec_policy captures exactly those differences so the identical kernel
// source takes the model-appropriate paths, mirroring how the authors
// maintain one algorithm across backends.
#pragma once

#include <string>
#include <vector>

#include "util/math.hpp"
#include "xpu/fault.hpp"

namespace batchlin::xpu {

/// Programming model the kernels execute under.
enum class prog_model {
    sycl,
    cuda,
};

/// Runtime level of the opt-in kernel portability sanitizer (`xpu::check`).
/// Effective only in builds configured with -DBATCHLIN_XPU_CHECK=ON; all
/// other builds must leave the policy at `none` (run_batch rejects anything
/// else, so the knob can never silently no-op). Levels are cumulative.
enum class check_level {
    /// Checking off: the default, and the only level unchecked builds run.
    none,
    /// Shadow SLM: reads of uninitialized SLM/spill memory, span indexing
    /// out of bounds, use of an SLM allocation after `reset()`.
    shadow,
    /// + phase hazards: cross-lane write-write / read-write overlaps within
    /// one barrier phase, and uniformity of barriers and collectives.
    hazard,
    /// + lane-order adversary: the per-phase lane loops execute in the
    /// order selected by `exec_policy::lane_order`, so hidden lane-order
    /// dependences are falsified by comparing against an ascending run.
    adversary,
};

/// Order the checked mode executes each phase's lane loop in. On real
/// hardware the lanes of a work-group run concurrently in an arbitrary
/// interleaving; a portable kernel must produce bit-identical results for
/// every order. `shuffled` draws a deterministic per-group, per-phase
/// permutation from `exec_policy::lane_order_seed`.
enum class lane_order {
    ascending,
    reversed,
    shuffled,
};

/// How solver launches reach the device queue.
enum class launch_mode {
    /// Submit every launch eagerly — the classic per-batch `run_batch`.
    direct,
    /// Record the bound solver launch into an `xpu::command_graph` once,
    /// then replay the finalized graph per batch (SYCL
    /// `khr::command_graph`), paying `emulated_replay_us` instead of the
    /// full `emulated_launch_us` per submission.
    graph_replay,
    /// Persistent-kernel serving: the worker's solver loop stays resident
    /// and consumes coalesced batches from a lock-free ring buffer, so a
    /// steady-state submission costs no host launch at all.
    persistent,
};

/// Reduction strategy inside a work-group (paper §3.2 and §3.6).
enum class reduce_path {
    /// Whole-work-group reduction via the SYCL group primitive (SLM based).
    group,
    /// Sub-group (warp) shuffles, with a small SLM combine across sub-groups
    /// only when the work-group spans more than one sub-group.
    sub_group,
};

/// Describes the execution model the kernels are specialized for.
struct exec_policy {
    prog_model model = prog_model::sycl;
    /// Sub-group sizes the device supports (PVC: {16, 32}; CUDA: {32}).
    std::vector<index_type> allowed_sub_group_sizes{16, 32};
    /// Whether the programming model offers an efficient work-group-level
    /// reduction primitive (SYCL: yes; CUDA: no, §3.2).
    bool has_group_reduction = true;
    /// Number of GPU stacks the batch is spread across (PVC-2S: 2, §2.2).
    index_type num_stacks = 1;
    /// SLM budget one work-group may claim (bytes). The SLM planner fills
    /// this greedily by vector priority (§3.5).
    size_type slm_bytes_per_group = 128 * 1024;
    /// Rows at or below this threshold select sub-group size 16 (PVC only);
    /// larger matrices use 32. Determined experimentally per device (§3.6).
    index_type sub_group_switch_rows = 64;
    /// Rows at or below this threshold use the sub-group reduction path to
    /// avoid SLM round-trips; larger systems use the group path (§3.2).
    index_type sub_group_reduce_rows = 32;
    /// Maximum work-group size the device can schedule.
    index_type max_work_group_size = 1024;
    /// Wall-clock cost charged to every `run_batch`, emulating the fixed
    /// submission overhead of a real device queue (the `kernel_launch_us`
    /// of the analytic device model; 4-8 us on the paper's GPUs). The
    /// simulator's native launch path costs well under a microsecond, so
    /// without this knob host-side wall-clock studies under-state the
    /// per-launch cost that batching amortizes (§3.4). Zero (the default)
    /// disables emulation; figure benches and tests run with zero.
    double emulated_launch_us = 0.0;
    /// Wall-clock cost charged to replaying a finalized command graph.
    /// Replay skips the runtime's argument marshalling and JIT checks, so
    /// it is far below `emulated_launch_us` (~1 us on PVC vs. 8 us for an
    /// eager submit). Zero (the default) disables emulation.
    double emulated_replay_us = 0.0;
    /// One-time wall-clock cost of recording + finalizing a command graph
    /// (charged once per `command_graph::finalize`, not per replay).
    double emulated_record_us = 0.0;
    /// How solver launches reach the device queue (see `launch_mode`).
    /// `direct` is always available; `graph_replay` and `persistent` are
    /// honored by layers that know how to record a solve (serve::, the
    /// coalesced solve path) and fall back to `direct` elsewhere.
    batchlin::xpu::launch_mode launch_mode = batchlin::xpu::launch_mode::direct;
    /// Sanitizer level kernels launched through this policy run at. Any
    /// value other than `none` requires a BATCHLIN_XPU_CHECK=ON build;
    /// unchecked builds reject it at launch instead of silently ignoring it.
    batchlin::xpu::check_level check_level = batchlin::xpu::check_level::none;
    /// Lane execution order applied at `check_level::adversary`.
    batchlin::xpu::lane_order lane_order = batchlin::xpu::lane_order::ascending;
    /// Seed for `lane_order::shuffled`; mixed with group id and phase index
    /// so every phase of every group draws a distinct permutation while the
    /// whole run stays reproducible.
    unsigned lane_order_seed = 0x9e3779b9u;
    /// Deterministic fault-injection schedule (empty: no faults, and the
    /// queue pays exactly one empty() branch per launch). Events are keyed
    /// by the queue's 0-based launch counter; see xpu/fault.hpp.
    fault_plan faults{};

    /// True when `size` is one of the supported sub-group sizes.
    bool supports_sub_group(index_type size) const;
};

/// Policy matching the paper's SYCL configuration on one or two PVC stacks.
exec_policy make_sycl_policy(index_type num_stacks = 1,
                             size_type slm_bytes_per_group = 128 * 1024);

/// Policy matching the paper's CUDA configuration (A100/H100).
exec_policy make_cuda_policy(size_type slm_bytes_per_group);

/// Human-readable model name for logs and benchmark tables.
std::string to_string(prog_model model);
std::string to_string(reduce_path path);
std::string to_string(check_level level);
std::string to_string(lane_order order);
std::string to_string(launch_mode mode);

/// Parses "direct" / "graph_replay" / "persistent" (as printed by
/// `to_string(launch_mode)`); throws on anything else. Used by the
/// BATCHLIN_LAUNCH_MODE environment override and the CLI flag.
launch_mode parse_launch_mode(const std::string& name);

}  // namespace batchlin::xpu
