// BatchGmres kernel: restarted GMRES(m) with left preconditioning.
//
// The Krylov basis dominates the workspace ((m+1) rows-vectors), so the
// planner places the per-step scratch and the small Hessenberg system ahead
// of it in priority. The least-squares problem is solved incrementally with
// Givens rotations; the monitored quantity is the preconditioned residual
// norm |g_{j+1}| (exact for the preconditioned system), and an explicit
// residual is recomputed at each restart boundary.
#pragma once

#include <cmath>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"
#include "solver/kernel_common.hpp"
#include "solver/run_decl.hpp"

namespace batchlin::solver {

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_gmres_bound(xpu::queue& q, const MatBatch& a,
                     const Precond& precond, const mat::batch_dense<T>& b,
                     mat::batch_dense<T>& x, const stop::criterion& crit,
                     const bound_plan& slots, const kernel_config& config,
                     spill_view<T> spill, index_type restart,
                     log::batch_log& logger, xpu::batch_range range)
{
    const index_type rows = a.rows();
    const index_type m = restart;
    // Recordable closure: operands enter by address of caller-owned
    // storage, configuration structs by value (see run_decl.hpp).
    const MatBatch* const a_ptr = &a;
    const Precond* const precond_ptr = &precond;
    const mat::batch_dense<T>* const b_ptr = &b;
    mat::batch_dense<T>* const x_out = &x;
    const bound_plan* const slots_ptr = &slots;
    log::batch_log* const logger_ptr = &logger;

    q.run_batch(
        range.size(), config.work_group_size, config.sub_group_size,
        [=](xpu::group& g) {
            const index_type batch = g.id();
            const index_type local = batch - range.begin;
            workspace_binder<T> bind(g, *slots_ptr, spill.for_group(local));
            // Plan order: w, hessenberg, givens, basis, x, y, precond.
            xpu::dspan<T> w = bind.take("w");
            xpu::dspan<T> hess = bind.take("hessenberg");  // (m+1) x m
            xpu::dspan<T> givens = bind.take("givens");    // cs | sn | g
            xpu::dspan<T> basis = bind.take("basis");      // (m+1) x rows
            xpu::dspan<T> x_loc = bind.take("x");
            xpu::dspan<T> y = bind.take("y");
            xpu::dspan<T> pc_work = bind.take_optional("precond");

            xpu::dspan<T> cs = givens.subspan(0, m + 1);
            xpu::dspan<T> sn = givens.subspan(m + 1, m + 1);
            xpu::dspan<T> gvec = givens.subspan(2 * (m + 1), m + 1);
            // decltype(auto): hess[...] is a plain T& in default builds
            // and a recording proxy under BATCHLIN_XPU_CHECK.
            auto h_at = [&](index_type i, index_type j) -> decltype(auto) {
                return hess[i * m + j];
            };
            auto basis_vec = [&](index_type j) {
                return basis.subspan(j * rows, rows);
            };

            const auto a_view = blas::item_view_as<S>(*a_ptr, batch);
            const auto b_view =
                b_ptr->item_span(batch, xpu::mem_space::constant);
            auto x_global = x_out->item_span(batch);

            const auto pc = precond_ptr->generate(g, a_view, pc_work);

            blas::copy<T>(g, x_global, x_loc);
            // Preconditioned rhs norm for the relative criterion: the
            // monitored residual lives in the preconditioned space.
            pc.apply(g, b_view, w);
            const T rhs_norm = blas::nrm2<T>(g, w, config.reduction);

            index_type iter = 0;
            log::solve_status status = log::solve_status::max_iterations;
            T res_norm{};
            if (stop::zero_rhs_short_circuit(crit, rhs_norm)) {
                // ||M b|| == 0 under a relative tolerance: defined as
                // solved by x = 0 exactly (stop::zero_rhs_short_circuit).
                blas::fill<T>(g, x_loc, T{0});
                status = log::solve_status::converged;
            }
            while (status == log::solve_status::max_iterations &&
                   iter < crit.max_iterations) {
                // Restart: z0 = M (b - A x).
                xpu::dspan<T> v0 = basis_vec(0);
                blas::spmv<T>(g, a_view, x_loc, w);
                blas::axpby<T>(g, T{1}, b_view, T{-1}, w);
                pc.apply(g, w, v0);
                const T beta = blas::nrm2<T>(g, v0, config.reduction);
                res_norm = beta;
                if (!is_finite(beta)) {
                    status = log::solve_status::non_finite;
                    break;
                }
                if (stop::is_converged(crit, beta, rhs_norm)) {
                    status = log::solve_status::converged;
                    break;
                }
                blas::scale<T>(g, T{1} / beta, v0);
                g.for_items(m + 1, [&](index_type i) { gvec[i] = T{0}; });
                gvec[0] = beta;

                index_type j = 0;
                for (; j < m && iter < crit.max_iterations; ++j) {
                    // w = M A v_j (left preconditioning).
                    xpu::dspan<T> vj = basis_vec(j);
                    blas::spmv<T>(g, a_view, vj, w);
                    xpu::dspan<T> vnext = basis_vec(j + 1);
                    pc.apply(g, w, vnext);

                    // Modified Gram-Schmidt against the basis so far.
                    for (index_type i = 0; i <= j; ++i) {
                        const T hij = blas::dot<T>(g, vnext, basis_vec(i),
                                                   config.reduction);
                        h_at(i, j) = hij;
                        blas::axpy<T>(g, -hij, basis_vec(i), vnext);
                    }
                    const T hnext =
                        blas::nrm2<T>(g, vnext, config.reduction);
                    h_at(j + 1, j) = hnext;
                    if (hnext != T{0}) {
                        blas::scale<T>(g, T{1} / hnext, vnext);
                    }

                    // Apply the accumulated rotations to the new column,
                    // then compute and apply this step's rotation.
                    for (index_type i = 0; i < j; ++i) {
                        const T tmp = cs[i] * h_at(i, j) +
                                      sn[i] * h_at(i + 1, j);
                        h_at(i + 1, j) = -sn[i] * h_at(i, j) +
                                         cs[i] * h_at(i + 1, j);
                        h_at(i, j) = tmp;
                    }
                    const T denom = std::sqrt(h_at(j, j) * h_at(j, j) +
                                              h_at(j + 1, j) *
                                                  h_at(j + 1, j));
                    if (denom == T{0}) {
                        // The rotated Hessenberg column vanished: the
                        // projected operator annihilated v_j (singular A
                        // with an exhausted Krylov space). A unit rotation
                        // here would zero |g_{j+1}| and fake convergence,
                        // and the triangular solve would divide by the
                        // zero diagonal — exit with the last restart's
                        // iterate instead.
                        status = log::solve_status::direction_annihilated;
                        break;
                    }
                    cs[j] = h_at(j, j) / denom;
                    sn[j] = h_at(j + 1, j) / denom;
                    h_at(j, j) = cs[j] * h_at(j, j) +
                                 sn[j] * h_at(j + 1, j);
                    h_at(j + 1, j) = T{0};
                    gvec[j + 1] = -sn[j] * gvec[j];
                    gvec[j] = cs[j] * gvec[j];
                    // Small dense updates: charge the Hessenberg traffic.
                    g.stats().flops += 10.0 * (j + 2);
                    blas::detail::charge_read(g, hess, 2 * (j + 2));
                    g.barrier();

                    ++iter;
                    res_norm = std::abs(gvec[j + 1]);
                    logger_ptr->record_iteration(
                        batch, iter - 1, static_cast<double>(res_norm));
                    if (!is_finite(res_norm)) {
                        status = log::solve_status::non_finite;
                        break;
                    }
                    if (stop::is_converged(crit, res_norm, rhs_norm)) {
                        ++j;
                        status = log::solve_status::converged;
                        break;
                    }
                }
                if (status == log::solve_status::non_finite ||
                    status == log::solve_status::direction_annihilated) {
                    // The basis is corrupted or the projected operator is
                    // singular; leave x at the last restart's iterate
                    // instead of folding NaNs / dividing by zero.
                    break;
                }

                // Solve the upper-triangular system H y = g and update x.
                for (index_type i = j - 1; i >= 0; --i) {
                    T sum = gvec[i];
                    for (index_type k = i + 1; k < j; ++k) {
                        sum -= h_at(i, k) * y[k];
                    }
                    y[i] = sum / h_at(i, i);
                    g.stats().flops += 2.0 * (j - i);
                }
                g.barrier();
                for (index_type i = 0; i < j; ++i) {
                    blas::axpy<T>(g, y[i], basis_vec(i), x_loc);
                }
            }

            blas::copy<T>(g, x_loc, x_global);
            record_outcome(g, *logger_ptr, batch, iter, res_norm, status);
        },
        range.begin, "batch_gmres");
}

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_gmres(xpu::queue& q, const MatBatch& a, const Precond& precond,
               const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
               const stop::criterion& crit, const slm_plan& plan,
               const kernel_config& config, index_type restart,
               log::batch_log& logger, xpu::batch_range range)
{
    const bound_plan slots(plan);  // resolved once, host side (§3.5)
    spill_buffer<T> spill(q, plan, range.size());
    run_gmres_bound<T, MatBatch, Precond, S>(q, a, precond, b, x, crit, slots, config, spill.view(),
                    restart, logger, range);
}

}  // namespace batchlin::solver
