file(REMOVE_RECURSE
  "CMakeFiles/convergence_history.dir/convergence_history.cpp.o"
  "CMakeFiles/convergence_history.dir/convergence_history.cpp.o.d"
  "convergence_history"
  "convergence_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
