// Tests of the xpu::check kernel portability sanitizer (compiled only in
// BATCHLIN_XPU_CHECK builds, see tests/CMakeLists.txt).
//
// Three layers:
//  * fixture kernels — each deliberately buggy in exactly one way, and the
//    checker must report exactly that diagnostic class with a correctly
//    located structured report;
//  * clean sweeps — every shipped solver kernel (iterative, direct, TRSV)
//    must pass the full checker, SLM-resident and spilled, including the
//    serve-style unzeroed spill path;
//  * lane-order adversary — race-free kernels must produce bit-identical
//    outputs under reversed and shuffled lane execution orders.
#include <gtest/gtest.h>

#include <vector>

#include "matrix/conversions.hpp"
#include "solver/direct.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "workload/stencil.hpp"
#include "xpu/check.hpp"
#include "xpu/queue.hpp"

namespace bl = batchlin;
using batchlin::index_type;
using batchlin::size_type;
namespace mat = batchlin::mat;
namespace precond = batchlin::precond;
namespace solver = batchlin::solver;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
namespace check = batchlin::xpu::check;

namespace {

xpu::exec_policy checked_policy(
    xpu::check_level level,
    xpu::lane_order order = xpu::lane_order::ascending,
    size_type slm_bytes = 128 * 1024)
{
    xpu::exec_policy policy = xpu::make_sycl_policy(1, slm_bytes);
    policy.check_level = level;
    policy.lane_order = order;
    return policy;
}

/// Runs `body` as a one-group launch under `level` and returns the
/// violation it must raise; fails the test when the kernel passes clean.
template <typename Body>
check::violation expect_violation(xpu::check_level level, const char* label,
                                  Body&& body)
{
    xpu::queue q(checked_policy(level));
    try {
        q.run_batch(1, 16, 16, std::forward<Body>(body), 0, label);
    } catch (const check::check_violation& e) {
        return e.report();
    }
    ADD_FAILURE() << label << " was expected to trigger a violation";
    return {};
}

}  // namespace

// ---------------------------------------------------------------------
// Fixture kernels: one diagnostic class each.
// ---------------------------------------------------------------------

TEST(CheckFixtures, UninitializedSlmReadIsFlagged)
{
    const check::violation v = expect_violation(
        xpu::check_level::shadow, "fixture_uninit_read", [](xpu::group& g) {
            auto s = g.slm().alloc<double>(16);
            // Reads s[3] before any write reaches the allocation.
            g.for_each_item([&](index_type i) {
                if (i == 0) {
                    [[maybe_unused]] const double stale = s[3];
                }
            });
        });
    EXPECT_EQ(v.kind, check::diagnostic::uninitialized_read);
    EXPECT_EQ(v.kernel, "fixture_uninit_read");
    EXPECT_EQ(v.group, 0);
    // Element 3 of a double allocation: bytes [24, 32).
    EXPECT_EQ(v.byte_begin, 24);
    EXPECT_EQ(v.byte_end, 32);
    EXPECT_EQ(v.lane_a, 0);
}

TEST(CheckFixtures, OutOfBoundsIndexIsFlagged)
{
    const check::violation v = expect_violation(
        xpu::check_level::shadow, "fixture_oob", [](xpu::group& g) {
            auto s = g.slm().alloc<double>(4);
            g.for_items(4, [&](index_type i) { s[i] = 1.0; });
            // One-past-the-end read, the classic grid-stride bound slip.
            [[maybe_unused]] const double beyond = s[4];
        });
    EXPECT_EQ(v.kind, check::diagnostic::out_of_bounds);
    EXPECT_EQ(v.kernel, "fixture_oob");
    EXPECT_EQ(v.byte_begin, 32);
    EXPECT_EQ(v.byte_end, 40);
}

TEST(CheckFixtures, UseAfterResetIsFlagged)
{
    const check::violation v = expect_violation(
        xpu::check_level::shadow, "fixture_use_after_reset",
        [](xpu::group& g) {
            auto s = g.slm().alloc<double>(4);
            g.for_items(4, [&](index_type i) { s[i] = 2.0; });
            g.slm().reset();  // releases the allocation...
            [[maybe_unused]] const double stale = s[0];  // ...then uses it
        });
    EXPECT_EQ(v.kind, check::diagnostic::use_after_reset);
}

TEST(CheckFixtures, WriteWriteRaceIsFlagged)
{
    const check::violation v = expect_violation(
        xpu::check_level::hazard, "fixture_ww_race", [](xpu::group& g) {
            auto s = g.slm().alloc<double>(16);
            // Every lane writes slot 0 in the same phase: serial execution
            // masks it, concurrent lanes on PVC make it a data race.
            g.for_each_item(
                [&](index_type i) { s[0] = static_cast<double>(i); });
        });
    EXPECT_EQ(v.kind, check::diagnostic::phase_race);
    EXPECT_NE(v.lane_a, v.lane_b);
    EXPECT_NE(v.detail.find("write-write"), std::string::npos);
    EXPECT_EQ(v.byte_begin, 0);
    EXPECT_EQ(v.byte_end, 8);
}

TEST(CheckFixtures, ReadWriteRaceIsFlagged)
{
    const check::violation v = expect_violation(
        xpu::check_level::hazard, "fixture_rw_race", [](xpu::group& g) {
            auto s = g.slm().alloc<double>(16);
            g.for_each_item(
                [&](index_type i) { s[i] = static_cast<double>(i); });
            // Neighbor read without an intervening barrier: lane i reads
            // the slot lane i+1 writes in the same phase.
            g.for_each_item([&](index_type i) {
                s[i] = s[(i + 1) % 16] * 0.5;
            });
        });
    EXPECT_EQ(v.kind, check::diagnostic::phase_race);
    EXPECT_NE(v.lane_a, v.lane_b);
    EXPECT_NE(v.detail.find("read-write"), std::string::npos);
}

TEST(CheckFixtures, NonuniformBarrierIsFlagged)
{
    const check::violation v = expect_violation(
        xpu::check_level::shadow, "fixture_diverged_barrier",
        [](xpu::group& g) {
            g.for_each_item([&](index_type i) {
                if (i == 2) {
                    g.barrier();  // diverged barrier: UB on real hardware
                }
            });
        });
    EXPECT_EQ(v.kind, check::diagnostic::nonuniform_collective);
    EXPECT_EQ(v.lane_a, 2);
}

TEST(CheckFixtures, NonuniformCollectiveIsFlagged)
{
    const check::violation v = expect_violation(
        xpu::check_level::shadow, "fixture_diverged_reduce",
        [](xpu::group& g) {
            g.for_each_item([&](index_type i) {
                if (i == 1) {
                    (void)g.reduce_sum<double>(
                        4, [](index_type) { return 1.0; },
                        xpu::reduce_path::sub_group);
                }
            });
        });
    EXPECT_EQ(v.kind, check::diagnostic::nonuniform_collective);
}

TEST(CheckFixtures, CleanKernelPassesEveryLevel)
{
    for (const auto level :
         {xpu::check_level::shadow, xpu::check_level::hazard,
          xpu::check_level::adversary}) {
        xpu::queue q(checked_policy(level, xpu::lane_order::shuffled));
        double sum = 0.0;
        q.run_batch(
            1, 16, 16,
            [&](xpu::group& g) {
                auto s = g.slm().alloc<double>(32);
                g.for_items(32, [&](index_type i) {
                    s[i] = static_cast<double>(i);
                });
                g.for_items(32, [&](index_type i) { s[i] *= 2.0; });
                sum = g.reduce_sum<double>(
                    32, [&](index_type i) { return s[i] * 1.0; },
                    xpu::reduce_path::sub_group);
            },
            0, "fixture_clean");
        EXPECT_DOUBLE_EQ(sum, 2.0 * (31.0 * 32.0 / 2.0));
    }
}

TEST(CheckFixtures, CheckLevelNoneRunsUninstrumented)
{
    // Opt-in contract: with check_level::none even a checked build must
    // run the racy fixture untouched (no tags, no overhead, no throw).
    xpu::queue q(checked_policy(xpu::check_level::none));
    EXPECT_NO_THROW(q.run_batch(
        1, 16, 16,
        [](xpu::group& g) {
            auto s = g.slm().alloc<double>(16);
            g.for_each_item(
                [&](index_type i) { s[0] = static_cast<double>(i); });
        },
        0, "fixture_ww_race"));
}

// ---------------------------------------------------------------------
// Lane-order adversary.
// ---------------------------------------------------------------------

TEST(LaneOrderAdversary, OrderDependentKernelIsCaught)
{
    auto produce = [](xpu::lane_order order) {
        xpu::queue q(checked_policy(xpu::check_level::adversary, order));
        std::vector<double> out(16, 0.0);
        q.run_batch(
            1, 16, 16,
            [&](xpu::group& g) {
                // Untracked host variable standing in for a kernel that
                // lets "the last lane win": the serial simulator always
                // picks lane 15, real hardware picks whoever runs last.
                double last = 0.0;
                g.for_each_item([&](index_type i) {
                    last = static_cast<double>(i);
                });
                g.for_each_item([&](index_type i) { out[i] = last; });
            },
            0, "fixture_order_dependent");
        return out;
    };
    try {
        check::verify_lane_order_independent("fixture_order_dependent",
                                             produce,
                                             xpu::lane_order::reversed);
        FAIL() << "lane-order dependence was not detected";
    } catch (const check::check_violation& e) {
        EXPECT_EQ(e.report().kind,
                  check::diagnostic::lane_order_dependence);
        EXPECT_EQ(e.report().kernel, "fixture_order_dependent");
    }
}

TEST(LaneOrderAdversary, RaceFreeKernelIsBitIdentical)
{
    auto produce = [](xpu::lane_order order) {
        xpu::queue q(checked_policy(xpu::check_level::adversary, order));
        std::vector<double> out(48, 0.0);
        q.run_batch(
            1, 16, 16,
            [&](xpu::group& g) {
                auto s = g.slm().alloc<double>(48);
                g.for_items(48, [&](index_type i) {
                    s[i] = 0.25 * static_cast<double>(i) - 3.0;
                });
                const double nrm = g.reduce_sum<double>(
                    48, [&](index_type i) { return s[i] * s[i]; },
                    xpu::reduce_path::sub_group);
                g.for_items(48, [&](index_type i) {
                    out[i] = s[i] * 1.0 + nrm;
                });
            },
            0, "fixture_race_free");
        return out;
    };
    EXPECT_NO_THROW(check::verify_lane_order_independent(
        "fixture_race_free", produce, xpu::lane_order::reversed));
    EXPECT_NO_THROW(check::verify_lane_order_independent(
        "fixture_race_free", produce, xpu::lane_order::shuffled));
}

TEST(LaneOrderAdversary, SolverOutputsAreLaneOrderIndependent)
{
    const index_type items = 4;
    const index_type rows = 24;
    const auto a_csr = work::stencil_3pt<double>(items, rows, 11);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(items, rows, 3);

    auto produce = [&](xpu::lane_order order) {
        xpu::queue q(checked_policy(xpu::check_level::adversary, order));
        mat::batch_dense<double> x(items, rows, 1);
        solver::solve_options opts;
        opts.solver = solver::solver_type::cg;
        opts.preconditioner = precond::type::jacobi;
        opts.criterion = stop::relative(1e-10, 300);
        solver::solve(q, a, b, x, opts);
        return x.values();
    };
    EXPECT_NO_THROW(check::verify_lane_order_independent(
        "batch_cg", produce, xpu::lane_order::reversed));
    EXPECT_NO_THROW(check::verify_lane_order_independent(
        "batch_cg", produce, xpu::lane_order::shuffled));
}

// ---------------------------------------------------------------------
// Clean sweeps: every shipped kernel under the full checker.
// ---------------------------------------------------------------------

namespace {

void expect_clean_solve(solver::solver_type s, solver::matrix_format f,
                        precond::type pc, size_type slm_bytes,
                        bool zero_spill)
{
    const index_type items = 4;
    const index_type rows = 24;
    const auto csr = work::stencil_3pt<double>(items, rows, 7);
    solver::batch_matrix<double> a = csr;
    if (f == solver::matrix_format::ell) {
        a = mat::to_ell(csr);
    } else if (f == solver::matrix_format::dense) {
        a = mat::to_dense(csr);
    }
    const auto b = work::random_rhs<double>(items, rows, 5);
    mat::batch_dense<double> x(items, rows, 1);

    solver::solve_options opts;
    opts.solver = s;
    opts.preconditioner = pc;
    opts.criterion = stop::relative(1e-8, 300);
    opts.gmres_restart = 15;
    opts.zero_spill = zero_spill;

    xpu::queue q(checked_policy(xpu::check_level::adversary,
                                xpu::lane_order::shuffled, slm_bytes));
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), items)
        << solver::to_string(s) << "/" << precond::to_string(pc);
}

constexpr size_type kSlmResident = 128 * 1024;
/// Small enough that the planner spills most slots to global scratch.
constexpr size_type kSlmTiny = 512;

}  // namespace

TEST(CheckedSolvers, CgCleanUnderFullChecker)
{
    for (const auto pc :
         {precond::type::none, precond::type::jacobi, precond::type::ilu,
          precond::type::isai, precond::type::block_jacobi}) {
        expect_clean_solve(solver::solver_type::cg,
                           solver::matrix_format::csr, pc, kSlmResident,
                           true);
    }
}

TEST(CheckedSolvers, BicgstabCleanUnderFullChecker)
{
    for (const auto pc :
         {precond::type::none, precond::type::jacobi, precond::type::ilu,
          precond::type::isai}) {
        expect_clean_solve(solver::solver_type::bicgstab,
                           solver::matrix_format::csr, pc, kSlmResident,
                           true);
    }
}

TEST(CheckedSolvers, GmresCleanUnderFullChecker)
{
    for (const auto pc :
         {precond::type::none, precond::type::jacobi, precond::type::ilu,
          precond::type::isai}) {
        expect_clean_solve(solver::solver_type::gmres,
                           solver::matrix_format::csr, pc, kSlmResident,
                           true);
    }
}

TEST(CheckedSolvers, RichardsonCleanUnderFullChecker)
{
    expect_clean_solve(solver::solver_type::richardson,
                       solver::matrix_format::csr, precond::type::jacobi,
                       kSlmResident, true);
}

TEST(CheckedSolvers, EllAndDenseFormatsClean)
{
    expect_clean_solve(solver::solver_type::cg, solver::matrix_format::ell,
                       precond::type::jacobi, kSlmResident, true);
    expect_clean_solve(solver::solver_type::cg,
                       solver::matrix_format::dense, precond::type::jacobi,
                       kSlmResident, true);
}

TEST(CheckedSolvers, SpilledWorkspaceClean)
{
    // A tiny SLM budget forces the planner to spill: the spill slots are
    // shadow-tracked global regions, exercised here with the default
    // zero-filled backing.
    expect_clean_solve(solver::solver_type::cg, solver::matrix_format::csr,
                       precond::type::ilu, kSlmTiny, true);
    expect_clean_solve(solver::solver_type::gmres,
                       solver::matrix_format::csr, precond::type::jacobi,
                       kSlmTiny, true);
}

TEST(CheckedSolvers, UnzeroedSpillClean)
{
    // The serve:: hot path skips the spill zero-fill, which is only sound
    // when every kernel writes each spilled element before reading it.
    // With zero_spill off the spill regions start shadow-undefined, so
    // this sweep PROVES that write-before-read discipline.
    expect_clean_solve(solver::solver_type::cg, solver::matrix_format::csr,
                       precond::type::ilu, kSlmTiny, false);
    expect_clean_solve(solver::solver_type::bicgstab,
                       solver::matrix_format::csr, precond::type::jacobi,
                       kSlmTiny, false);
    expect_clean_solve(solver::solver_type::gmres,
                       solver::matrix_format::csr, precond::type::isai,
                       kSlmTiny, false);
}

TEST(CheckedSolvers, TrsvCleanUnderFullChecker)
{
    std::vector<index_type> rp{0, 1, 3, 5};
    std::vector<index_type> ci{0, 0, 1, 1, 2};
    mat::batch_csr<double> a_csr(2, 3, 3, rp, ci);
    const double v0[] = {2, 1, 3, -1, 4};
    const double v1[] = {1, 2, 2, 3, 5};
    std::copy(std::begin(v0), std::end(v0), a_csr.item_values(0));
    std::copy(std::begin(v1), std::end(v1), a_csr.item_values(1));
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(2, 3, 6);
    mat::batch_dense<double> x(2, 3, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::trsv;
    xpu::queue q(checked_policy(xpu::check_level::adversary,
                                xpu::lane_order::shuffled));
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 2);
}

TEST(CheckedSolvers, DirectSolversCleanUnderFullChecker)
{
    const index_type items = 6;
    const index_type rows = 32;
    const auto tri = work::stencil_3pt<double>(items, rows, 5);
    const auto banded = work::stencil_banded<double>(items, rows, 2, 7);
    const auto b = work::random_rhs<double>(items, rows, 8);

    {
        mat::batch_dense<double> x(items, rows, 1);
        bl::log::batch_log logger(items);
        xpu::queue q(checked_policy(xpu::check_level::adversary,
                                    xpu::lane_order::shuffled));
        solver::run_thomas(q, tri, b, x, logger, {0, items});
        EXPECT_EQ(logger.num_converged(), items);
    }
    {
        mat::batch_dense<double> x(items, rows, 1);
        bl::log::batch_log logger(items);
        xpu::queue q(checked_policy(xpu::check_level::adversary,
                                    xpu::lane_order::shuffled));
        solver::run_dense_lu(q, tri, b, x, logger, {0, items});
        EXPECT_EQ(logger.num_converged(), items);
    }
    {
        mat::batch_dense<double> x(items, rows, 1);
        bl::log::batch_log logger(items);
        xpu::queue q(checked_policy(xpu::check_level::adversary,
                                    xpu::lane_order::shuffled));
        solver::run_banded(q, banded, b, x, logger, {0, items}, 2);
        EXPECT_EQ(logger.num_converged(), items);
    }
}

TEST(CheckedSolvers, PolicyToStringCoversCheckKnobs)
{
    EXPECT_EQ(xpu::to_string(xpu::check_level::none), "none");
    EXPECT_EQ(xpu::to_string(xpu::check_level::shadow), "shadow");
    EXPECT_EQ(xpu::to_string(xpu::check_level::hazard), "hazard");
    EXPECT_EQ(xpu::to_string(xpu::check_level::adversary), "adversary");
    EXPECT_EQ(xpu::to_string(xpu::lane_order::ascending), "ascending");
    EXPECT_EQ(xpu::to_string(xpu::lane_order::reversed), "reversed");
    EXPECT_EQ(xpu::to_string(xpu::lane_order::shuffled), "shuffled");
}
