// Ablation: the single fused solver kernel (§3.4) vs per-operation
// kernel launches.
//
// The paper packs setup, preconditioner generation and the whole iteration
// into ONE kernel to avoid launch latency, which would otherwise be paid
// once per BLAS operation per iteration. This bench quantifies that: it
// takes a measured fused solve and models the alternative where every
// BLAS-1/SpMV phase is its own launch (counted from the solver's
// composition: BiCGSTAB issues ~14 device phases per iteration).
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    const perf::device_spec device = perf::pvc_1s();
    const work::mechanism mech = work::mechanism_by_name("dodecane_lu");
    const index_type items = measurement_batch(mech.num_unique);
    const solver::batch_matrix<double> a =
        work::generate_mechanism_batch<double>(mech, items);
    const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);
    const measured_solve m = measure(device, a, b, pele_options());

    // Device phases of one BiCGSTAB iteration when each is its own kernel:
    // 2 SpMV + 2 precond + 4 dot/norm + 5 axpy-like + 1 copy.
    const double phases_per_iter = 14.0;
    const double setup_phases = 6.0;

    std::printf("Ablation: fused single kernel (paper §3.4) vs "
                "per-operation launches\n");
    std::printf("device %s, input %s, BatchBicgstab+Jacobi, mean %.1f "
                "iterations\n\n",
                device.name.c_str(), mech.name.c_str(), m.mean_iterations);
    std::printf("%10s | %14s | %18s | %10s\n", "batch", "fused [ms]",
                "per-op kernels[ms]", "slowdown");
    rule(64);
    for (int p = 10; p <= 17; ++p) {
        const index_type batch = 1 << p;
        const perf::time_breakdown fused = project(device, m, batch);
        // Per-operation variant: same arithmetic/traffic, but the launch
        // count explodes and every phase re-reads its operands from global
        // memory (vectors can no longer live in SLM across phases).
        perf::solve_profile split;
        const double factor =
            static_cast<double>(batch) / m.measured_items;
        split.totals = perf::scale_counters(m.result.stats, factor);
        const double launches =
            setup_phases +
            phases_per_iter * m.mean_iterations;  // batched per phase
        split.totals.kernel_launches =
            static_cast<std::int64_t>(launches);
        // SLM residency lost: that traffic becomes global traffic.
        split.totals.global_read_bytes += split.totals.slm_bytes * 0.5;
        split.totals.global_write_bytes += split.totals.slm_bytes * 0.5;
        split.totals.slm_bytes = 0.0;
        split.num_systems = batch;
        split.work_group_size = m.result.config.work_group_size;
        split.thread_utilization =
            solver::thread_utilization(m.result.config, m.rows);
        split.constant_footprint_per_system = m.constant_bytes_per_system;
        split.totals.slm_footprint_bytes = 0;
        const perf::time_breakdown per_op =
            perf::estimate_time(device, split);
        std::printf("%10d | %14.3f | %18.3f | %9.2fx\n", batch,
                    fused.total_seconds * 1e3, per_op.total_seconds * 1e3,
                    per_op.total_seconds / fused.total_seconds);
    }
    std::printf("\n(small batches: launch latency dominates; large batches:"
                " lost SLM locality dominates — either way the fused kernel"
                " wins, §3.4)\n");
    return 0;
}
