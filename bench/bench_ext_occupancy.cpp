// Extension bench: the occupancy-vs-SLM trade-off curve (§4.4).
//
// The paper's Advisor analysis observes ~50% XVE threading occupancy
// because their kernels claim the maximum SLM per work-group, limiting
// how many groups an Xe-core keeps in flight — and argues the trade is
// worth it. This bench sweeps the per-work-group SLM budget for one
// workload and prints the resulting footprint, occupancy, and modeled
// time, exposing the whole curve the paper describes one point of.
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    const index_type target = 1 << 17;
    const work::mechanism mech = work::mechanism_by_name("isooctane");
    const index_type items = measurement_batch(mech.num_unique);
    const solver::batch_matrix<double> a =
        work::generate_mechanism_batch<double>(mech, items);
    const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);

    std::printf("Extension: occupancy vs SLM budget (paper §4.4), "
                "%s (%dx%d), BatchBicgstab+Jacobi, 2^17 systems, PVC-1S\n\n",
                mech.name.c_str(), mech.rows, mech.rows);
    std::printf("%14s | %14s | %14s | %10s | %12s | %s\n",
                "SLM budget [KB]", "footprint [B]", "spilled elems",
                "occupancy", "time [ms]", "bound by");
    rule(92);

    for (const index_type budget_kb : {0, 2, 4, 8, 16, 32, 64, 128}) {
        perf::device_spec device = perf::pvc_1s();
        xpu::exec_policy policy = device.make_policy();
        policy.slm_bytes_per_group = budget_kb * 1024;

        measured_solve m;
        m.measured_items = items;
        m.rows = mech.rows;
        mat::batch_dense<double> x(items, mech.rows, 1);
        xpu::queue q(policy);
        solver::solve_options opts = pele_options();
        if (budget_kb == 0) {
            opts.slm = solver::slm_mode::none;
        }
        m.result = solver::solve(q, a, b, x, opts);
        const solver::batch_matrix<double>& variant = a;
        const perf::solve_profile unit =
            batchlin::make_profile<double>(m.result, variant, 1);
        m.constant_bytes_per_system = unit.constant_footprint_per_system;

        const perf::time_breakdown t = project(device, m, target);
        std::printf("%14d | %14lld | %14lld | %9.0f%% | %12.3f | %s\n",
                    budget_kb,
                    static_cast<long long>(
                        m.result.stats.slm_footprint_bytes),
                    static_cast<long long>(
                        m.result.plan.global_elems_per_group),
                    t.occupancy * 100.0, t.total_seconds * 1e3,
                    t.bound_by);
    }
    std::printf("\n(growing the budget moves vectors from HBM into SLM — "
                "large time win — until the footprint itself throttles the "
                "resident work-groups; the sweet spot is the §3.5 priority "
                "placement within the device budget)\n");
    return 0;
}
