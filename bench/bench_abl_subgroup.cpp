// Ablation: sub-group size 16 vs 32 across matrix sizes (§3.6).
//
// The paper measures that sub-group 16 wins for small matrices and 32 for
// large ones on the PVC, and selects the size at runtime via templated
// kernel instantiations. This bench sweeps both sizes over the stencil
// sizes and the PeleLM inputs and marks the winner; the crossover around
// the policy threshold is the justification for the runtime dispatch.
#include <cstdio>

#include "common.hpp"

using namespace bench;

namespace {

measured_solve measure_sg(const perf::device_spec& device,
                          const solver::batch_matrix<double>& a,
                          const mat::batch_dense<double>& b,
                          index_type sub_group)
{
    solver::solve_options opts = pele_options();
    opts.sub_group_size = sub_group;
    xpu::queue q(device.make_policy());
    measured_solve m;
    m.measured_items =
        std::visit([](const auto& mm) { return mm.num_batch_items(); }, a);
    m.rows = std::visit([](const auto& mm) { return mm.rows(); }, a);
    mat::batch_dense<double> x(m.measured_items, m.rows, 1);
    m.result = solver::solve(q, a, b, x, opts);
    m.mean_iterations = m.result.log.mean_iterations();
    const perf::solve_profile p = make_profile<double>(m.result, a, 1);
    m.constant_bytes_per_system = p.constant_footprint_per_system;
    return m;
}

void run_case(const perf::device_spec& device, const char* label,
              const solver::batch_matrix<double>& a,
              const mat::batch_dense<double>& b, index_type rows)
{
    const index_type target = 1 << 17;
    const measured_solve sg16 = measure_sg(device, a, b, 16);
    const measured_solve sg32 = measure_sg(device, a, b, 32);
    const double ms16 = projected_ms(device, sg16, target);
    const double ms32 = projected_ms(device, sg32, target);
    std::printf("%-14s %6d | %10.3f (wg %3d) | %10.3f (wg %3d) | %s\n",
                label, rows, ms16, sg16.result.config.work_group_size,
                ms32, sg32.result.config.work_group_size,
                ms16 <= ms32 ? "sg16" : "sg32");
}

}  // namespace

int main()
{
    const perf::device_spec device = perf::pvc_1s();
    std::printf("Ablation: sub-group size 16 vs 32 (paper §3.6), "
                "BatchBicgstab+Jacobi, 2^17 matrices, %s\n\n",
                device.name.c_str());
    std::printf("%-14s %6s | %19s | %19s | %s\n", "input", "rows",
                "sub-group 16 [ms]", "sub-group 32 [ms]", "winner");
    rule(80);

    for (const index_type rows : {16, 24, 32, 48, 64, 96, 128, 192}) {
        const index_type items = measurement_batch(64);
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(items, rows, 42);
        const auto b = work::random_rhs<double>(items, rows, 7);
        run_case(device, "3pt stencil", a, b, rows);
    }
    rule(80);
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const index_type items = measurement_batch(mech.num_unique);
        const solver::batch_matrix<double> a =
            work::generate_mechanism_batch<double>(mech, items);
        const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);
        run_case(device, mech.name.c_str(), a, b, mech.rows);
    }
    std::printf("\n(the policy's switch threshold is %d rows; the runtime "
                "dispatch instantiates both kernels and picks per input, "
                "§3.6)\n",
                device.make_policy().sub_group_switch_rows);
    return 0;
}
