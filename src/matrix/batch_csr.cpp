#include "matrix/batch_csr.hpp"

#include <algorithm>

namespace batchlin::mat {

template <typename T>
batch_csr<T>::batch_csr(index_type num_batch_items, index_type rows,
                        index_type cols, std::vector<index_type> row_ptrs,
                        std::vector<index_type> col_idxs)
    : num_batch_(num_batch_items),
      rows_(rows),
      cols_(cols),
      nnz_(row_ptrs.empty() ? 0 : row_ptrs.back()),
      row_ptrs_(std::move(row_ptrs)),
      col_idxs_(std::move(col_idxs)),
      values_(static_cast<std::size_t>(num_batch_items) * nnz_)
{
    BATCHLIN_ENSURE_MSG(num_batch_items >= 0 && rows >= 0 && cols >= 0,
                        "negative dimension");
    BATCHLIN_ENSURE_DIMS(
        static_cast<index_type>(row_ptrs_.size()) == rows + 1,
        "row pointer array must have rows+1 entries");
    BATCHLIN_ENSURE_DIMS(static_cast<index_type>(col_idxs_.size()) == nnz_,
                         "column index array size must equal nnz");
    validate();
}

template <typename T>
T batch_csr<T>::at(index_type batch, index_type row, index_type col) const
{
    BATCHLIN_ENSURE_DIMS(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                         "entry index out of range");
    const T* vals = item_values(batch);
    for (index_type k = row_ptrs_[row]; k < row_ptrs_[row + 1]; ++k) {
        if (col_idxs_[k] == col) {
            return vals[k];
        }
    }
    return T{0};
}

template <typename T>
void batch_csr<T>::validate() const
{
    BATCHLIN_ENSURE_MSG(row_ptrs_.front() == 0,
                        "row pointers must start at zero");
    for (index_type row = 0; row < rows_; ++row) {
        BATCHLIN_ENSURE_MSG(row_ptrs_[row] <= row_ptrs_[row + 1],
                            "row pointers must be non-decreasing");
        for (index_type k = row_ptrs_[row]; k < row_ptrs_[row + 1]; ++k) {
            BATCHLIN_ENSURE_MSG(col_idxs_[k] >= 0 && col_idxs_[k] < cols_,
                                "column index out of range");
            if (k > row_ptrs_[row]) {
                BATCHLIN_ENSURE_MSG(col_idxs_[k - 1] < col_idxs_[k],
                                    "column indexes must be strictly "
                                    "increasing within a row");
            }
        }
    }
}

template <typename T>
std::vector<index_type> batch_csr<T>::diagonal_positions() const
{
    std::vector<index_type> positions(rows_, -1);
    for (index_type row = 0; row < rows_; ++row) {
        for (index_type k = row_ptrs_[row]; k < row_ptrs_[row + 1]; ++k) {
            if (col_idxs_[k] == row) {
                positions[row] = k;
                break;
            }
        }
    }
    return positions;
}

template class batch_csr<float>;
template class batch_csr<double>;

}  // namespace batchlin::mat
