// xpu::check — the kernel portability sanitizer.
//
// The simulator executes each work-group as a serial lane loop, so kernel
// bugs that are real data races or lane-order dependences on PVC hardware
// (and in any CPU-SYCL lowering of the ND-range form) run silently
// "correct" here. This layer instruments the execution model — spans,
// SLM arena, group collectives, barriers — and proves each kernel body is
// portable SPMD code:
//
//  * shadow SLM        — reads of uninitialized SLM/spill bytes, indexing
//                        out of bounds, use of an allocation after reset()
//  * phase hazards     — cross-lane write-write / read-write overlaps on
//                        tracked memory within one barrier phase
//  * uniformity        — barriers and collectives must be invoked from
//                        uniform (non-diverged) control flow
//  * lane-order        — adversary mode runs each phase's lanes reversed
//                        or shuffled; race-free kernels are bit-identical
//
// Everything in this header is compiled only under BATCHLIN_XPU_CHECK;
// default builds carry no trace of it (dspan has no tag member, group and
// arena have no checker pointer, operator[] returns a plain reference).
#pragma once

#ifdef BATCHLIN_XPU_CHECK

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/policy.hpp"

namespace batchlin::xpu::check {

/// Pseudo-lane of group-uniform execution: code running between work-item
/// loops, which SYCL's hierarchical form executes once per work-group with
/// implicit barriers around each work-item loop.
inline constexpr index_type uniform_lane = -1;

/// The diagnostic classes the checker reports. Each deliberately-buggy
/// fixture kernel in tests/test_xpu_check.cpp triggers exactly one.
enum class diagnostic {
    /// A read of SLM or spill-scratch bytes never written in this group.
    uninitialized_read,
    /// Span indexing outside [0, len).
    out_of_bounds,
    /// Access through a span whose SLM allocation was released by reset().
    use_after_reset,
    /// Two different lanes touched overlapping bytes in one barrier phase
    /// with at least one write — a data race on real hardware.
    phase_race,
    /// A barrier or collective invoked from inside a per-lane region.
    nonuniform_collective,
    /// Outputs differ between lane execution orders.
    lane_order_dependence,
};

std::string to_string(diagnostic kind);

/// Structured violation report. Byte ranges are relative to the start of
/// the offending allocation (SLM region or spill slot).
struct violation {
    diagnostic kind = diagnostic::uninitialized_read;
    std::string kernel;
    index_type group = -1;
    index_type phase = -1;
    index_type lane_a = uniform_lane;
    index_type lane_b = uniform_lane;
    size_type byte_begin = 0;
    size_type byte_end = 0;
    std::string detail;
};

/// One-line human-readable rendering of a violation.
std::string describe(const violation& v);

/// Exception carrying a structured violation; derives from batchlin::error
/// so existing catch sites (and run_batch's cross-thread rethrow) handle it.
class check_violation : public batchlin::error {
public:
    explicit check_violation(violation v)
        : batchlin::error("xpu::check", 0, describe(v)), report_(std::move(v))
    {}

    const violation& report() const { return report_; }

private:
    violation report_;
};

class group_checker;

/// Instrumentation tag a dspan carries in checked builds: the owning
/// checker, the registered allocation, and the span's byte offset into it.
/// Default-constructed (untagged) spans index unchecked memory — global
/// operands, raw-pointer escapes — which the checker cannot track.
struct span_tag {
    group_checker* chk = nullptr;
    index_type region = -1;
    size_type offset = 0;
};

/// Proxy returned by dspan::operator[] on tagged spans: records the read
/// or write with the checker, then forwards to the underlying element.
template <typename T>
class checked_ref {
public:
    using value_type = std::remove_cv_t<T>;

    checked_ref(T* p, group_checker* chk, index_type region,
                size_type offset)
        : p_(p), chk_(chk), region_(region), offset_(offset)
    {}

    checked_ref(const checked_ref&) = default;

    operator value_type() const
    {
        record(false);
        return *p_;
    }

    checked_ref& operator=(const value_type& v)
        requires(!std::is_const_v<T>)
    {
        record(true);
        *p_ = v;
        return *this;
    }

    /// Assigning one element to another must copy the value, not rebind
    /// the proxy (records a read of `other` and a write of *this).
    checked_ref& operator=(const checked_ref& other)
        requires(!std::is_const_v<T>)
    {
        return *this = static_cast<value_type>(other);
    }

    checked_ref& operator+=(const value_type& v)
        requires(!std::is_const_v<T>)
    {
        record(false);
        record(true);
        *p_ += v;
        return *this;
    }

    checked_ref& operator-=(const value_type& v)
        requires(!std::is_const_v<T>)
    {
        record(false);
        record(true);
        *p_ -= v;
        return *this;
    }

    checked_ref& operator*=(const value_type& v)
        requires(!std::is_const_v<T>)
    {
        record(false);
        record(true);
        *p_ *= v;
        return *this;
    }

    checked_ref& operator/=(const value_type& v)
        requires(!std::is_const_v<T>)
    {
        record(false);
        record(true);
        *p_ /= v;
        return *this;
    }

private:
    void record(bool is_write) const;

    T* p_;
    group_checker* chk_;
    index_type region_;
    size_type offset_;
};

/// Per-(simulator-)thread checker the queue attaches to the arena and the
/// group context. Tracks one work-group at a time: a registry of SLM and
/// spill allocations with per-byte shadow state, the read/write sets of
/// the current barrier phase, and the lane the executing code runs as.
/// All violations throw check_violation (fail-fast), which run_batch
/// propagates to the host like any kernel error.
class group_checker {
public:
    void configure(check_level level, lane_order order, unsigned seed)
    {
        level_ = level;
        order_ = order;
        seed_ = seed;
    }

    void begin_launch(const char* kernel_label) { kernel_ = kernel_label; }

    /// Resets all per-group state; called once per work-group.
    void begin_group(index_type group_id, index_type work_group_size);

    /// Flushes the trailing (post-last-barrier) phase of the group.
    void end_group() { finish_phase(); }

    bool active() const { return level_ != check_level::none; }

    /// Registers a fresh SLM allocation (all bytes undefined). Returns the
    /// tag the owning span carries.
    span_tag register_slm_region(size_type bytes);

    /// Registers a spill slot in global scratch. `initially_defined` is
    /// true when the launch zero-filled the backing (plan.zero_spill);
    /// otherwise reads-before-writes are flagged, which is exactly the
    /// hazard the serve:: hot path's skipped fill could hide.
    span_tag register_global_region(size_type bytes, bool initially_defined);

    /// slm_arena::reset(): every live SLM region becomes dead; any later
    /// access through a span of it is a use-after-reset.
    void on_slm_reset();

    /// Element access through a checked_ref.
    void on_access(index_type region, size_type offset, size_type bytes,
                   bool is_write);

    /// Out-of-range index `i` on a span of length `len` whose first
    /// element sits `span_offset` bytes into `region`.
    [[noreturn]] void fail_out_of_bounds(index_type region,
                                         size_type span_offset, index_type i,
                                         index_type len,
                                         size_type elem_bytes);

    /// Work-group barrier: must be uniform; ends the current phase.
    void on_barrier()
    {
        require_uniform("group::barrier()");
        finish_phase();
    }

    /// Collectives (reduce_sum) bracket their combine loop: entry asserts
    /// uniformity and ends the phase (the collective's own barrier), the
    /// combine attributes each value_of(item) to its hardware lane, exit
    /// restores uniform context and ends the phase again.
    void begin_collective(const char* what)
    {
        require_uniform(what);
        finish_phase();
    }
    void set_lane(index_type lane) { lane_ = lane; }
    void end_collective()
    {
        lane_ = uniform_lane;
        finish_phase();
    }

    /// Broadcasts only require uniform invocation (register move + SLM
    /// bounce; no per-lane memory is touched by the simulator).
    void require_uniform(const char* what);

    /// Runs one work-item loop: `f(item)` for item in [0, n), grid-striding
    /// lanes of the work-group. Models SYCL's hierarchical form — an
    /// implicit barrier on entry (uniform code before the loop is its own
    /// phase), the lane loop in the adversary-selected order, and the exit
    /// barrier issued by the caller right after. Within a lane, items stay
    /// ascending (a single work-item executes its grid-stride iterations
    /// in program order even on hardware).
    template <typename F>
    void run_lane_loop(index_type work_group_size, index_type n, F&& f)
    {
        require_uniform("for_each_item/for_items");
        finish_phase();
        prepare_lane_order(work_group_size);
        for (index_type k = 0; k < work_group_size; ++k) {
            lane_ = lane_order_buf_[static_cast<std::size_t>(k)];
            for (index_type item = lane_; item < n;
                 item += work_group_size) {
                f(item);
            }
        }
        lane_ = uniform_lane;
    }

private:
    struct region_info {
        size_type bytes = 0;
        bool is_slm = false;
        bool dead = false;
        /// Non-empty when reads must be preceded by writes; one byte of
        /// shadow per tracked byte, 1 = defined.
        std::vector<unsigned char> shadow;
    };

    struct access_record {
        index_type region = -1;
        size_type begin = 0;
        size_type end = 0;
        index_type lane = uniform_lane;
    };

    [[noreturn]] void throw_violation(diagnostic kind, index_type lane_a,
                                      index_type lane_b, size_type byte_begin,
                                      size_type byte_end,
                                      std::string detail) const;

    /// End-of-phase hazard scan: sorts the write set, reports any
    /// cross-lane write-write or read-write overlap, clears both sets.
    void finish_phase();
    void scan_conflicts();

    /// Fills lane_order_buf_ with the permutation of [0, work_group_size)
    /// this phase executes: ascending below check_level::adversary, else
    /// the configured order (shuffled draws a per-group, per-phase
    /// permutation from the seed).
    void prepare_lane_order(index_type work_group_size);

    check_level level_ = check_level::none;
    lane_order order_ = lane_order::ascending;
    unsigned seed_ = 0;
    const char* kernel_ = "kernel";
    index_type group_ = -1;
    index_type wg_size_ = 0;
    index_type phase_ = 0;
    index_type lane_ = uniform_lane;
    std::vector<region_info> regions_;
    std::vector<access_record> reads_;
    std::vector<access_record> writes_;
    std::vector<index_type> lane_order_buf_;
};

template <typename T>
void checked_ref<T>::record(bool is_write) const
{
    if (chk_ != nullptr) {
        chk_->on_access(region_, offset_, sizeof(value_type), is_write);
    }
}

/// Lane-order adversary harness: runs `produce(lane_order)` under ascending
/// and under `adversary` order and requires bit-identical outputs. The
/// caller's `produce` must configure its queue policy with the given order
/// (and check_level::adversary) and return the flattened solution values.
/// A mismatch throws a lane_order_dependence violation locating the first
/// differing element.
template <typename Produce>
void verify_lane_order_independent(const char* kernel, Produce&& produce,
                                   lane_order adversary)
{
    const std::vector<double> base = produce(lane_order::ascending);
    const std::vector<double> other = produce(adversary);
    violation v;
    v.kind = diagnostic::lane_order_dependence;
    v.kernel = kernel;
    if (base.size() != other.size()) {
        v.detail = "output size differs between ascending and " +
                   xpu::to_string(adversary) + " lane order";
        throw check_violation(std::move(v));
    }
    for (std::size_t i = 0; i < base.size(); ++i) {
        // Bit comparison, not ==: NaNs must compare equal to themselves
        // and signed zeros must not.
        static_assert(sizeof(double) == sizeof(std::uint64_t));
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        __builtin_memcpy(&a, &base[i], sizeof a);
        __builtin_memcpy(&b, &other[i], sizeof b);
        if (a != b) {
            v.byte_begin = static_cast<size_type>(i * sizeof(double));
            v.byte_end = v.byte_begin + sizeof(double);
            v.detail = "element " + std::to_string(i) +
                       " differs between ascending and " +
                       xpu::to_string(adversary) + " lane order";
            throw check_violation(std::move(v));
        }
    }
}

}  // namespace batchlin::xpu::check

#endif  // BATCHLIN_XPU_CHECK
