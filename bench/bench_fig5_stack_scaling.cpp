// Figure 5 reproduction: implicit scaling across the two PVC stacks.
//
// The same 2^17-system stencil workload is projected on one stack (PVC-1S)
// and on both stacks under the driver's implicit scaling (PVC-2S). The
// paper reports 1.5x-2.0x speedup, on average 1.8x for BatchCg and 1.9x for
// BatchBicgstab, growing with the matrix size.
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    const index_type target_batch = 1 << 17;
    const perf::device_spec one = perf::pvc_1s();
    const perf::device_spec two = perf::pvc_2s();
    const index_type sizes[] = {16, 32, 64, 128, 256};

    std::printf("Figure 5: implicit scaling on 1 vs 2 stacks of the PVC "
                "(3pt stencil, 2^17 matrices)\n\n");
    std::printf("%6s | %10s %10s %8s | %10s %10s %8s\n", "rows", "CG 1S",
                "CG 2S", "speedup", "BiCG 1S", "BiCG 2S", "speedup");
    rule(78);

    double cg_speedup_sum = 0.0;
    double bicg_speedup_sum = 0.0;
    int count = 0;
    for (const index_type rows : sizes) {
        const index_type items = measurement_batch(64);
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(items, rows, 42);
        const auto b = work::random_rhs<double>(items, rows, 7);
        // The kernels are identical on 1 and 2 stacks (the driver splits
        // the batch transparently): measure once, project on both devices.
        const measured_solve cg =
            measure(one, a, b, stencil_options(solver::solver_type::cg));
        const measured_solve bicg = measure(
            one, a, b, stencil_options(solver::solver_type::bicgstab));

        const double cg1 = projected_ms(one, cg, target_batch);
        const double cg2 = projected_ms(two, cg, target_batch);
        const double bi1 = projected_ms(one, bicg, target_batch);
        const double bi2 = projected_ms(two, bicg, target_batch);
        std::printf("%6d | %10.3f %10.3f %7.2fx | %10.3f %10.3f %7.2fx\n",
                    rows, cg1, cg2, cg1 / cg2, bi1, bi2, bi1 / bi2);
        cg_speedup_sum += cg1 / cg2;
        bicg_speedup_sum += bi1 / bi2;
        ++count;
    }
    rule(78);
    std::printf("average speedup: BatchCg %.2fx, BatchBicgstab %.2fx "
                "(paper: 1.8x / 1.9x, range 1.5x-2.0x)\n",
                cg_speedup_sum / count, bicg_speedup_sum / count);
    return 0;
}
