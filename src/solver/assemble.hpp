// Coalesced-batch assembly: the solver-side half of the serve:: dynamic
// batcher.
//
// The paper's throughput argument (§3.4) is that many small systems fused
// into one kernel launch amortize the per-launch overhead. A stream of
// independent solve requests can only exploit that if someone gathers the
// requests into one batch before it hits the device: `solve_coalesced`
// takes N compatible requests (same pattern, same options), assembles one
// combined batch, runs exactly one fused solve, and scatters each
// request's solution and convergence record back. Because every system is
// solved by its own work-group with a launch configuration that depends
// only on the system shape, the per-request results are bit-identical to
// solo `solve` calls (tests/test_serve.cpp asserts this).
#pragma once

#include <vector>

#include "solver/dispatch.hpp"
#include "solver/options.hpp"

namespace batchlin::solver {

/// One request's slice of a coalesced solve. `x` carries the initial
/// guess on entry and the solution on return, exactly like `solve`.
template <typename T>
struct assembly_part {
    const batch_matrix<T>* a = nullptr;
    const mat::batch_dense<T>* b = nullptr;
    mat::batch_dense<T>* x = nullptr;

    index_type items() const
    {
        return std::visit(
            [](const auto& m) { return m.num_batch_items(); }, *a);
    }
};

/// Whether two batches share format, dimensions, and sparsity pattern
/// (BatchCsr row pointers and column indexes, BatchEll column indexes).
/// Batch sizes and storage precision may differ.
template <typename T>
bool same_shape(const batch_matrix<T>& lhs, const batch_matrix<T>& rhs);

/// Whether two batches may share one fused launch: `same_shape` plus the
/// same storage precision (a fused launch reads all value blocks at one
/// storage width). Batch sizes may differ.
template <typename T>
bool can_coalesce(const batch_matrix<T>& lhs, const batch_matrix<T>& rhs);

/// Solves all parts as one fused batch on `q` and scatters each part's
/// solution back into its `x`. Part `i`'s systems occupy batch entries
/// [offset_i, offset_i + items_i) of the combined result, with offsets in
/// part order; use `split_log` to slice the combined log per part. The
/// single-part case forwards to `solve` directly (no gather/scatter).
template <typename T>
solve_result solve_coalesced(xpu::queue& q,
                             const std::vector<assembly_part<T>>& parts,
                             const solve_options& opts);

/// Extracts the per-system convergence records of one part from the
/// combined log: entries [offset, offset + items) re-indexed from zero.
log::batch_log split_log(const log::batch_log& combined, index_type offset,
                         index_type items);

/// In-place variant: writes the slice into `out`, reusing its storage
/// when it is already sized for `items` systems. The serving hot path
/// recycles log storage through the request/reply round trip, and the
/// allocating `split_log` would put three cross-thread malloc/free pairs
/// per request back on that path.
void split_log_into(const log::batch_log& combined, index_type offset,
                    index_type items, log::batch_log& out);

namespace detail {

/// Validates an assembly: every part present, shapes consistent, patterns
/// coalescible with the leader. Returns the combined batch-item count.
/// Shared by `solve_coalesced` and the graph-record path.
template <typename T>
index_type validate_assembly(const std::vector<assembly_part<T>>& parts);

/// Builds one combined matrix carrying the shared pattern and every
/// part's value blocks gathered batch-major (part order).
template <typename T>
batch_matrix<T> gather_matrix(const std::vector<assembly_part<T>>& parts,
                              index_type total_items);

}  // namespace detail

}  // namespace batchlin::solver
