// BatchDense: batched dense matrices and multivectors (paper §3.1, Fig. 2).
//
// Stores `num_batch_items` row-major rows×cols blocks contiguously
// (batch-major). Right-hand sides and solution vectors of the batched
// solvers are BatchDense objects with one column, following Ginkgo's
// convention.
#pragma once

#include <algorithm>
#include <vector>

#include "matrix/storage.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/span.hpp"

namespace batchlin::mat {

template <typename T>
class batch_dense {
public:
    using value_type = T;

    batch_dense() = default;

    /// Allocates storage for `num_batch_items` matrices of size rows×cols,
    /// zero-initialized.
    batch_dense(index_type num_batch_items, index_type rows, index_type cols)
        : num_batch_(num_batch_items),
          rows_(rows),
          cols_(cols),
          values_(static_cast<std::size_t>(num_batch_items) * rows * cols)
    {
        BATCHLIN_ENSURE_MSG(num_batch_items >= 0 && rows >= 0 && cols >= 0,
                            "negative dimension");
    }

    index_type num_batch_items() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type cols() const { return cols_; }
    /// Entries of one batch item.
    size_type item_size() const
    {
        return static_cast<size_type>(rows_) * cols_;
    }

    T& at(index_type batch, index_type row, index_type col)
    {
        require_native();
        return values_[item_offset(batch) + static_cast<size_type>(row) *
                       cols_ + col];
    }
    /// By value, not by reference: under fp32 storage there is no T-typed
    /// element to point at, so the const read widens on the fly.
    T at(index_type batch, index_type row, index_type col) const
    {
        const size_type i = item_offset(batch) +
                            static_cast<size_type>(row) * cols_ + col;
        return storage_ == storage_precision::fp32
                   ? static_cast<T>(values32_[i])
                   : values_[i];
    }

    T* item_values(index_type batch)
    {
        require_native();
        return values_.data() + item_offset(batch);
    }
    const T* item_values(index_type batch) const
    {
        require_native();
        return values_.data() + item_offset(batch);
    }

    /// Tagged view of one item's values for device kernels.
    xpu::dspan<T> item_span(index_type batch,
                            xpu::mem_space space = xpu::mem_space::global)
    {
        return {item_values(batch), static_cast<index_type>(item_size()),
                space};
    }
    xpu::dspan<const T> item_span(
        index_type batch,
        xpu::mem_space space = xpu::mem_space::global) const
    {
        return {item_values(batch), static_cast<index_type>(item_size()),
                space};
    }

    std::vector<T>& values()
    {
        require_native();
        return values_;
    }
    const std::vector<T>& values() const
    {
        require_native();
        return values_;
    }

    /// Storage mode for dense *system matrices* (spmv operands). Vectors
    /// (b, x, workspace multivectors) stay native: the solvers write them
    /// in compute precision every iteration.
    storage_precision storage_mode() const { return storage_; }

    void set_storage_precision(storage_precision mode)
    {
        mode = effective_storage<T>(mode);
        if (mode == storage_) {
            return;
        }
        if (mode == storage_precision::fp32) {
            values32_.resize(values_.size());
            std::transform(values_.begin(), values_.end(),
                           values32_.begin(),
                           [](T v) { return static_cast<float>(v); });
            values_.clear();
            values_.shrink_to_fit();
        } else {
            values_.resize(values32_.size());
            std::transform(values32_.begin(), values32_.end(),
                           values_.begin(),
                           [](float v) { return static_cast<T>(v); });
            values32_.clear();
            values32_.shrink_to_fit();
        }
        storage_ = mode;
    }

    float* item_values_fp32(index_type batch)
    {
        require_fp32();
        return values32_.data() + item_offset(batch);
    }
    const float* item_values_fp32(index_type batch) const
    {
        require_fp32();
        return values32_.data() + item_offset(batch);
    }
    xpu::dspan<const float> item_span_fp32(index_type batch) const
    {
        return {item_values_fp32(batch),
                static_cast<index_type>(item_size()),
                xpu::mem_space::constant};
    }
    std::vector<float>& values_fp32()
    {
        require_fp32();
        return values32_;
    }
    const std::vector<float>& values_fp32() const
    {
        require_fp32();
        return values32_;
    }

    void fill(T value)
    {
        require_native();
        std::fill(values_.begin(), values_.end(), value);
    }

    /// Total value storage in bytes (the BatchDense row of Fig. 2);
    /// honest under fp32 mode.
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size()) * sizeof(T) +
               static_cast<size_type>(values32_.size()) * sizeof(float);
    }

    /// Bytes one solve streams for this item's values (storage-aware).
    size_type value_bytes_per_item() const
    {
        const size_type width = storage_ == storage_precision::fp32
                                    ? sizeof(float)
                                    : sizeof(T);
        return item_size() * width;
    }

private:
    void require_native() const
    {
        BATCHLIN_ENSURE_MSG(storage_ == storage_precision::native,
                            "native-typed value access on an fp32-storage "
                            "batch_dense");
    }
    void require_fp32() const
    {
        BATCHLIN_ENSURE_MSG(storage_ == storage_precision::fp32,
                            "fp32 value access on a native-storage "
                            "batch_dense");
    }

    size_type item_offset(index_type batch) const
    {
        BATCHLIN_ENSURE_DIMS(batch >= 0 && batch < num_batch_,
                             "batch index out of range");
        return static_cast<size_type>(batch) * item_size();
    }

    index_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type cols_ = 0;
    storage_precision storage_ = storage_precision::native;
    std::vector<T> values_;
    std::vector<float> values32_;
};

}  // namespace batchlin::mat
