// Table 3 reproduction: the batched feature-support matrix.
//
// Enumerates every (matrix format x solver x preconditioner x stopping
// criterion) combination, attempts a small batched solve through the
// multi-level dispatch, and prints whether the combination is supported
// (and converged). The unsupported cells must be exactly the exceptions
// the paper names (BatchIsai/BatchIlu need BatchCsr; BatchTrsv is
// CSR-only, preconditioner-free and needs a triangular pattern).
#include <cstdio>

#include "common.hpp"
#include "matrix/conversions.hpp"

using namespace bench;

namespace {

const char* try_combo(solver::matrix_format format,
                      solver::solver_type solver_kind, precond::type pc,
                      stop::tolerance_type tol_type)
{
    const index_type items = 8;
    // TRSV needs a triangular pattern; Krylov solvers get SPD stencil (CG
    // requirement) which the others also handle.
    mat::batch_csr<double> csr = [&] {
        if (solver_kind == solver::solver_type::trsv) {
            std::vector<index_type> rp{0, 1, 3, 5};
            std::vector<index_type> ci{0, 0, 1, 1, 2};
            mat::batch_csr<double> tri(items, 3, 3, rp, ci);
            for (index_type b = 0; b < items; ++b) {
                double v[] = {2, 1, 3, -1, 4};
                std::copy(std::begin(v), std::end(v), tri.item_values(b));
            }
            return tri;
        }
        return work::stencil_3pt<double>(items, 32, 3);
    }();

    solver::batch_matrix<double> a = csr;
    if (format == solver::matrix_format::ell) {
        a = mat::to_ell(csr);
    } else if (format == solver::matrix_format::dense) {
        a = mat::to_dense(csr);
    }
    const auto b = work::random_rhs<double>(items, csr.rows(), 5);
    mat::batch_dense<double> x(items, csr.rows(), 1);

    solver::solve_options opts;
    opts.solver = solver_kind;
    opts.preconditioner = pc;
    const bool stationary =
        solver_kind == solver::solver_type::richardson;
    // The stationary iteration needs a contraction-safe relaxation and a
    // larger budget than the Krylov solvers.
    opts.richardson_relaxation =
        pc == precond::type::none ? 0.2 : 0.9;
    const index_type budget = stationary ? 2000 : 300;
    opts.criterion = tol_type == stop::tolerance_type::absolute
                         ? stop::absolute(1e-8, budget)
                         : stop::relative(1e-8, budget);
    xpu::queue q(xpu::make_sycl_policy());
    try {
        const auto result = solver::solve(q, a, b, x, opts);
        return result.log.num_converged() == items ? "yes" : "partial";
    } catch (const batchlin::unsupported_combination&) {
        return "-";
    } catch (const batchlin::error&) {
        return "-";
    }
}

}  // namespace

int main()
{
    std::printf("Table 3: batched feature support in the library\n");
    std::printf("(cell = combination dispatches and converges; '-' = "
                "unsupported, as the paper's Table 3 exceptions)\n\n");

    const solver::matrix_format formats[] = {solver::matrix_format::dense,
                                             solver::matrix_format::csr,
                                             solver::matrix_format::ell};
    const solver::solver_type solvers[] = {
        solver::solver_type::cg, solver::solver_type::bicgstab,
        solver::solver_type::gmres, solver::solver_type::trsv};
    const precond::type preconds[] = {precond::type::none,
                                      precond::type::jacobi,
                                      precond::type::ilu,
                                      precond::type::isai};

    for (const auto tol : {stop::tolerance_type::absolute,
                           stop::tolerance_type::relative}) {
        std::printf("stopping criterion: %s\n",
                    stop::to_string(tol).c_str());
        std::printf("%-12s | %-14s | %-8s %-8s %-8s %-8s\n", "format",
                    "solver", "none", "jacobi", "ilu", "isai");
        rule(72);
        for (const auto format : formats) {
            for (const auto solver_kind : solvers) {
                std::printf("%-12s | %-14s |",
                            solver::to_string(format).c_str(),
                            solver::to_string(solver_kind).c_str());
                for (const auto pc : preconds) {
                    std::printf(" %-8s",
                                try_combo(format, solver_kind, pc, tol));
                }
                std::printf("\n");
            }
        }
        std::printf("\n");
    }

    // Library extensions beyond the paper's Table 3.
    std::printf("extensions (not in the paper's Table 3):\n");
    std::printf("%-12s | %-14s | %-12s %-8s %-8s %-8s %-12s\n", "format",
                "solver", "none", "jacobi", "ilu", "isai", "block-jacobi");
    rule(86);
    const auto rel = stop::tolerance_type::relative;
    for (const auto format : formats) {
        std::printf("%-12s | %-14s | %-12s %-8s %-8s %-8s %-12s\n",
                    solver::to_string(format).c_str(), "BatchRichardson",
                    try_combo(format, solver::solver_type::richardson,
                              precond::type::none, rel),
                    try_combo(format, solver::solver_type::richardson,
                              precond::type::jacobi, rel),
                    try_combo(format, solver::solver_type::richardson,
                              precond::type::ilu, rel),
                    try_combo(format, solver::solver_type::richardson,
                              precond::type::isai, rel),
                    try_combo(format, solver::solver_type::richardson,
                              precond::type::block_jacobi, rel));
    }
    std::printf("%-12s | %-14s |", "BatchCsr", "all solvers");
    std::printf(" block-jacobi: %s\n",
                try_combo(solver::matrix_format::csr,
                          solver::solver_type::bicgstab,
                          precond::type::block_jacobi, rel));
    return 0;
}
