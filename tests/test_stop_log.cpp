// Unit tests for stopping criteria and the per-system convergence logger.
#include <gtest/gtest.h>

#include "log/logger.hpp"
#include "stop/criterion.hpp"
#include "util/error.hpp"

namespace bl = batchlin;
using namespace batchlin::stop;
using batchlin::log::batch_log;

TEST(Criterion, AbsoluteIgnoresRhsNorm)
{
    const criterion c = absolute(1e-6);
    EXPECT_TRUE(is_converged(c, 1e-7, 1000.0));
    EXPECT_TRUE(is_converged(c, 1e-6, 0.0));
    EXPECT_FALSE(is_converged(c, 1e-5, 1000.0));
}

TEST(Criterion, RelativeScalesWithRhsNorm)
{
    const criterion c = relative(1e-6);
    EXPECT_TRUE(is_converged(c, 1e-4, 1000.0));   // 1e-4 <= 1e-6 * 1e3
    EXPECT_FALSE(is_converged(c, 1e-2, 1000.0));
    EXPECT_FALSE(is_converged(c, 1e-7, 0.0));     // zero rhs: only r=0 passes
    EXPECT_TRUE(is_converged(c, 0.0, 0.0));
}

TEST(Criterion, ValidateRejectsBadConfigs)
{
    criterion c = relative(0.0);
    EXPECT_THROW(c.validate(), bl::error);
    c = relative(1e-6, 0);
    EXPECT_THROW(c.validate(), bl::error);
    c = relative(1e-6, 10);
    EXPECT_NO_THROW(c.validate());
}

TEST(Criterion, FactoriesSetFields)
{
    const criterion a = absolute(1e-8, 50);
    EXPECT_EQ(a.type, tolerance_type::absolute);
    EXPECT_EQ(a.tolerance, 1e-8);
    EXPECT_EQ(a.max_iterations, 50);
    EXPECT_EQ(to_string(a.type), "absolute");
    EXPECT_EQ(to_string(relative(1e-3).type), "relative");
}

TEST(Logger, RecordsPerSystem)
{
    batch_log log(4);
    log.record(0, 10, 1e-11, batchlin::log::solve_status::converged);
    log.record(1, 200, 3e-4, batchlin::log::solve_status::max_iterations);
    log.record(2, 15, 2e-12, batchlin::log::solve_status::converged);
    log.record(3, 12, 5e-12, batchlin::log::solve_status::converged);
    EXPECT_EQ(log.num_systems(), 4);
    EXPECT_EQ(log.num_converged(), 3);
    EXPECT_EQ(log.iterations(1), 200);
    EXPECT_FALSE(log.converged(1));
    EXPECT_TRUE(log.converged(2));
    EXPECT_EQ(log.min_iterations(), 10);
    EXPECT_EQ(log.max_iterations(), 200);
    EXPECT_NEAR(log.mean_iterations(), (10 + 200 + 15 + 12) / 4.0, 1e-12);
    EXPECT_EQ(log.max_residual_norm(), 3e-4);
}

TEST(Logger, EmptyLogIsWellDefined)
{
    batch_log log;
    EXPECT_EQ(log.num_systems(), 0);
    EXPECT_EQ(log.num_converged(), 0);
    EXPECT_EQ(log.min_iterations(), 0);
    EXPECT_EQ(log.max_iterations(), 0);
    EXPECT_EQ(log.mean_iterations(), 0.0);
    EXPECT_EQ(log.max_residual_norm(), 0.0);
}

TEST(Criterion, ZeroRhsShortCircuitOnlyUnderRelativeTolerance)
{
    EXPECT_TRUE(zero_rhs_short_circuit(relative(1e-8), 0.0));
    EXPECT_FALSE(zero_rhs_short_circuit(relative(1e-8), 1e-300));
    EXPECT_FALSE(zero_rhs_short_circuit(absolute(1e-8), 0.0));
    EXPECT_TRUE(zero_rhs_short_circuit(relative(1e-8), 0.0f));
}

TEST(Logger, StatusTaxonomyIsRecordedAndCounted)
{
    using batchlin::log::solve_status;
    batch_log log(8);
    log.record(0, 5, 1e-12, solve_status::converged);
    log.record(1, 50, 1e-3, solve_status::max_iterations);
    log.record(2, 2, 0.5, solve_status::breakdown_rho);
    log.record(3, 3, 0.5, solve_status::breakdown_omega);
    log.record(4, 0, 0.7, solve_status::direction_annihilated);
    log.record(5, 7, 0.0, solve_status::non_finite);
    log.record(6, 0, 0.0, solve_status::device_fault);
    log.record(7, 1, 0.0, solve_status::singular);
    EXPECT_EQ(log.num_converged(), 1);
    EXPECT_EQ(log.count_status(solve_status::converged), 1);
    EXPECT_EQ(log.count_status(solve_status::max_iterations), 1);
    EXPECT_EQ(log.count_status(solve_status::breakdown_rho), 1);
    EXPECT_EQ(log.count_status(solve_status::breakdown_omega), 1);
    EXPECT_EQ(log.count_status(solve_status::direction_annihilated), 1);
    EXPECT_EQ(log.count_status(solve_status::non_finite), 1);
    EXPECT_EQ(log.count_status(solve_status::device_fault), 1);
    EXPECT_EQ(log.count_status(solve_status::singular), 1);
    EXPECT_EQ(log.status(3), solve_status::breakdown_omega);
    EXPECT_TRUE(log.converged(0));
    EXPECT_FALSE(log.converged(6));
    EXPECT_EQ(log.all_statuses().size(), 8u);
}

TEST(Logger, FreshLogDefaultsToMaxIterations)
{
    using batchlin::log::solve_status;
    const batch_log log(3);
    for (batchlin::index_type i = 0; i < 3; ++i) {
        EXPECT_EQ(log.status(i), solve_status::max_iterations);
        EXPECT_FALSE(log.converged(i));
    }
}

TEST(Logger, StatusToStringCoversEveryEnumerator)
{
    using batchlin::log::solve_status;
    using batchlin::log::to_string;
    EXPECT_EQ(to_string(solve_status::converged), "converged");
    EXPECT_EQ(to_string(solve_status::max_iterations), "max_iterations");
    EXPECT_EQ(to_string(solve_status::breakdown_rho), "breakdown_rho");
    EXPECT_EQ(to_string(solve_status::breakdown_omega), "breakdown_omega");
    EXPECT_EQ(to_string(solve_status::direction_annihilated),
              "direction_annihilated");
    EXPECT_EQ(to_string(solve_status::non_finite), "non_finite");
    EXPECT_EQ(to_string(solve_status::device_fault), "device_fault");
    EXPECT_EQ(to_string(solve_status::singular), "singular");
}
