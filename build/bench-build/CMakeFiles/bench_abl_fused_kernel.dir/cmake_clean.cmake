file(REMOVE_RECURSE
  "../bench/bench_abl_fused_kernel"
  "../bench/bench_abl_fused_kernel.pdb"
  "CMakeFiles/bench_abl_fused_kernel.dir/bench_abl_fused_kernel.cpp.o"
  "CMakeFiles/bench_abl_fused_kernel.dir/bench_abl_fused_kernel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_fused_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
