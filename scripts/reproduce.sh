#!/usr/bin/env bash
# Reproduces the full evaluation: build, test suite, every table/figure
# bench, the ablations, and the examples — the analogue of the paper's
# run-test-dpcpp.sh / run-test-cuda.sh reproducibility scripts.
#
# Usage: scripts/reproduce.sh [build-dir] [results-dir]
set -euo pipefail

BUILD_DIR=${1:-build}
RESULTS_DIR=${2:-results}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

mkdir -p "$RESULTS_DIR"

echo "== configure & build"
cmake -B "$BUILD_DIR" -G Ninja >/dev/null
cmake --build "$BUILD_DIR"

echo "== test suite"
ctest --test-dir "$BUILD_DIR" --output-on-failure \
    | tee "$RESULTS_DIR/ctest.txt" | tail -3

echo "== tables and figures"
for bench in "$BUILD_DIR"/bench/*; do
    name=$(basename "$bench")
    echo "-- $name"
    "$bench" | tee "$RESULTS_DIR/$name.txt" >/dev/null
done

echo "== examples"
for example in quickstart pele_newton stencil_scaling explicit_scaling \
               batched_from_files convergence_history; do
    echo "-- $example"
    "$BUILD_DIR/examples/$example" \
        | tee "$RESULTS_DIR/example_$example.txt" >/dev/null
done

echo "== headline comparison (Figure 7)"
grep -A3 "average vs" "$RESULTS_DIR/bench_fig7_speedup.txt" || true
echo
echo "results written to $RESULTS_DIR/"
