#pragma once
// conc::engine — deterministic cooperative scheduler + happens-before race
// detector for model-checking the lock-free serve/shard protocols.
//
// The engine runs a test body under a baton discipline: every logical thread
// is a real OS thread, but exactly one holds the baton (a binary semaphore)
// at a time. Each instrumented operation (conc::atomic load/store/RMW,
// conc::mutex lock/unlock, conc::futex_wait/wake, thread spawn/join)
// announces itself, then the scheduler decides which thread executes next:
//
//  * exhaustive mode: depth-first enumeration of schedules with replay from
//    a recorded decision path, sleep-set pruning (Godefroid-style DPOR-lite:
//    a sibling branch already explored stays asleep until a dependent
//    operation wakes it), and CHESS-style preemption bounding (schedules
//    with more than `preemption_bound` involuntary switches are not
//    enumerated — empirically almost all concurrency bugs need very few).
//  * random mode: seeded uniform walks over the enabled threads, one rng
//    seed per schedule, so a failure reports a reproducible seed.
//
// Layered on the same hooks is a FastTrack-style vector-clock race detector:
// release stores publish the writer's clock on the atomic object, acquire
// loads join it, and every conc::plain_read/plain_write on non-atomic data
// is checked for a happens-before edge against the last conflicting access.
// Races, lost wakes (deadlock: every thread blocked), user property failures
// (conc::require) and exhausted op budgets abort the schedule and are
// reported with both source sites plus the full decision trace.
//
// Values are always sequentially consistent (there is one true memory);
// weak-memory effects are detected through *missing happens-before edges*,
// not through stale values. DESIGN.md §13 spells out what that can and
// cannot catch.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <semaphore>
#include <source_location>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace batchlin::conc {

inline constexpr int max_threads = 8;

/// One component per logical thread; epochs tick on every scheduled op.
struct vclock {
    std::array<std::uint32_t, max_threads> c{};

    void join(const vclock& o) {
        for (int i = 0; i < max_threads; ++i) {
            if (o.c[static_cast<std::size_t>(i)] > c[static_cast<std::size_t>(i)]) {
                c[static_cast<std::size_t>(i)] = o.c[static_cast<std::size_t>(i)];
            }
        }
    }
    void clear() { c.fill(0); }
};

/// Lightweight capture of std::source_location (shims pass call sites down).
struct site {
    const char* file = "?";
    unsigned line = 0;
};

inline site to_site(const std::source_location& loc) {
    return site{loc.file_name(), loc.line()};
}

enum class op_kind : std::uint8_t {
    none,
    atomic_load,
    atomic_store,
    atomic_rmw,
    mutex_lock,
    mutex_unlock,
    futex_wait,
    futex_wake,
    thread_spawn,
    thread_join,
    thread_start,
    resume,
    yield,
};

struct op_desc {
    op_kind kind = op_kind::none;
    const void* obj = nullptr;
    site where{};
};

/// Thrown to unwind a logical thread when the current schedule is abandoned
/// (failure found, or branch pruned as sleep-set-redundant).
struct abort_execution {};

enum class explore_mode : std::uint8_t { exhaustive, random };

struct options {
    explore_mode mode = explore_mode::exhaustive;
    /// exhaustive: stop after this many schedules even if incomplete.
    long max_schedules = 200000;
    /// random: number of seeded walks.
    long seeds = 1000;
    std::uint64_t seed0 = 1;
    /// Max involuntary context switches per schedule; <0 = unbounded.
    int preemption_bound = 3;
    /// Abort a schedule whose op count exceeds this (livelock guard).
    long max_ops_per_run = 20000;
    /// Spurious futex wakeups injected as scheduler choices, per thread per
    /// schedule. 0 disables injection.
    int spurious_wakeups = 1;
};

struct report {
    bool ok = true;
    /// exhaustive mode: true if the full (bounded) tree was enumerated.
    bool complete = false;
    long schedules = 0;
    long pruned = 0;
    std::string failure;  ///< empty when ok
    std::string trace;    ///< decision trace of the failing schedule

    std::string summary() const;
};

class engine {
public:
    explicit engine(const options& opts);
    ~engine();

    engine(const engine&) = delete;
    engine& operator=(const engine&) = delete;

    /// The engine driving the calling OS thread, or nullptr.
    static engine* active();
    /// Logical thread id of the calling OS thread (0 = root).
    static int self();

    bool aborting() const { return aborting_; }
    bool failed() const { return failed_; }

    // -- shim hooks (scheduled operations) ---------------------------------
    void op_point(op_kind kind, const void* obj, const site& s);
    void sync_acquire(const void* obj, std::memory_order mo);
    void sync_store(const void* obj, std::memory_order mo);
    void sync_rmw(const void* obj, std::memory_order mo);
    void futex_wait(const void* obj, const std::atomic<std::uint32_t>& word,
                    std::uint32_t expected, const site& s);
    void futex_wake_all(const void* obj, const site& s);
    void mutex_lock(const void* obj, const site& s);
    bool mutex_try_lock(const void* obj, const site& s);
    void mutex_unlock(const void* obj, const site& s);
    void yield(const site& s);

    // -- plain (non-atomic) data, race-checked, not scheduled --------------
    void plain_read(const void* addr, const site& s);
    void plain_write(const void* addr, const site& s);

    // -- logical threads ---------------------------------------------------
    int spawn(std::function<void()> body, const site& s);
    void join_thread(int tid, const site& s);
    void drain_unjoined(int tid);

    // -- property failures -------------------------------------------------
    /// Records the failure and aborts the schedule. Throws abort_execution
    /// unless the calling thread is already unwinding one.
    void fail(const std::string& what, const site& s);

private:
    friend report explore(const options& opts, const std::function<void()>& body);

    enum class tstat : std::uint8_t {
        runnable,
        blocked_futex,
        blocked_mutex,
        blocked_join,
        finished,
    };

    struct thread_rec {
        int tid = 0;
        tstat st = tstat::finished;
        op_desc pending{};
        vclock clock{};
        vclock final_clock{};
        std::binary_semaphore sem{0};
        bool parked = false;
        const void* wait_obj = nullptr;
        site blocked_at{};
        bool woke_spurious = false;
        int spurious_credits = 0;
        bool unwinding = false;
        bool started = false;
        bool os_joined = true;
        std::thread os;
        std::function<void()> body;
    };

    struct choice {
        int tid = 0;
        bool spurious = false;
        bool operator==(const choice&) const = default;
    };

    struct node {
        std::vector<choice> all;  ///< candidate branches, deterministic order
        std::size_t next = 0;     ///< branch taken on the current replay
    };

    struct access_rec {
        int tid = -1;
        std::uint32_t epoch = 0;
        site where{};
    };

    struct loc_state {
        access_rec write{};
        std::array<access_rec, max_threads> reads{};
    };

    // run lifecycle (driven by explore())
    void begin_run();
    void end_run();
    bool advance();  ///< returns true when exploration is finished

    void decide_and_switch(thread_rec& me, bool finishing);
    choice choose(const std::vector<choice>& allowed, bool finishing);
    void apply_spurious(const choice& ch);
    void wrapper(int tid);
    void finish_thread(int tid);
    void deliver_abort(thread_rec& me);
    void fail_nothrow(const std::string& what);
    std::string deadlock_message() const;
    static bool dependent(const op_desc& a, const op_desc& b);
    thread_rec& cur() { return t_[static_cast<std::size_t>(cur_tid())]; }
    static int cur_tid();
    std::string trace_string() const;
    static std::string describe(const op_desc& d);

    options opts_;
    std::array<thread_rec, max_threads> t_;
    int nthreads_ = 1;

    bool aborting_ = false;
    bool pruned_flag_ = false;
    bool failed_ = false;
    std::string failure_;
    std::string failure_trace_;

    long ops_ = 0;
    int preemptions_ = 0;
    long schedules_ = 0;
    long pruned_ = 0;

    // exhaustive state
    std::vector<node> path_;
    std::size_t depth_ = 0;
    std::uint32_t sleep_ = 0;  ///< bitmask of slept tids

    // random state
    std::mt19937_64 rng_;
    long run_index_ = 0;

    std::vector<choice> run_trace_;

    std::unordered_map<const void*, vclock> sync_;
    std::unordered_map<const void*, loc_state> mem_;
    std::unordered_map<const void*, int> mutex_owner_;
};

/// Run `body` as logical thread 0 under every explored schedule.
report explore(const options& opts, const std::function<void()>& body);

/// Model-checked property assertion: failing records the schedule and aborts
/// the exploration. Outside an engine, throws std::logic_error.
void require(bool cond, const char* what,
             const std::source_location& loc = std::source_location::current());

/// Logical thread handle. Declare shared state *before* conc::thread objects
/// so that abort-unwind joins children before the data they touch dies.
class thread {
public:
    template <typename Fn>
    explicit thread(Fn&& fn,
                    const std::source_location& loc = std::source_location::current())
        : tid_(engine::active()->spawn(std::function<void()>(std::forward<Fn>(fn)),
                                       to_site(loc))) {}

    thread(const thread&) = delete;
    thread& operator=(const thread&) = delete;

    void join(const std::source_location& loc = std::source_location::current()) {
        engine::active()->join_thread(tid_, to_site(loc));
        joined_ = true;
    }

    ~thread() {
        if (!joined_) {
            engine::active()->drain_unjoined(tid_);
        }
    }

private:
    int tid_;
    bool joined_ = false;
};

}  // namespace batchlin::conc
