// Roofline analysis (paper §4.4, Fig. 8).
//
// Reproduces the Intel-Advisor-style report for a batched solve: achieved
// GFLOP/s against the compute and per-memory-level bandwidth roofs, plus
// the memory-traffic breakdown across SLM / L3 / HBM that the paper uses to
// show the solver is SLM-dominated (~65% of memory transactions, ~3 TB of
// SLM traffic for the dodecane_lu case).
#pragma once

#include <iosfwd>
#include <string>

#include "perfmodel/cost_model.hpp"
#include "perfmodel/device_spec.hpp"

namespace batchlin::perf {

/// One memory level's share of the traffic and of the transaction time.
struct traffic_share {
    std::string level;
    double bytes = 0.0;
    double share_of_bytes = 0.0;
    double seconds = 0.0;
    double share_of_time = 0.0;
};

struct roofline_report {
    /// Arithmetic intensity against each traffic level (flop/byte).
    double ai_slm = 0.0;
    double ai_l3 = 0.0;
    double ai_hbm = 0.0;
    /// Achieved performance.
    double achieved_gflops = 0.0;
    /// Bandwidth-roof-implied ceilings at the achieved intensity.
    double slm_roof_gflops = 0.0;
    double l3_roof_gflops = 0.0;
    double hbm_roof_gflops = 0.0;
    double compute_roof_gflops = 0.0;
    /// Which roof the kernel sits under.
    std::string binding_roof;
    /// SLM / L3 / HBM traffic rows (Fig. 8's right-hand panel).
    traffic_share slm, l3, hbm;
    /// Occupancy figures of the Advisor summary (§4.4).
    double threading_occupancy = 0.0;
};

/// Builds the report for one profiled solve on `device`.
roofline_report analyze_roofline(const device_spec& device,
                                 const solve_profile& profile);

/// Prints the report in the layout of Fig. 8.
void print_roofline(std::ostream& out, const device_spec& device,
                    const roofline_report& report);

}  // namespace batchlin::perf
