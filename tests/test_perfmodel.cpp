// Tests for the device performance model: spec data (Table 5), counter
// scaling, occupancy/SLM-footprint behaviour, monotonicity, and the
// roofline report machinery (Fig. 8).
#include <gtest/gtest.h>

#include "perfmodel/cost_model.hpp"
#include "perfmodel/device_spec.hpp"
#include "perfmodel/roofline.hpp"
#include "solver/dispatch.hpp"
#include "solver/handle.hpp"
#include "util/error.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace perf = batchlin::perf;
namespace xpu = batchlin::xpu;

TEST(DeviceSpec, Table5Values)
{
    const auto a100 = perf::a100();
    EXPECT_DOUBLE_EQ(a100.fp64_peak_tflops, 9.7);
    EXPECT_DOUBLE_EQ(a100.hbm_bw_tbs, 1.6);
    EXPECT_EQ(a100.slm_per_core_bytes, 192 * 1024);

    const auto h100 = perf::h100();
    EXPECT_DOUBLE_EQ(h100.fp64_peak_tflops, 26.0);
    EXPECT_DOUBLE_EQ(h100.hbm_bw_tbs, 2.0);
    EXPECT_EQ(h100.slm_per_core_bytes, 228 * 1024);

    const auto p1 = perf::pvc_1s();
    EXPECT_DOUBLE_EQ(p1.fp64_peak_tflops, 22.9);
    EXPECT_DOUBLE_EQ(p1.hbm_bw_tbs, 1.6);
    EXPECT_EQ(p1.slm_per_core_bytes, 128 * 1024);

    const auto p2 = perf::pvc_2s();
    EXPECT_DOUBLE_EQ(p2.fp64_peak_tflops, 45.8);
    EXPECT_DOUBLE_EQ(p2.hbm_bw_tbs, 3.2);
    EXPECT_EQ(p2.num_cores, 2 * p1.num_cores);
    EXPECT_EQ(p2.num_stacks, 2);
}

TEST(DeviceSpec, Pvc2sSustainedBandwidthTracksTwoStacks)
{
    const auto p1 = perf::pvc_1s();
    const auto p2 = perf::pvc_2s();
    // The raw HBM figure doubles stack-for-stack; the *sustained* figure
    // must land in the paper's 1.8-1.9x observed stack scaling, because
    // implicit scaling never reaches the ideal 2x.
    EXPECT_DOUBLE_EQ(p2.hbm_bw_tbs, 2.0 * p1.hbm_bw_tbs);
    const double ratio =
        perf::sustained_bw_tbs(p2) / perf::sustained_bw_tbs(p1);
    EXPECT_GT(ratio, 1.75);
    EXPECT_LT(ratio, 1.95);
    EXPECT_NEAR(ratio, 2.0 * p2.stack_scaling_efficiency, 1e-12);
    // Single-stack parts do not pay a stack-scaling discount.
    EXPECT_NEAR(perf::sustained_bw_tbs(p1),
                p1.hbm_bw_tbs * p1.efficiency, 1e-12);
}

TEST(DeviceSpec, PoliciesMatchProgrammingModels)
{
    EXPECT_EQ(perf::a100().make_policy().model, xpu::prog_model::cuda);
    EXPECT_FALSE(perf::h100().make_policy().has_group_reduction);
    const auto pvc_policy = perf::pvc_2s().make_policy();
    EXPECT_EQ(pvc_policy.model, xpu::prog_model::sycl);
    EXPECT_EQ(pvc_policy.num_stacks, 2);
    EXPECT_TRUE(pvc_policy.supports_sub_group(16));
}

TEST(DeviceSpec, LookupByName)
{
    EXPECT_EQ(perf::device_by_name("H100").name, "H100");
    EXPECT_EQ(perf::paper_devices().size(), 4u);
    EXPECT_THROW(perf::device_by_name("V100"), bl::error);
}

TEST(CostModel, ScaleCountersScalesExtensiveFieldsOnly)
{
    xpu::counters c;
    c.flops = 100;
    c.slm_bytes = 200;
    c.constant_read_bytes = 40;
    c.kernel_launches = 1;
    c.slm_footprint_bytes = 4096;
    c.groups_launched = 10;
    const xpu::counters s = perf::scale_counters(c, 8.0);
    EXPECT_DOUBLE_EQ(s.flops, 800.0);
    EXPECT_DOUBLE_EQ(s.slm_bytes, 1600.0);
    EXPECT_EQ(s.kernel_launches, 1);           // intensive
    EXPECT_EQ(s.slm_footprint_bytes, 4096);    // intensive
    EXPECT_EQ(s.groups_launched, 80);
}

namespace {

perf::solve_profile simple_profile(double flops, double slm, double hbm,
                                   bl::size_type footprint,
                                   index_type systems = 1 << 14,
                                   index_type wg = 64)
{
    perf::solve_profile p;
    p.totals.flops = flops;
    p.totals.slm_bytes = slm;
    p.totals.global_read_bytes = hbm;
    p.totals.kernel_launches = 1;
    p.totals.slm_footprint_bytes = footprint;
    p.num_systems = systems;
    p.work_group_size = wg;
    p.thread_utilization = 1.0;
    p.constant_footprint_per_system = 4096;
    return p;
}

}  // namespace

TEST(CostModel, TimeScalesLinearlyWithWork)
{
    const auto d = perf::pvc_1s();
    const auto t1 = perf::estimate_time(
        d, simple_profile(1e12, 1e12, 1e11, 32 * 1024));
    const auto t2 = perf::estimate_time(
        d, simple_profile(2e12, 2e12, 2e11, 32 * 1024));
    EXPECT_NEAR((t2.total_seconds - t1.launch_seconds * 0) /
                    t1.total_seconds,
                2.0, 0.05);
}

TEST(CostModel, SlmFootprintLimitsOccupancy)
{
    const auto d = perf::pvc_1s();  // 128 KB SLM per core
    const auto small = perf::estimate_time(
        d, simple_profile(1e10, 1e12, 1e10, 16 * 1024));
    const auto large = perf::estimate_time(
        d, simple_profile(1e10, 1e12, 1e10, 120 * 1024));
    // A 120 KB footprint allows one group per core: fewer groups in
    // flight, lower occupancy, slower SLM-bound execution (§4.4).
    EXPECT_GT(small.groups_in_flight, large.groups_in_flight);
    EXPECT_LE(large.groups_in_flight, d.num_cores);
    EXPECT_GT(large.total_seconds, small.total_seconds);
}

TEST(CostModel, IdentifiesBindingResource)
{
    const auto d = perf::pvc_1s();
    EXPECT_STREQ(perf::estimate_time(
                     d, simple_profile(1e14, 1e10, 1e9, 16 * 1024))
                     .bound_by,
                 "FLOP");
    EXPECT_STREQ(perf::estimate_time(
                     d, simple_profile(1e9, 1e13, 1e9, 16 * 1024))
                     .bound_by,
                 "SLM");
    EXPECT_STREQ(perf::estimate_time(
                     d, simple_profile(1e9, 1e9, 1e13, 16 * 1024))
                     .bound_by,
                 "HBM");
}

TEST(CostModel, TwoStacksFasterThanOne)
{
    const auto p = simple_profile(5e12, 5e12, 5e11, 32 * 1024, 1 << 17);
    const double t1 =
        perf::estimate_time(perf::pvc_1s(), p).total_seconds;
    const double t2 =
        perf::estimate_time(perf::pvc_2s(), p).total_seconds;
    const double speedup = t1 / t2;
    // §4.2: between 1.5x and 2.0x, typically 1.8-1.9x.
    EXPECT_GT(speedup, 1.5);
    EXPECT_LT(speedup, 2.0);
}

TEST(CostModel, LaunchOverheadDominatesTinyBatches)
{
    const auto d = perf::pvc_1s();
    auto p = simple_profile(1e5, 1e5, 1e4, 16 * 1024, 4, 64);
    const auto t = perf::estimate_time(d, p);
    EXPECT_GT(t.launch_seconds / t.total_seconds, 0.5);
}

TEST(CostModel, RejectsEmptyProfiles)
{
    perf::solve_profile p;
    EXPECT_THROW(perf::estimate_time(perf::pvc_1s(), p), bl::error);
}

TEST(Roofline, SharesSumToOne)
{
    const auto d = perf::pvc_1s();
    const auto p = simple_profile(1e12, 3e12, 2e11, 32 * 1024);
    const auto r = perf::analyze_roofline(d, p);
    EXPECT_NEAR(r.slm.share_of_bytes + r.l3.share_of_bytes +
                    r.hbm.share_of_bytes,
                1.0, 1e-9);
    EXPECT_NEAR(r.slm.share_of_time + r.l3.share_of_time +
                    r.hbm.share_of_time,
                1.0, 1e-9);
    EXPECT_GT(r.slm.share_of_bytes, r.hbm.share_of_bytes);
}

TEST(Roofline, AchievedNeverExceedsComputeRoof)
{
    const auto d = perf::pvc_1s();
    const auto r = perf::analyze_roofline(
        d, simple_profile(1e13, 1e12, 1e11, 32 * 1024));
    EXPECT_LE(r.achieved_gflops, r.compute_roof_gflops);
    EXPECT_GT(r.achieved_gflops, 0.0);
}

TEST(Roofline, EndToEndFromRealSolve)
{
    // Full pipeline: run a real batched solve, project it, and check the
    // Fig. 8 qualitative claims hold: SLM dominates the traffic and the
    // constant operands (matrix + rhs) are L3-resident.
    using namespace batchlin;
    const index_type items = 256;
    const auto a_csr = work::stencil_3pt<double>(items, 64, 3);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(items, 64, 4);
    mat::batch_dense<double> x(items, 64, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    batch_solver handle(perf::pvc_1s(), opts);
    const auto result = handle.solve<double>(a, b, x);
    const auto report = handle.roofline<double>(result, a, 1 << 17);
    EXPECT_GT(report.slm.share_of_bytes, 0.5);
    EXPECT_GT(report.l3.bytes, 0.0);
    EXPECT_GT(report.threading_occupancy, 0.0);
    EXPECT_LE(report.threading_occupancy, 1.0);
}

TEST(Handle, ProjectionScalesWithTargetBatch)
{
    using namespace batchlin;
    const index_type items = 128;
    const auto a_csr = work::stencil_3pt<double>(items, 32, 9);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(items, 32, 10);
    mat::batch_dense<double> x(items, 32, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    batch_solver handle(perf::pvc_1s(), opts);
    const auto result = handle.solve<double>(a, b, x);
    const auto t_small = handle.project<double>(result, a, 1 << 13);
    const auto t_large = handle.project<double>(result, a, 1 << 17);
    // 16x the systems ~ 16x the time once the device is saturated.
    EXPECT_NEAR(t_large.total_seconds / t_small.total_seconds, 16.0, 3.0);
}

TEST(Handle, DevicesRankPlausibly)
{
    // The H100 must beat the A100 on the same profile (more of every
    // resource); PVC-2S must beat PVC-1S.
    const auto p = simple_profile(5e12, 5e12, 5e11, 24 * 1024, 1 << 17);
    const double a100 =
        perf::estimate_time(perf::a100(), p).total_seconds;
    const double h100 =
        perf::estimate_time(perf::h100(), p).total_seconds;
    const double pvc1 =
        perf::estimate_time(perf::pvc_1s(), p).total_seconds;
    const double pvc2 =
        perf::estimate_time(perf::pvc_2s(), p).total_seconds;
    EXPECT_LT(h100, a100);
    EXPECT_LT(pvc2, pvc1);
}
