file(REMOVE_RECURSE
  "libbatchlin.a"
)
