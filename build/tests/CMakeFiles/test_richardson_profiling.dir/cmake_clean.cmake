file(REMOVE_RECURSE
  "CMakeFiles/test_richardson_profiling.dir/test_richardson_profiling.cpp.o"
  "CMakeFiles/test_richardson_profiling.dir/test_richardson_profiling.cpp.o.d"
  "test_richardson_profiling"
  "test_richardson_profiling.pdb"
  "test_richardson_profiling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_richardson_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
