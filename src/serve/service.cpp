#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <string>
#include <thread>

#include "xpu/fault.hpp"

namespace batchlin::serve {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

/// Exact compatibility check behind the hashed grouping key: equal
/// options and a shared sparsity pattern. Makes hash collisions degrade
/// batching, never correctness.
template <typename T>
bool bodies_compatible(const detail::typed_pending<T>& lhs,
                       const detail::typed_pending<T>& rhs)
{
    return lhs.request.opts == rhs.request.opts &&
           solver::can_coalesce(lhs.request.a, rhs.request.a);
}

bool entries_compatible(const detail::pending_entry& lhs,
                        const detail::pending_entry& rhs)
{
    if (lhs.body.index() != rhs.body.index()) {
        return false;
    }
    return std::visit(
        [&](const auto& typed) {
            using typed_type = std::decay_t<decltype(typed)>;
            return bodies_compatible(typed,
                                     std::get<typed_type>(rhs.body));
        },
        lhs.body);
}

}  // namespace

std::string to_string(request_status status)
{
    switch (status) {
    case request_status::ok:
        return "ok";
    case request_status::rejected:
        return "rejected";
    case request_status::expired:
        return "expired";
    case request_status::failed:
        return "failed";
    }
    return "?";
}

double latency_window::quantile(double q) const
{
    if (samples_.empty()) {
        return 0.0;
    }
    std::vector<double> sorted(samples_);
    const std::size_t rank = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
    std::nth_element(sorted.begin(), sorted.begin() + rank, sorted.end());
    return sorted[rank];
}

solve_service::solve_service(xpu::exec_policy policy, service_config config)
    : config_(std::move(config)),
      start_(std::chrono::steady_clock::now()),
      latency_(config_.latency_window)
{
    BATCHLIN_ENSURE_MSG(config_.workers > 0,
                        "service needs at least one worker");
    BATCHLIN_ENSURE_MSG(config_.max_batch > 0,
                        "max_batch must be positive");
    BATCHLIN_ENSURE_MSG(config_.max_queue_systems > 0,
                        "admission bound must be positive");
    BATCHLIN_ENSURE_MSG(config_.max_wait.count() >= 0,
                        "batching window cannot be negative");
    batch_histogram_.assign(static_cast<std::size_t>(config_.max_batch) + 1,
                            0);
    for (int i = 0; i < config_.workers; ++i) {
        worker_queues_.emplace_back(policy);
        // A long-lived service must not accumulate unbounded profiling
        // state even if an operator enables profiling for a while.
        worker_queues_.back().set_launch_history_capacity(1024);
    }
    workers_.reserve(static_cast<std::size_t>(config_.workers));
    for (int i = 0; i < config_.workers; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

solve_service::~solve_service() { stop(); }

bool solve_service::accepting() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return accepting_;
}

void solve_service::drain()
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_idle_.wait(lk,
                  [&] { return queue_.empty() && in_flight_entries_ == 0; });
}

void solve_service::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        accepting_ = false;
        stopping_ = true;
    }
    cv_work_.notify_all();
    cv_space_.notify_all();
    for (std::thread& worker : workers_) {
        if (worker.joinable()) {
            worker.join();
        }
    }
}

service_stats solve_service::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    service_stats s;
    s.submitted_requests = submitted_requests_;
    s.submitted_systems = submitted_systems_;
    s.completed_requests = completed_requests_;
    s.completed_systems = completed_systems_;
    s.rejected_requests = rejected_requests_;
    s.expired_requests = expired_requests_;
    s.failed_requests = failed_requests_;
    s.batches_launched = batches_launched_;
    s.launch_faults = launch_faults_;
    s.launch_retries = launch_retries_;
    s.degraded_launches = degraded_launches_;
    s.recovered_requests = recovered_requests_;
    s.breaker_trips = breaker_trips_;
    s.breaker_active = breaker_remaining_ > 0;
    s.queue_depth_requests = queue_.size();
    s.queue_depth_systems = static_cast<std::uint64_t>(queued_systems_);
    s.batch_size_histogram = batch_histogram_;
    s.p50_latency_seconds = latency_.quantile(0.50);
    s.p99_latency_seconds = latency_.quantile(0.99);
    s.uptime_seconds =
        seconds_between(start_, std::chrono::steady_clock::now());
    s.solves_per_sec =
        s.uptime_seconds > 0.0
            ? static_cast<double>(completed_systems_) / s.uptime_seconds
            : 0.0;
    s.mean_batch_size =
        batches_launched_ > 0
            ? static_cast<double>(batched_systems_sum_) /
                  static_cast<double>(batches_launched_)
            : 0.0;
    return s;
}

detail::pending_entry solve_service::pop_entry_locked(std::size_t index)
{
    detail::pending_entry entry = std::move(
        queue_[static_cast<std::deque<detail::pending_entry>::size_type>(
            index)]);
    queue_.erase(queue_.begin() +
                 static_cast<std::deque<
                     detail::pending_entry>::difference_type>(index));
    queued_systems_ -= static_cast<size_type>(entry.items);
    ++in_flight_entries_;
    cv_space_.notify_all();
    return entry;
}

void solve_service::worker_loop(int worker_id)
{
    xpu::queue& q = worker_queues_[static_cast<std::size_t>(worker_id)];
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_work_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_) {
                return;
            }
            continue;
        }

        std::vector<detail::pending_entry> batch;
        batch.push_back(pop_entry_locked(0));
        const auto now = std::chrono::steady_clock::now();
        if (batch.front().deadline <= now) {
            // Already dead on arrival at the worker: complete it without
            // opening a batching window for it.
            ++expired_requests_;
            --in_flight_entries_;
            detail::pending_entry dead = std::move(batch.front());
            lk.unlock();
            reply_without_solving(dead, request_status::expired);
            lk.lock();
            if (queue_.empty() && in_flight_entries_ == 0) {
                cv_idle_.notify_all();
            }
            continue;
        }

        index_type total = batch.front().items;
        // A tripped breaker suspends coalescing: the leader launches solo,
        // so a fault pattern tied to batch composition stops taking whole
        // batches of unrelated requests down with it.
        if (breaker_remaining_ == 0) {
            const auto window_end =
                batch.front().enqueued + config_.max_wait;
            for (;;) {
                // Gather everything compatible that is already queued.
                for (std::size_t i = 0;
                     i < queue_.size() && total < config_.max_batch;) {
                    if (queue_[i].key == batch.front().key &&
                        entries_compatible(batch.front(), queue_[i])) {
                        batch.push_back(pop_entry_locked(i));
                        total += batch.back().items;
                    } else {
                        ++i;
                    }
                }
                if (total >= config_.max_batch || stopping_) {
                    break;
                }
                if (std::chrono::steady_clock::now() >= window_end) {
                    break;
                }
                // Hold the window open for companions; submit() notifies.
                cv_work_.wait_until(lk, window_end);
            }
        }

        const std::size_t popped = batch.size();
        lk.unlock();
        try {
            execute(q, std::move(batch));
        } catch (...) {
            // execute() fails tickets individually; anything that still
            // escapes would terminate the worker thread (and with it the
            // process). Swallow it — affected tickets resolve through
            // their promises, or surface broken_promise if one was lost.
        }
        lk.lock();
        in_flight_entries_ -= popped;
        if (queue_.empty() && in_flight_entries_ == 0) {
            cv_idle_.notify_all();
        }
    }
}

void solve_service::execute(xpu::queue& q,
                            std::vector<detail::pending_entry> batch)
{
    if (batch.front().body.index() == 0) {
        execute_typed<double>(q, std::move(batch));
    } else {
        execute_typed<float>(q, std::move(batch));
    }
}

template <typename T>
void solve_service::execute_typed(xpu::queue& q,
                                  std::vector<detail::pending_entry> batch)
{
    const auto launch_time = std::chrono::steady_clock::now();
    std::vector<detail::pending_entry> live;
    std::vector<detail::pending_entry> expired;
    for (detail::pending_entry& entry : batch) {
        (entry.deadline <= launch_time ? expired : live)
            .push_back(std::move(entry));
    }
    for (detail::pending_entry& entry : expired) {
        reply_without_solving(entry, request_status::expired);
    }

    std::uint64_t ok_requests = 0;
    std::uint64_t ok_systems = 0;
    std::uint64_t failed = 0;
    std::uint64_t faults = 0;
    std::uint64_t retries = 0;
    std::uint64_t recovered = 0;
    bool degraded = false;
    index_type total = 0;
    std::vector<index_type> launch_sizes;
    std::vector<double> latencies;

    // Last-resort failure sweep: resolves every still-pending ticket with
    // `failed`. Runs when an exception escapes the solve/scatter path, so
    // a worker never dies with unresolved promises (std::terminate) and
    // never double-sets an already-resolved one.
    auto fail_remaining = [&](const std::string& what) {
        for (detail::pending_entry& entry : live) {
            auto& typed = std::get<detail::typed_pending<T>>(entry.body);
            solve_reply<T> reply;
            reply.status = request_status::failed;
            reply.error = what;
            reply.a = std::move(typed.request.a);
            reply.b = std::move(typed.request.b);
            reply.x = std::move(typed.request.x);
            if (try_reply(typed, std::move(reply))) {
                ++failed;
            }
        }
    };

    if (!live.empty()) {
        try {
            std::vector<solver::assembly_part<T>> parts;
            parts.reserve(live.size());
            for (detail::pending_entry& entry : live) {
                auto& typed =
                    std::get<detail::typed_pending<T>>(entry.body);
                parts.push_back({&typed.request.a, &typed.request.b,
                                 &typed.request.x});
                total += entry.items;
            }
            solver::solve_options opts =
                std::get<detail::typed_pending<T>>(live.front().body)
                    .request.opts;
            if (config_.skip_spill_zeroing) {
                opts.zero_spill = false;
            }

            // Solves `p`, retrying device faults with capped exponential
            // backoff. Injected faults are keyed by the worker queue's
            // launch counter, so every retry is a fresh launch. Other
            // exceptions propagate to the failure sweep below.
            std::string last_fault;
            auto attempt_with_retries =
                [&](const std::vector<solver::assembly_part<T>>& p,
                    index_type& attempts)
                -> std::optional<solver::solve_result> {
                auto backoff = config_.retry_backoff;
                for (index_type retry = 0;; ++retry) {
                    ++attempts;
                    try {
                        return solver::solve_coalesced<T>(q, p, opts);
                    } catch (const xpu::device_error& ex) {
                        ++faults;
                        last_fault = ex.what();
                        if (retry >= config_.launch_retries) {
                            return std::nullopt;
                        }
                        ++retries;
                        if (backoff.count() > 0) {
                            std::this_thread::sleep_for(backoff);
                            backoff = std::min(
                                backoff * 2, config_.max_retry_backoff);
                        }
                    }
                }
            };

            index_type fused_attempts = 0;
            std::optional<solver::solve_result> combined =
                attempt_with_retries(parts, fused_attempts);
            if (combined) {
                const auto done = std::chrono::steady_clock::now();
                launch_sizes.push_back(total);
                index_type offset = 0;
                for (detail::pending_entry& entry : live) {
                    auto& typed =
                        std::get<detail::typed_pending<T>>(entry.body);
                    solve_reply<T> reply;
                    reply.status = request_status::ok;
                    reply.a = std::move(typed.request.a);
                    reply.b = std::move(typed.request.b);
                    reply.x = std::move(typed.request.x);
                    reply.log = solver::split_log(combined->log, offset,
                                                  entry.items);
                    reply.fused_systems = total;
                    reply.attempts = fused_attempts;
                    reply.queue_seconds =
                        seconds_between(entry.enqueued, launch_time);
                    reply.solve_seconds = combined->wall_seconds;
                    offset += entry.items;
                    latencies.push_back(
                        seconds_between(entry.enqueued, done));
                    try_reply(typed, std::move(reply));
                    ++ok_requests;
                    ok_systems += static_cast<std::uint64_t>(entry.items);
                    if (fused_attempts > 1) {
                        ++recovered;
                    }
                }
            } else {
                // The fused launch keeps faulting: degrade to per-request
                // solo solves so only the requests that genuinely cannot
                // complete fail — the rest of the batch still resolves ok.
                degraded = true;
                for (detail::pending_entry& entry : live) {
                    auto& typed =
                        std::get<detail::typed_pending<T>>(entry.body);
                    std::vector<solver::assembly_part<T>> solo;
                    solo.push_back({&typed.request.a, &typed.request.b,
                                    &typed.request.x});
                    index_type attempts = fused_attempts;
                    std::optional<solver::solve_result> result =
                        attempt_with_retries(solo, attempts);
                    const auto done = std::chrono::steady_clock::now();
                    solve_reply<T> reply;
                    reply.attempts = attempts;
                    if (result) {
                        reply.status = request_status::ok;
                        reply.log = result->log;
                        reply.fused_systems = entry.items;
                        reply.queue_seconds =
                            seconds_between(entry.enqueued, launch_time);
                        reply.solve_seconds = result->wall_seconds;
                        launch_sizes.push_back(entry.items);
                        latencies.push_back(
                            seconds_between(entry.enqueued, done));
                    } else {
                        reply.status = request_status::failed;
                        reply.error =
                            "device fault persisted through " +
                            std::to_string(attempts) +
                            " solve attempts: " + last_fault;
                    }
                    reply.a = std::move(typed.request.a);
                    reply.b = std::move(typed.request.b);
                    reply.x = std::move(typed.request.x);
                    const bool ok = reply.status == request_status::ok;
                    try_reply(typed, std::move(reply));
                    if (ok) {
                        ++ok_requests;
                        ok_systems +=
                            static_cast<std::uint64_t>(entry.items);
                        ++recovered;
                    } else {
                        ++failed;
                    }
                }
            }
        } catch (const std::exception& ex) {
            fail_remaining(ex.what());
        } catch (...) {
            fail_remaining("unknown error in batch execution");
        }
    }

    std::lock_guard<std::mutex> lk(mu_);
    expired_requests_ += static_cast<std::uint64_t>(expired.size());
    completed_requests_ += ok_requests;
    completed_systems_ += ok_systems;
    failed_requests_ += failed;
    launch_faults_ += faults;
    launch_retries_ += retries;
    recovered_requests_ += recovered;
    if (degraded) {
        ++degraded_launches_;
    }
    for (const index_type size : launch_sizes) {
        ++batches_launched_;
        batched_systems_sum_ += static_cast<std::uint64_t>(size);
        const std::size_t bucket =
            size <= config_.max_batch ? static_cast<std::size_t>(size) : 0;
        ++batch_histogram_[bucket];
    }
    for (const double s : latencies) {
        latency_.record(s);
    }
    if (!live.empty()) {
        // Breaker bookkeeping: one observation per execution, faulted if
        // any attempt faulted. During cooldown the window stays frozen;
        // each solo execution counts the cooldown down toward resuming
        // coalescing.
        if (breaker_remaining_ > 0) {
            --breaker_remaining_;
        } else {
            ++breaker_window_count_;
            if (faults > 0) {
                ++breaker_window_faulted_;
            }
            if (breaker_window_count_ >= config_.breaker_window &&
                config_.breaker_window > 0) {
                const double ratio =
                    static_cast<double>(breaker_window_faulted_) /
                    static_cast<double>(breaker_window_count_);
                if (ratio >= config_.breaker_fault_ratio &&
                    config_.breaker_cooldown > 0) {
                    ++breaker_trips_;
                    breaker_remaining_ = config_.breaker_cooldown;
                }
                breaker_window_count_ = 0;
                breaker_window_faulted_ = 0;
            }
        }
    }
}

template void solve_service::execute_typed<double>(
    xpu::queue&, std::vector<detail::pending_entry>);
template void solve_service::execute_typed<float>(
    xpu::queue&, std::vector<detail::pending_entry>);

}  // namespace batchlin::serve
