// Lock-free bounded MPMC ring buffer — the admission queue of the
// persistent-worker launch mode.
//
// In `launch_mode::persistent` the solver loop stays resident: workers
// consume coalesced batches continuously instead of being woken through a
// mutex + condition variable per request. The admission side must then be
// lock-free, or the per-submit mutex/notify cost the mode exists to
// eliminate simply moves into the producer. This is the classic bounded
// MPMC queue of Dmitry Vyukov: one sequence counter per cell, a single
// CAS per operation on the producer/consumer cursor, and acquire/release
// ordering on the cell sequence so the payload handoff happens-before the
// consumer's read (TSan-clean; scripts/check.sh config 3 runs the serve
// suite under TSan with the persistent mode enabled, and config 9 runs
// the same code under the conc:: model checker).
//
// Semantics:
//  - `try_push` / `try_pop` never block and never spuriously fail under
//    contention — they fail only when the ring is genuinely full / empty
//    at the linearization point.
//  - FIFO per producer; global order is the CAS order on the cursors.
//  - The ring owns pushed elements: destruction drains and destroys any
//    element never popped.
//
// The atomics are `conc::atomic` (std::atomic in the default build) so
// the checked build model-checks this exact code, and the load-bearing
// memory orders are named by the `Orders` traits parameter: production
// code always uses the `ring_orders` defaults, while the conc:: mutant
// suite (tests/test_conc.cpp) instantiates weakened traits to prove the
// checker detects each ordering the algorithm actually relies on.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

#include "conc/shim.hpp"
#include "util/error.hpp"

namespace batchlin::serve {

/// The memory orders the Vyukov ring relies on. Each member is a property
/// the model checker can refute when weakened:
///  - `seq_load` (acquire): the payload write happens-before the consumer
///    that observes the published sequence;
///  - `publish` (release): ditto, producer side;
///  - `retire` (release): the consumer's move-out happens-before the
///    producer that reuses the cell a lap later.
struct ring_orders {
    static constexpr std::memory_order seq_load = std::memory_order_acquire;
    static constexpr std::memory_order publish = std::memory_order_release;
    static constexpr std::memory_order retire = std::memory_order_release;
};

template <typename T, typename Orders = ring_orders>
class mpmc_ring {
public:
    /// Capacity is rounded up to the next power of two (the cell index is
    /// a mask of the cursor); at least 2.
    explicit mpmc_ring(std::size_t min_capacity) : mpmc_ring(min_capacity, 0) {}

    /// Test seam: start both cursors at `start_pos` so wraparound of the
    /// position counter itself (start near SIZE_MAX) is exercisable
    /// without 2^64 pushes. Production code always starts at 0.
    mpmc_ring(std::size_t min_capacity, std::size_t start_pos)
        : capacity_(std::bit_ceil(min_capacity < 2 ? 2 : min_capacity)),
          mask_(capacity_ - 1),
          cells_(new cell[capacity_]),
          enqueue_pos_(start_pos),
          dequeue_pos_(start_pos)
    {
        for (std::size_t i = 0; i < capacity_; ++i) {
            cells_[(start_pos + i) & mask_].seq.store(start_pos + i,
                                                      std::memory_order_relaxed);
        }
    }

    ~mpmc_ring()
    {
        T drained;
        while (try_pop(drained)) {
        }
        delete[] cells_;
    }

    mpmc_ring(const mpmc_ring&) = delete;
    mpmc_ring& operator=(const mpmc_ring&) = delete;

    /// Moves `value` into the ring. On failure (ring full) `value` is left
    /// untouched and the caller keeps ownership.
    bool try_push(T& value)
    {
        cell* c = nullptr;
        std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            c = &cells_[pos & mask_];
            const std::size_t seq = c->seq.load(Orders::seq_load);
            const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                      static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                if (enqueue_pos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (dif < 0) {
                return false;  // full: the cell is a lap behind
            } else {
                pos = enqueue_pos_.load(std::memory_order_relaxed);
            }
        }
        conc::plain_write(static_cast<const void*>(c->storage));
        ::new (static_cast<void*>(c->storage)) T(std::move(value));
        c->seq.store(pos + 1, Orders::publish);
        return true;
    }

    /// Moves the oldest element into `out`. Returns false when empty.
    bool try_pop(T& out)
    {
        cell* c = nullptr;
        std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
        for (;;) {
            c = &cells_[pos & mask_];
            const std::size_t seq = c->seq.load(Orders::seq_load);
            const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                      static_cast<std::intptr_t>(pos + 1);
            if (dif == 0) {
                if (dequeue_pos_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (dif < 0) {
                return false;  // empty: the cell was never published
            } else {
                pos = dequeue_pos_.load(std::memory_order_relaxed);
            }
        }
        conc::plain_write(static_cast<const void*>(c->storage));
        T* stored = std::launder(reinterpret_cast<T*>(c->storage));
        out = std::move(*stored);
        stored->~T();
        c->seq.store(pos + mask_ + 1, Orders::retire);
        return true;
    }

    std::size_t capacity() const { return capacity_; }

    /// Approximate: exact only at a quiescent point (used by idle checks;
    /// never for correctness-critical decisions).
    bool empty() const
    {
        return dequeue_pos_.load(std::memory_order_acquire) ==
               enqueue_pos_.load(std::memory_order_acquire);
    }

private:
    /// One slot: the Vyukov sequence counter plus uninitialized storage —
    /// T need not be default-constructible, and cells own a live T only
    /// between push and pop. Padded to a cache line so neighboring slots
    /// don't false-share under producer/consumer contention.
    struct alignas(64) cell {
        conc::atomic<std::size_t> seq{0};
        alignas(T) unsigned char storage[sizeof(T)];
    };

    const std::size_t capacity_;
    const std::size_t mask_;
    cell* const cells_;
    alignas(64) conc::atomic<std::size_t> enqueue_pos_;
    alignas(64) conc::atomic<std::size_t> dequeue_pos_;
};

}  // namespace batchlin::serve
