// Single-precision sweep: every solver x preconditioner combination the
// double suite exercises must also work in float (within fp32-appropriate
// tolerances), and the dispatch must produce identical launch decisions —
// precision is a pure value-type axis of the multi-level dispatch (§3.3).
#include <gtest/gtest.h>

#include <tuple>

#include "matrix/conversions.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "workload/chemistry.hpp"
#include "workload/replicate.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;

namespace {

constexpr index_type kItems = 16;
constexpr index_type kRows = 40;

}  // namespace

using float_combo = std::tuple<solver::solver_type, precond::type>;

class FloatSweep : public ::testing::TestWithParam<float_combo> {};

TEST_P(FloatSweep, SolvesInSinglePrecision)
{
    const auto [kind, pc] = GetParam();
    const bool spd = kind == solver::solver_type::cg;
    const mat::batch_csr<float> a_csr =
        spd ? work::stencil_3pt<float>(kItems, kRows, 3)
            : work::replicate(
                  work::generate_mechanism<float>(
                      work::mechanism_by_name("drm19"), 3),
                  kItems, 1e-3f, 5);
    const solver::batch_matrix<float> a = a_csr;
    const index_type rows = a_csr.rows();
    const auto b = work::random_rhs<float>(kItems, rows, 4);
    mat::batch_dense<float> x(kItems, rows, 1);

    solver::solve_options opts;
    opts.solver = kind;
    opts.preconditioner = pc;
    opts.criterion = stop::relative(1e-5, 800);
    opts.gmres_restart = 20;
    opts.richardson_relaxation = 0.9;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), kItems);
    const auto rel = solver::relative_residual_norms(a, b, x);
    for (double r : rel) {
        EXPECT_LE(r, 1e-3);
    }
}

TEST_P(FloatSweep, LaunchDecisionsMatchDoublePrecision)
{
    const auto [kind, pc] = GetParam();
    solver::solve_options opts;
    opts.solver = kind;
    opts.preconditioner = pc;
    opts.criterion = stop::relative(1e-4, 100);
    opts.gmres_restart = 10;
    xpu::queue q(xpu::make_sycl_policy());

    const auto af = work::stencil_3pt<float>(4, kRows, 3);
    const auto bf = work::random_rhs<float>(4, kRows, 4);
    mat::batch_dense<float> xf(4, kRows, 1);
    const auto rf =
        solver::solve<float>(q, af, bf, xf, opts);

    const auto ad = work::stencil_3pt<double>(4, kRows, 3);
    const auto bd = work::random_rhs<double>(4, kRows, 4);
    mat::batch_dense<double> xd(4, kRows, 1);
    const auto rd =
        solver::solve<double>(q, ad, bd, xd, opts);

    // The launch heuristics depend on the matrix size only (§3.6), not on
    // the value type; only the SLM byte footprint differs (halved).
    EXPECT_EQ(rf.config.work_group_size, rd.config.work_group_size);
    EXPECT_EQ(rf.config.sub_group_size, rd.config.sub_group_size);
    EXPECT_EQ(rf.config.reduction, rd.config.reduction);
    EXPECT_EQ(rf.plan.entries.size(), rd.plan.entries.size());
    if (rd.plan.slm_bytes > 0) {
        EXPECT_EQ(rf.plan.slm_bytes * 2, rd.plan.slm_bytes);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, FloatSweep,
    ::testing::Values(
        float_combo{solver::solver_type::cg, precond::type::none},
        float_combo{solver::solver_type::cg, precond::type::jacobi},
        float_combo{solver::solver_type::cg, precond::type::ilu},
        float_combo{solver::solver_type::bicgstab, precond::type::jacobi},
        float_combo{solver::solver_type::bicgstab, precond::type::isai},
        float_combo{solver::solver_type::bicgstab,
                    precond::type::block_jacobi},
        float_combo{solver::solver_type::gmres, precond::type::jacobi},
        float_combo{solver::solver_type::gmres, precond::type::ilu},
        float_combo{solver::solver_type::richardson,
                    precond::type::jacobi}),
    [](const ::testing::TestParamInfo<float_combo>& tpi) {
        std::string name =
            solver::to_string(std::get<0>(tpi.param)) + "_" +
            precond::to_string(std::get<1>(tpi.param));
        for (char& c : name) {
            if (c == '-') {
                c = '_';
            }
        }
        return name;
    });
