# Empty dependencies file for test_cluster_edge.
# This may be replaced when dependencies are built.
