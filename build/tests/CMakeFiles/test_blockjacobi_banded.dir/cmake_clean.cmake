file(REMOVE_RECURSE
  "CMakeFiles/test_blockjacobi_banded.dir/test_blockjacobi_banded.cpp.o"
  "CMakeFiles/test_blockjacobi_banded.dir/test_blockjacobi_banded.cpp.o.d"
  "test_blockjacobi_banded"
  "test_blockjacobi_banded.pdb"
  "test_blockjacobi_banded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blockjacobi_banded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
