// google-benchmark microbenchmarks of the simulator's real wall-clock:
// device BLAS phases, per-format SpMV, and full fused solves.
//
// Unlike the figure benches (which model device time from counters), these
// measure the host execution of the kernels themselves — the numbers CI
// can track for regressions of the simulator and solver code paths.
#include <benchmark/benchmark.h>

#include "batchlin/batchlin.hpp"
#include "matrix/conversions.hpp"

using namespace batchlin;

namespace {

void bm_spmv_csr(benchmark::State& state)
{
    const index_type rows = static_cast<index_type>(state.range(0));
    const index_type items = 256;
    const auto a = work::stencil_3pt<double>(items, rows, 42);
    std::vector<double> x(rows, 1.0);
    std::vector<double> y(static_cast<std::size_t>(rows) * items);
    xpu::queue q(xpu::make_sycl_policy());
    for (auto _ : state) {
        q.run_batch(items, 32, 16, [&](xpu::group& g) {
            blas::spmv<double>(
                g, blas::item_view(a, g.id()),
                {x.data(), rows, xpu::mem_space::slm},
                {y.data() + static_cast<std::size_t>(g.id()) * rows, rows,
                 xpu::mem_space::slm});
        });
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(bm_spmv_csr)->Arg(32)->Arg(128)->Arg(512);

void bm_spmv_ell(benchmark::State& state)
{
    const index_type rows = static_cast<index_type>(state.range(0));
    const index_type items = 256;
    const auto a = mat::to_ell(work::stencil_3pt<double>(items, rows, 42));
    std::vector<double> x(rows, 1.0);
    std::vector<double> y(static_cast<std::size_t>(rows) * items);
    xpu::queue q(xpu::make_sycl_policy());
    for (auto _ : state) {
        q.run_batch(items, 32, 16, [&](xpu::group& g) {
            blas::spmv<double>(
                g, blas::item_view(a, g.id()),
                {x.data(), rows, xpu::mem_space::slm},
                {y.data() + static_cast<std::size_t>(g.id()) * rows, rows,
                 xpu::mem_space::slm});
        });
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(bm_spmv_ell)->Arg(32)->Arg(128)->Arg(512);

void bm_dot_group_vs_subgroup(benchmark::State& state)
{
    const index_type rows = 128;
    const auto path = state.range(0) == 0 ? xpu::reduce_path::group
                                          : xpu::reduce_path::sub_group;
    std::vector<double> x(rows, 1.0), y(rows, 2.0);
    std::vector<double> sinks(256, 0.0);
    xpu::queue q(xpu::make_sycl_policy());
    for (auto _ : state) {
        q.run_batch(256, 32, 16, [&](xpu::group& g) {
            sinks[g.id()] += blas::dot<double>(
                g, {x.data(), rows, xpu::mem_space::slm},
                {y.data(), rows, xpu::mem_space::slm}, path);
        });
    }
    benchmark::DoNotOptimize(sinks.data());
}
BENCHMARK(bm_dot_group_vs_subgroup)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("subgroup_path");

void bm_solve(benchmark::State& state, solver::solver_type kind)
{
    const index_type items = 128;
    const index_type rows = 64;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 42);
    const auto b = work::random_rhs<double>(items, rows, 7);
    solver::solve_options opts;
    opts.solver = kind;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-8, 300);
    opts.gmres_restart = 20;
    xpu::queue q(xpu::make_sycl_policy());
    for (auto _ : state) {
        mat::batch_dense<double> x(items, rows, 1);
        const auto result = solver::solve(q, a, b, x, opts);
        benchmark::DoNotOptimize(result.log.num_converged());
    }
    state.SetItemsProcessed(state.iterations() * items);
}
void bm_solve_cg(benchmark::State& s) { bm_solve(s, solver::solver_type::cg); }
void bm_solve_bicgstab(benchmark::State& s)
{
    bm_solve(s, solver::solver_type::bicgstab);
}
void bm_solve_gmres(benchmark::State& s)
{
    bm_solve(s, solver::solver_type::gmres);
}
BENCHMARK(bm_solve_cg);
BENCHMARK(bm_solve_bicgstab);
BENCHMARK(bm_solve_gmres);

void bm_ilu0_generate(benchmark::State& state)
{
    const auto mech = work::mechanism_by_name("gri30");
    const auto a = work::generate_mechanism<double>(mech);
    precond::ilu0<double> pc(a);
    xpu::queue q(xpu::make_sycl_policy());
    const index_type elems = static_cast<index_type>(
        precond::ilu0<double>::workspace_elems(a.rows(), a.nnz()));
    std::vector<double> work_buf(static_cast<std::size_t>(elems) *
                                 a.num_batch_items());
    for (auto _ : state) {
        q.run_batch(a.num_batch_items(), 32, 16, [&](xpu::group& g) {
            auto applier = pc.generate(
                g, blas::item_view(a, g.id()),
                {work_buf.data() + static_cast<std::size_t>(g.id()) * elems,
                 elems, xpu::mem_space::global});
            benchmark::DoNotOptimize(applier.factors.data);
        });
    }
    state.SetItemsProcessed(state.iterations() * a.num_batch_items());
}
BENCHMARK(bm_ilu0_generate);

}  // namespace

BENCHMARK_MAIN();
