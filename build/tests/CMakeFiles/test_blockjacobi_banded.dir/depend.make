# Empty dependencies file for test_blockjacobi_banded.
# This may be replaced when dependencies are built.
