// Graph-recorded coalesced solves: record once, rebind + replay per batch.
//
// `solve_coalesced` pays per batch for (a) the eager kernel submission
// (`emulated_launch_us`), (b) re-planning the workspace and re-binding the
// plan, and (c) re-constructing the preconditioner dispatch. For a serve::
// worker the stream of batches is highly repetitive — same pattern, same
// options, frequently even the same total batch size (the coalescing hash
// already groups requests exactly this way) — so `recorded_solve` hoists
// all three out of the loop:
//
//   record()  — gathers the parts into owned, address-stable operands,
//               resolves plan + launch config once, constructs the
//               preconditioner once, and records the bound solver kernel
//               into a finalized `xpu::graph_exec` whose closure captures
//               raw pointers into the owned storage.
//   rebind()  — swaps in the next batch's data by value copy (matrix
//               values, right-hand sides, initial guesses). No
//               re-recording: the sparsity pattern is shared, and every
//               preconditioner reads the matrix VALUES in-kernel via
//               `generate()` (host construction is pattern-only), so a
//               value swap is bit-exact.
//   replay()  — submits the finalized graph at `emulated_replay_us`
//               (or zero in persistent mode) instead of the full eager
//               launch cost.
//   scatter() — copies the solutions back into the parts' x storage.
//
// Fault integration: replays advance the queue's launch counter through
// the normal launch path, so `fault_plan` events fire on replays exactly
// as on eager launches. After a faulted replay the caller must
// `invalidate()` (or drop) the recording and re-record — never replay a
// poisoned graph (tests/test_serve.cpp covers this).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "solver/assemble.hpp"
#include "solver/options.hpp"
#include "xpu/graph.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

template <typename T>
class recorded_solve {
public:
    /// Records the coalesced solve of `parts` under `opts` into a
    /// finalized graph on `q` (charging `emulated_record_us` once).
    /// The recording owns copies of every operand, so the parts may be
    /// destroyed afterwards. Rejects `trsv` and `record_history`; throws
    /// the same validation/unsupported errors as `solve_coalesced`.
    /// Nothing executes until the first `replay`.
    static std::unique_ptr<recorded_solve> record(
        xpu::queue& q, const std::vector<assembly_part<T>>& parts,
        const solve_options& opts);

    /// True when `parts` solved under `opts` may reuse this recording via
    /// rebind(): equal options, equal total batch size, the leader's
    /// pattern matches the recorded pattern, and the graph is still
    /// valid. (The parts must be mutually coalescible — the caller's
    /// batcher invariant; only the leader is checked here.)
    bool compatible(const std::vector<assembly_part<T>>& parts,
                    const solve_options& opts) const;

    /// Copies the parts' matrix values, right-hand sides, and initial
    /// guesses into the recording's owned operands. The parts must
    /// satisfy `compatible()`.
    void rebind(const std::vector<assembly_part<T>>& parts);

    /// Replays the finalized graph on `q` at `cost`; returns the host
    /// wall-clock seconds of the replay. Faults scheduled on the launch
    /// counter fire here; on a thrown device fault, invalidate() and
    /// re-record before retrying.
    double replay(xpu::queue& q,
                  xpu::submit_cost cost = xpu::submit_cost::replay);

    /// Scatters the combined solution back into the parts' x storage
    /// (same part order as record()/rebind()).
    void scatter(const std::vector<assembly_part<T>>& parts) const;

    /// Convergence records of the most recent replay (combined batch
    /// indexing; slice per part with `split_log`).
    const log::batch_log& log() const { return log_; }

    const slm_plan& plan() const { return plan_; }
    const kernel_config& config() const { return config_; }
    index_type total_items() const { return total_items_; }

    std::uint64_t replays() const { return exec_.replays(); }
    std::uint64_t rebinds() const { return rebinds_; }
    bool valid() const { return exec_.valid(); }
    void invalidate() { exec_.invalidate(); }

private:
    recorded_solve(batch_matrix<T> a, mat::batch_dense<T> b,
                   mat::batch_dense<T> x, const solve_options& opts,
                   slm_plan plan, kernel_config config,
                   index_type total_items);

    // Owned, address-stable operands the recorded closure points into.
    // The object lives behind a unique_ptr and these members never move
    // or reallocate after construction.
    batch_matrix<T> a_;
    mat::batch_dense<T> b_;
    mat::batch_dense<T> x_;
    solve_options opts_;
    /// Storage mode of the *request* matrices at record time. a_ itself
    /// may be compressed beyond this (opts-driven), so compatibility and
    /// rebind compare incoming parts against the request-side mode.
    mat::storage_precision request_storage_ = mat::storage_precision::native;
    slm_plan plan_;
    bound_plan slots_;
    kernel_config config_;
    index_type total_items_ = 0;
    std::vector<T> spill_;
    log::batch_log log_;
    /// Type-erased owned preconditioner (points into a_ for the
    /// pattern-dependent ones; a_ is address-stable, see above).
    std::shared_ptr<void> precond_;
    xpu::graph_exec exec_;
    std::uint64_t rebinds_ = 0;
};

}  // namespace batchlin::solver
