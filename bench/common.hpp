// Shared infrastructure of the benchmark harness.
//
// Every figure bench follows the same recipe: run the real batched solver
// kernels through the execution-model simulator at a *measurement* batch
// size (large enough to be statistically converged — the systems are
// near-identical replicas), then project the instrumented counters to the
// paper's full batch sizes (up to 2^17) with the device performance model.
// Counters scale linearly in the batch size because batch entries are
// independent; this keeps the harness runnable on a laptop while modeling
// the paper's full problem sizes. See DESIGN.md §1 and EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "batchlin/batchlin.hpp"

namespace bench {

using namespace batchlin;

/// One measured solve: the result plus everything needed to project it.
struct measured_solve {
    solver::solve_result result;
    index_type measured_items = 0;
    index_type rows = 0;
    size_type constant_bytes_per_system = 0;
    bool converged_all = false;
    double mean_iterations = 0.0;
};

/// Runs `opts` on `a`/`b` under the device's execution policy and returns
/// the measurement record. The matrix is passed as the variant so format
/// dispatch stays on the public path.
inline measured_solve measure(const perf::device_spec& device,
                              const solver::batch_matrix<double>& a,
                              const mat::batch_dense<double>& b,
                              const solver::solve_options& opts)
{
    measured_solve m;
    m.measured_items =
        std::visit([](const auto& mm) { return mm.num_batch_items(); }, a);
    m.rows = std::visit([](const auto& mm) { return mm.rows(); }, a);
    mat::batch_dense<double> x(m.measured_items, m.rows, 1);
    xpu::queue q(device.make_policy());
    m.result = solver::solve(q, a, b, x, opts);
    m.converged_all =
        m.result.log.num_converged() == m.measured_items;
    m.mean_iterations = m.result.log.mean_iterations();
    const perf::solve_profile p = make_profile<double>(m.result, a, 1);
    m.constant_bytes_per_system = p.constant_footprint_per_system;
    return m;
}

/// Device-model runtime of the measured solve projected to `target` items.
inline perf::time_breakdown project(const perf::device_spec& device,
                                    const measured_solve& m,
                                    index_type target)
{
    perf::solve_profile profile;
    const double factor = static_cast<double>(target) /
                          static_cast<double>(m.measured_items);
    profile.totals = perf::scale_counters(m.result.stats, factor);
    profile.num_systems = target;
    profile.work_group_size = m.result.config.work_group_size;
    profile.thread_utilization =
        solver::thread_utilization(m.result.config, m.rows);
    profile.constant_footprint_per_system = m.constant_bytes_per_system;
    profile.fp64 = true;
    return perf::estimate_time(device, profile);
}

inline double projected_ms(const perf::device_spec& device,
                           const measured_solve& m, index_type target)
{
    return project(device, m, target).total_seconds * 1e3;
}

/// Measurement batch size: enough replicas of the unique set to make the
/// per-system average stable, small enough to run quickly on a laptop.
inline index_type measurement_batch(index_type num_unique)
{
    index_type items = num_unique;
    while (items < 192) {
        items += num_unique;
    }
    return items;
}

/// Prints a separator line sized to the table width.
inline void rule(int width)
{
    for (int i = 0; i < width; ++i) {
        std::putchar('-');
    }
    std::putchar('\n');
}

/// The paper's BiCGSTAB configuration for the PeleLM inputs (§4.1): scalar
/// Jacobi preconditioner, BatchCsr storage.
inline solver::solve_options pele_options()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-8, 200);
    return opts;
}

/// The paper's synthetic-scaling configuration (§4.2).
inline solver::solve_options stencil_options(solver::solver_type s)
{
    solver::solve_options opts;
    opts.solver = s;
    opts.preconditioner = precond::type::none;
    opts.criterion = stop::relative(1e-8, 300);
    return opts;
}

}  // namespace bench
