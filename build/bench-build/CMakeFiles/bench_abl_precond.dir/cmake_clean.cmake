file(REMOVE_RECURSE
  "../bench/bench_abl_precond"
  "../bench/bench_abl_precond.pdb"
  "CMakeFiles/bench_abl_precond.dir/bench_abl_precond.cpp.o"
  "CMakeFiles/bench_abl_precond.dir/bench_abl_precond.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_precond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
