#include "matrix/batch_ell.hpp"

namespace batchlin::mat {

template <typename T>
void batch_ell<T>::validate() const
{
    for (index_type row = 0; row < rows_; ++row) {
        for (index_type k = 0; k < width_; ++k) {
            const index_type col = col_at(row, k);
            BATCHLIN_ENSURE_MSG(col == ell_padding ||
                                    (col >= 0 && col < cols_),
                                "ELL column index out of range");
            if (col == ell_padding) {
                for (index_type b = 0; b < num_batch_; ++b) {
                    BATCHLIN_ENSURE_MSG(val_at(b, row, k) == T{0},
                                        "non-zero value stored in an ELL "
                                        "padding slot");
                }
            }
        }
    }
}

template <typename T>
index_type batch_ell<T>::nnz() const
{
    index_type count = 0;
    for (index_type row = 0; row < rows_; ++row) {
        for (index_type k = 0; k < width_; ++k) {
            if (col_at(row, k) != ell_padding) {
                ++count;
            }
        }
    }
    return count;
}

template class batch_ell<float>;
template class batch_ell<double>;

}  // namespace batchlin::mat
