// Fallback-chain recovery driver (resilience layer).
//
// A batched solve leaves some systems unhealthy for reasons the status
// taxonomy now distinguishes: Krylov breakdowns on hostile spectra,
// non-finite recurrences after workspace corruption, device faults from a
// failed launch, or a plain exhausted iteration budget. `solve_resilient`
// turns those per-system statuses into action: it re-solves exactly the
// unhealthy systems as a gathered sub-batch down a bounded policy chain
// (by default: the primary config, then BiCGSTAB, then GMRES with a larger
// restart, then batched dense LU), retries `xpu::device_error` launches,
// and optionally re-verifies every claimed convergence against the
// explicit residual — which is what catches a *finite* bit flip that the
// non-finite guards cannot see. Healthy batches pay one pass over the
// status array and (when enabled) one explicit-residual check.
#pragma once

#include <vector>

#include "solver/dispatch.hpp"

namespace batchlin::solver {

/// One stage of the fallback chain.
struct fallback_stage {
    solve_options opts{};
    /// Bypass the iterative dispatch and run batched dense LU (the matrix
    /// is converted to CSR as needed). `opts` still supplies the criterion
    /// used for verification.
    bool direct = false;

    friend bool operator==(const fallback_stage&,
                           const fallback_stage&) = default;
};

/// Configuration of `solve_resilient`.
struct resilient_options {
    /// Stage 0 is the primary attempt over the whole batch; each later
    /// stage re-solves only the systems the previous stages left
    /// unhealthy. Must not be empty.
    std::vector<fallback_stage> chain;
    /// Additional attempts after a `xpu::device_error` launch failure,
    /// per stage. Scheduled faults are keyed by the queue's launch
    /// counter, so a retry is a fresh launch and typically succeeds.
    index_type launch_retries = 2;
    /// Re-check every system that claims convergence against its explicit
    /// residual; violators are demoted to `device_fault` and re-solved.
    /// This is the only detector for silent finite corruption (bitflip
    /// poisoning) — the in-kernel guards only catch NaN/Inf.
    bool verify_residuals = true;
    /// Slack factor on the stop target for the explicit-residual check
    /// (the implicit residual recurrence drifts from the true residual).
    double verify_slack = 100.0;
};

/// The default bounded chain for a primary configuration: the primary
/// itself, BiCGSTAB with a doubled iteration budget, GMRES with a larger
/// restart, then batched dense LU as the terminal direct stage.
resilient_options default_chain(const solve_options& primary);

/// What one stage did to one system.
struct attempt_record {
    /// Index into `resilient_options::chain`.
    index_type stage = 0;
    log::solve_status status = log::solve_status::max_iterations;
    index_type iterations = 0;
    double residual_norm = 0.0;
};

/// Outcome of a resilient solve.
struct resilient_result {
    /// Final per-system record: the converging attempt, or the last
    /// attempt for systems the whole chain failed on.
    log::batch_log log;
    /// Per-system attempt history in stage order; entry i lists only the
    /// stages that actually ran system i.
    std::vector<std::vector<attempt_record>> history;
    /// Systems healthy after the primary attempt (verification included).
    index_type first_try = 0;
    /// Systems unhealthy after the primary attempt that a later stage (or
    /// a launch retry) brought to convergence.
    index_type recovered = 0;
    /// Systems still unhealthy after the whole chain.
    index_type failed = 0;
    /// `xpu::device_error` launches retried across all stages.
    index_type launch_retries_used = 0;
    double wall_seconds = 0.0;
};

/// Solves A_i x_i = b_i with fallback-chain recovery. `x` carries the
/// initial guess for the primary attempt; re-solve stages start from a
/// zero guess (the unhealthy iterate may be poisoned). On return `x`
/// holds, per system, the solution of its converging attempt — or the
/// primary attempt's final iterate when no stage converged.
template <typename T>
resilient_result solve_resilient(xpu::queue& q, const batch_matrix<T>& a,
                                 const mat::batch_dense<T>& b,
                                 mat::batch_dense<T>& x,
                                 const resilient_options& opts);

}  // namespace batchlin::solver
