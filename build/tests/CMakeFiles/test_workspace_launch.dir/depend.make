# Empty dependencies file for test_workspace_launch.
# This may be replaced when dependencies are built.
