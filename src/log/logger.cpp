#include "log/logger.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace batchlin::log {

std::string to_string(solve_status status)
{
    switch (status) {
    case solve_status::converged:
        return "converged";
    case solve_status::max_iterations:
        return "max_iterations";
    case solve_status::breakdown_rho:
        return "breakdown_rho";
    case solve_status::breakdown_omega:
        return "breakdown_omega";
    case solve_status::direction_annihilated:
        return "direction_annihilated";
    case solve_status::non_finite:
        return "non_finite";
    case solve_status::device_fault:
        return "device_fault";
    case solve_status::singular:
        return "singular";
    }
    return "?";
}

index_type batch_log::num_converged() const
{
    return count_status(solve_status::converged);
}

index_type batch_log::count_status(solve_status status) const
{
    return static_cast<index_type>(
        std::count(statuses_.begin(), statuses_.end(), status));
}

index_type batch_log::min_iterations() const
{
    return iterations_.empty()
               ? 0
               : *std::min_element(iterations_.begin(), iterations_.end());
}

index_type batch_log::max_iterations() const
{
    return iterations_.empty()
               ? 0
               : *std::max_element(iterations_.begin(), iterations_.end());
}

double batch_log::mean_iterations() const
{
    if (iterations_.empty()) {
        return 0.0;
    }
    const double total =
        std::accumulate(iterations_.begin(), iterations_.end(), 0.0);
    return total / static_cast<double>(iterations_.size());
}

void batch_log::enable_history(index_type max_iterations)
{
    history_stride_ = max_iterations;
    history_.assign(static_cast<std::size_t>(num_systems()) *
                        max_iterations,
                    std::numeric_limits<double>::quiet_NaN());
}

double batch_log::residual_at(index_type batch, index_type iter) const
{
    if (history_stride_ == 0 || iter < 0 || iter >= history_stride_ ||
        batch < 0 || batch >= num_systems()) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    return history_[static_cast<std::size_t>(batch) * history_stride_ +
                    iter];
}

double batch_log::convergence_rate(index_type batch) const
{
    const index_type n =
        history_stride_ > 0 && batch >= 0 && batch < num_systems()
            ? std::min(iterations_[batch], history_stride_)
            : 0;
    if (n < 3) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    // Least-squares slope of log(residual) over the iteration index.
    double sum_i = 0.0, sum_y = 0.0, sum_ii = 0.0, sum_iy = 0.0;
    index_type count = 0;
    for (index_type it = 0; it < n; ++it) {
        const double r = residual_at(batch, it);
        if (!(r > 0.0)) {
            continue;  // skip zeros/NaNs; they would break the log fit
        }
        const double y = std::log(r);
        sum_i += it;
        sum_y += y;
        sum_ii += static_cast<double>(it) * it;
        sum_iy += it * y;
        ++count;
    }
    if (count < 3) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    const double denom = count * sum_ii - sum_i * sum_i;
    if (denom == 0.0) {
        return std::numeric_limits<double>::quiet_NaN();
    }
    const double slope = (count * sum_iy - sum_i * sum_y) / denom;
    return std::exp(slope);
}

double batch_log::max_residual_norm() const
{
    return residual_norms_.empty()
               ? 0.0
               : *std::max_element(residual_norms_.begin(),
                                   residual_norms_.end());
}

}  // namespace batchlin::log
