// Ablation: the SLM placement strategy (§3.5).
//
// Compares the paper's priority-based placement against (a) no SLM usage
// (all vectors in global memory) and (b) forcing everything into SLM
// (maximal footprint: occupancy collapses once a work-group claims more
// SLM than its fair share of the Xe-core). Run over the PeleLM inputs.
#include <cstdio>

#include "common.hpp"

using namespace bench;

namespace {

measured_solve measure_with_mode(const perf::device_spec& device,
                                 const solver::batch_matrix<double>& a,
                                 const mat::batch_dense<double>& b,
                                 solver::slm_mode mode,
                                 solver::solve_options opts)
{
    opts.slm = mode;
    perf::device_spec dev = device;
    if (mode == solver::slm_mode::all) {
        // Give the simulator an arena big enough to hold everything; the
        // cost model still charges occupancy for the oversized footprint.
        dev.slm_per_core_bytes = 8l * 1024 * 1024;
    }
    xpu::queue q(dev.make_policy());
    measured_solve m;
    m.measured_items =
        std::visit([](const auto& mm) { return mm.num_batch_items(); }, a);
    m.rows = std::visit([](const auto& mm) { return mm.rows(); }, a);
    mat::batch_dense<double> x(m.measured_items, m.rows, 1);
    m.result = solver::solve(q, a, b, x, opts);
    m.mean_iterations = m.result.log.mean_iterations();
    const perf::solve_profile p = make_profile<double>(m.result, a, 1);
    m.constant_bytes_per_system = p.constant_footprint_per_system;
    return m;
}

}  // namespace

int main()
{
    const index_type target = 1 << 17;
    const perf::device_spec device = perf::pvc_1s();

    std::printf("Ablation: SLM placement strategy (paper §3.5), "
                "BatchBicgstab+Jacobi, 2^17 matrices, %s\n\n",
                device.name.c_str());
    std::printf("%-16s | %13s %13s %13s | %12s\n", "input",
                "priority[ms]", "no-SLM[ms]", "all-SLM[ms]",
                "slm B/group");
    rule(80);
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const index_type items = measurement_batch(mech.num_unique);
        const solver::batch_matrix<double> a =
            work::generate_mechanism_batch<double>(mech, items);
        const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);

        const auto opts = pele_options();
        const measured_solve pri = measure_with_mode(
            device, a, b, solver::slm_mode::priority, opts);
        const measured_solve none =
            measure_with_mode(device, a, b, solver::slm_mode::none, opts);
        const measured_solve all =
            measure_with_mode(device, a, b, solver::slm_mode::all, opts);

        std::printf("%-16s | %13.3f %13.3f %13.3f | %12lld\n",
                    mech.name.c_str(), projected_ms(device, pri, target),
                    projected_ms(device, none, target),
                    projected_ms(device, all, target),
                    static_cast<long long>(
                        pri.result.stats.slm_footprint_bytes));
    }
    rule(80);
    // GMRES with a large Krylov basis: the case where the three modes
    // genuinely differ. Priority keeps the hot per-step scratch local and
    // spills the basis; "all" claims basis + scratch and occupancy
    // collapses to one work-group per core (§3.5/§4.4 trade-off).
    for (const index_type rows : {256, 512}) {
        const index_type items = measurement_batch(64);
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(items, rows, 42);
        const auto b = work::random_rhs<double>(items, rows, 7);
        solver::solve_options opts;
        opts.solver = solver::solver_type::gmres;
        opts.preconditioner = precond::type::jacobi;
        opts.criterion = stop::relative(1e-8, 200);
        opts.gmres_restart = 30;

        const measured_solve pri = measure_with_mode(
            device, a, b, solver::slm_mode::priority, opts);
        const measured_solve none =
            measure_with_mode(device, a, b, solver::slm_mode::none, opts);
        const measured_solve all =
            measure_with_mode(device, a, b, solver::slm_mode::all, opts);
        std::printf("gmres30-%-8d | %13.3f %13.3f %13.3f | %12lld\n", rows,
                    projected_ms(device, pri, target),
                    projected_ms(device, none, target),
                    projected_ms(device, all, target),
                    static_cast<long long>(
                        pri.result.stats.slm_footprint_bytes));
    }
    std::printf("\n(priority placement keeps the hot vectors local without "
                "starving occupancy; 'no-SLM' pushes all intermediate "
                "traffic to HBM.\n For the large GMRES basis, 'all-SLM' "
                "collapses occupancy to one work-group per core yet still "
                "wins —\n the §4.4 trade: occupancy is worth sacrificing "
                "for SLM locality in these bandwidth-bound solvers.)\n");
    return 0;
}
