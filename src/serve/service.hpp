// serve::solve_service — a dynamic-batching solve service.
//
// The paper's throughput result (§3.4) comes from fusing many small
// systems into one kernel launch. A caller with a *stream* of independent
// requests cannot exploit that through single-shot `solve` calls, so this
// subsystem does what an inference server's dynamic batcher does for
// model requests: `submit` enqueues a request and returns a ticket;
// worker threads coalesce compatible requests (same precision, format,
// sparsity pattern, and solve options) into one fused launch under a
// time/size window (`max_batch`, `max_wait`); results and per-system
// convergence records are scattered back per request.
//
// Threading model: one mutex guards the admission queue and statistics;
// each worker thread owns a private `xpu::queue`, so the pooled launch
// resources (arenas, counter blocks, spill scratch) are never shared —
// the contract `xpu::queue` documents and debug-asserts. Admission is
// bounded: when `max_queue_systems` is reached, requests are rejected or
// the submitter blocks, per `overflow_policy`. Per-request deadlines are
// honored before launch: an expired request completes with
// `request_status::expired` and is never solved. `stop` drains gracefully
// (queued work is still solved; batching windows are cut short).
//
// Head-of-line note: the batcher is FIFO per worker — a leader holding
// its window can delay queued requests of a different coalescing key by
// up to `max_wait`; add workers to bound that.
//
// Sharding (`service_config::shards` / `shard_devices`): the service runs
// one `shard::lane` per registry device — its own run-queue (or ring in
// persistent mode), worker pool, graph caches, circuit breaker and fault
// accounting. `submit` routes each request through `shard::router`
// (coalesce-key affinity, cost-model spill, see shard/router.hpp), and
// idle workers steal from run-queues holding more than a full batch. The
// registry derives every lane's policy from the same base policy
// (kernel-behavior fields untouched), so replies stay bit-identical no
// matter how many shards serve them or where placement and stealing move
// a batch. A single-shard service behaves exactly like the unsharded
// service did.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "conc/shim.hpp"
#include "serve/doorbell.hpp"
#include "serve/futex.hpp"
#include "serve/reply_slot.hpp"
#include "serve/ring.hpp"
#include "serve/stats.hpp"
#include "shard/lane.hpp"
#include "shard/registry.hpp"
#include "shard/router.hpp"
#include "solver/assemble.hpp"
#include "solver/options.hpp"
#include "solver/record.hpp"
#include "util/error.hpp"
#include "xpu/policy.hpp"
#include "xpu/queue.hpp"

namespace batchlin::serve {

/// Terminal state of one request.
enum class request_status {
    /// Solved; `x`, `log`, and the timing fields are valid.
    ok,
    /// Refused by admission control; never queued.
    rejected,
    /// Deadline passed before the batch launched; never solved.
    expired,
    /// The batch solve threw; `error` carries the message.
    failed,
};

std::string to_string(request_status status);

/// One asynchronous solve request: A x = b per batch item, with `x`
/// carrying the initial guess (and, in the reply, the solution). A
/// request may itself hold a batch of systems; they stay contiguous in
/// the fused launch.
template <typename T>
struct solve_request {
    solver::batch_matrix<T> a;
    mat::batch_dense<T> b;
    mat::batch_dense<T> x;
    solver::solve_options opts{};
    /// Relative deadline measured from submit; zero means none. A
    /// negative deadline (a caller computing it from a stale clock) is
    /// already expired and resolves `request_status::expired` at
    /// admission, before routing.
    std::chrono::microseconds deadline{0};
    /// Admission priority under overload shedding: requests with
    /// priority <= 0 are shed once the queue sits above
    /// `service_config::shed_watermark`; positive priorities are only
    /// refused by the hard queue bound. Ignored when shedding is off.
    int priority = 0;
    /// Optional scratch the reply's `log` is built in. Leave empty and
    /// the service allocates; move the previous reply's `log` back in
    /// (like `a`/`b`/`x`) and a high-rate caller recycles the log
    /// storage too instead of paying three cross-thread allocations per
    /// request.
    log::batch_log log;
};

/// What the ticket resolves to. For non-ok statuses `x` returns the
/// initial guess unchanged and `log` is empty.
template <typename T>
struct solve_reply {
    request_status status = request_status::ok;
    /// Failure message when status == failed.
    std::string error;
    /// The request's matrix and right-hand side, handed back so a
    /// high-rate caller can recycle the storage for its next request
    /// instead of rebuilding it (`a` is read-only during the solve).
    solver::batch_matrix<T> a;
    mat::batch_dense<T> b;
    mat::batch_dense<T> x;
    log::batch_log log;
    /// Systems in the fused launch this request rode in.
    index_type fused_systems = 0;
    /// Solve attempts this request's data went through: 1 is the happy
    /// path; more means launch faults were retried (and possibly the
    /// batch degraded to solo solves) before this reply resolved.
    index_type attempts = 1;
    /// Submit-to-launch waiting time.
    double queue_seconds = 0.0;
    /// Wall time of the fused solve.
    double solve_seconds = 0.0;
};

/// What to do with a submit that finds the bounded queue full.
enum class overflow_policy {
    /// Complete the ticket immediately with `request_status::rejected`.
    reject,
    /// Block the submitting thread until space frees up (or the service
    /// stops accepting, which rejects).
    block,
};

struct service_config {
    /// Worker threads *per shard*; each owns a private `xpu::queue`.
    int workers = 2;
    /// Logical device shards. The default (1) may be overridden by the
    /// BATCHLIN_SHARDS / BATCHLIN_SHARD_DEVICES environment variables —
    /// the operator escape hatch scripts/check.sh config 8 uses to re-run
    /// whole suites sharded; a config that explicitly selects sharding
    /// keeps its setting.
    index_type shards = 1;
    /// Explicit per-shard device names ("pvc1s", "pvc2s", "a100",
    /// "h100"; see shard::parse_device_list). Empty: `shards` uniform
    /// PVC-1S-keyed shards with no launch-cost emulation. Non-empty: one
    /// shard per name, each charging its device's modeled launch costs
    /// as emulated wall time; overrides `shards`.
    std::vector<std::string> shard_devices;
    /// Cross-shard work stealing: an idle shard's worker pulls from the
    /// deepest run-queue holding more than `steal_threshold` systems.
    bool work_stealing = true;
    /// Victim depth (systems) below which nothing is stolen; 0 = auto
    /// (`max_batch`: only overflow beyond what the victim's own next
    /// launch can absorb is worth moving, and sub-batch queues keep
    /// fusing locally).
    index_type steal_threshold = 0;
    /// Per-shard injected fault schedules (index = shard id; shards past
    /// the end get the base policy's plan). Lets tests fault one shard
    /// while its neighbors stay healthy.
    std::vector<xpu::fault_plan> shard_faults;
    /// Most systems one fused launch may carry.
    index_type max_batch = 64;
    /// How long a batch leader waits for companions before launching.
    std::chrono::microseconds max_wait{200};
    /// Adaptive window flush: when the admission queue is empty — every
    /// other client is waiting on an in-flight reply, so no companion can
    /// arrive until something completes — the leader waits only this long
    /// for stragglers before launching instead of holding the full
    /// `max_wait` window open. This removes the low-load pathology where
    /// a lone request burns the whole window for companions that cannot
    /// exist. Zero disables (always wait out `max_wait`).
    std::chrono::microseconds idle_flush{25};
    /// Cached graph recordings per worker and precision in the
    /// `graph_replay` / `persistent` launch modes (LRU-evicted). Each
    /// distinct (sparsity pattern, options, fused size) shape occupies
    /// one slot.
    std::size_t graph_cache_entries = 8;
    /// Admission bound, counted in systems (a batched request counts its
    /// batch size).
    size_type max_queue_systems = 4096;
    overflow_policy on_full = overflow_policy::reject;
    /// Skip zero-filling the spill scratch on the hot path (the solver
    /// kernels overwrite every spilled element before reading it; the
    /// equivalence tests pin down that replies are bit-identical either
    /// way).
    bool skip_spill_zeroing = true;
    /// Sliding-window size of the latency percentile estimator.
    std::size_t latency_window = 8192;
    /// Additional solve attempts after a `xpu::device_error` launch
    /// failure before the batch degrades to per-request solo solves.
    /// Injected faults are keyed by the worker queue's launch counter, so
    /// a retry is a fresh launch and typically clears a transient fault.
    index_type launch_retries = 2;
    /// Backoff before the first retry; doubles per retry up to
    /// `max_retry_backoff` (capped exponential backoff).
    std::chrono::microseconds retry_backoff{50};
    std::chrono::microseconds max_retry_backoff{1000};
    /// Circuit breaker: when at least `breaker_window` fused launches
    /// have completed and the faulted fraction among the last window
    /// reaches this ratio, coalescing is suspended — workers solve
    /// requests solo for `breaker_cooldown` launches, so one poisoned
    /// tenant stops taking whole batches down with it.
    double breaker_fault_ratio = 0.5;
    std::uint32_t breaker_window = 16;
    std::uint32_t breaker_cooldown = 32;

    /// --- Failover (PR 10) ---
    /// Master switch for device-loss failover: lane eviction when retries
    /// exhaust on a device error, queue/ring drain + migration to
    /// surviving shards, the hang watchdog, and half-open probing. Off by
    /// default: eviction changes *where* a persistently-faulting batch
    /// completes, and the PR 5 resilience suites pin down the
    /// degrade-in-place counts. A config still at the default picks up
    /// the BATCHLIN_FAILOVER environment override. Only meaningful with
    /// at least two shards (a lone lane has nowhere to fail over to).
    bool failover = false;
    /// Consecutive fused executions that exhausted their launch retries
    /// with a device error before a worker declares the shard lost.
    std::uint32_t evict_after_exhausted = 1;
    /// Watchdog scan period; zero disables the watchdog thread (worker-
    /// side eviction still runs).
    std::chrono::microseconds watchdog_interval{500};
    /// In-flight launch age past which the watchdog declares the lane
    /// wedged and evicts it (the hung batch itself is handled by its
    /// worker when the launch finally returns or throws).
    std::chrono::microseconds hang_timeout{20'000};
    /// Cooldown between an eviction (or a failed probe) and the next
    /// half-open probe on that lane.
    std::chrono::microseconds probe_interval{1'000};
    /// How many times one entry may be migrated off dying lanes before
    /// it fails with a structured error; 0 = one round over the fleet
    /// (the shard count).
    index_type max_migrations = 0;

    /// --- Overload degradation (PR 10) ---
    /// Queue-depth fraction of `max_queue_systems` at which admission
    /// sheds priority <= 0 requests (status `rejected`, structured
    /// "shed" error, `shed_requests` counter); >= 1 disables shedding.
    double shed_watermark = 1.0;
    /// Brownout ladder driven by queue-depth watermarks (fractions of
    /// `max_queue_systems`): level 1 (>= brownout_low) shrinks the
    /// coalescing window to a quarter of `max_wait`, level 2
    /// (>= brownout_mid) additionally caps refinement at one sweep, and
    /// level 3 (>= brownout_high) additionally caps the GMRES restart at
    /// 10. Levels 2 and 3 trade accuracy/iteration count for time — they
    /// change numerics by design, so the ladder is opt-in.
    bool brownout = false;
    double brownout_low = 0.50;
    double brownout_mid = 0.75;
    double brownout_high = 0.90;
};

namespace detail {

/// Word-at-a-time FNV-1a variant: one xor-multiply per 64-bit value plus
/// a final avalanche, not one per byte — `submit` hashes the full sparsity
/// pattern on every request, so this sits on the serving hot path.
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    h *= 1099511628211ull;
    h ^= h >> 32;
    return h;
}

inline std::uint64_t hash_span(std::uint64_t h,
                               const std::vector<index_type>& values)
{
    for (const index_type v : values) {
        h ^= static_cast<std::uint64_t>(v);
        h *= 1099511628211ull;
    }
    h ^= h >> 32;
    return h;
}

/// Grouping key of the dynamic batcher: precision, format, dimensions,
/// sparsity pattern, and the full option set. Two requests may share a
/// fused launch only if their keys match; the batcher additionally
/// verifies exact pattern/options equality before coalescing, so a hash
/// collision degrades batching, never correctness.
template <typename T>
std::uint64_t coalesce_key(const solver::batch_matrix<T>& a,
                           const solver::solve_options& opts)
{
    std::uint64_t h = 14695981039346656037ull;
    h = hash_mix(h, sizeof(T));
    h = hash_mix(h, static_cast<std::uint64_t>(a.index()));
    std::visit(
        [&](const auto& m) {
            using MatBatch = std::decay_t<decltype(m)>;
            h = hash_mix(h, static_cast<std::uint64_t>(m.rows()));
            h = hash_mix(h, static_cast<std::uint64_t>(m.cols()));
            // Matrices of different storage modes must never share a
            // fused launch: the gather copies one value array kind.
            h = hash_mix(h, static_cast<std::uint64_t>(m.storage_mode()));
            if constexpr (std::is_same_v<MatBatch, mat::batch_csr<T>>) {
                h = hash_span(h, m.row_ptrs());
                h = hash_span(h, m.col_idxs());
            } else if constexpr (std::is_same_v<MatBatch,
                                                mat::batch_ell<T>>) {
                h = hash_mix(h, static_cast<std::uint64_t>(m.ell_width()));
                h = hash_span(h, m.col_idxs());
            }
        },
        a);
    h = hash_mix(h, static_cast<std::uint64_t>(opts.solver));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.preconditioner));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.criterion.type));
    h = hash_mix(h, std::bit_cast<std::uint64_t>(opts.criterion.tolerance));
    h = hash_mix(h,
                 static_cast<std::uint64_t>(opts.criterion.max_iterations));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.gmres_restart));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.block_jacobi_size));
    h = hash_mix(h,
                 std::bit_cast<std::uint64_t>(opts.richardson_relaxation));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.slm));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.sub_group_size));
    h = hash_mix(h, opts.reduction
                        ? static_cast<std::uint64_t>(*opts.reduction) + 1
                        : 0);
    h = hash_mix(h, static_cast<std::uint64_t>(opts.trsv_triangle));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.zero_spill));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.storage));
    h = hash_mix(h, static_cast<std::uint64_t>(opts.refine_sweeps));
    return h;
}

/// Stored nonzeros per batch item — the byte-volume input of the shard
/// router's cost model.
template <typename T>
index_type nnz_per_item(const solver::batch_matrix<T>& a)
{
    return std::visit(
        [](const auto& m) -> index_type {
            using MatBatch = std::decay_t<decltype(m)>;
            if constexpr (std::is_same_v<MatBatch, mat::batch_csr<T>>) {
                return static_cast<index_type>(m.col_idxs().size());
            } else if constexpr (std::is_same_v<MatBatch,
                                                mat::batch_ell<T>>) {
                return m.ell_width() * m.rows();
            } else {
                return m.rows() * m.cols();
            }
        },
        a);
}

/// A queued request of one precision, with the slot its ticket waits
/// on. The slot itself (waiter-bit states, resolve/wait protocol) lives
/// in serve/reply_slot.hpp, generified over the payload so the conc::
/// model checker exercises the same code.
template <typename T>
struct typed_pending {
    solve_request<T> request;
    std::shared_ptr<reply_slot<solve_reply<T>>> slot;
};

struct pending_entry {
    std::uint64_t key = 0;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    index_type items = 0;
    std::variant<typed_pending<double>, typed_pending<float>> body;
    /// Shard the entry is currently assigned to (updated when stolen).
    index_type shard = 0;
    /// Router cost estimate; retired from the shard's backlog when the
    /// entry completes, expires, or is rejected at stop.
    std::int64_t cost_ns = 0;
    /// How many times failover moved this entry off a dead lane; capped
    /// by `service_config::max_migrations` so an entry cannot ping-pong
    /// across a fleet that keeps dying under it.
    index_type migrations = 0;
};

/// Entries travel the admission queue / ring / batch pipeline by pointer:
/// a `pending_entry` is a few hundred bytes of matrices-by-value, and the
/// multi-stage handoff (submit -> ring/queue -> chunk -> group -> live)
/// would otherwise move that struct four or five times per request. One
/// heap allocation at submit makes every later hop an 8-byte pointer
/// move, and keeps the MPMC ring's cell array small enough to stay
/// cache-resident.
using pending_ptr = std::unique_ptr<pending_entry>;

/// Per-worker cache of graph recordings (`graph_replay` / `persistent`
/// launch modes). Keyed by the coalescing hash plus the fused batch size;
/// the exact `recorded_solve::compatible` check backs the hash, so a
/// collision re-records instead of corrupting. Owned by exactly one
/// worker thread — no locking.
struct graph_cache {
    template <typename T>
    struct slot {
        std::uint64_t key = 0;
        index_type items = 0;
        std::uint64_t last_use = 0;
        std::unique_ptr<solver::recorded_solve<T>> rec;
    };

    template <typename T>
    std::vector<slot<T>>& slots()
    {
        if constexpr (std::is_same_v<T, double>) {
            return d;
        } else {
            return f;
        }
    }

    std::vector<slot<double>> d;
    std::vector<slot<float>> f;
    /// LRU clock.
    std::uint64_t tick = 0;
};

}  // namespace detail

/// Future-like handle for one submitted request. `get()` blocks until
/// the service resolves the request and moves the reply out; a ticket
/// is single-use (`valid()` turns false after `get()`).
template <typename T>
class solve_ticket {
public:
    solve_ticket() = default;

    bool valid() const { return slot_ != nullptr; }

    solve_reply<T> get()
    {
        BATCHLIN_ENSURE_MSG(slot_ != nullptr,
                            "get() on an empty or consumed ticket");
        // The spin/register/park protocol lives with the slot
        // (serve/reply_slot.hpp) — the same code the conc:: model
        // checker drives in tests/test_conc.cpp.
        solve_reply<T> out = slot_->wait_and_take();
        slot_.reset();
        return out;
    }

private:
    friend class solve_service;

    explicit solve_ticket(
        std::shared_ptr<detail::reply_slot<solve_reply<T>>> slot)
        : slot_(std::move(slot))
    {
    }

    std::shared_ptr<detail::reply_slot<solve_reply<T>>> slot_;
};

/// The dynamic-batching solve service. See the file comment for the
/// threading model and batching semantics.
class solve_service {
public:
    template <typename T>
    using ticket = solve_ticket<T>;

    /// Spins up the worker pool; each worker owns an `xpu::queue` built
    /// from `policy`.
    explicit solve_service(xpu::exec_policy policy,
                           service_config config = {});

    /// Stops the service (graceful drain) if still running.
    ~solve_service();

    solve_service(const solve_service&) = delete;
    solve_service& operator=(const solve_service&) = delete;

    /// Enqueues a request and returns the ticket its reply resolves
    /// through. Throws on malformed requests (dimension mismatches,
    /// record_history); admission-control refusals do NOT throw — they
    /// resolve the ticket with `request_status::rejected`.
    template <typename T>
    ticket<T> submit(solve_request<T> request)
    {
        BATCHLIN_ENSURE_MSG(!request.opts.record_history,
                            "serve:: does not scatter per-iteration "
                            "history; use a direct solve for that");
        request.opts.criterion.validate();
        const index_type items = std::visit(
            [](const auto& m) { return m.num_batch_items(); }, request.a);
        const index_type rows =
            std::visit([](const auto& m) { return m.rows(); }, request.a);
        BATCHLIN_ENSURE_MSG(items > 0, "empty solve request");
        BATCHLIN_ENSURE_DIMS(request.b.num_batch_items() == items &&
                                 request.x.num_batch_items() == items,
                             "batch sizes of A, b, x must match");
        BATCHLIN_ENSURE_DIMS(request.b.rows() == rows &&
                                 request.x.rows() == rows &&
                                 request.b.cols() == 1 &&
                                 request.x.cols() == 1,
                             "vector shapes must match the matrix order");

        // Storage normalization point: fp32-storage requests are
        // compressed here, once, on the submitter's thread — the workers
        // then gather homogeneous fp32 value arrays with no per-batch
        // conversion. Refined requests (refine_sweeps > 0) stay NATIVE:
        // solve_refined computes its FP64 residuals against the native
        // bits and derives the compressed operator itself.
        if (mat::effective_storage<T>(request.opts.storage) ==
                mat::storage_precision::fp32 &&
            request.opts.refine_sweeps == 0 &&
            request.opts.solver != solver::solver_type::trsv) {
            std::visit(
                [](auto& m) {
                    if (m.storage_mode() == mat::storage_precision::native) {
                        m.set_storage_precision(
                            mat::storage_precision::fp32);
                    }
                },
                request.a);
        }

        const auto now = std::chrono::steady_clock::now();
        const bool expired_at_admission = request.deadline.count() < 0;
        const auto deadline =
            request.deadline.count() > 0
                ? now + request.deadline
                : std::chrono::steady_clock::time_point::max();
        const int priority = request.priority;
        const std::uint64_t key =
            detail::coalesce_key<T>(request.a, request.opts);
        const index_type nnz = detail::nnz_per_item<T>(request.a);

        detail::typed_pending<T> typed{
            std::move(request),
            std::make_shared<detail::reply_slot<solve_reply<T>>>()};
        ticket<T> fut{typed.slot};

        ++submitted_requests_;
        submitted_systems_ += static_cast<std::uint64_t>(items);

        // Deadline checkpoint 1 of 5 (admission): a deadline already in
        // the past expires here, before routing — it must never be
        // queued, and never silently read as "no deadline".
        if (expired_at_admission) {
            expired_requests_.fetch_add(1, std::memory_order_relaxed);
            reply_without_solving(typed, request_status::expired);
            return fut;
        }

        // Placement: coalesce-key affinity with cost-model spill (see
        // shard/router.hpp). Reads the lane backlogs lock-free.
        const shard::decision where = route_request(key, items, rows, nnz);

        if (launch_mode_ == xpu::launch_mode::persistent) {
            // Lock-free admission: the resident workers poll the rings,
            // so no mutex is taken and nobody needs a wakeup.
            submit_to_ring(std::move(typed), key, now, deadline, items,
                           priority, where);
            return fut;
        }

        std::unique_lock<std::mutex> lk(mu_);
        if (!accepting_) {
            ++rejected_requests_;
            lk.unlock();
            reply_without_solving(typed, request_status::rejected);
            return fut;
        }
        // Watermark shedding: above the soft watermark only positive-
        // priority requests are admitted; everything else is refused
        // *before* it can deepen the backlog the brownout ladder and the
        // hard bound are already fighting.
        if (priority <= 0 &&
            queued_systems_ >= shed_threshold_systems() &&
            queued_systems_ + static_cast<size_type>(items) >
                shed_threshold_systems()) {
            ++rejected_requests_;
            shed_requests_.fetch_add(1, std::memory_order_relaxed);
            lk.unlock();
            reply_without_solving(typed, request_status::rejected,
                                  kShedError);
            return fut;
        }
        if (queued_systems_ + static_cast<size_type>(items) >
            config_.max_queue_systems) {
            if (config_.on_full == overflow_policy::reject) {
                ++rejected_requests_;
                lk.unlock();
                reply_without_solving(typed, request_status::rejected);
                return fut;
            }
            const auto space_ok = [&] {
                return !accepting_ ||
                       queued_systems_ + static_cast<size_type>(items) <=
                           config_.max_queue_systems;
            };
            bool have_space = true;
            if (deadline ==
                std::chrono::steady_clock::time_point::max()) {
                cv_space_.wait(lk, space_ok);
            } else {
                // Deadline checkpoint 1b (blocked admission): a request
                // whose deadline passes while its submitter is parked on
                // backpressure expires instead of occupying the queue it
                // can no longer use.
                have_space = cv_space_.wait_until(lk, deadline, space_ok);
            }
            if (!have_space) {
                expired_requests_.fetch_add(1, std::memory_order_relaxed);
                lk.unlock();
                reply_without_solving(typed, request_status::expired);
                return fut;
            }
            if (!accepting_) {
                ++rejected_requests_;
                lk.unlock();
                reply_without_solving(typed, request_status::rejected);
                return fut;
            }
        }
        auto entry = std::make_unique<detail::pending_entry>(
            key, now, deadline, items, std::move(typed));
        entry->shard = where.shard;
        entry->cost_ns = where.cost_ns;
        shard_lane& lane = lanes_[static_cast<std::size_t>(where.shard)];
        lane.queue.push_back(std::move(entry));
        lane.queued_systems += static_cast<size_type>(items);
        queued_systems_ += static_cast<size_type>(items);
        lane.backlog_ns.fetch_add(where.cost_ns, std::memory_order_relaxed);
        lane.routed_requests.fetch_add(1, std::memory_order_relaxed);
        lane.routed_systems.fetch_add(static_cast<std::uint64_t>(items),
                                      std::memory_order_relaxed);
        // notify_all: idle workers must wake, and workers holding a
        // batching window open must re-scan for the new arrival.
        cv_work_.notify_all();
        return fut;
    }

    /// Blocks until the queue is empty and no batch is in flight. The
    /// service keeps accepting; with concurrent submitters this waits for
    /// a momentary quiescent point, not a permanent one.
    void drain();

    /// Stops accepting, solves everything already queued (windows are cut
    /// short), and joins the workers. Idempotent.
    void stop();

    bool accepting() const;

    /// Point-in-time statistics snapshot.
    service_stats stats() const;

    const service_config& config() const { return config_; }

    /// Launch mode the workers actually run in — the policy's mode after
    /// the BATCHLIN_LAUNCH_MODE environment override is applied.
    xpu::launch_mode launch_mode() const { return launch_mode_; }

    /// The device registry the service shards over (after the
    /// BATCHLIN_SHARDS / BATCHLIN_SHARD_DEVICES overrides).
    const shard::registry& devices() const { return registry_; }

private:
    /// Structured error message of a watermark-shed reply — asserted on
    /// by the chaos harness, so callers can tell a shed from a
    /// queue-full rejection.
    static constexpr const char* kShedError =
        "shed: admission queue past the overload watermark";

    /// Completes a request without solving it (rejected / expired /
    /// shed) and wakes the waiter immediately — these paths resolve one
    /// request, not a batch, so there is nothing to defer for.
    template <typename T>
    static void reply_without_solving(detail::typed_pending<T>& typed,
                                      request_status status,
                                      const char* error = nullptr)
    {
        solve_reply<T> reply;
        reply.status = status;
        if (error != nullptr) {
            reply.error = error;
        }
        reply.a = std::move(typed.request.a);
        reply.b = std::move(typed.request.b);
        reply.x = std::move(typed.request.x);
        typed.slot->store_reply(std::move(reply));
        if (auto* word = typed.slot->resolve()) {
            detail::futex_wake_all(*word);
        }
    }

    static void reply_without_solving(detail::pending_entry& entry,
                                      request_status status,
                                      const char* error = nullptr)
    {
        std::visit(
            [&](auto& typed) {
                reply_without_solving(typed, status, error);
            },
            entry.body);
    }

    /// Systems depth at which the shed watermark engages; past
    /// max_queue_systems when shedding is disabled.
    size_type shed_threshold_systems() const
    {
        if (config_.shed_watermark >= 1.0) {
            return config_.max_queue_systems + 1;
        }
        const double frac = config_.shed_watermark < 0.0
                                ? 0.0
                                : config_.shed_watermark;
        return static_cast<size_type>(
            frac * static_cast<double>(config_.max_queue_systems));
    }

    /// Resolves a slot exactly once: a second set (e.g. the failure
    /// sweep running after some replies already resolved) is a no-op.
    /// Returns whether this call resolved the ticket. If a waiter had
    /// registered on the slot, its futex word is either woken here
    /// (`deferred_wakes == nullptr`) or appended for the caller to wake
    /// after the whole batch is resolved (see execute_typed) — so in
    /// persistent mode a client waiting on the first of several fused
    /// requests wakes once with all of them ready. Resolution is
    /// single-threaded per entry (the owning worker, or stop() after the
    /// join), so the unsynchronized `state` pre-check cannot race
    /// another resolver.
    template <typename T>
    static bool try_reply(
        detail::typed_pending<T>& typed, solve_reply<T> reply,
        std::vector<conc::atomic<std::uint32_t>*>* deferred_wakes = nullptr)
    {
        if (typed.slot->state.load(std::memory_order_relaxed) ==
            detail::slot_ready) {
            return false;  // already resolved
        }
        typed.slot->store_reply(std::move(reply));
        if (auto* word = typed.slot->resolve()) {
            if (deferred_wakes != nullptr) {
                deferred_wakes->push_back(word);
            } else {
                detail::futex_wake_all(*word);
            }
        }
        return true;
    }

    using shard_lane = shard::lane<detail::pending_ptr>;

    /// Lock-free admission of the persistent mode: reserves the systems
    /// budget with atomics and pushes into the routed shard's ring.
    /// Rejections resolve the ticket exactly like the locked path.
    template <typename T>
    void submit_to_ring(detail::typed_pending<T> typed, std::uint64_t key,
                        std::chrono::steady_clock::time_point now,
                        std::chrono::steady_clock::time_point deadline,
                        index_type items, int priority,
                        shard::decision where)
    {
        if (!accepting_.load(std::memory_order_acquire) ||
            static_cast<size_type>(items) > config_.max_queue_systems) {
            ++rejected_requests_;
            reply_without_solving(typed, request_status::rejected);
            return;
        }
        // Watermark shedding (lock-free mirror of the windowed check).
        if (priority <= 0) {
            const size_type depth =
                ring_systems_.load(std::memory_order_acquire);
            const size_type mark = shed_threshold_systems();
            if (depth >= mark &&
                depth + static_cast<size_type>(items) > mark) {
                ++rejected_requests_;
                shed_requests_.fetch_add(1, std::memory_order_relaxed);
                reply_without_solving(typed, request_status::rejected,
                                      kShedError);
                return;
            }
        }
        const auto budget = static_cast<size_type>(items);
        size_type prev = ring_systems_.fetch_add(
            budget, std::memory_order_acq_rel);
        if (prev + budget > config_.max_queue_systems) {
            ring_systems_.fetch_sub(budget, std::memory_order_acq_rel);
            if (config_.on_full == overflow_policy::reject) {
                ++rejected_requests_;
                reply_without_solving(typed, request_status::rejected);
                return;
            }
            // Block: spin until the resident workers free enough budget.
            for (;;) {
                if (!accepting_.load(std::memory_order_acquire)) {
                    ++rejected_requests_;
                    reply_without_solving(typed, request_status::rejected);
                    return;
                }
                // Deadline checkpoint 1b (blocked admission), persistent
                // flavor: give up once the deadline passes mid-spin.
                if (deadline !=
                        std::chrono::steady_clock::time_point::max() &&
                    std::chrono::steady_clock::now() >= deadline) {
                    expired_requests_.fetch_add(
                        1, std::memory_order_relaxed);
                    reply_without_solving(typed, request_status::expired);
                    return;
                }
                prev = ring_systems_.load(std::memory_order_acquire);
                if (prev + budget <= config_.max_queue_systems &&
                    ring_systems_.compare_exchange_weak(
                        prev, prev + budget, std::memory_order_acq_rel)) {
                    break;
                }
                std::this_thread::yield();
            }
        }
        shard_lane& lane = lanes_[static_cast<std::size_t>(where.shard)];
        detail::pending_ptr entry = std::make_unique<detail::pending_entry>(
            key, now, deadline, items, std::move(typed));
        entry->shard = where.shard;
        entry->cost_ns = where.cost_ns;
        lane.ring_systems.fetch_add(budget, std::memory_order_relaxed);
        lane.backlog_ns.fetch_add(where.cost_ns, std::memory_order_relaxed);
        lane.routed_requests.fetch_add(1, std::memory_order_relaxed);
        lane.routed_systems.fetch_add(static_cast<std::uint64_t>(items),
                                      std::memory_order_relaxed);
        // pending is published before the push so a stopping worker never
        // exits between the push and the count becoming visible. seq_cst:
        // the increment must order against a parking worker's re-check
        // (see persistent_loop) so no push is ever left unattended.
        ring_pending_.fetch_add(1, std::memory_order_seq_cst);
        while (!lane.ring->try_push(entry)) {
            // Only transiently possible: each ring is sized for the full
            // admission budget at one system per entry.
            std::this_thread::yield();
        }
        bell_.ring();
    }

    /// Routes one request against the current lane backlogs (lock-free
    /// reads; staleness degrades balance, never correctness). Evicted /
    /// probing lanes carry zero routing weight; `exclude` (when >= 0)
    /// additionally bars one lane — the failover migration uses it so a
    /// dead lane never re-routes work to itself.
    shard::decision route_request(std::uint64_t key, index_type items,
                                  index_type rows, index_type nnz,
                                  index_type exclude = -1) const;

    /// steady_clock now in integer nanoseconds (the watchdog/probe time
    /// base — comparable with `lane.launch_started_ns`).
    static std::int64_t steady_now_ns();

    /// Routable lanes other than `except` (-1 excludes none).
    index_type alive_lanes_excluding(index_type except) const;

    /// Declares `lane` lost on behalf of `who` ("worker" or "watchdog").
    /// Returns whether this call won the eviction CAS; the winner drains
    /// the lane's queued work.
    bool evict_lane(shard_lane& lane, bool by_watchdog);

    /// Re-routes one already-admitted entry off dead `from` onto a
    /// surviving lane (queue or ring per launch mode), re-charging the
    /// backlog books on both sides. Entries past their deadline expire
    /// here (deadline checkpoint 5: failover re-queue); entries past the
    /// migration cap, or with no surviving lane, fail with a structured
    /// error. Ring pushes re-reserve the global budget themselves.
    void migrate_entry(shard_lane& from, detail::pending_ptr entry);

    /// Drains everything queued on an evicted lane and migrates it:
    /// windowed run-queue under mu_, persistent MPMC ring lock-free.
    void failover_drain(shard_lane& lane);

    /// Sends one synthetic half-open probe batch (a tiny CG solve built
    /// by the service, never client data) through `q`. Returns whether
    /// the probe solved cleanly.
    bool send_probe(xpu::queue& q) const;

    /// Half-open probing driven by an evicted lane's own worker: honors
    /// the probe cooldown, admits one probe at a time (lane_guard CAS),
    /// and restores or re-trips the lane. Returns whether the lane is
    /// routable again.
    bool maybe_probe(shard_lane& lane, xpu::queue& q);

    /// Periodic scan for wedged lanes: an in-flight launch older than
    /// `hang_timeout` evicts its lane (the hung batch is finished by its
    /// worker when the launch returns).
    void watchdog_loop();

    /// Brownout ladder level for the given queue depth (0 when the
    /// ladder is disabled).
    int brownout_for_depth(size_type depth_systems) const;

    /// Victim depth below which nothing is stolen (config, 0 = max_batch).
    size_type steal_threshold_systems() const;

    void worker_loop(index_type shard_id, int local_id);

    /// Resident solver loop of `launch_mode::persistent`: polls its
    /// shard's ring (stealing from deeper rings when idle), groups
    /// compatible entries up to `max_batch`, executes without ever
    /// parking on the admission mutex.
    void persistent_loop(index_type shard_id, int local_id);

    /// Removes lane.queue[index] under the caller's lock: books it as
    /// in-flight and frees its admission budget.
    detail::pending_ptr pop_entry_locked(shard_lane& lane,
                                         std::size_t index);

    /// Deepest run-queue worth stealing from (windowed modes, caller
    /// holds mu_); -1 when no victim clears the threshold.
    int steal_victim_locked(index_type thief_shard) const;

    /// Deepest ring worth stealing from (persistent mode, lock-free);
    /// -1 when no victim clears the threshold.
    int steal_victim_ring(index_type thief_shard) const;

    void execute(shard_lane& lane, xpu::queue& q,
                 detail::graph_cache& cache,
                 std::vector<detail::pending_ptr> batch, int brownout);

    template <typename T>
    void execute_typed(shard_lane& lane, xpu::queue& q,
                       detail::graph_cache& cache,
                       std::vector<detail::pending_ptr> batch,
                       int brownout);

    service_config config_;
    /// Snapshot of the policy's launch mode (possibly overridden by the
    /// BATCHLIN_LAUNCH_MODE environment variable at construction).
    xpu::launch_mode launch_mode_ = xpu::launch_mode::direct;
    std::chrono::steady_clock::time_point start_;

    /// Device registry and the router placing requests on it. The lanes
    /// (one per registry entry) live in a deque for address stability —
    /// they hold atomics and are not movable.
    shard::registry registry_;
    shard::router router_;
    std::deque<shard_lane> lanes_;

    mutable std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_space_;
    std::condition_variable cv_idle_;
    /// Total queued systems across every lane (the admission budget of
    /// the windowed modes).
    size_type queued_systems_ = 0;
    std::size_t in_flight_entries_ = 0;
    /// Atomic (not merely mu_-guarded): the persistent admission path
    /// reads these without the mutex. conc::atomic (= std::atomic in the
    /// default build) so the checked build model-checks the protocols
    /// they participate in.
    conc::atomic<bool> accepting_{true};
    conc::atomic<bool> stopping_{false};

    /// Submission-side counters are atomic — bumped on the submitter's
    /// thread before admission, outside the mutex.
    conc::atomic<std::uint64_t> submitted_requests_{0};
    conc::atomic<std::uint64_t> submitted_systems_{0};
    conc::atomic<std::uint64_t> rejected_requests_{0};
    std::uint64_t completed_requests_ = 0;
    std::uint64_t completed_systems_ = 0;
    /// Atomic: the lock-free admission paths (negative deadline, blocked
    /// submit timing out, failover migration) expire requests without
    /// holding mu_.
    conc::atomic<std::uint64_t> expired_requests_{0};
    /// Atomic for the same reason: failover migration fails entries with
    /// no surviving target from whatever thread drained them.
    conc::atomic<std::uint64_t> failed_requests_{0};
    std::uint64_t batches_launched_ = 0;
    std::uint64_t batched_systems_sum_ = 0;
    std::vector<std::uint64_t> batch_histogram_;
    latency_window latency_;

    // Graph-launch counters (guarded by mu_; updated in the workers'
    // post-batch bookkeeping).
    std::uint64_t launches_recorded_ = 0;
    std::uint64_t replays_ = 0;
    std::uint64_t rebind_only_ = 0;

    // Mixed-precision refinement counters (guarded by mu_; updated in the
    // workers' post-batch bookkeeping).
    std::uint64_t refined_batches_ = 0;
    std::uint64_t refine_sweeps_ = 0;
    std::uint64_t refine_fallbacks_ = 0;

    /// Persistent-mode lock-free budget/progress counters (the rings
    /// themselves live in the lanes). `ring_pending_` counts entries
    /// published but not yet popped; `ring_in_flight_` counts entries
    /// popped but not yet replied. A worker bumps in_flight *before*
    /// dropping pending, so `pending == 0 && in_flight == 0` never holds
    /// transiently while an entry changes hands — that predicate is the
    /// drain/shutdown condition.
    conc::atomic<size_type> ring_systems_{0};
    conc::atomic<std::uint64_t> ring_pending_{0};
    conc::atomic<std::uint64_t> ring_in_flight_{0};
    /// Parking protocol of the resident workers: a worker that finds the
    /// ring empty registers as parked, re-checks `ring_pending_`, and
    /// sleeps on the doorbell word; a producer rings after its push only
    /// when someone is parked, so the loaded steady state pays no wake
    /// syscalls at all. Protocol and rationale: serve/doorbell.hpp.
    doorbell bell_;

    // Resilience counters (guarded by mu_). Circuit-breaker state is per
    // lane (`shard::breaker`) — a faulting shard trips and cools down
    // alone.
    std::uint64_t launch_faults_ = 0;
    std::uint64_t launch_retries_ = 0;
    std::uint64_t degraded_launches_ = 0;
    std::uint64_t recovered_requests_ = 0;

    /// Failover / degradation counters (PR 10; atomic — bumped from
    /// worker loops, the watchdog, and lock-free admission). Eviction
    /// and probe totals live on the lane guards; these are the
    /// service-level aggregates that have no per-lane home.
    conc::atomic<std::uint64_t> watchdog_evictions_{0};
    conc::atomic<std::uint64_t> migrations_{0};
    conc::atomic<std::uint64_t> migrated_systems_{0};
    conc::atomic<std::uint64_t> shed_requests_{0};
    conc::atomic<std::uint32_t> brownout_level_{0};
    conc::atomic<std::uint32_t> brownout_max_{0};
    conc::atomic<std::uint64_t> brownout_batches_{0};

    /// One queue per worker, flat-indexed `shard * config_.workers +
    /// local` (deque: xpu::queue is not movable in debug builds).
    /// Constructed before, and outliving, the worker threads.
    std::deque<xpu::queue> worker_queues_;
    /// One graph cache per worker, owned exclusively by that worker's
    /// thread (deque for address stability, like the queues).
    std::deque<detail::graph_cache> graph_caches_;
    std::vector<std::thread> workers_;
    /// Hang watchdog (joinable only when failover is on, the interval is
    /// nonzero, and there are at least two lanes to fail over between).
    std::thread watchdog_;
};

}  // namespace batchlin::serve
