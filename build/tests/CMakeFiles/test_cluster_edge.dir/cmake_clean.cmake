file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_edge.dir/test_cluster_edge.cpp.o"
  "CMakeFiles/test_cluster_edge.dir/test_cluster_edge.cpp.o.d"
  "test_cluster_edge"
  "test_cluster_edge.pdb"
  "test_cluster_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
