// batchsolve — command-line driver for the batched solver stack.
//
// The counterpart of the run-test-dpcpp.sh / run-test-cuda.sh scripts of
// the paper's reproducibility appendix: pick a workload (a Table 4
// mechanism, a synthetic stencil, or a BatchCsr file), a solver
// configuration, and a device model; solve; print convergence statistics,
// the true residuals, and the projected device runtime. `--json` emits a
// machine-readable record for scripting.
//
// Examples:
//   batchsolve --input dodecane_lu --batch 1024 --precond jacobi
//   batchsolve --input stencil --rows 128 --solver cg --device PVC-2S
//   batchsolve --input systems.bcsr --solver gmres --restart 30 --json
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <string>

#include "batchlin/batchlin.hpp"
#include "matrix/conversions.hpp"

using namespace batchlin;

namespace {

struct cli_options {
    std::string input = "stencil";
    index_type rows = 64;
    index_type batch = 1024;
    index_type target = 1 << 17;
    std::string solver = "bicgstab";
    std::string precond = "jacobi";
    std::string format = "csr";
    std::string device = "PVC-1S";
    double tol = 1e-9;
    bool absolute = false;
    index_type max_iters = 300;
    index_type restart = 20;
    index_type block_size = 4;
    std::uint64_t seed = 42;
    /// Empty keeps the library default (BATCHLIN_STORAGE env or native).
    std::string storage;
    index_type refine_sweeps = 0;
    bool verify = false;
    bool json = false;
    bool serve = false;
    std::string launch_mode = "direct";
    int serve_workers = 2;
    index_type serve_batch = 64;
    long serve_wait_us = 200;
    index_type shards = 1;
    /// Comma-separated device list ("pvc1s,pvc2s"); overrides --shards.
    std::string shard_devices;
    /// Nonzero derives a seeded per-shard chaos fault schedule and turns
    /// failover on.
    std::uint64_t chaos_seed = 0;
    /// Per-launch fault probability of the chaos schedule.
    double fault_rate = 0.05;
    /// Shard to device-lose permanently from launch 0 (-1 = none).
    int kill_shard = -1;
    /// Dump the serve stats snapshot as one JSON line.
    bool serve_stats = false;
};

[[noreturn]] void usage(const char* argv0, int code)
{
    std::printf(
        "usage: %s [options]\n"
        "  --input NAME    drm19|gri12|gri30|dodecane_lu|isooctane,\n"
        "                  'stencil', 'stencil5', or a BatchCsr file path\n"
        "  --rows N        stencil matrix size            [64]\n"
        "  --batch N       systems to solve               [1024]\n"
        "  --target N      batch size for the device-time projection "
        "[131072]\n"
        "  --solver S      cg|bicgstab|gmres|trsv         [bicgstab]\n"
        "  --precond P     none|jacobi|block-jacobi|ilu|isai [jacobi]\n"
        "  --format F      csr|ell|dense                  [csr]\n"
        "  --device D      A100|H100|PVC-1S|PVC-2S        [PVC-1S]\n"
        "  --tol X         tolerance                      [1e-9]\n"
        "  --abs           absolute instead of relative tolerance\n"
        "  --max-iters N   iteration budget               [300]\n"
        "  --restart M     GMRES restart                  [20]\n"
        "  --block-size B  block-Jacobi block size        [4]\n"
        "  --seed S        workload seed                  [42]\n"
        "  --storage-precision P  native|fp32 matrix/precond storage\n"
        "                  [BATCHLIN_STORAGE env, else native]\n"
        "  --refine-sweeps N  iterative-refinement sweeps recovering FP64\n"
        "                  accuracy on fp32 storage (0 = off)  [0]\n"
        "  --verify        compute and report true residuals\n"
        "  --json          machine-readable output\n"
        "  --serve         route the batch through serve::solve_service\n"
        "                  as one request per system (CSR only)\n"
        "  --launch-mode M     direct|graph_replay|persistent [direct]\n"
        "  --serve-workers N   worker threads                [2]\n"
        "  --serve-batch N     max systems per fused launch  [64]\n"
        "  --serve-wait-us N   batching window in usec       [200]\n"
        "  --shards N          logical device shards to serve across [1]\n"
        "  --shard-devices L   per-shard device list, e.g. pvc1s,pvc1s\n"
        "                      (overrides --shards; emulates each device's\n"
        "                      launch costs)\n"
        "  --chaos-seed S      derive a seeded chaos schedule (sticky\n"
        "                      device loss with revival, kernel hangs,\n"
        "                      NaN poison) per shard and serve through it\n"
        "                      with failover on; shard 0 is spared device\n"
        "                      loss so the run always finishes [0 = off]\n"
        "  --fault-rate X      per-launch fault probability of the chaos\n"
        "                      schedule                      [0.05]\n"
        "  --kill-shard N      permanently device-lose shard N from its\n"
        "                      first launch (failover migrates its work;\n"
        "                      requires --shards >= 2)       [-1 = none]\n"
        "  --serve-stats       dump the serve::service_stats snapshot as\n"
        "                      one JSON line (see serve/stats.hpp)\n",
        argv0);
    std::exit(code);
}

cli_options parse(int argc, char** argv)
{
    cli_options o;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", arg.c_str());
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg == "--input") {
            o.input = next();
        } else if (arg == "--rows") {
            o.rows = std::atoi(next());
        } else if (arg == "--batch") {
            o.batch = std::atoi(next());
        } else if (arg == "--target") {
            o.target = std::atoi(next());
        } else if (arg == "--solver") {
            o.solver = next();
        } else if (arg == "--precond") {
            o.precond = next();
        } else if (arg == "--format") {
            o.format = next();
        } else if (arg == "--device") {
            o.device = next();
        } else if (arg == "--tol") {
            o.tol = std::atof(next());
        } else if (arg == "--abs") {
            o.absolute = true;
        } else if (arg == "--max-iters") {
            o.max_iters = std::atoi(next());
        } else if (arg == "--restart") {
            o.restart = std::atoi(next());
        } else if (arg == "--block-size") {
            o.block_size = std::atoi(next());
        } else if (arg == "--seed") {
            o.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--storage-precision") {
            o.storage = next();
        } else if (arg == "--refine-sweeps") {
            o.refine_sweeps = std::atoi(next());
        } else if (arg == "--verify") {
            o.verify = true;
        } else if (arg == "--json") {
            o.json = true;
        } else if (arg == "--serve") {
            o.serve = true;
        } else if (arg == "--launch-mode") {
            o.launch_mode = next();
        } else if (arg == "--serve-workers") {
            o.serve_workers = std::atoi(next());
        } else if (arg == "--serve-batch") {
            o.serve_batch = std::atoi(next());
        } else if (arg == "--serve-wait-us") {
            o.serve_wait_us = std::atol(next());
        } else if (arg == "--shards") {
            o.shards = std::atoi(next());
        } else if (arg == "--shard-devices") {
            o.shard_devices = next();
        } else if (arg == "--chaos-seed") {
            o.chaos_seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--fault-rate") {
            o.fault_rate = std::atof(next());
        } else if (arg == "--kill-shard") {
            o.kill_shard = std::atoi(next());
        } else if (arg == "--serve-stats") {
            o.serve_stats = true;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0], 2);
        }
    }
    return o;
}

mat::batch_csr<double> load_workload(const cli_options& o)
{
    if (o.input == "stencil") {
        return work::stencil_3pt<double>(o.batch, o.rows, o.seed);
    }
    if (o.input == "stencil5") {
        return work::stencil_banded<double>(o.batch, o.rows, 2, o.seed);
    }
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        if (mech.name == o.input) {
            return work::generate_mechanism_batch<double>(mech, o.batch,
                                                          o.seed);
        }
    }
    // Fall through: treat as a BatchCsr file path.
    return mat::read_batch_file<double>(o.input);
}

solver::solver_type parse_solver(const std::string& s)
{
    if (s == "cg") return solver::solver_type::cg;
    if (s == "bicgstab") return solver::solver_type::bicgstab;
    if (s == "gmres") return solver::solver_type::gmres;
    if (s == "richardson") return solver::solver_type::richardson;
    if (s == "trsv") return solver::solver_type::trsv;
    BATCHLIN_ENSURE_MSG(false, "unknown solver: " + s);
    return {};
}

mat::storage_precision parse_storage(const std::string& s)
{
    if (s == "native") return mat::storage_precision::native;
    if (s == "fp32") return mat::storage_precision::fp32;
    BATCHLIN_ENSURE_MSG(false, "unknown storage precision: " + s);
    return {};
}

precond::type parse_precond(const std::string& s)
{
    if (s == "none") return precond::type::none;
    if (s == "jacobi") return precond::type::jacobi;
    if (s == "block-jacobi") return precond::type::block_jacobi;
    if (s == "ilu") return precond::type::ilu;
    if (s == "isai") return precond::type::isai;
    BATCHLIN_ENSURE_MSG(false, "unknown preconditioner: " + s);
    return {};
}

/// Routes the workload through serve::solve_service as one request per
/// system and gathers the replies back into `x` and a combined log.
/// Exercises the full submit/coalesce/scatter path; the dynamic batcher
/// re-fuses the sliced systems because they share one sparsity pattern.
log::batch_log solve_via_service(const cli_options& o,
                                 const mat::batch_csr<double>& csr,
                                 const mat::batch_dense<double>& b,
                                 mat::batch_dense<double>& x,
                                 const solver::solve_options& opts)
{
    const index_type items = csr.num_batch_items();
    const index_type rows = csr.rows();

    serve::service_config cfg;
    cfg.workers = o.serve_workers;
    cfg.max_batch = o.serve_batch;
    cfg.max_wait = std::chrono::microseconds(o.serve_wait_us);
    cfg.max_queue_systems =
        std::max<size_type>(static_cast<size_type>(items), 1);
    cfg.shards = o.shards;
    if (!o.shard_devices.empty()) {
        cfg.shard_devices = shard::parse_device_list(o.shard_devices);
    }
    const index_type nshards =
        cfg.shard_devices.empty()
            ? cfg.shards
            : static_cast<index_type>(cfg.shard_devices.size());
    if (o.kill_shard >= 0 || o.chaos_seed != 0) {
        cfg.failover = true;
        cfg.shard_faults.resize(static_cast<std::size_t>(nshards));
    }
    if (o.kill_shard >= 0) {
        BATCHLIN_ENSURE_MSG(o.kill_shard < nshards,
                            "--kill-shard is out of range");
        BATCHLIN_ENSURE_MSG(nshards >= 2,
                            "--kill-shard needs --shards >= 2 so a "
                            "survivor can absorb the migrated work");
        xpu::fault_event lost;
        lost.kind = xpu::fault_kind::device_lost;
        lost.launch = 0;
        lost.revive = 0;  // never comes back
        cfg.shard_faults[static_cast<std::size_t>(o.kill_shard)]
            .events.push_back(lost);
    }
    if (o.chaos_seed != 0) {
        // One deterministic schedule per (seed, shard): walk the first 64
        // launch slots and fault each with probability --fault-rate,
        // cycling device loss (with revival a few launches later, so the
        // half-open probes restore the lane), a short hang, and a NaN
        // poison strike. Shard 0 is spared device loss: a schedule that
        // can momentarily lose every lane would fail requests with "no
        // healthy shard", which is chaos past what a demo tool should
        // default to.
        for (index_type s = 0; s < nshards; ++s) {
            rng chaos(o.chaos_seed * 1000003ULL +
                      static_cast<std::uint64_t>(s));
            for (std::uint64_t launch = 0; launch < 64; ++launch) {
                if (chaos.uniform(0.0, 1.0) >= o.fault_rate) {
                    continue;
                }
                xpu::fault_event ev;
                switch (chaos.uniform_int(0, s == 0 ? 1 : 2)) {
                case 0:
                    ev.kind = xpu::fault_kind::hang;
                    ev.launch = launch;
                    ev.hang_us = static_cast<std::uint32_t>(
                        chaos.uniform_int(500, 2500));
                    break;
                case 1:
                    ev.kind = xpu::fault_kind::poison;
                    ev.launch = launch;
                    ev.group = 0;
                    ev.phase = 1;
                    ev.target = xpu::fault_target::slm;
                    ev.mode = xpu::poison_mode::nan;
                    break;
                default:
                    ev.kind = xpu::fault_kind::device_lost;
                    ev.launch = launch;
                    ev.revive = launch + 2 +
                                static_cast<std::uint64_t>(
                                    chaos.uniform_int(0, 8));
                    break;
                }
                cfg.shard_faults[static_cast<std::size_t>(s)]
                    .events.push_back(ev);
            }
        }
    }
    xpu::exec_policy policy = perf::device_by_name(o.device).make_policy();
    policy.launch_mode = xpu::parse_launch_mode(o.launch_mode);
    serve::solve_service service(policy, cfg);

    std::vector<serve::solve_service::ticket<double>> tickets;
    tickets.reserve(static_cast<std::size_t>(items));
    for (index_type i = 0; i < items; ++i) {
        serve::solve_request<double> req;
        mat::batch_csr<double> one(1, rows, rows, csr.row_ptrs(),
                                   csr.col_idxs());
        std::copy_n(csr.item_values(i), csr.nnz(), one.item_values(0));
        req.a = std::move(one);
        req.b = mat::batch_dense<double>(1, rows, 1);
        std::copy_n(b.item_values(i), b.item_size(),
                    req.b.item_values(0));
        req.x = mat::batch_dense<double>(1, rows, 1);
        req.opts = opts;
        tickets.push_back(service.submit(std::move(req)));
    }

    log::batch_log log(items);
    index_type max_fused = 0;
    for (index_type i = 0; i < items; ++i) {
        serve::solve_reply<double> reply =
            tickets[static_cast<std::size_t>(i)].get();
        BATCHLIN_ENSURE_MSG(reply.status == serve::request_status::ok,
                            "serve request " + std::to_string(i) + " " +
                                serve::to_string(reply.status) +
                                (reply.error.empty() ? ""
                                                     : ": " + reply.error));
        std::copy_n(reply.x.item_values(0), reply.x.item_size(),
                    x.item_values(i));
        log.record(i, reply.log.iterations(0), reply.log.residual_norm(0),
                   reply.log.status(0));
        max_fused = std::max(max_fused, reply.fused_systems);
    }

    // Every ticket has resolved, but a reply is fulfilled before the
    // worker's locked bookkeeping runs; drain waits the books settled so
    // the dump below balances.
    service.drain();
    const serve::service_stats s = service.stats();
    if (o.serve_stats) {
        // One self-contained JSON line (serve::service_stats::to_json),
        // greppable out of mixed output; the chaos soak in scripts/
        // parses the same shape.
        std::printf("%s\n", s.to_json().c_str());
    }
    if (!o.json) {
        std::printf("serve:    %d workers, window %ld us, %llu launches, "
                    "mean batch %.1f, max fused %d\n",
                    cfg.workers, o.serve_wait_us,
                    static_cast<unsigned long long>(s.batches_launched),
                    s.mean_batch_size, max_fused);
        std::printf("serve:    launch mode %s, %llu recorded, %llu replays "
                    "(%llu rebind-only)\n",
                    xpu::to_string(service.launch_mode()).c_str(),
                    static_cast<unsigned long long>(s.launches_recorded),
                    static_cast<unsigned long long>(s.replays),
                    static_cast<unsigned long long>(s.rebind_only));
        std::printf("serve:    p50/p99 latency %.3f/%.3f ms, "
                    "%.0f solves/sec\n",
                    s.p50_latency_seconds * 1e3, s.p99_latency_seconds * 1e3,
                    s.solves_per_sec);
        if (s.refined_batches > 0) {
            std::printf("serve:    %llu refined batches, %llu correction "
                        "sweeps, %llu native fallbacks\n",
                        static_cast<unsigned long long>(s.refined_batches),
                        static_cast<unsigned long long>(s.refine_sweeps),
                        static_cast<unsigned long long>(s.refine_fallbacks));
        }
        if (s.shards.size() > 1) {
            for (const serve::shard_stats& ss : s.shards) {
                std::printf(
                    "shard %2d: %s [%s], %llu routed / %llu solved "
                    "systems, %llu launches, %llu steals, %llu faults, "
                    "%llu trips%s, %.0f solves/sec\n",
                    ss.shard, ss.device.c_str(), ss.state.c_str(),
                    static_cast<unsigned long long>(ss.routed_systems),
                    static_cast<unsigned long long>(ss.completed_systems),
                    static_cast<unsigned long long>(ss.batches_launched),
                    static_cast<unsigned long long>(ss.steals),
                    static_cast<unsigned long long>(ss.launch_faults),
                    static_cast<unsigned long long>(ss.breaker_trips),
                    ss.breaker_active ? " (breaker open)" : "",
                    ss.solves_per_sec);
            }
        }
        if (s.evictions > 0 || s.migrations > 0 || s.probes > 0) {
            std::printf(
                "chaos:    %llu evictions (%llu by watchdog), %llu "
                "migrations (%llu systems), %llu probes (%llu ok)\n",
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.watchdog_evictions),
                static_cast<unsigned long long>(s.migrations),
                static_cast<unsigned long long>(s.migrated_systems),
                static_cast<unsigned long long>(s.probes),
                static_cast<unsigned long long>(s.probe_successes));
        }
    }
    return log;
}

}  // namespace

int main(int argc, char** argv)
try {
    const cli_options o = parse(argc, argv);

    const mat::batch_csr<double> csr = load_workload(o);
    const index_type items = csr.num_batch_items();
    const index_type rows = csr.rows();
    solver::batch_matrix<double> a = csr;
    if (o.format == "ell") {
        a = mat::to_ell(csr);
    } else if (o.format == "dense") {
        a = mat::to_dense(csr);
    } else {
        BATCHLIN_ENSURE_MSG(o.format == "csr",
                            "unknown format: " + o.format);
    }
    const auto b = work::mechanism_rhs<double>(items, rows, o.seed + 7);
    mat::batch_dense<double> x(items, rows, 1);

    solver::solve_options opts;
    opts.solver = parse_solver(o.solver);
    opts.preconditioner = parse_precond(o.precond);
    opts.criterion = o.absolute ? stop::absolute(o.tol, o.max_iters)
                                : stop::relative(o.tol, o.max_iters);
    opts.gmres_restart = o.restart;
    opts.block_jacobi_size = o.block_size;
    if (!o.storage.empty()) {
        opts.storage = parse_storage(o.storage);
    }
    opts.refine_sweeps = o.refine_sweeps;

    if (o.serve) {
        BATCHLIN_ENSURE_MSG(o.format == "csr",
                            "--serve supports the csr format only");
        const log::batch_log log = solve_via_service(o, csr, b, x, opts);
        double worst = 0.0;
        if (o.verify) {
            for (const double r : solver::relative_residual_norms(a, b, x)) {
                worst = std::max(worst, r);
            }
        }
        if (o.json) {
            std::printf(
                "{\"input\":\"%s\",\"rows\":%d,\"batch\":%d,"
                "\"solver\":\"%s\",\"precond\":\"%s\",\"mode\":\"serve\","
                "\"converged\":%d,\"mean_iters\":%.2f,\"max_iters\":%d",
                o.input.c_str(), rows, items, o.solver.c_str(),
                o.precond.c_str(), log.num_converged(),
                log.mean_iterations(), log.max_iterations());
            if (o.verify) {
                std::printf(",\"worst_true_rel_residual\":%.3e", worst);
            }
            std::printf("}\n");
        } else {
            std::printf("result:   %d/%d converged, iterations "
                        "min/mean/max = %d/%.1f/%d\n",
                        log.num_converged(), items, log.min_iterations(),
                        log.mean_iterations(), log.max_iterations());
            if (o.verify) {
                std::printf("verify:   worst true relative residual %.3e\n",
                            worst);
            }
        }
        return log.num_converged() == items ? EXIT_SUCCESS : 1;
    }

    if (o.refine_sweeps > 0) {
        // Refined solo path: the iterative-refinement driver runs a
        // convergence-dependent number of launches, so the single-launch
        // device projection does not apply — report the refinement
        // outcome instead.
        xpu::queue q(perf::device_by_name(o.device).make_policy());
        solver::refine_options ropts;
        ropts.max_sweeps = o.refine_sweeps;
        const solver::refined_result rr =
            solver::solve_refined(q, a, b, x, opts, ropts);
        double worst = 0.0;
        for (const double r : rr.true_residuals) {
            worst = std::max(worst, r);
        }
        if (o.json) {
            std::printf(
                "{\"input\":\"%s\",\"rows\":%d,\"batch\":%d,"
                "\"solver\":\"%s\",\"precond\":\"%s\",\"mode\":\"refined\","
                "\"storage\":\"%s\",\"converged\":%d,\"mean_iters\":%.2f,"
                "\"max_iters\":%d,\"sweeps\":%d,\"fell_back\":%s,"
                "\"worst_true_rel_residual\":%.3e}\n",
                o.input.c_str(), rows, items, o.solver.c_str(),
                o.precond.c_str(),
                opts.storage == mat::storage_precision::fp32 ? "fp32"
                                                             : "native",
                rr.log.num_converged(), rr.log.mean_iterations(),
                rr.log.max_iterations(), rr.sweeps,
                rr.fell_back ? "true" : "false", worst);
        } else {
            std::printf("workload: %s, %d systems of %dx%d (nnz %d), "
                        "format %s\n",
                        o.input.c_str(), items, rows, rows, csr.nnz(),
                        o.format.c_str());
            std::printf("refined:  %s storage, %d correction sweeps%s\n",
                        opts.storage == mat::storage_precision::fp32
                            ? "fp32"
                            : "native",
                        rr.sweeps,
                        rr.fell_back ? ", fell back to native" : "");
            std::printf("result:   %d/%d converged, iterations "
                        "min/mean/max = %d/%.1f/%d\n",
                        rr.log.num_converged(), items,
                        rr.log.min_iterations(), rr.log.mean_iterations(),
                        rr.log.max_iterations());
            std::printf("verify:   worst true relative residual %.3e\n",
                        worst);
        }
        return rr.log.num_converged() == items ? EXIT_SUCCESS : 1;
    }

    batch_solver handle(perf::device_by_name(o.device), opts);
    const solver::solve_result result = handle.solve<double>(a, b, x);
    const perf::time_breakdown t =
        handle.project<double>(result, a, o.target);

    double worst_res = 0.0;
    if (o.verify) {
        for (const double r : solver::relative_residual_norms(a, b, x)) {
            worst_res = std::max(worst_res, r);
        }
    }

    if (o.json) {
        std::printf(
            "{\"input\":\"%s\",\"rows\":%d,\"batch\":%d,"
            "\"solver\":\"%s\",\"precond\":\"%s\",\"format\":\"%s\","
            "\"device\":\"%s\",\"converged\":%d,\"mean_iters\":%.2f,"
            "\"max_iters\":%d,\"work_group\":%d,\"sub_group\":%d,"
            "\"reduction\":\"%s\",\"slm_bytes_per_group\":%lld,"
            "\"projected_ms\":%.6f,\"bound_by\":\"%s\",\"occupancy\":%.3f",
            o.input.c_str(), rows, items, o.solver.c_str(),
            o.precond.c_str(), o.format.c_str(), o.device.c_str(),
            result.log.num_converged(), result.log.mean_iterations(),
            result.log.max_iterations(), result.config.work_group_size,
            result.config.sub_group_size,
            xpu::to_string(result.config.reduction).c_str(),
            static_cast<long long>(result.plan.slm_bytes),
            t.total_seconds * 1e3, t.bound_by, t.occupancy);
        if (o.verify) {
            std::printf(",\"worst_true_rel_residual\":%.3e", worst_res);
        }
        std::printf("}\n");
    } else {
        std::printf("workload: %s, %d systems of %dx%d (nnz %d), "
                    "format %s\n",
                    o.input.c_str(), items, rows, rows, csr.nnz(),
                    o.format.c_str());
        std::printf("solver:   %s + %s, %s tol %.1e, budget %d\n",
                    o.solver.c_str(), o.precond.c_str(),
                    o.absolute ? "absolute" : "relative", o.tol,
                    o.max_iters);
        std::printf("result:   %d/%d converged, iterations "
                    "min/mean/max = %d/%.1f/%d\n",
                    result.log.num_converged(), items,
                    result.log.min_iterations(),
                    result.log.mean_iterations(),
                    result.log.max_iterations());
        std::printf("launch:   work-group %d, sub-group %d, %s reduction, "
                    "%lld B SLM/group\n",
                    result.config.work_group_size,
                    result.config.sub_group_size,
                    xpu::to_string(result.config.reduction).c_str(),
                    static_cast<long long>(result.plan.slm_bytes));
        std::printf("device:   %s, projected %.3f ms for %d systems "
                    "(bound by %s, occupancy %.0f%%)\n",
                    o.device.c_str(), t.total_seconds * 1e3, o.target,
                    t.bound_by, t.occupancy * 100.0);
        if (o.verify) {
            std::printf("verify:   worst true relative residual %.3e\n",
                        worst_res);
        }
    }
    return result.log.num_converged() == items ? EXIT_SUCCESS : 1;
} catch (const std::exception& e) {
    std::fprintf(stderr, "batchsolve: %s\n", e.what());
    return 2;
}
