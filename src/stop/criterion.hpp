// Stopping criteria for the batched iterative solvers (paper Table 3).
//
// Two tolerance types are supported — absolute and relative (to the
// right-hand-side norm) — combined with an iteration cap. Convergence is
// monitored for each system in the batch individually: a work-group leaves
// its solver loop as soon as its own system satisfies the criterion.
#pragma once

#include <string>

#include "util/error.hpp"
#include "util/math.hpp"

namespace batchlin::stop {

enum class tolerance_type {
    /// ||r|| <= tol.
    absolute,
    /// ||r|| <= tol * ||b||.
    relative,
};

/// Runtime stopping configuration shared by all systems of a batch solve.
struct criterion {
    tolerance_type type = tolerance_type::relative;
    double tolerance = 1e-10;
    index_type max_iterations = 200;

    friend bool operator==(const criterion&, const criterion&) = default;

    /// Throws on non-positive tolerance or iteration budget.
    void validate() const
    {
        BATCHLIN_ENSURE_MSG(tolerance > 0.0, "tolerance must be positive");
        BATCHLIN_ENSURE_MSG(max_iterations > 0,
                            "iteration budget must be positive");
    }
};

/// Device-side convergence test; `rhs_norm` is ignored for absolute type.
template <typename T>
inline bool is_converged(const criterion& crit, T residual_norm, T rhs_norm)
{
    const double target =
        crit.type == tolerance_type::absolute
            ? crit.tolerance
            : crit.tolerance * static_cast<double>(rhs_norm);
    return static_cast<double>(residual_norm) <= target;
}

/// True when the criterion defines the system as already solved: a
/// relative tolerance against a zero right-hand side demands
/// ||r|| <= tol * 0 = 0, which only x with A x = b = 0 satisfies — and
/// x = 0 always does. Rather than iterating toward an unreachable positive
/// target (the historic behaviour divided by a zero norm), the kernels
/// short-circuit: write x = 0 and record `converged` with 0 iterations.
template <typename T>
inline bool zero_rhs_short_circuit(const criterion& crit, T rhs_norm)
{
    return crit.type == tolerance_type::relative && rhs_norm == T{0};
}

std::string to_string(tolerance_type type);

/// Convenience factories.
inline criterion absolute(double tol, index_type max_iters = 200)
{
    return {tolerance_type::absolute, tol, max_iters};
}
inline criterion relative(double tol, index_type max_iters = 200)
{
    return {tolerance_type::relative, tol, max_iters};
}

}  // namespace batchlin::stop
