// Quickstart: solve a batch of SPD systems with BatchCg on the PVC device
// model, check the true residuals, and print the per-system convergence
// summary plus the projected device runtime.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>

#include "batchlin/batchlin.hpp"

int main()
{
    using namespace batchlin;
    using T = double;

    // 1. A batch of 4096 SPD 3-point-stencil systems of size 64.
    const index_type batch_size = 4096;
    const index_type rows = 64;
    solver::batch_matrix<T> a =
        work::stencil_3pt<T>(batch_size, rows, /*seed=*/42);
    mat::batch_dense<T> b = work::random_rhs<T>(batch_size, rows, /*seed=*/7);
    mat::batch_dense<T> x(batch_size, rows, 1);  // zero initial guess

    // 2. A solver handle bound to one stack of the PVC device model:
    //    BatchCg + scalar Jacobi, relative residual 1e-10.
    solver::solve_options options;
    options.solver = solver::solver_type::cg;
    options.preconditioner = precond::type::jacobi;
    options.criterion = stop::relative(1e-10, 500);
    batch_solver handle(perf::pvc_1s(), options);

    // 3. Solve: one fused kernel, one work-group per system.
    const solver::solve_result result = handle.solve<T>(a, b, x);

    // 4. Verify against the explicit residual.
    const std::vector<double> rel = solver::relative_residual_norms(a, b, x);
    double worst = 0.0;
    for (double r : rel) {
        worst = r > worst ? r : worst;
    }

    std::printf("systems solved:        %d / %d converged\n",
                result.log.num_converged(), batch_size);
    std::printf("iterations (min/mean/max): %d / %.1f / %d\n",
                result.log.min_iterations(), result.log.mean_iterations(),
                result.log.max_iterations());
    std::printf("worst true relative residual: %.3e\n", worst);
    std::printf("launch config: work-group %d, sub-group %d, %s reduction\n",
                result.config.work_group_size, result.config.sub_group_size,
                xpu::to_string(result.config.reduction).c_str());
    std::printf("SLM plan: %lld bytes/work-group in SLM, %lld elems spilled\n",
                static_cast<long long>(result.plan.slm_bytes),
                static_cast<long long>(result.plan.global_elems_per_group));

    // 5. Project the measured kernel counters onto the device model.
    const perf::time_breakdown t =
        handle.project<T>(result, a, batch_size);
    std::printf("projected %s time: %.3f ms (bound by %s, occupancy %.0f%%)\n",
                handle.device().name.c_str(), t.total_seconds * 1e3,
                t.bound_by, t.occupancy * 100.0);
    return worst < 1e-8 ? 0 : 1;
}
