// Tests for the block-Jacobi preconditioner, the banded direct solver,
// and the banded stencil workload.
#include <gtest/gtest.h>

#include <cmath>

#include "blas/matrix_view.hpp"
#include "matrix/conversions.hpp"
#include "matrix/properties.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/jacobi.hpp"
#include "solver/direct.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;

TEST(BlockJacobi, PartitionCoversAllRows)
{
    const auto a = work::stencil_3pt<double>(1, 22, 3);
    precond::block_jacobi<double> pc(a, 5);
    EXPECT_EQ(pc.num_blocks(), 5);  // 5+5+5+5+2
    EXPECT_EQ(pc.block_size(), 5);
    EXPECT_EQ(pc.workspace_elems(), 4 * 25 + 4);
}

TEST(BlockJacobi, BlockSizeOneEqualsScalarJacobi)
{
    const auto a = work::generate_mechanism<double>(
        work::mechanism_by_name("drm19"), 5);
    xpu::counters stats;
    xpu::slm_arena arena(1 << 20);
    xpu::group g(0, 32, 16, arena, stats);

    precond::block_jacobi<double> bj(a, 1);
    std::vector<double> bj_work(bj.workspace_elems());
    auto bj_app = bj.generate(
        g, batchlin::blas::item_view(a, 2),
        {bj_work.data(), static_cast<index_type>(bj_work.size()),
         xpu::mem_space::global});

    precond::jacobi<double> sj(a);
    std::vector<double> sj_work(a.rows());
    auto sj_app = sj.generate(
        g, batchlin::blas::item_view(a, 2),
        {sj_work.data(), static_cast<index_type>(sj_work.size()),
         xpu::mem_space::global});

    std::vector<double> r(a.rows());
    for (index_type i = 0; i < a.rows(); ++i) {
        r[i] = std::sin(0.4 * i) + 1.5;
    }
    std::vector<double> z_bj(a.rows()), z_sj(a.rows());
    bj_app.apply(g, {r.data(), a.rows(), xpu::mem_space::global},
                 {z_bj.data(), a.rows(), xpu::mem_space::global});
    sj_app.apply(g, {r.data(), a.rows(), xpu::mem_space::global},
                 {z_sj.data(), a.rows(), xpu::mem_space::global});
    for (index_type i = 0; i < a.rows(); ++i) {
        EXPECT_NEAR(z_bj[i], z_sj[i], 1e-13);
    }
}

TEST(BlockJacobi, FullSizeBlockIsExactInverse)
{
    // One block covering the whole system: M == A^{-1}, so a single
    // preconditioned Richardson step solves the system.
    const auto a = work::generate_mechanism<double>(
        work::mechanism_by_name("drm19"), 9);
    const index_type n = a.rows();
    xpu::counters stats;
    xpu::slm_arena arena(1 << 22);
    xpu::group g(0, 32, 16, arena, stats);
    precond::block_jacobi<double> pc(a, n);
    std::vector<double> work_buf(pc.workspace_elems());
    auto app = pc.generate(
        g, batchlin::blas::item_view(a, 0),
        {work_buf.data(), static_cast<index_type>(work_buf.size()),
         xpu::mem_space::global});
    // r = A * z_true, apply must return z_true.
    std::vector<double> z_true(n), r(n, 0.0), z(n);
    for (index_type i = 0; i < n; ++i) {
        z_true[i] = std::cos(0.2 * i);
    }
    for (index_type i = 0; i < n; ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1]; ++k) {
            r[i] += a.item_values(0)[k] * z_true[a.col_idxs()[k]];
        }
    }
    app.apply(g, {r.data(), n, xpu::mem_space::global},
              {z.data(), n, xpu::mem_space::global});
    for (index_type i = 0; i < n; ++i) {
        EXPECT_NEAR(z[i], z_true[i], 1e-9);
    }
}

TEST(BlockJacobi, AcceleratesBicgstabThroughDispatch)
{
    const auto mech = work::mechanism_by_name("gri30");
    const auto a_csr = work::generate_mechanism_batch<double>(mech, 60);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::mechanism_rhs<double>(60, mech.rows, 5);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.criterion = stop::relative(1e-10, 300);
    xpu::queue q(xpu::make_sycl_policy());

    auto iters_with = [&](precond::type p, index_type bs) {
        mat::batch_dense<double> x(60, mech.rows, 1);
        solver::solve_options o = opts;
        o.preconditioner = p;
        o.block_jacobi_size = bs;
        const auto result = solver::solve(q, a, b, x, o);
        EXPECT_EQ(result.log.num_converged(), 60);
        const auto rel = solver::relative_residual_norms(a, b, x);
        for (double r : rel) {
            EXPECT_LE(r, 1e-8);
        }
        return result.log.mean_iterations();
    };
    const double none = iters_with(precond::type::none, 0);
    const double scalar = iters_with(precond::type::jacobi, 0);
    const double block8 = iters_with(precond::type::block_jacobi, 8);
    // Stronger preconditioners need (weakly) fewer iterations.
    EXPECT_LE(scalar, none + 0.5);
    EXPECT_LE(block8, scalar + 0.5);
}

TEST(BlockJacobi, RejectsNonCsrAndBadBlocks)
{
    const auto a_csr = work::stencil_3pt<double>(4, 16, 1);
    const auto b = work::random_rhs<double>(4, 16, 2);
    mat::batch_dense<double> x(4, 16, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::block_jacobi;
    xpu::queue q(xpu::make_sycl_policy());
    const solver::batch_matrix<double> a_ell = mat::to_ell(a_csr);
    EXPECT_THROW(solver::solve(q, a_ell, b, x, opts),
                 bl::unsupported_combination);
    EXPECT_THROW(precond::block_jacobi<double>(a_csr, 0), bl::error);
}

TEST(Banded, StencilBandedHasExpectedPattern)
{
    const auto a = work::stencil_banded<double>(3, 30, 2);
    const auto s = mat::analyze_pattern(a);
    EXPECT_EQ(s.bandwidth, 2);
    EXPECT_EQ(s.max_row_nnz, 5);  // penta-diagonal interior
    EXPECT_TRUE(s.full_diagonal);
    EXPECT_TRUE(s.symmetric_pattern);
    for (index_type b = 0; b < 3; ++b) {
        EXPECT_TRUE(mat::is_diagonally_dominant(a, b));
        EXPECT_TRUE(mat::is_symmetric(a, b, 1e-14));
    }
}

TEST(Banded, DirectSolverExactOnPentadiagonal)
{
    const index_type items = 10;
    const index_type rows = 40;
    const auto a = work::stencil_banded<double>(items, rows, 2, 7);
    const auto b = work::random_rhs<double>(items, rows, 8);
    mat::batch_dense<double> x(items, rows, 1);
    bl::log::batch_log logger(items);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_banded(q, a, b, x, logger, {0, items}, 2);
    EXPECT_EQ(logger.num_converged(), items);
    EXPECT_EQ(q.stats().kernel_launches, 1);
    const solver::batch_matrix<double> variant = a;
    for (const double r : solver::residual_norms(variant, b, x)) {
        EXPECT_LE(r, 1e-10);
    }
}

TEST(Banded, MatchesThomasOnTridiagonal)
{
    const index_type items = 6;
    const index_type rows = 25;
    const auto a = work::stencil_3pt<double>(items, rows, 4);
    const auto b = work::random_rhs<double>(items, rows, 5);
    mat::batch_dense<double> x_banded(items, rows, 1);
    mat::batch_dense<double> x_thomas(items, rows, 1);
    bl::log::batch_log l1(items), l2(items);
    xpu::queue q(xpu::make_sycl_policy());
    solver::run_banded(q, a, b, x_banded, l1, {0, items}, 1);
    solver::run_thomas(q, a, b, x_thomas, l2, {0, items});
    for (std::size_t i = 0; i < x_banded.values().size(); ++i) {
        EXPECT_NEAR(x_banded.values()[i], x_thomas.values()[i], 1e-11);
    }
}

TEST(Banded, RejectsWidePatterns)
{
    const auto mech = work::mechanism_by_name("drm19");
    const auto a = work::generate_mechanism<double>(mech);
    const auto b =
        work::mechanism_rhs<double>(a.num_batch_items(), a.rows(), 1);
    mat::batch_dense<double> x(a.num_batch_items(), a.rows(), 1);
    bl::log::batch_log logger(a.num_batch_items());
    xpu::queue q(xpu::make_sycl_policy());
    EXPECT_THROW(solver::run_banded(q, a, b, x, logger,
                                    {0, a.num_batch_items()}, 2),
                 bl::error);
}

TEST(Banded, IterativeSolversHandleBandedInputToo)
{
    const index_type items = 8;
    const index_type rows = 60;
    const auto a_csr = work::stencil_banded<double>(items, rows, 2, 9);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(items, rows, 10);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;  // banded stencil is SPD
    opts.preconditioner = precond::type::ilu;
    opts.criterion = stop::relative(1e-10, 300);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), items);
}
