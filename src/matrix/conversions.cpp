#include "matrix/conversions.hpp"

#include <algorithm>

namespace batchlin::mat {

template <typename T>
batch_csr<T> to_csr(const batch_dense<T>& dense)
{
    const index_type rows = dense.rows();
    const index_type cols = dense.cols();
    const index_type items = dense.num_batch_items();
    // A position belongs to the shared pattern when any item is non-zero
    // there; this keeps round-trips exact even if a single item has an
    // accidental zero at a pattern position.
    std::vector<index_type> row_ptrs(rows + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type i = 0; i < rows; ++i) {
        for (index_type j = 0; j < cols; ++j) {
            bool any = false;
            for (index_type b = 0; b < items && !any; ++b) {
                any = dense.at(b, i, j) != T{0};
            }
            if (any) {
                col_idxs.push_back(j);
            }
        }
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
    batch_csr<T> csr(items, rows, cols, std::move(row_ptrs),
                     std::move(col_idxs));
    for (index_type b = 0; b < items; ++b) {
        T* vals = csr.item_values(b);
        for (index_type i = 0; i < rows; ++i) {
            for (index_type k = csr.row_ptrs()[i]; k < csr.row_ptrs()[i + 1];
                 ++k) {
                vals[k] = dense.at(b, i, csr.col_idxs()[k]);
            }
        }
    }
    return csr;
}

template <typename T>
batch_dense<T> to_dense(const batch_csr<T>& csr)
{
    batch_dense<T> dense(csr.num_batch_items(), csr.rows(), csr.cols());
    for (index_type b = 0; b < csr.num_batch_items(); ++b) {
        const T* vals = csr.item_values(b);
        for (index_type i = 0; i < csr.rows(); ++i) {
            for (index_type k = csr.row_ptrs()[i]; k < csr.row_ptrs()[i + 1];
                 ++k) {
                dense.at(b, i, csr.col_idxs()[k]) = vals[k];
            }
        }
    }
    return dense;
}

template <typename T>
batch_ell<T> to_ell(const batch_csr<T>& csr)
{
    index_type width = 0;
    for (index_type i = 0; i < csr.rows(); ++i) {
        width = std::max(width, csr.row_ptrs()[i + 1] - csr.row_ptrs()[i]);
    }
    batch_ell<T> ell(csr.num_batch_items(), csr.rows(), csr.cols(), width);
    for (index_type i = 0; i < csr.rows(); ++i) {
        index_type k = 0;
        for (index_type p = csr.row_ptrs()[i]; p < csr.row_ptrs()[i + 1];
             ++p, ++k) {
            ell.col_at(i, k) = csr.col_idxs()[p];
        }
    }
    for (index_type b = 0; b < csr.num_batch_items(); ++b) {
        const T* vals = csr.item_values(b);
        for (index_type i = 0; i < csr.rows(); ++i) {
            index_type k = 0;
            for (index_type p = csr.row_ptrs()[i]; p < csr.row_ptrs()[i + 1];
                 ++p, ++k) {
                ell.val_at(b, i, k) = vals[p];
            }
        }
    }
    return ell;
}

template <typename T>
batch_csr<T> to_csr(const batch_ell<T>& ell)
{
    std::vector<index_type> row_ptrs(ell.rows() + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type i = 0; i < ell.rows(); ++i) {
        // Collect + sort the row's columns; ELL does not require sorted
        // slots but CSR does.
        std::vector<index_type> row_cols;
        for (index_type k = 0; k < ell.ell_width(); ++k) {
            if (ell.col_at(i, k) != ell_padding) {
                row_cols.push_back(ell.col_at(i, k));
            }
        }
        std::sort(row_cols.begin(), row_cols.end());
        col_idxs.insert(col_idxs.end(), row_cols.begin(), row_cols.end());
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
    batch_csr<T> csr(ell.num_batch_items(), ell.rows(), ell.cols(),
                     std::move(row_ptrs), std::move(col_idxs));
    for (index_type b = 0; b < ell.num_batch_items(); ++b) {
        T* vals = csr.item_values(b);
        for (index_type i = 0; i < ell.rows(); ++i) {
            for (index_type k = 0; k < ell.ell_width(); ++k) {
                const index_type col = ell.col_at(i, k);
                if (col == ell_padding) {
                    continue;
                }
                for (index_type p = csr.row_ptrs()[i];
                     p < csr.row_ptrs()[i + 1]; ++p) {
                    if (csr.col_idxs()[p] == col) {
                        vals[p] = ell.val_at(b, i, k);
                        break;
                    }
                }
            }
        }
    }
    return csr;
}

template <typename T>
batch_dense<T> to_dense(const batch_ell<T>& ell)
{
    batch_dense<T> dense(ell.num_batch_items(), ell.rows(), ell.cols());
    for (index_type b = 0; b < ell.num_batch_items(); ++b) {
        for (index_type i = 0; i < ell.rows(); ++i) {
            for (index_type k = 0; k < ell.ell_width(); ++k) {
                if (ell.col_at(i, k) != ell_padding) {
                    dense.at(b, i, ell.col_at(i, k)) = ell.val_at(b, i, k);
                }
            }
        }
    }
    return dense;
}

template <typename T>
batch_ell<T> to_ell(const batch_dense<T>& dense)
{
    return to_ell(to_csr(dense));
}

#define BATCHLIN_INSTANTIATE_CONVERSIONS(T)                     \
    template batch_csr<T> to_csr(const batch_dense<T>&);       \
    template batch_dense<T> to_dense(const batch_csr<T>&);     \
    template batch_ell<T> to_ell(const batch_csr<T>&);         \
    template batch_csr<T> to_csr(const batch_ell<T>&);         \
    template batch_dense<T> to_dense(const batch_ell<T>&);     \
    template batch_ell<T> to_ell(const batch_dense<T>&)

BATCHLIN_INSTANTIATE_CONVERSIONS(float);
BATCHLIN_INSTANTIATE_CONVERSIONS(double);

}  // namespace batchlin::mat
