// Work-group execution context.
//
// The paper maps one work-group to one linear system (§3.2) and writes every
// solver as a single fused kernel over that work-group (§3.4). Our simulator
// executes each work-group on one CPU thread; the kernel body is expressed as
// a sequence of barrier-delimited data-parallel phases over the work-items
// (`for_each_item`), which is the hierarchical-SPMD form CPU implementations
// of SYCL lower ND-range kernels into. Collectives implement both reduction
// strategies the paper discusses: the SYCL work-group reduction primitive
// (SLM-based) and the sub-group shuffle path (§3.2, §3.6).
#pragma once

#include <cmath>

#include "util/math.hpp"
#include "xpu/arena.hpp"
#include "xpu/counters.hpp"
#include "xpu/policy.hpp"

namespace batchlin::xpu {

/// Execution context handed to a batched kernel body; models one SYCL
/// work-group (= one CUDA thread block) solving one batch entry.
class group {
public:
    group(index_type group_id, index_type group_size,
          index_type sub_group_size, slm_arena& slm, counters& stats)
        : id_(group_id),
          size_(group_size),
          sub_group_size_(sub_group_size),
          slm_(slm),
          stats_(stats)
    {}

    /// Index of this work-group within the ND-range (== batch entry index).
    index_type id() const { return id_; }
    /// Number of work-items in this work-group.
    index_type size() const { return size_; }
    index_type sub_group_size() const { return sub_group_size_; }
    index_type num_sub_groups() const
    {
        return ceil_div(size_, sub_group_size_);
    }

    slm_arena& slm() { return slm_; }
    counters& stats() { return stats_; }

    /// Arms a scheduled poison fault for this group: `event` strikes at
    /// the `event->phase`-th barrier this group executes. `spill` /
    /// `spill_bytes` bound the launch-wide spilled workspace; the kernel's
    /// binder narrows them to this group's slice via note_global_region.
    /// Null disarms (the default state; one pointer test per barrier).
    void arm_fault(const fault_event* event, std::byte* spill,
                   size_type spill_bytes, unsigned seed)
    {
        fault_event_ = event;
        fault_spill_ = spill;
        fault_spill_bytes_ = spill_bytes;
        fault_seed_ = seed;
        fault_barriers_ = 0;
    }

    /// True while a poison fault is pending on this group; the workspace
    /// binder uses it to gate spill-region bookkeeping off the hot path.
    bool fault_armed() const { return fault_event_ != nullptr; }

    /// Narrows the poison target to this group's own spilled workspace so
    /// a strike never touches another group's memory (which would race).
    void note_global_region(std::byte* base, size_type bytes)
    {
        fault_spill_ = base;
        fault_spill_bytes_ = bytes;
    }

#ifdef BATCHLIN_XPU_CHECK
    /// Attaches the sanitizer: work-item loops route through its lane
    /// scheduler, barriers and collectives report to it.
    void set_checker(check::group_checker* checker) { checker_ = checker; }
    check::group_checker* checker() const { return checker_; }
#endif

    /// Executes `f(item)` for every work-item of the group. A work-group
    /// barrier is implied after the phase, matching the ND-range kernel this
    /// lowers from.
    template <typename F>
    void for_each_item(F&& f)
    {
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr) {
            checker_->run_lane_loop(size_, size_, f);
            barrier();
            return;
        }
#endif
        for (index_type item = 0; item < size_; ++item) {
            f(item);
        }
        barrier();
    }

    /// Executes `f(i)` for logical indices [0, n). When n exceeds the
    /// work-group size the hardware kernel grid-strides; the simulator's
    /// serial lane loop covers both cases. A barrier is implied after.
    template <typename F>
    void for_items(index_type n, F&& f)
    {
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr) {
            checker_->run_lane_loop(size_, n, f);
            barrier();
            return;
        }
#endif
        for (index_type item = 0; item < n; ++item) {
            f(item);
        }
        barrier();
    }

    /// Work-group barrier (local memory fence). Only counts the event; a
    /// single simulator thread executes the group, so no synchronization is
    /// needed for correctness.
    void barrier()
    {
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr) {
            checker_->on_barrier();
        }
#endif
        if (fault_event_ != nullptr) {
            fault_strike();
        }
        ++stats_.group_barriers;
    }

    /// Reduces `value_of(item)` for item in [0, n) to a single sum using the
    /// selected strategy. Deterministic: lanes are combined per sub-group in
    /// ascending order, then across sub-groups in ascending order — the same
    /// order both hardware paths produce for our chunk sizes.
    template <typename T, typename F>
    T reduce_sum(index_type n, F&& value_of, reduce_path path)
    {
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr) {
            checker_->begin_collective("group::reduce_sum()");
        }
#endif
        T total{};
        const index_type active_sub_groups = ceil_div(n, sub_group_size_);
        for (index_type sg = 0; sg < active_sub_groups; ++sg) {
            T partial{};
            const index_type begin = sg * sub_group_size_;
            const index_type end = begin + sub_group_size_ < n
                                       ? begin + sub_group_size_
                                       : n;
            for (index_type item = begin; item < end; ++item) {
#ifdef BATCHLIN_XPU_CHECK
                // Each contribution is read by the hardware lane owning
                // the item; the combine order itself stays ascending (both
                // hardware reduction paths are order-deterministic here).
                if (checker_ != nullptr) {
                    checker_->set_lane(item % size_);
                }
#endif
                partial += value_of(item);
            }
            total += partial;
        }
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr) {
            checker_->end_collective();
        }
#endif
        charge_reduction<T>(n, active_sub_groups, path);
        return total;
    }

    /// Broadcasts a value computed by lane 0; a register broadcast within a
    /// sub-group. Across sub-groups the value bounces through SLM, which
    /// also costs the work-group barrier that makes the bounce visible.
    template <typename T>
    T broadcast(T value)
    {
#ifdef BATCHLIN_XPU_CHECK
        if (checker_ != nullptr) {
            checker_->require_uniform("group::broadcast()");
        }
#endif
        if (num_sub_groups() > 1) {
            stats_.slm_bytes +=
                static_cast<double>(num_sub_groups()) * sizeof(T);
            ++stats_.group_barriers;
        }
        return value;
    }

private:
    /// Attributes the cost of one reduction to the counters.
    template <typename T>
    void charge_reduction(index_type n, index_type active_sub_groups,
                          reduce_path path)
    {
        stats_.flops += static_cast<double>(n);
        if (path == reduce_path::group) {
            // The SYCL group primitive stages all lane values through SLM
            // and runs a tree combine: one write and ~one read per lane.
            stats_.slm_bytes += 2.0 * static_cast<double>(size_) * sizeof(T);
            stats_.group_barriers += static_cast<std::int64_t>(
                std::ceil(std::log2(static_cast<double>(size_))));
        } else {
            // Sub-group shuffles stay in registers; only the per-sub-group
            // partials cross SLM, and only when there is more than one.
            if (active_sub_groups > 1) {
                stats_.slm_bytes +=
                    2.0 * static_cast<double>(active_sub_groups) * sizeof(T);
                stats_.group_barriers += 1;
            }
        }
    }

    /// Executes a pending poison fault once its barrier phase is reached:
    /// corrupts a deterministically chosen spot of the target region and
    /// disarms. Defined out of line (fault.cpp) so `barrier()` stays a
    /// handful of instructions at every inlined call site.
    void fault_strike();

    index_type id_;
    index_type size_;
    index_type sub_group_size_;
    slm_arena& slm_;
    counters& stats_;
    const fault_event* fault_event_ = nullptr;
    std::byte* fault_spill_ = nullptr;
    size_type fault_spill_bytes_ = 0;
    unsigned fault_seed_ = 0;
    index_type fault_barriers_ = 0;
#ifdef BATCHLIN_XPU_CHECK
    check::group_checker* checker_ = nullptr;
#endif
};

}  // namespace batchlin::xpu
