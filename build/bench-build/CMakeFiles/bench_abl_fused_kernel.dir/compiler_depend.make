# Empty compiler generated dependencies file for bench_abl_fused_kernel.
# This may be replaced when dependencies are built.
