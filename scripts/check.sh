#!/usr/bin/env bash
# Builds and tests the ten verification configs:
#  1. the default Release build (tier-1: what CI and users run),
#  2. a Debug + ASan/UBSan build (BATCHLIN_SANITIZE=ON), which also keeps
#     assertions alive so the debug-only workspace-binder name checks run,
#  3. a Debug + ThreadSanitizer build (BATCHLIN_SANITIZE=thread) running
#     the serve:: tests, which exercise the service's submit/worker/reply
#     handoffs from many host threads at once, and
#  4. a BATCHLIN_XPU_CHECK build running the kernel portability sanitizer:
#     the fixture kernels must each trigger their diagnostic, and every
#     shipped solver kernel must pass the full checker (shadow state,
#     phase-hazard scan, shuffled lane-order adversary) clean, and
#  5. the resilience soak under the checked build: the randomized fault
#     schedules (launch failures, SLM alloc failures, NaN/bitflip
#     poisoning) run against the instrumented kernels, proving the fault
#     injector itself is race- and UB-free and that recovery paths hold
#     up with the sanitizer watching, and
#  6. the serve and resilience suites re-run under
#     BATCHLIN_LAUNCH_MODE=graph_replay, proving the record/rebind/replay
#     launch path produces bit-identical results and survives the fault
#     schedules (a replay hitting a device fault invalidates the cached
#     graph and re-records), and
#  7. the serve and mixed-precision suites re-run under
#     BATCHLIN_STORAGE=fp32, flipping the library's default storage
#     precision: the service normalizes every eligible request to fp32
#     storage, the coalescing keys must keep policies separated, and the
#     refinement loop must still restore FP64 accuracy. (The plain solver
#     suite is intentionally excluded: fp32 storage floors true residuals
#     near fp32 epsilon by design, which is exactly what its FP64-accuracy
#     assertions reject — that interplay is covered by the dedicated
#     MixedPrecision/Refine tests instead.), and
#  8. the serve, shard, and resilience suites re-run with
#     BATCHLIN_SHARDS=2, spreading every test service over two device
#     shards (cost-model routing, work stealing, per-shard breakers) in
#     both the persistent and graph_replay launch modes: results must be
#     bit-identical to the unsharded runs and the fault schedules must
#     stay contained to the shard they strike, and
#  9. a BATCHLIN_CONC_CHECK build running the conc:: concurrency model
#     checker over the lock-free serve/shard protocols: the ring,
#     reply-slot, doorbell, and lane-counter invariants are explored
#     exhaustively at 2-3 threads plus >= 10k seeded random schedules at
#     higher thread counts (the seed set is fixed inside the tests, so
#     the run is reproducible), and the seeded mutant suite proves the
#     detector catches each weakened memory order and dropped wake. The
#     serve/shard unit suites also re-run in this build, proving the
#     instrumented shims are transparent when no engine is driving, and
# 10. the failover and chaos-soak suites (device-loss fault model, lane
#     eviction + queue migration, hang watchdog, half-open probes,
#     priority shedding, brownout) at two shards: a bounded-runtime
#     seeded soak mixing shard death/revival, a kernel hang, NaN poison,
#     and open-loop overload, asserting zero lost tickets, balanced
#     backlog books after drain, and bit-identity of successful solves
#     against solo references — in the Release build and again under the
#     instrumented checked build.
# The sanitizer passes are what prove the pooled launch resources, the
# reused spill backing, the serving layer's locking, and the solver
# kernels' SPMD discipline race- and UB-free.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

JOBS=${1:-$(nproc)}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
cd "$ROOT"

echo "== config 1/10: Release (build/)"
cmake -B build -S . -G Ninja >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build -j "$JOBS" --output-on-failure | tail -3

echo "== config 2/10: Debug + ASan/UBSan (build-sanitize/)"
cmake -B build-sanitize -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug -DBATCHLIN_SANITIZE=ON >/dev/null
cmake --build build-sanitize -j "$JOBS"
ctest --test-dir build-sanitize -j "$JOBS" --output-on-failure | tail -3

echo "== config 3/10: Debug + TSan, serve + shard tests (build-tsan/)"
cmake -B build-tsan -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug -DBATCHLIN_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target test_serve test_shard
# OMP_NUM_THREADS=1: libgomp is not TSan-instrumented, so its barriers
# would report false positives. The serve-layer concurrency under test —
# client threads vs worker threads vs stats readers — is plain std::thread
# and stays fully exercised.
OMP_NUM_THREADS=1 ctest --test-dir build-tsan \
  -R '^(Serve|Assemble|Shard[A-Za-z]*)\.' \
  -j "$JOBS" --output-on-failure | tail -3
# The persistent launch mode swaps the mutex/condvar handoff for the
# lock-free ring + futex doorbell + waiter-bit reply slots: re-run the
# serve and shard suites with every default-config service forced onto
# that path, so TSan watches the protocols the conc:: model checker
# (config 9) explores.
OMP_NUM_THREADS=1 BATCHLIN_LAUNCH_MODE=persistent ctest \
  --test-dir build-tsan -R '^(Serve|Assemble|Shard[A-Za-z]*)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== config 4/10: xpu::check kernel portability sanitizer (build-check/)"
cmake -B build-check -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=Debug -DBATCHLIN_XPU_CHECK=ON >/dev/null
cmake --build build-check -j "$JOBS"
# The full suite runs instrumented (default check_level::none), then the
# fixture + adversary suites exercise every diagnostic class and prove the
# shipped kernels lane-order independent.
ctest --test-dir build-check -j "$JOBS" --output-on-failure | tail -3

echo "== config 5/10: resilience fault soak under the checked build"
# Reuses build-check: the fault-injection fixtures, breakdown taxonomy
# regressions, fallback-chain recovery, and the >= 1000-solve randomized
# soak all run against the instrumented execution model.
ctest --test-dir build-check \
  -R '^(FaultPlan|FaultFixtures|BreakdownTaxonomy|ZeroRhs|Resilient|SingularSweep|FaultSoak|ServeResilience)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== config 6/10: serve + resilience under graph_replay launch mode"
# Same Release build, launch mode forced by environment override: the
# serve-vs-solo bit-identity tests and the fault-recovery suites must not
# notice that every fused solve now goes through a recorded command graph.
BATCHLIN_LAUNCH_MODE=graph_replay ctest --test-dir build \
  -R '^(Serve|Assemble|ServeResilience|Resilient|FaultPlan)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== config 7/10: serve + mixed precision under fp32 default storage"
# Same Release build, default storage precision flipped by environment
# override: serve normalizes eligible requests onto fp32 storage, the
# coalescing keys keep storage policies apart, and iterative refinement
# still restores FP64 accuracy on the Table 4 chemistry batches.
BATCHLIN_STORAGE=fp32 ctest --test-dir build \
  -R '^(Serve|Assemble|MixedPrecision|Refine)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== config 8/10: serve + resilience across two device shards"
# Same Release build, shard count forced by environment override onto
# every default-config service: routing, stealing, and the per-shard
# breakers must be invisible to the serve bit-identity and fault-recovery
# suites in both remaining launch modes. (Tests that pin an explicit
# shard layout ignore the override by design and still run.)
BATCHLIN_SHARDS=2 BATCHLIN_LAUNCH_MODE=persistent ctest --test-dir build \
  -R '^(Serve|Assemble|Shard[A-Za-z]*|ServeResilience|Resilient|FaultPlan)\.' \
  -j "$JOBS" --output-on-failure | tail -3
BATCHLIN_SHARDS=2 BATCHLIN_LAUNCH_MODE=graph_replay ctest --test-dir build \
  -R '^(Serve|Assemble|Shard[A-Za-z]*|ServeResilience|Resilient|FaultPlan)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== config 9/10: conc:: concurrency model checker (build-conc/)"
cmake -B build-conc -S . -G Ninja \
  -DCMAKE_BUILD_TYPE=Release -DBATCHLIN_CONC_CHECK=ON >/dev/null
cmake --build build-conc -j "$JOBS" --target test_conc test_serve test_shard
# The model-check suite: exhaustive exploration + fixed-seed random walks
# of the production ring/reply-slot/doorbell/lane protocols, and the
# mutant suite proving the detector's teeth. The serve/shard suites then
# re-run in the same build: off-engine, the shims must be invisible.
ctest --test-dir build-conc -R '^Conc' \
  -j "$JOBS" --output-on-failure | tail -3
OMP_NUM_THREADS=1 ctest --test-dir build-conc \
  -R '^(Serve|Assemble|Shard[A-Za-z]*)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== config 10/10: failover + chaos soak at two shards"
# The robustness layer end to end: the sticky device-loss and hang fault
# kinds, eviction/migration/half-open probing, the hang watchdog,
# priority shedding, the brownout ladder, and the seeded chaos soak
# (death + revival + hang + poison + open-loop overload, >= 1000 solves)
# — first in the Release build, then under the instrumented checked
# build so the fault injector and the failover paths themselves run with
# the execution-model sanitizer watching. Every fault plan is fixed, so
# both runs are bounded and reproducible.
ctest --test-dir build \
  -R '^(FaultPlan|LaneGuard|Failover|Shedding|ChaosSoak)\.' \
  -j "$JOBS" --output-on-failure | tail -3
ctest --test-dir build-check \
  -R '^(FaultPlan|LaneGuard|Failover|Shedding|ChaosSoak)\.' \
  -j "$JOBS" --output-on-failure | tail -3

echo "== all ten configs clean"
