// Tests for the multi-GPU cluster model and an assortment of edge cases
// across the stack: GMRES restart boundaries, exact initial guesses,
// large grid-strided systems, spilled preconditioner workspaces, float
// chemistry generation, and empty/degenerate launches.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/conversions.hpp"
#include "perfmodel/cluster.hpp"
#include "solver/dispatch.hpp"
#include "solver/residual.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
namespace perf = batchlin::perf;

namespace {

perf::solve_profile demo_profile(index_type systems)
{
    perf::solve_profile p;
    p.totals.flops = 1e9 * systems;
    p.totals.slm_bytes = 1e9 * systems;
    p.totals.global_read_bytes = 1e8 * systems;
    p.totals.kernel_launches = 1;
    p.totals.slm_footprint_bytes = 16 * 1024;
    p.num_systems = systems;
    p.work_group_size = 64;
    p.thread_utilization = 1.0;
    p.constant_footprint_per_system = 8192;
    return p;
}

}  // namespace

TEST(Cluster, AuroraNodeHasSixPvc2s)
{
    const perf::cluster_spec node = perf::aurora_node();
    EXPECT_EQ(node.num_devices, 6);
    EXPECT_EQ(node.device.name, "PVC-2S");
    EXPECT_THROW(perf::aurora_node(7), bl::error);
    EXPECT_THROW(perf::aurora_node(0), bl::error);
}

TEST(Cluster, SpeedupGrowsWithDevicesForLargeBatches)
{
    const perf::solve_profile p = demo_profile(1 << 17);
    double prev_time = 1e30;
    for (index_type gpus = 1; gpus <= 6; ++gpus) {
        const perf::cluster_time t =
            perf::estimate_cluster_time(perf::aurora_node(gpus), p);
        EXPECT_LT(t.total_seconds, prev_time) << gpus << " gpus";
        prev_time = t.total_seconds;
        EXPECT_LE(t.speedup, gpus + 0.01);
        EXPECT_EQ(t.max_items_per_device, bl::ceil_div(1 << 17, gpus));
    }
    // Large batch: near-linear efficiency at 6 GPUs.
    const perf::cluster_time six =
        perf::estimate_cluster_time(perf::aurora_node(6), p);
    EXPECT_GT(six.efficiency, 0.8);
}

TEST(Cluster, OverheadFloorsTinyBatches)
{
    const perf::solve_profile p = demo_profile(64);
    const perf::cluster_time six =
        perf::estimate_cluster_time(perf::aurora_node(6), p);
    // Distribution overhead dominates: efficiency collapses.
    EXPECT_LT(six.efficiency, 0.5);
}

TEST(Cluster, SingleDeviceMatchesPlainEstimateUpToOverhead)
{
    const perf::solve_profile p = demo_profile(1 << 15);
    const perf::cluster_spec one{perf::pvc_2s(), 1, 50.0};
    const perf::cluster_time t = perf::estimate_cluster_time(one, p);
    const double plain =
        perf::estimate_time(perf::pvc_2s(), p).total_seconds;
    EXPECT_NEAR(t.total_seconds, plain + 50e-6, 1e-9);
}

// ---------------------------------------------------------------------

TEST(EdgeCases, GmresCrossesRestartBoundaries)
{
    // Restart of 5 on a system needing ~30 iterations: multiple cycles.
    const index_type items = 6;
    const index_type rows = 80;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 77);
    const auto b = work::random_rhs<double>(items, rows, 78);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::gmres;
    opts.gmres_restart = 5;
    opts.criterion = stop::relative(1e-9, 400);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), items);
    EXPECT_GT(result.log.min_iterations(), 5);  // at least two cycles
    const auto rel = solver::relative_residual_norms(a, b, x);
    for (double r : rel) {
        EXPECT_LE(r, 1e-7);
    }
}

TEST(EdgeCases, ExactInitialGuessConvergesWithoutIterations)
{
    const index_type items = 5;
    const index_type rows = 32;
    const auto a_csr = work::stencil_3pt<double>(items, rows, 11);
    const auto b = work::rhs_for_unit_solution(a_csr);
    const solver::batch_matrix<double> a = a_csr;
    for (const auto kind :
         {solver::solver_type::cg, solver::solver_type::bicgstab,
          solver::solver_type::gmres}) {
        mat::batch_dense<double> x(items, rows, 1);
        x.fill(1.0);  // the exact solution
        solver::solve_options opts;
        opts.solver = kind;
        opts.criterion = stop::relative(1e-8, 100);
        xpu::queue q(xpu::make_sycl_policy());
        const auto result = solver::solve(q, a, b, x, opts);
        EXPECT_EQ(result.log.num_converged(), items)
            << solver::to_string(kind);
        EXPECT_EQ(result.log.max_iterations(), 0)
            << solver::to_string(kind);
        for (const double v : x.values()) {
            EXPECT_NEAR(v, 1.0, 1e-12);
        }
    }
}

TEST(EdgeCases, GridStridedSystemsBeyondMaxWorkGroup)
{
    // 1500 rows > max work-group 1024: items grid-stride over rows.
    const index_type items = 3;
    const index_type rows = 1500;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 31);
    const auto b = work::random_rhs<double>(items, rows, 32);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-9, 400);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.config.work_group_size, 1024);
    EXPECT_EQ(result.log.num_converged(), items);
    const auto rel = solver::relative_residual_norms(a, b, x);
    for (double r : rel) {
        EXPECT_LE(r, 1e-7);
    }
}

TEST(EdgeCases, IluWorkspaceSpillsToGlobalAndStillWorks)
{
    // A tight SLM budget forces the ILU factors into global memory; the
    // numerics must not change.
    const auto mech = work::mechanism_by_name("gri30");
    const auto a_csr = work::generate_mechanism_batch<double>(mech, 30);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::mechanism_rhs<double>(30, mech.rows, 3);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::ilu;
    opts.criterion = stop::relative(1e-9, 200);

    auto solve_with_budget = [&](bl::size_type budget) {
        mat::batch_dense<double> x(30, mech.rows, 1);
        xpu::exec_policy policy = xpu::make_sycl_policy();
        policy.slm_bytes_per_group = budget;
        xpu::queue q(policy);
        const auto result = solver::solve(q, a, b, x, opts);
        EXPECT_EQ(result.log.num_converged(), 30);
        return x;
    };
    const auto x_big = solve_with_budget(512 * 1024);
    const auto x_small = solve_with_budget(4 * 1024);  // factors spill
    for (std::size_t i = 0; i < x_big.values().size(); ++i) {
        EXPECT_DOUBLE_EQ(x_big.values()[i], x_small.values()[i]);
    }
}

TEST(EdgeCases, FloatChemistryGenerationMatchesTable4)
{
    for (const auto& mech : work::pele_mechanisms()) {
        const auto a = work::generate_mechanism<float>(mech);
        EXPECT_EQ(a.nnz(), mech.nnz);
        EXPECT_EQ(a.rows(), mech.rows);
        EXPECT_EQ(a.num_batch_items(), mech.num_unique);
    }
}

TEST(EdgeCases, EmptyRangeSolveIsANoOp)
{
    const auto a_csr = work::stencil_3pt<double>(4, 16, 1);
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::random_rhs<double>(4, 16, 2);
    mat::batch_dense<double> x(4, 16, 1);
    solver::solve_options opts;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve_range(q, a, b, x, opts, {2, 2});
    EXPECT_EQ(result.log.num_converged(), 0);
    EXPECT_EQ(result.stats.groups_launched, 0);
    for (const double v : x.values()) {
        EXPECT_EQ(v, 0.0);
    }
}

TEST(EdgeCases, SingleItemBatch)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(1, 24, 5);
    const auto b = work::random_rhs<double>(1, 24, 6);
    mat::batch_dense<double> x(1, 24, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.log.num_converged(), 1);
}

TEST(EdgeCases, TinySystems)
{
    // 2x2 systems: smaller than any sub-group.
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(8, 2, 9);
    const auto b = work::random_rhs<double>(8, 2, 10);
    mat::batch_dense<double> x(8, 2, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.criterion = stop::relative(1e-12, 50);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    EXPECT_EQ(result.config.work_group_size, 16);
    EXPECT_EQ(result.log.num_converged(), 8);
    const auto rel = solver::relative_residual_norms(a, b, x);
    for (double r : rel) {
        EXPECT_LE(r, 1e-10);
    }
}
