// Robustness layer tests (PR 10): the device-loss fault model
// (`xpu::fault_kind::device_lost` / `hang`), serve-side failover (lane
// eviction, queue/ring drain + migration, the hang watchdog, half-open
// probing), overload degradation (priority shedding, deadline
// enforcement, brownout), and the seeded chaos soak that mixes all of it
// with sustained overload and asserts zero lost tickets, balanced books,
// and bit-identity of successful solves against solo references.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "batchlin/batchlin.hpp"
#include "shard/lane.hpp"

namespace bl = batchlin;
namespace mat = batchlin::mat;
namespace serve = batchlin::serve;
namespace shard = batchlin::shard;
namespace solver = batchlin::solver;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
using bl::index_type;
using std::chrono::microseconds;

namespace {

solver::solve_options cg_opts()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = bl::precond::type::jacobi;
    opts.criterion = stop::relative(1e-8, 100);
    return opts;
}

template <typename T>
serve::solve_request<T> make_request(mat::batch_csr<T> a,
                                     const solver::solve_options& opts,
                                     std::uint64_t rhs_seed,
                                     int priority = 0,
                                     microseconds deadline = microseconds(0))
{
    serve::solve_request<T> req;
    const index_type items = a.num_batch_items();
    const index_type rows = a.rows();
    req.b = work::random_rhs<T>(items, rows, rhs_seed);
    req.x = mat::batch_dense<T>(items, rows, 1);
    req.a = std::move(a);
    req.opts = opts;
    req.priority = priority;
    req.deadline = deadline;
    return req;
}

/// Which shard of a clean service with the given layout the stencil
/// pattern (items=1, rows) routes to. The router is deterministic in
/// (key, specs), so the answer transfers to a same-layout service with
/// fault plans installed.
index_type affine_shard_for(index_type shards, index_type rows,
                            std::uint64_t seed)
{
    serve::service_config cfg;
    cfg.shards = shards;
    cfg.workers = 1;
    serve::solve_service service(xpu::make_sycl_policy(), cfg);
    const serve::service_stats before = service.stats();
    service
        .submit(make_request(work::stencil_3pt<double>(1, rows, seed),
                             cg_opts(), seed))
        .get();
    const serve::service_stats after = service.stats();
    for (std::size_t s = 0; s < after.shards.size(); ++s) {
        if (after.shards[s].routed_requests >
            before.shards[s].routed_requests) {
            return static_cast<index_type>(s);
        }
    }
    ADD_FAILURE() << "request routed to no shard";
    return 0;
}

/// Solo reference of one request combo on a fresh, fault-free queue.
mat::batch_dense<double> solo_reference(index_type items, index_type rows,
                                        std::uint64_t mat_seed,
                                        std::uint64_t rhs_seed)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, mat_seed);
    const auto b = work::random_rhs<double>(items, rows, rhs_seed);
    mat::batch_dense<double> x(items, rows, 1);
    xpu::queue q(xpu::make_sycl_policy());
    solver::solve(q, a, b, x, cg_opts());
    return x;
}

}  // namespace

// --- fault model -----------------------------------------------------

TEST(FaultPlan, DeviceLostIsStickyAcrossItsInterval)
{
    xpu::exec_policy policy = xpu::make_sycl_policy();
    xpu::fault_event ev;
    ev.kind = xpu::fault_kind::device_lost;
    ev.launch = 2;
    ev.revive = 5;
    policy.faults.events.push_back(ev);
    xpu::queue q(policy);

    const auto a = work::stencil_3pt<double>(1, 16, 3);
    const auto b = work::random_rhs<double>(1, 16, 4);
    const solver::batch_matrix<double> variant = a;
    auto solve_once = [&] {
        mat::batch_dense<double> x(1, 16, 1);
        solver::solve(q, variant, b, x, cg_opts());
    };
    // Launches 0 and 1 precede the loss.
    EXPECT_NO_THROW(solve_once());
    EXPECT_NO_THROW(solve_once());
    // Launches 2, 3, 4 land in [2, 5): sticky, every retry fails.
    EXPECT_THROW(solve_once(), xpu::device_error);
    EXPECT_THROW(solve_once(), xpu::device_error);
    EXPECT_THROW(solve_once(), xpu::device_error);
    // Launch 5 is past the revival index.
    EXPECT_NO_THROW(solve_once());
}

TEST(FaultPlan, DeviceLostWithoutRevivalNeverComesBack)
{
    xpu::exec_policy policy = xpu::make_sycl_policy();
    xpu::fault_event ev;
    ev.kind = xpu::fault_kind::device_lost;
    ev.launch = 1;
    ev.revive = 0;  // lost forever
    policy.faults.events.push_back(ev);
    xpu::queue q(policy);

    const auto a = work::stencil_3pt<double>(1, 16, 3);
    const auto b = work::random_rhs<double>(1, 16, 4);
    const solver::batch_matrix<double> variant = a;
    auto solve_once = [&] {
        mat::batch_dense<double> x(1, 16, 1);
        solver::solve(q, variant, b, x, cg_opts());
    };
    EXPECT_NO_THROW(solve_once());
    for (int i = 0; i < 8; ++i) {
        EXPECT_THROW(solve_once(), xpu::device_error);
    }
}

TEST(FaultPlan, HangBlocksForItsDurationThenThrows)
{
    xpu::exec_policy policy = xpu::make_sycl_policy();
    xpu::fault_event ev;
    ev.kind = xpu::fault_kind::hang;
    ev.launch = 0;
    ev.hang_us = 2000;
    policy.faults.events.push_back(ev);
    xpu::queue q(policy);

    const auto a = work::stencil_3pt<double>(1, 16, 3);
    const auto b = work::random_rhs<double>(1, 16, 4);
    const solver::batch_matrix<double> variant = a;
    mat::batch_dense<double> x(1, 16, 1);
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(solver::solve(q, variant, b, x, cg_opts()),
                 xpu::device_error);
    const auto blocked = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(blocked, microseconds(2000));
    // The hang hits exactly launch 0; the next launch is clean.
    EXPECT_NO_THROW(solver::solve(q, variant, b, x, cg_opts()));
}

TEST(FaultPlan, ToStringCoversTheNewKinds)
{
    EXPECT_EQ(xpu::to_string(xpu::fault_kind::device_lost), "device_lost");
    EXPECT_EQ(xpu::to_string(xpu::fault_kind::hang), "hang");
}

// --- lane guard state machine ----------------------------------------

TEST(LaneGuard, EvictProbeReviveStateMachine)
{
    shard::lane_guard guard;
    EXPECT_EQ(guard.current(), shard::lane_state::healthy);
    EXPECT_TRUE(guard.available());

    // Only one eviction wins; re-evicting an evicted lane is a no-op.
    EXPECT_TRUE(guard.try_evict());
    EXPECT_FALSE(guard.try_evict());
    EXPECT_EQ(guard.current(), shard::lane_state::evicted);
    EXPECT_FALSE(guard.available());
    EXPECT_EQ(guard.evictions.load(), 1u);

    // One probe at a time: the second claimant is refused.
    EXPECT_TRUE(guard.try_begin_probe());
    EXPECT_FALSE(guard.try_begin_probe());
    EXPECT_EQ(guard.current(), shard::lane_state::probing);
    EXPECT_FALSE(guard.available());

    // A failed probe re-trips to evicted; the next probe may succeed.
    guard.probe_failed();
    EXPECT_EQ(guard.current(), shard::lane_state::evicted);
    EXPECT_TRUE(guard.try_begin_probe());
    guard.probe_succeeded();
    EXPECT_EQ(guard.current(), shard::lane_state::healthy);
    EXPECT_TRUE(guard.available());
    EXPECT_EQ(guard.probes.load(), 2u);
    EXPECT_EQ(guard.probe_failures.load(), 1u);
    EXPECT_EQ(guard.probe_successes.load(), 1u);

    // An available lane cannot enter probing without an eviction first.
    EXPECT_FALSE(guard.try_begin_probe());
}

// --- deterministic failover ------------------------------------------

TEST(Failover, DeviceLossMigratesWorkToSurvivorsBitIdentically)
{
    const index_type rows = 24;
    const index_type victim = affine_shard_for(2, rows, 40);

    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.max_wait = microseconds(100);
    cfg.launch_retries = 1;
    cfg.retry_backoff = microseconds(0);
    cfg.failover = true;
    cfg.probe_interval = microseconds(200);
    cfg.shard_faults.resize(2);
    xpu::fault_event lost;
    lost.kind = xpu::fault_kind::device_lost;
    lost.launch = 0;
    lost.revive = 0;  // never comes back
    cfg.shard_faults[static_cast<std::size_t>(victim)].events.push_back(
        lost);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    std::vector<serve::solve_ticket<double>> tickets;
    for (int i = 0; i < 6; ++i) {
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(2, rows, 40),
                         cg_opts(), 70)));
    }
    const mat::batch_dense<double> want = solo_reference(2, rows, 40, 70);
    for (auto& ticket : tickets) {
        serve::solve_reply<double> reply = ticket.get();
        ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
        EXPECT_EQ(reply.x.values(), want.values());
    }
    service.stop();

    const serve::service_stats s = service.stats();
    EXPECT_GE(s.evictions, 1u);
    EXPECT_GE(s.migrations, 1u);
    EXPECT_GE(s.migrated_systems, 2u);
    // The dead lane never completed anything; the survivor did all of it.
    const auto& dead = s.shards[static_cast<std::size_t>(victim)];
    const auto& alive = s.shards[static_cast<std::size_t>(1 - victim)];
    EXPECT_EQ(dead.completed_systems, 0u);
    EXPECT_EQ(alive.completed_systems, 12u);
    EXPECT_GE(dead.migrated_requests, 1u);
    EXPECT_NE(dead.state, "healthy");
    // Books balance once everything resolved.
    EXPECT_EQ(s.queue_depth_systems, 0u);
    for (const auto& ss : s.shards) {
        EXPECT_EQ(ss.backlog_ns, 0) << "shard " << ss.shard;
    }
    EXPECT_EQ(s.submitted_requests,
              s.completed_requests + s.rejected_requests +
                  s.expired_requests + s.failed_requests);
}

TEST(Failover, SuccessfulProbeRestoresARevivedLane)
{
    const index_type rows = 24;
    const index_type victim = affine_shard_for(2, rows, 40);

    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.max_wait = microseconds(100);
    cfg.launch_retries = 1;
    cfg.retry_backoff = microseconds(0);
    cfg.failover = true;
    cfg.probe_interval = microseconds(100);
    cfg.shard_faults.resize(2);
    // Lost from its very first launch; launches 0 and 1 (the fused
    // attempt and its retry) fail and evict the lane, probes are
    // launches 2 and 3 — the second probe lands past the revival index.
    xpu::fault_event lost;
    lost.kind = xpu::fault_kind::device_lost;
    lost.launch = 0;
    lost.revive = 3;
    cfg.shard_faults[static_cast<std::size_t>(victim)].events.push_back(
        lost);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    // First wave: dies on the victim, fails over, revives via probes.
    std::vector<serve::solve_ticket<double>> tickets;
    for (int i = 0; i < 4; ++i) {
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(2, rows, 40),
                         cg_opts(), 70)));
    }
    for (auto& ticket : tickets) {
        ASSERT_EQ(ticket.get().status, serve::request_status::ok);
    }
    // Give the evicted worker time to run its half-open probes, then
    // keep submitting until the lane reports healthy again.
    bool healthy = false;
    for (int round = 0; round < 200 && !healthy; ++round) {
        std::this_thread::sleep_for(microseconds(500));
        ASSERT_EQ(service
                      .submit(make_request(
                          work::stencil_3pt<double>(2, rows, 40),
                          cg_opts(), 70))
                      .get()
                      .status,
                  serve::request_status::ok);
        healthy = service.stats()
                      .shards[static_cast<std::size_t>(victim)]
                      .state == "healthy";
    }
    EXPECT_TRUE(healthy) << "lane never revived";
    // The loop's last submit may have been routed an instant before the
    // probe flipped the lane healthy; send one more now that it is, so
    // the victim deterministically serves post-revival traffic.
    ASSERT_EQ(service
                  .submit(make_request(work::stencil_3pt<double>(2, rows, 40),
                                       cg_opts(), 70))
                  .get()
                  .status,
              serve::request_status::ok);
    service.stop();

    const serve::service_stats s = service.stats();
    EXPECT_GE(s.evictions, 1u);
    EXPECT_GE(s.probes, 1u);
    EXPECT_GE(s.probe_successes, 1u);
    // The revived lane served traffic again after its probe.
    EXPECT_GT(s.shards[static_cast<std::size_t>(victim)].completed_systems,
              0u);
}

TEST(Failover, WatchdogEvictsAWedgedLaneAndDrainsItsQueue)
{
    const index_type rows = 24;
    const index_type victim = affine_shard_for(2, rows, 40);

    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 2;  // the wedged batch cannot absorb the queue
    cfg.max_wait = microseconds(0);
    cfg.launch_retries = 1;
    cfg.retry_backoff = microseconds(0);
    cfg.failover = true;
    cfg.watchdog_interval = microseconds(300);
    cfg.hang_timeout = microseconds(2000);
    cfg.probe_interval = microseconds(100);
    cfg.shard_faults.resize(2);
    xpu::fault_event wedge;
    wedge.kind = xpu::fault_kind::hang;
    wedge.launch = 0;
    wedge.hang_us = 20000;  // well past the watchdog timeout
    cfg.shard_faults[static_cast<std::size_t>(victim)].events.push_back(
        wedge);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    // One batch wedges the victim's only worker; the rest queues behind
    // it and must be failed over by the watchdog, not the worker.
    std::vector<serve::solve_ticket<double>> tickets;
    for (int i = 0; i < 8; ++i) {
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(2, rows, 40),
                         cg_opts(), 70)));
    }
    for (auto& ticket : tickets) {
        serve::solve_reply<double> reply = ticket.get();
        ASSERT_EQ(reply.status, serve::request_status::ok) << reply.error;
    }
    service.stop();

    const serve::service_stats s = service.stats();
    EXPECT_GE(s.watchdog_evictions, 1u);
    EXPECT_GE(s.evictions, 1u);
    EXPECT_EQ(s.completed_requests, 8u);
    EXPECT_EQ(s.queue_depth_systems, 0u);
    for (const auto& ss : s.shards) {
        EXPECT_EQ(ss.backlog_ns, 0) << "shard " << ss.shard;
    }
}

TEST(Failover, DeadlinePassedDuringFailoverExpiresAtRequeue)
{
    const index_type rows = 24;
    const index_type victim = affine_shard_for(2, rows, 40);

    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.max_wait = microseconds(0);
    cfg.launch_retries = 1;
    // Back off longer than the deadline: by the time the retries
    // exhaust and the entry reaches the failover re-queue checkpoint,
    // its deadline has passed.
    cfg.retry_backoff = std::chrono::microseconds(20000);
    cfg.max_retry_backoff = std::chrono::microseconds(20000);
    cfg.failover = true;
    cfg.shard_faults.resize(2);
    xpu::fault_event lost;
    lost.kind = xpu::fault_kind::device_lost;
    lost.launch = 0;
    lost.revive = 0;
    cfg.shard_faults[static_cast<std::size_t>(victim)].events.push_back(
        lost);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    serve::solve_reply<double> reply =
        service
            .submit(make_request(work::stencil_3pt<double>(1, rows, 40),
                                 cg_opts(), 70, /*priority=*/1,
                                 /*deadline=*/microseconds(5000)))
            .get();
    EXPECT_EQ(reply.status, serve::request_status::expired);
    service.stop();
    EXPECT_GE(service.stats().expired_requests, 1u);
}

TEST(Failover, NoSurvivingLaneFailsWithStructuredError)
{
    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.max_wait = microseconds(0);
    cfg.launch_retries = 1;
    cfg.retry_backoff = microseconds(0);
    cfg.failover = true;
    cfg.probe_interval = std::chrono::microseconds(50000);
    xpu::fault_event lost;
    lost.kind = xpu::fault_kind::device_lost;
    lost.launch = 0;
    lost.revive = 0;
    xpu::fault_plan plan;
    plan.events.push_back(lost);
    cfg.shard_faults = {plan, plan};  // the whole fleet is gone
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    serve::solve_reply<double> reply =
        service
            .submit(make_request(work::stencil_3pt<double>(1, 24, 40),
                                 cg_opts(), 70))
            .get();
    EXPECT_EQ(reply.status, serve::request_status::failed);
    EXPECT_FALSE(reply.error.empty());
    service.stop();
    EXPECT_GE(service.stats().failed_requests, 1u);
}

TEST(Failover, EnvOverrideEnablesFailoverAtDefaultConfig)
{
    // BATCHLIN_FAILOVER=1 flips a default-off config; an explicit
    // setting would win (same escape-hatch contract as BATCHLIN_SHARDS).
    ::setenv("BATCHLIN_FAILOVER", "1", 1);
    const index_type rows = 24;
    const index_type victim = affine_shard_for(2, rows, 40);
    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.launch_retries = 1;
    cfg.retry_backoff = microseconds(0);
    cfg.shard_faults.resize(2);
    xpu::fault_event lost;
    lost.kind = xpu::fault_kind::device_lost;
    lost.launch = 0;
    lost.revive = 0;
    cfg.shard_faults[static_cast<std::size_t>(victim)].events.push_back(
        lost);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);
    ::unsetenv("BATCHLIN_FAILOVER");

    auto reply = service
                     .submit(make_request(
                         work::stencil_3pt<double>(2, rows, 40),
                         cg_opts(), 70))
                     .get();
    EXPECT_EQ(reply.status, serve::request_status::ok) << reply.error;
    service.stop();
    EXPECT_GE(service.stats().evictions, 1u);
}

// --- overload shedding ------------------------------------------------

TEST(Shedding, WatermarkShedsOnlyLowPriorityRequests)
{
    serve::service_config cfg;
    cfg.shards = 1;
    cfg.workers = 1;
    cfg.max_batch = 4;
    cfg.max_wait = microseconds(0);
    cfg.max_queue_systems = 64;
    cfg.shed_watermark = 0.0;  // every queued system is past the mark
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    // Sequential submits: with watermark 0 the first queued system
    // already puts the depth at the mark, so any later priority-0
    // submit that finds a nonempty queue is shed. Submit a burst and
    // count.
    std::vector<serve::solve_ticket<double>> low;
    std::vector<serve::solve_ticket<double>> high;
    for (int i = 0; i < 16; ++i) {
        low.push_back(service.submit(
            make_request(work::stencil_3pt<double>(2, 16, 5), cg_opts(),
                         9, /*priority=*/0)));
        high.push_back(service.submit(
            make_request(work::stencil_3pt<double>(2, 16, 5), cg_opts(),
                         9, /*priority=*/1)));
    }
    std::uint64_t shed = 0;
    for (auto& ticket : low) {
        serve::solve_reply<double> reply = ticket.get();
        if (reply.status == serve::request_status::rejected) {
            EXPECT_NE(reply.error.find("shed"), std::string::npos)
                << reply.error;
            ++shed;
        }
    }
    // Positive priority is never shed, only hard-bounded (the bound is
    // big enough here that it never engages).
    for (auto& ticket : high) {
        EXPECT_EQ(ticket.get().status, serve::request_status::ok);
    }
    service.stop();
    const serve::service_stats s = service.stats();
    EXPECT_EQ(s.shed_requests, shed);
    EXPECT_GE(shed, 1u);
    EXPECT_LE(s.shed_requests, s.rejected_requests);
}

// --- chaos soak -------------------------------------------------------

namespace {

struct soak_outcome {
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected_other = 0;
    std::uint64_t expired = 0;
    std::uint64_t failed = 0;
    std::uint64_t compared_systems = 0;
    serve::service_stats stats;
};

/// The chaos soak: a seeded request storm (open-loop submission, well
/// past the shed watermark) against a sharded service whose fault plans
/// mix sticky device loss with revival, a kernel hang, and NaN poison —
/// while failover, shedding, and the brownout ladder are all on. Every
/// ticket must resolve, the books must balance, and every solve that
/// completed ok must be bit-identical to a solo solve of the same
/// request (poisoned systems report non-converged and are excluded,
/// which the NaN poison mode guarantees).
soak_outcome run_chaos_soak(index_type shards,
                            std::vector<xpu::fault_plan> plans)
{
    constexpr index_type kItems = 4;
    constexpr int kRequests = 384;  // 1536 systems through the storm

    serve::service_config cfg;
    cfg.shards = shards;
    cfg.workers = 2;
    cfg.max_batch = 8;
    cfg.max_wait = microseconds(100);
    cfg.idle_flush = microseconds(10);
    cfg.max_queue_systems = 512;
    cfg.on_full = serve::overflow_policy::block;
    cfg.launch_retries = 1;
    cfg.retry_backoff = microseconds(0);
    cfg.failover = true;
    cfg.watchdog_interval = microseconds(300);
    // Well past any legitimate batch duration even in the instrumented
    // Debug builds (check.sh config 10 reruns this soak there): a
    // timeout near the honest batch time makes the watchdog evict
    // healthy lanes until no shard is left and the storm fails over
    // into errors instead of completions.
    cfg.hang_timeout = microseconds(20'000);
    // Two of the four shards are down at once for part of the storm (and
    // the instrumented builds stretch that overlap): entries legitimately
    // bounce between lanes more than the default shard-count cap before
    // a survivor holds them, so give the soak a deeper migration budget.
    cfg.max_migrations = 32;
    cfg.probe_interval = microseconds(200);
    cfg.shed_watermark = 32.0 / 512.0;
    cfg.brownout = true;  // CG requests: only the window shrink acts
    cfg.shard_faults = std::move(plans);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    // Deterministic request mix over a small combo set so each combo's
    // solo reference is computed once. Requests are pre-built so the
    // submission loop is a genuine burst (open-loop overload).
    struct combo {
        index_type rows;
        std::uint64_t mat_seed;
        std::uint64_t rhs_seed;
    };
    std::vector<combo> combos;
    for (const index_type rows : {16, 24, 32}) {
        for (std::uint64_t s = 0; s < 8; ++s) {
            combos.push_back({rows, 200 + s, 900 + s});
        }
    }
    std::vector<serve::solve_request<double>> requests;
    std::vector<std::size_t> combo_of;
    requests.reserve(kRequests);
    for (int i = 0; i < kRequests; ++i) {
        const std::size_t c =
            static_cast<std::size_t>(i) % combos.size();
        const combo& cb = combos[c];
        // Every 4th request is sheddable; every 16th carries a deadline
        // tight enough that sustained overload expires some of them.
        const int priority = (i % 4 == 0) ? 0 : 1;
        const microseconds deadline =
            (i % 16 == 7) ? microseconds(3000) : microseconds(0);
        requests.push_back(make_request(
            work::stencil_3pt<double>(kItems, cb.rows, cb.mat_seed),
            cg_opts(), cb.rhs_seed, priority, deadline));
        combo_of.push_back(c);
    }

    std::vector<serve::solve_ticket<double>> tickets;
    tickets.reserve(requests.size());
    for (auto& request : requests) {
        tickets.push_back(service.submit(std::move(request)));
    }

    // Zero lost tickets: every single ticket resolves.
    std::map<std::size_t, mat::batch_dense<double>> references;
    soak_outcome out;
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        serve::solve_reply<double> reply = tickets[i].get();
        switch (reply.status) {
        case serve::request_status::ok: {
            ++out.ok;
            const combo& cb = combos[combo_of[i]];
            auto it = references.find(combo_of[i]);
            if (it == references.end()) {
                it = references
                         .emplace(combo_of[i],
                                  solo_reference(kItems, cb.rows,
                                                 cb.mat_seed,
                                                 cb.rhs_seed))
                         .first;
            }
            const mat::batch_dense<double>& want = it->second;
            for (index_type item = 0; item < kItems; ++item) {
                if (!reply.log.converged(item)) {
                    continue;  // poison strikes report non-converged
                }
                EXPECT_EQ(std::memcmp(reply.x.item_values(item),
                                      want.item_values(item),
                                      sizeof(double) *
                                          static_cast<std::size_t>(
                                              cb.rows)),
                          0)
                    << "request " << i << " item " << item
                    << " diverged from the solo reference";
                ++out.compared_systems;
            }
            break;
        }
        case serve::request_status::rejected:
            if (reply.error.find("shed") != std::string::npos) {
                ++out.shed;
            } else {
                ++out.rejected_other;
            }
            break;
        case serve::request_status::expired:
            ++out.expired;
            break;
        case serve::request_status::failed:
            ++out.failed;
            break;
        }
    }
    service.drain();
    service.stop();
    out.stats = service.stats();
    return out;
}

void assert_soak_invariants(const soak_outcome& out, index_type shards)
{
    const serve::service_stats& s = out.stats;
    std::printf("soak: ok=%llu shed=%llu rejected=%llu expired=%llu "
                "failed=%llu | evict=%llu migrate=%llu probe_ok=%llu "
                "brownout=%llu\n",
                static_cast<unsigned long long>(out.ok),
                static_cast<unsigned long long>(out.shed),
                static_cast<unsigned long long>(out.rejected_other),
                static_cast<unsigned long long>(out.expired),
                static_cast<unsigned long long>(out.failed),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.migrations),
                static_cast<unsigned long long>(s.probe_successes),
                static_cast<unsigned long long>(s.brownout_batches));
    // Ticket conservation: submitted == resolved, by both the replies
    // we observed and the service's own counters.
    EXPECT_EQ(out.ok + out.shed + out.rejected_other + out.expired +
                  out.failed,
              384u);
    EXPECT_EQ(s.submitted_requests,
              s.completed_requests + s.rejected_requests +
                  s.expired_requests + s.failed_requests);
    EXPECT_EQ(s.completed_requests, out.ok);
    EXPECT_EQ(s.shed_requests, out.shed);

    // The storm was big enough to count as a soak.
    EXPECT_GE(s.submitted_systems, 1000u);
    EXPECT_GE(s.completed_systems, 1000u);
    EXPECT_GE(out.compared_systems, 1000u);

    // Chaos actually happened: the dead lane was evicted, its work
    // migrated, a probe brought a revived lane back, overload shed
    // low-priority work, and the brownout ladder engaged.
    EXPECT_GE(s.evictions, 1u);
    EXPECT_GE(s.migrations, 1u);
    EXPECT_GE(s.probes, 1u);
    EXPECT_GE(s.probe_successes, 1u);
    EXPECT_GE(s.shed_requests, 1u);
    EXPECT_GE(s.brownout_batches, 1u);
    EXPECT_GE(s.launch_faults, 1u);

    // Books balance after the drain: nothing queued, no backlog charge
    // stranded on any lane (dead, revived, or healthy).
    EXPECT_EQ(s.queue_depth_requests, 0u);
    EXPECT_EQ(s.queue_depth_systems, 0u);
    ASSERT_EQ(s.shards.size(), static_cast<std::size_t>(shards));
    for (const auto& ss : s.shards) {
        EXPECT_EQ(ss.backlog_ns, 0) << "shard " << ss.shard;
        EXPECT_EQ(ss.queue_depth_systems, 0u) << "shard " << ss.shard;
    }

    // The machine-readable dump the soak harness and CI parse.
    const std::string json = s.to_json();
    EXPECT_NE(json.find("\"evictions\": "), std::string::npos);
    EXPECT_NE(json.find("\"shed_requests\": "), std::string::npos);
    EXPECT_NE(json.find("\"shards\": ["), std::string::npos);
}

}  // namespace

TEST(ChaosSoak, TwoShardsSurviveDeathRevivalHangAndOverload)
{
    std::vector<xpu::fault_plan> plans(2);
    // Shard 0: lost from launch 4 through 11 — the fused attempt at 4
    // and its retry at 5 fail and evict the lane, the probes walk the
    // counter to the revival index. Later, one launch wedges long
    // enough to trip the watchdog.
    xpu::fault_event lost;
    lost.kind = xpu::fault_kind::device_lost;
    lost.launch = 4;
    lost.revive = 12;
    plans[0].events.push_back(lost);
    xpu::fault_event wedge;
    wedge.kind = xpu::fault_kind::hang;
    wedge.launch = 40;
    wedge.hang_us = 30'000;  // well past the soak's 20 ms watchdog timeout
    plans[0].events.push_back(wedge);
    // Shard 1: transient NaN poison strikes (mode nan keeps poisoned
    // systems non-converged, preserving the bit-identity check).
    for (const std::uint64_t at : {6ull, 15ull, 33ull}) {
        xpu::fault_event poison;
        poison.kind = xpu::fault_kind::poison;
        poison.launch = at;
        poison.group = 0;
        poison.phase = 1;
        poison.target = xpu::fault_target::slm;
        poison.mode = xpu::poison_mode::nan;
        plans[1].events.push_back(poison);
    }

    const soak_outcome out = run_chaos_soak(2, std::move(plans));
    assert_soak_invariants(out, 2);
}

TEST(ChaosSoak, FourShardsSurviveTwoDeathsAndOverload)
{
    std::vector<xpu::fault_plan> plans(4);
    xpu::fault_event lost0;
    lost0.kind = xpu::fault_kind::device_lost;
    lost0.launch = 4;
    lost0.revive = 12;
    plans[0].events.push_back(lost0);
    // A second, longer outage on another shard (still revived so the
    // probe path is exercised on two lanes).
    xpu::fault_event lost2;
    lost2.kind = xpu::fault_kind::device_lost;
    lost2.launch = 6;
    lost2.revive = 24;
    plans[2].events.push_back(lost2);
    xpu::fault_event poison;
    poison.kind = xpu::fault_kind::poison;
    poison.launch = 9;
    poison.group = 0;
    poison.phase = 1;
    poison.target = xpu::fault_target::slm;
    poison.mode = xpu::poison_mode::nan;
    plans[3].events.push_back(poison);

    const soak_outcome out = run_chaos_soak(4, std::move(plans));
    assert_soak_invariants(out, 4);
}
