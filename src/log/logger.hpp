// Per-system convergence logging (paper §3: "monitor the solver convergence
// for each system in the batch individually").
//
// Each work-group records its own iteration count, final (implicit)
// residual norm, and convergence flag; the host-side summary aggregates
// them for reporting and for the benchmark tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace batchlin::log {

/// Terminal state of one system's solve. Replaces the old converged bit:
/// a system that did not converge now says *why*, so the resilience layer
/// (`solver::solve_resilient`, serve:: retry) can pick the right remedy —
/// breakdowns re-solve down the fallback chain, `device_fault` retries,
/// `max_iterations` is an accuracy problem, not a fault.
enum class solve_status : std::uint8_t {
    /// The stop criterion was met (also: zero right-hand side, which is
    /// defined as immediately converged with x = 0).
    converged,
    /// Iteration budget exhausted without meeting the criterion.
    max_iterations,
    /// Lanczos/Krylov scalar rho collapsed to zero (CG/BiCGSTAB serious
    /// breakdown: the new residual is orthogonal to the shadow residual).
    breakdown_rho,
    /// BiCGSTAB stabilization scalar omega collapsed to zero; the update
    /// cannot proceed.
    breakdown_omega,
    /// The search direction was annihilated by the operator (p'Ap == 0 in
    /// CG: A is singular or indefinite along the current direction).
    direction_annihilated,
    /// A residual-norm recurrence produced NaN/Inf — workspace corruption
    /// or hopeless conditioning.
    non_finite,
    /// The device runtime faulted (injected or real); the result buffer
    /// for this system is not trustworthy.
    device_fault,
    /// Direct factorization hit a zero pivot: the matrix is singular to
    /// working precision.
    singular,
};

/// Human-readable status name for logs and error messages.
std::string to_string(solve_status status);

/// Result record of one batch solve, indexed by batch entry.
class batch_log {
public:
    batch_log() = default;
    explicit batch_log(index_type num_systems)
        : iterations_(num_systems, 0),
          residual_norms_(num_systems, 0.0),
          statuses_(num_systems, solve_status::max_iterations)
    {}

    index_type num_systems() const
    {
        return static_cast<index_type>(iterations_.size());
    }

    /// Called by the work-group solving system `batch` when it exits.
    void record(index_type batch, index_type iterations,
                double residual_norm, solve_status status)
    {
        iterations_[batch] = iterations;
        residual_norms_[batch] = residual_norm;
        statuses_[batch] = status;
    }

    index_type iterations(index_type batch) const
    {
        return iterations_[batch];
    }
    double residual_norm(index_type batch) const
    {
        return residual_norms_[batch];
    }
    solve_status status(index_type batch) const { return statuses_[batch]; }
    bool converged(index_type batch) const
    {
        return statuses_[batch] == solve_status::converged;
    }

    const std::vector<index_type>& all_iterations() const
    {
        return iterations_;
    }
    const std::vector<double>& all_residual_norms() const
    {
        return residual_norms_;
    }
    const std::vector<solve_status>& all_statuses() const
    {
        return statuses_;
    }

    index_type num_converged() const;
    /// Number of systems whose terminal state equals `status`.
    index_type count_status(solve_status status) const;
    index_type min_iterations() const;
    index_type max_iterations() const;
    double mean_iterations() const;
    double max_residual_norm() const;

    /// Enables per-iteration residual recording (off by default: the
    /// history costs num_systems x max_iters doubles).
    void enable_history(index_type max_iterations);
    bool history_enabled() const { return history_stride_ > 0; }

    /// Called by the solver kernel after iteration `iter` (0-based) of
    /// system `batch`; no-op unless history is enabled.
    void record_iteration(index_type batch, index_type iter,
                          double residual_norm)
    {
        if (history_stride_ > 0 && iter < history_stride_) {
            history_[static_cast<std::size_t>(batch) * history_stride_ +
                     iter] = residual_norm;
        }
    }

    /// Residual norm of system `batch` after iteration `iter`, or NaN when
    /// outside the recorded range.
    double residual_at(index_type batch, index_type iter) const;

    /// Geometric-mean per-iteration contraction factor of system `batch`
    /// estimated from the recorded history (a least-squares fit of the
    /// log-residual slope); NaN without history or with < 3 iterations.
    /// Values < 1 indicate convergence; smaller is faster.
    double convergence_rate(index_type batch) const;

private:
    std::vector<index_type> iterations_;
    std::vector<double> residual_norms_;
    std::vector<solve_status> statuses_;
    index_type history_stride_ = 0;
    std::vector<double> history_;
};

}  // namespace batchlin::log
