// Coalesced-batch assembly: the solver-side half of the serve:: dynamic
// batcher.
//
// The paper's throughput argument (§3.4) is that many small systems fused
// into one kernel launch amortize the per-launch overhead. A stream of
// independent solve requests can only exploit that if someone gathers the
// requests into one batch before it hits the device: `solve_coalesced`
// takes N compatible requests (same pattern, same options), assembles one
// combined batch, runs exactly one fused solve, and scatters each
// request's solution and convergence record back. Because every system is
// solved by its own work-group with a launch configuration that depends
// only on the system shape, the per-request results are bit-identical to
// solo `solve` calls (tests/test_serve.cpp asserts this).
#pragma once

#include <vector>

#include "solver/dispatch.hpp"
#include "solver/options.hpp"

namespace batchlin::solver {

/// One request's slice of a coalesced solve. `x` carries the initial
/// guess on entry and the solution on return, exactly like `solve`.
template <typename T>
struct assembly_part {
    const batch_matrix<T>* a = nullptr;
    const mat::batch_dense<T>* b = nullptr;
    mat::batch_dense<T>* x = nullptr;

    index_type items() const
    {
        return std::visit(
            [](const auto& m) { return m.num_batch_items(); }, *a);
    }
};

/// Whether two batches may share one fused launch: same format, same
/// dimensions, and the same sparsity pattern (BatchCsr row pointers and
/// column indexes, BatchEll column indexes). Batch sizes may differ.
template <typename T>
bool can_coalesce(const batch_matrix<T>& lhs, const batch_matrix<T>& rhs);

/// Solves all parts as one fused batch on `q` and scatters each part's
/// solution back into its `x`. Part `i`'s systems occupy batch entries
/// [offset_i, offset_i + items_i) of the combined result, with offsets in
/// part order; use `split_log` to slice the combined log per part. The
/// single-part case forwards to `solve` directly (no gather/scatter).
template <typename T>
solve_result solve_coalesced(xpu::queue& q,
                             const std::vector<assembly_part<T>>& parts,
                             const solve_options& opts);

/// Extracts the per-system convergence records of one part from the
/// combined log: entries [offset, offset + items) re-indexed from zero.
log::batch_log split_log(const log::batch_log& combined, index_type offset,
                         index_type items);

}  // namespace batchlin::solver
