// Ablation: BatchCsr vs BatchEll vs BatchDense across row-balance regimes
// (paper §3.1/§3.2).
//
// BatchEll wins when rows are balanced (its padding is cheap and the
// column-major accesses coalesce); BatchCsr is robust to row-length
// variation; BatchDense pays for every explicit zero. The bench runs the
// same solves through all three formats on (a) the balanced chemistry
// patterns and (b) a deliberately imbalanced pattern with one dense row.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "matrix/conversions.hpp"
#include "matrix/properties.hpp"

using namespace bench;

namespace {

void run_formats(const perf::device_spec& device, const char* label,
                 const mat::batch_csr<double>& csr,
                 const mat::batch_dense<double>& b)
{
    const index_type target = 1 << 17;
    solver::solve_options opts = pele_options();

    const solver::batch_matrix<double> as_csr = csr;
    const solver::batch_matrix<double> as_ell = mat::to_ell(csr);
    const solver::batch_matrix<double> as_dense = mat::to_dense(csr);

    const measured_solve m_csr = measure(device, as_csr, b, opts);
    const measured_solve m_ell = measure(device, as_ell, b, opts);
    const measured_solve m_dense = measure(device, as_dense, b, opts);

    const double imbalance = mat::row_imbalance(csr);
    const double csr_ms = projected_ms(device, m_csr, target);
    const double ell_ms = projected_ms(device, m_ell, target);
    const char* winner = ell_ms < 0.98 * csr_ms   ? "BatchEll"
                         : csr_ms < 0.98 * ell_ms ? "BatchCsr"
                                                  : "tie";
    std::printf("%-16s | %6.2f | %11.3f %11.3f %11.3f | %s\n", label,
                imbalance, csr_ms, ell_ms,
                projected_ms(device, m_dense, target), winner);
}

/// Pattern with one dense row: max/avg row length far from 1, the regime
/// where ELL's padding explodes.
mat::batch_csr<double> imbalanced_batch(index_type items, index_type rows)
{
    std::vector<index_type> row_ptrs(rows + 1, 0);
    std::vector<index_type> col_idxs;
    for (index_type i = 0; i < rows; ++i) {
        if (i == rows - 1) {
            for (index_type j = 0; j < rows; ++j) {
                col_idxs.push_back(j);
            }
        } else {
            if (i > 0) {
                col_idxs.push_back(i - 1);
            }
            col_idxs.push_back(i);
        }
        row_ptrs[i + 1] = static_cast<index_type>(col_idxs.size());
    }
    mat::batch_csr<double> a(items, rows, rows, std::move(row_ptrs),
                             std::move(col_idxs));
    for (index_type item = 0; item < items; ++item) {
        double* vals = a.item_values(item);
        for (index_type i = 0; i < rows; ++i) {
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                vals[k] = a.col_idxs()[k] == i
                              ? 4.0 + 0.01 * item
                              : -1.0 / rows;
            }
        }
    }
    return a;
}

}  // namespace

int main()
{
    const perf::device_spec device = perf::pvc_1s();
    std::printf("Ablation: matrix format choice (paper §3.1), "
                "BatchBicgstab+Jacobi, 2^17 matrices, %s\n\n",
                device.name.c_str());
    std::printf("%-16s | %6s | %11s %11s %11s | %s\n", "input",
                "imbal", "Csr [ms]", "Ell [ms]", "Dense [ms]", "sparse winner");
    rule(80);

    for (const index_type rows : {32, 64, 128}) {
        // Few-nnz-per-row, perfectly balanced: BatchEll's home turf.
        const index_type items = measurement_batch(64);
        const auto csr = work::stencil_3pt<double>(items, rows, 42);
        const auto b = work::random_rhs<double>(items, rows, 7);
        const std::string label = "stencil-" + std::to_string(rows);
        run_formats(device, label.c_str(), csr, b);
    }
    rule(80);
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const index_type items = measurement_batch(mech.num_unique);
        const auto csr = work::generate_mechanism_batch<double>(mech, items);
        const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);
        run_formats(device, mech.name.c_str(), csr, b);
    }
    {
        const index_type items = measurement_batch(64);
        const auto csr = imbalanced_batch(items, 64);
        const auto b = work::random_rhs<double>(items, 64, 7);
        run_formats(device, "dense-row-64", csr, b);
    }
    std::printf("\n(ELL pads every row to the longest one: balanced "
                "patterns pad little and coalesce; the dense-row case "
                "shows the penalty regime)\n");
    return 0;
}
