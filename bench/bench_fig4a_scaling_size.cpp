// Figure 4a reproduction: runtime of the SYCL batched solvers on one stack
// of the PVC vs the matrix size, with the batch fixed at 2^17 3-point
// stencil systems. The paper's claim: runtime increases (almost) linearly
// with the matrix size for both BatchCg and BatchBicgstab.
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    const index_type target_batch = 1 << 17;
    const perf::device_spec device = perf::pvc_1s();
    const index_type sizes[] = {16, 32, 48, 64, 96, 128, 192, 256};

    std::printf("Figure 4a: scaling w.r.t. matrix size "
                "(3pt stencil, 2^17 matrices, %s)\n\n",
                device.name.c_str());
    std::printf("%6s | %12s %10s %8s | %12s %10s %8s\n", "rows",
                "BatchCg[ms]", "per-row", "iters", "BiCGSTAB[ms]",
                "per-row", "iters");
    rule(80);

    for (const index_type rows : sizes) {
        const index_type items = measurement_batch(64);
        const solver::batch_matrix<double> a =
            work::stencil_3pt<double>(items, rows, 42);
        const auto b = work::random_rhs<double>(items, rows, 7);

        const measured_solve cg =
            measure(device, a, b, stencil_options(solver::solver_type::cg));
        const measured_solve bicg = measure(
            device, a, b, stencil_options(solver::solver_type::bicgstab));

        const double cg_ms = projected_ms(device, cg, target_batch);
        const double bicg_ms = projected_ms(device, bicg, target_batch);
        std::printf("%6d | %12.3f %10.5f %8.1f | %12.3f %10.5f %8.1f%s\n",
                    rows, cg_ms, cg_ms / rows, cg.mean_iterations, bicg_ms,
                    bicg_ms / rows, bicg.mean_iterations,
                    cg.converged_all && bicg.converged_all
                        ? ""
                        : "  [!unconverged]");
    }
    std::printf("\n(per-row column ~ constant indicates the paper's linear "
                "scaling in the matrix size)\n");
    return 0;
}
