#include "solver/direct.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "blas/device_blas.hpp"
#include "matrix/properties.hpp"
#include "solver/kernel_common.hpp"
#include "util/dense_lu.hpp"
#include "util/error.hpp"

namespace batchlin::solver {

template <typename T>
void run_thomas(xpu::queue& q, const mat::batch_csr<T>& a,
                const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                log::batch_log& logger, xpu::batch_range range)
{
    const mat::pattern_stats stats = mat::analyze_pattern(a);
    BATCHLIN_ENSURE_MSG(stats.bandwidth <= 1 && stats.full_diagonal,
                        "batch_thomas requires a tridiagonal pattern with "
                        "a full diagonal");
    const index_type rows = a.rows();
    const mat::batch_dense<T>* b_in = &b;
    mat::batch_dense<T>* x_out = &x;

    // One launch; each system is solved by one lane of its work-group
    // (the Thomas recurrence has no fine-grained parallelism, which is
    // exactly the paper's criticism of this method class).
    q.run_batch(
        range.size(), 16, 16,
        [&, rows](xpu::group& g) {
            const index_type batch = g.id();
            const T* vals = a.item_values(batch);
            const auto& rp = a.row_ptrs();
            const auto& ci = a.col_idxs();
            auto entry = [&](index_type row, index_type col) -> T {
                for (index_type k = rp[row]; k < rp[row + 1]; ++k) {
                    if (ci[k] == col) {
                        return vals[k];
                    }
                }
                return T{0};
            };
            // Forward elimination into SLM scratch.
            xpu::dspan<T> c_prime = g.slm().alloc<T>(rows);
            xpu::dspan<T> d_prime = g.slm().alloc<T>(rows);
            bool ok = true;
            {
                const T beta = entry(0, 0);
                ok = beta != T{0};
                c_prime[0] = ok ? entry(0, 1) / beta : T{0};
                d_prime[0] = ok ? b_in->at(batch, 0, 0) / beta : T{0};
            }
            for (index_type i = 1; i < rows && ok; ++i) {
                const T lower = entry(i, i - 1);
                const T diag = entry(i, i);
                const T upper = i + 1 < rows ? entry(i, i + 1) : T{0};
                const T denom = diag - lower * c_prime[i - 1];
                ok = std::abs(denom) > std::numeric_limits<T>::min();
                if (!ok) {
                    break;
                }
                c_prime[i] = upper / denom;
                d_prime[i] =
                    (b_in->at(batch, i, 0) - lower * d_prime[i - 1]) / denom;
            }
            g.barrier();
            if (ok) {
                x_out->at(batch, rows - 1, 0) = d_prime[rows - 1];
                for (index_type i = rows - 2; i >= 0; --i) {
                    x_out->at(batch, i, 0) =
                        d_prime[i] -
                        c_prime[i] * x_out->at(batch, i + 1, 0);
                }
            }
            g.barrier();
            // 8 flops per row forward, 2 backward; traffic: matrix +
            // rhs constant, scratch in SLM, x written to global.
            g.stats().flops += 10.0 * rows;
            g.stats().constant_read_bytes +=
                static_cast<double>(a.nnz() + rows) * sizeof(T);
            g.stats().slm_bytes += 4.0 * rows * sizeof(T);
            g.stats().global_write_bytes +=
                static_cast<double>(rows) * sizeof(T);
            record_outcome(g, logger, batch, 1, T{0},
                           ok ? log::solve_status::converged
                              : log::solve_status::singular);
        },
        range.begin, "batch_thomas");
}

template <typename T>
void run_dense_lu(xpu::queue& q, const mat::batch_csr<T>& a,
                  const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                  log::batch_log& logger, xpu::batch_range range)
{
    BATCHLIN_ENSURE_MSG(a.rows() == a.cols(),
                        "direct LU requires square systems");
    const index_type rows = a.rows();
    const size_type dense_elems = static_cast<size_type>(rows) * rows;
    // The between-kernels allocation of the batched direct method (§1):
    // a dense workspace plus pivots per system, in global memory.
    std::vector<T> workspace(static_cast<std::size_t>(dense_elems) *
                             range.size());
    std::vector<index_type> pivots(static_cast<std::size_t>(rows) *
                                   range.size());
    std::vector<std::uint8_t> singular(range.size(), 0);
    const mat::batch_dense<T>* b_in = &b;
    mat::batch_dense<T>* x_out = &x;

    // Kernel 1: scatter CSR into the dense workspace and factorize.
    q.run_batch(
        range.size(), 16, 16,
        [&, rows, dense_elems](xpu::group& g) {
            const index_type batch = g.id();
            const index_type local = batch - range.begin;
            T* dense = workspace.data() +
                       static_cast<size_type>(local) * dense_elems;
            index_type* piv =
                pivots.data() + static_cast<size_type>(local) * rows;
            g.for_items(static_cast<index_type>(dense_elems),
                        [&](index_type e) { dense[e] = T{0}; });
            const T* vals = a.item_values(batch);
            g.for_items(rows, [&](index_type i) {
                for (index_type k = a.row_ptrs()[i];
                     k < a.row_ptrs()[i + 1]; ++k) {
                    dense[static_cast<size_type>(i) * rows +
                          a.col_idxs()[k]] = vals[k];
                }
            });
            singular[local] = lu_factorize(rows, dense, piv) ? 0 : 1;
            g.barrier();
            const double n = rows;
            g.stats().flops += 2.0 / 3.0 * n * n * n;
            g.stats().constant_read_bytes +=
                static_cast<double>(a.nnz()) * sizeof(T);
            // The factorization sweeps the dense workspace ~n/3 times.
            g.stats().global_read_bytes += n * n * (n / 3.0) * sizeof(T);
            g.stats().global_write_bytes += n * n * (n / 3.0) * sizeof(T);
        },
        range.begin, "batch_dense_lu_factorize");

    // Kernel 2: forward/backward substitution from the stored factors.
    q.run_batch(
        range.size(), 16, 16,
        [&, rows, dense_elems](xpu::group& g) {
            const index_type batch = g.id();
            const index_type local = batch - range.begin;
            const T* dense = workspace.data() +
                             static_cast<size_type>(local) * dense_elems;
            const index_type* piv =
                pivots.data() + static_cast<size_type>(local) * rows;
            const bool ok = singular[local] == 0;
            if (ok) {
                xpu::dspan<T> sol = g.slm().alloc<T>(rows);
                g.for_items(rows, [&](index_type i) {
                    sol[i] = b_in->at(batch, i, 0);
                });
                lu_solve(rows, dense, piv, sol.data);
                g.for_items(rows, [&](index_type i) {
                    x_out->at(batch, i, 0) = sol[i];
                });
            }
            const double n = rows;
            g.stats().flops += 2.0 * n * n;
            g.stats().global_read_bytes += n * n * sizeof(T);
            g.stats().constant_read_bytes +=
                static_cast<double>(rows) * sizeof(T);
            g.stats().slm_bytes += 4.0 * n * sizeof(T);
            g.stats().global_write_bytes +=
                static_cast<double>(rows) * sizeof(T);
            record_outcome(g, logger, batch, 1, T{0},
                           ok ? log::solve_status::converged
                              : log::solve_status::singular);
        },
        range.begin, "batch_dense_lu_solve");
}

template <typename T>
void run_banded(xpu::queue& q, const mat::batch_csr<T>& a,
                const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                log::batch_log& logger, xpu::batch_range range,
                index_type max_bandwidth)
{
    const mat::pattern_stats stats = mat::analyze_pattern(a);
    BATCHLIN_ENSURE_MSG(stats.bandwidth <= max_bandwidth,
                        "pattern bandwidth exceeds the banded solver's "
                        "limit");
    BATCHLIN_ENSURE_MSG(stats.full_diagonal,
                        "banded elimination requires a full diagonal");
    const index_type rows = a.rows();
    const index_type bw = max_bandwidth;
    const index_type band_cols = 2 * bw + 1;
    const mat::batch_dense<T>* b_in = &b;
    mat::batch_dense<T>* x_out = &x;

    q.run_batch(
        range.size(), 16, 16,
        [&, rows, bw, band_cols](xpu::group& g) {
            const index_type batch = g.id();
            // Band storage in SLM: row i holds columns i-bw .. i+bw.
            xpu::dspan<T> band = g.slm().alloc<T>(rows * band_cols);
            xpu::dspan<T> rhs = g.slm().alloc<T>(rows);
            g.for_items(rows * band_cols,
                        [&](index_type e) { band[e] = T{0}; });
            const T* vals = a.item_values(batch);
            g.for_items(rows, [&](index_type i) {
                for (index_type k = a.row_ptrs()[i];
                     k < a.row_ptrs()[i + 1]; ++k) {
                    const index_type off = a.col_idxs()[k] - i + bw;
                    band[i * band_cols + off] = vals[k];
                }
                rhs[i] = b_in->at(batch, i, 0);
            });
            // Forward elimination within the band (no pivoting: the
            // problem space is diagonally dominant).
            bool ok = true;
            double flops = 0.0;
            for (index_type k = 0; k < rows && ok; ++k) {
                const T pivot = band[k * band_cols + bw];
                ok = std::abs(pivot) > std::numeric_limits<T>::min();
                if (!ok) {
                    break;
                }
                const index_type i_end = std::min(k + bw, rows - 1);
                for (index_type i = k + 1; i <= i_end; ++i) {
                    const index_type off_ik = k - i + bw;
                    const T factor = band[i * band_cols + off_ik] / pivot;
                    if (factor == T{0}) {
                        continue;
                    }
                    const index_type j_end = std::min(k + bw, rows - 1);
                    for (index_type j = k; j <= j_end; ++j) {
                        band[i * band_cols + (j - i + bw)] -=
                            factor * band[k * band_cols + (j - k + bw)];
                    }
                    rhs[i] -= factor * rhs[k];
                    flops += 2.0 * (j_end - k + 2);
                }
            }
            g.barrier();
            // Back substitution.
            if (ok) {
                for (index_type i = rows - 1; i >= 0; --i) {
                    T sum = rhs[i];
                    const index_type j_end = std::min(i + bw, rows - 1);
                    for (index_type j = i + 1; j <= j_end; ++j) {
                        sum -= band[i * band_cols + (j - i + bw)] *
                               x_out->at(batch, j, 0);
                    }
                    x_out->at(batch, i, 0) =
                        sum / band[i * band_cols + bw];
                    flops += 2.0 * (j_end - i) + 1.0;
                }
            }
            g.barrier();
            g.stats().flops += flops;
            g.stats().constant_read_bytes +=
                static_cast<double>(a.nnz() + rows) * sizeof(T);
            g.stats().slm_bytes +=
                3.0 * rows * band_cols * sizeof(T);  // fill + eliminate
            g.stats().global_write_bytes +=
                static_cast<double>(rows) * sizeof(T);
            record_outcome(g, logger, batch, 1, T{0},
                           ok ? log::solve_status::converged
                              : log::solve_status::singular);
        },
        range.begin, "batch_banded");
}

#define BATCHLIN_INSTANTIATE_DIRECT(T)                                     \
    template void run_thomas<T>(xpu::queue&, const mat::batch_csr<T>&,     \
                                const mat::batch_dense<T>&,                \
                                mat::batch_dense<T>&, log::batch_log&,     \
                                xpu::batch_range);                         \
    template void run_dense_lu<T>(xpu::queue&, const mat::batch_csr<T>&,   \
                                  const mat::batch_dense<T>&,              \
                                  mat::batch_dense<T>&, log::batch_log&,   \
                                  xpu::batch_range);                       \
    template void run_banded<T>(xpu::queue&, const mat::batch_csr<T>&,     \
                                const mat::batch_dense<T>&,                \
                                mat::batch_dense<T>&, log::batch_log&,     \
                                xpu::batch_range, index_type)

BATCHLIN_INSTANTIATE_DIRECT(float);
BATCHLIN_INSTANTIATE_DIRECT(double);

}  // namespace batchlin::solver
