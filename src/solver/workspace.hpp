// SLM workspace planner (paper §3.5).
//
// Each solver keeps its intermediate vectors per work-group; the planner
// places them into the device's shared-local-memory budget greedily in a
// solver-specific priority order derived from usage frequency and size
// (for BatchCg: r, z, p, t, x, then the preconditioner workspace). Vectors
// that do not fit spill to a per-group slice of a global backing array.
// The chosen placement is what drives both the numerics (identical either
// way) and the performance model (SLM traffic vs HBM traffic, occupancy).
#pragma once

#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"

namespace batchlin::solver {

/// The batched solvers of Table 3.
enum class solver_type {
    cg,
    bicgstab,
    gmres,
    trsv,
    /// Preconditioned Richardson iteration (library extension).
    richardson,
};

std::string to_string(solver_type s);

/// SLM placement strategy; `priority` is the paper's scheme, the other two
/// exist for the ablation benchmarks.
enum class slm_mode {
    /// Greedy placement by the solver's priority list (§3.5).
    priority,
    /// Everything in global memory (no SLM usage).
    none,
    /// Everything in SLM regardless of the budget (occupancy ablation;
    /// requires an arena sized to fit).
    all,
};

/// Placement decision for the whole per-group workspace of one solve.
struct slm_plan {
    struct entry {
        std::string name;
        size_type elems = 0;
        bool in_slm = false;
    };

    std::vector<entry> entries;
    /// Bytes of SLM claimed per work-group.
    size_type slm_bytes = 0;
    /// Elements (of the value type) spilled to global memory per group.
    size_type global_elems_per_group = 0;
    /// Whether the spill backing is zero-filled before the launch. The
    /// kernels write every spilled element before reading it, so the fill
    /// is not needed for correctness; it stays on by default to mirror the
    /// value-initialized per-launch buffer the scratch pool replaced.
    /// `solve_options::zero_spill` propagates here (serve:: turns it off
    /// on its hot path).
    bool zero_spill = true;

    /// Index of a named entry; throws when absent.
    index_type find(const std::string& name) const;
    /// Whether the named vector was placed in SLM.
    bool in_slm(const std::string& name) const;
};

/// Host-resolved form of an `slm_plan`: one integer slot per entry. The
/// plan's named entries are resolved ONCE per launch on the host — slot
/// order, element counts, SLM-vs-global placement, and the running spill
/// offset — so the per-work-group workspace binding inside the fused
/// kernels is pure index arithmetic with no string comparisons. Debug
/// builds retain the name checks (the kernels' take() order must match the
/// planner's priority list exactly); release builds compile them away.
class bound_plan {
public:
    struct slot {
        size_type elems = 0;
        /// Element offset into the group's spill backing; only meaningful
        /// when the slot spilled to global memory.
        size_type spill_offset = 0;
        bool in_slm = false;
    };

    /// Resolves `plan` into slots. The plan must outlive the bound_plan
    /// (debug builds keep a reference for the name checks).
    explicit bound_plan(const slm_plan& plan);

    index_type size() const
    {
        return static_cast<index_type>(slots_.size());
    }
    const slot& operator[](index_type i) const
    {
        return slots_[static_cast<std::size_t>(i)];
    }
    /// Whether the source plan's spill backing is zero-filled per launch;
    /// the sanitizer treats non-zeroed spill slots as initially undefined.
    bool zero_spill() const { return zero_spill_; }

    /// Debug-only guard: entry `i` of the source plan must be named `name`.
    void check_name(index_type i, const char* name) const
    {
#ifndef NDEBUG
        BATCHLIN_ENSURE_MSG(source_->entries[static_cast<std::size_t>(i)]
                                    .name == name,
                            "workspace order mismatch: expected " +
                                source_->entries[static_cast<std::size_t>(i)]
                                    .name);
#else
        (void)i;
        (void)name;
#endif
    }

private:
    std::vector<slot> slots_;
    bool zero_spill_ = true;
#ifndef NDEBUG
    const slm_plan* source_ = nullptr;
#endif
};

/// Builds the placement for one solver configuration.
///  rows/nnz       — system dimensions (shared by the batch),
///  precond_elems  — preconditioner workspace (value-type elements),
///  slm_budget     — device SLM bytes available per work-group,
///  value_size     — sizeof(value type),
///  gmres_restart  — Krylov basis size for GMRES (ignored otherwise).
slm_plan plan_workspace(solver_type solver, index_type rows, index_type nnz,
                        size_type precond_elems, size_type slm_budget,
                        size_type value_size, index_type gmres_restart = 0,
                        slm_mode mode = slm_mode::priority);

}  // namespace batchlin::solver
