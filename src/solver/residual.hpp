// Host-side true-residual computation.
//
// Computes ||b_i - A_i x_i||_2 per batch item directly on the host,
// independent of the device kernels — the ground truth the test suite and
// the examples validate solver output against (iterative solvers monitor
// an implicit residual; this is the explicit one).
#pragma once

#include <vector>

#include "solver/options.hpp"

namespace batchlin::solver {

template <typename T>
std::vector<double> residual_norms(const batch_matrix<T>& a,
                                   const mat::batch_dense<T>& b,
                                   const mat::batch_dense<T>& x);

/// ||b - A x|| / ||b|| per item (0/0 counts as 0).
template <typename T>
std::vector<double> relative_residual_norms(const batch_matrix<T>& a,
                                            const mat::batch_dense<T>& b,
                                            const mat::batch_dense<T>& x);

}  // namespace batchlin::solver
