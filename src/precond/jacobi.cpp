#include "precond/jacobi.hpp"

#include "util/error.hpp"

namespace batchlin::precond {

template <typename T>
jacobi<T>::jacobi(const mat::batch_csr<T>& a)
    : diag_positions_(a.diagonal_positions())
{
    for (index_type i = 0; i < a.rows(); ++i) {
        BATCHLIN_ENSURE_MSG(diag_positions_[i] >= 0,
                            "scalar Jacobi requires every diagonal entry in "
                            "the sparsity pattern");
    }
}

template <typename T>
typename jacobi<T>::applier jacobi<T>::generate(xpu::group& g,
                                                const blas::csr_view<T>& a,
                                                xpu::dspan<T> work) const
{
    const index_type* diag_pos = diag_positions_.data();
    g.for_items(a.rows,
                [&](index_type i) { work[i] = T{1} / a.values[diag_pos[i]]; });
    g.stats().flops += static_cast<double>(a.rows);
    blas::detail::charge_read(g, a.values, a.rows);
    blas::detail::charge_write(g, work, a.rows);
    return {work};
}

template <typename T>
typename jacobi<T>::applier jacobi<T>::generate(xpu::group& g,
                                                const blas::ell_view<T>& a,
                                                xpu::dspan<T> work) const
{
    g.for_items(a.rows, [&](index_type i) {
        T diag{1};
        for (index_type k = 0; k < a.width; ++k) {
            if (a.col_idxs[k * a.rows + i] == i) {
                diag = a.values[k * a.rows + i];
                break;
            }
        }
        work[i] = T{1} / diag;
    });
    g.stats().flops += static_cast<double>(a.rows);
    blas::detail::charge_read(g, a.values, a.rows);
    blas::detail::charge_write(g, work, a.rows);
    return {work};
}

template <typename T>
typename jacobi<T>::applier jacobi<T>::generate(xpu::group& g,
                                                const blas::dense_view<T>& a,
                                                xpu::dspan<T> work) const
{
    g.for_items(a.rows, [&](index_type i) {
        work[i] = T{1} / a.values[i * a.cols + i];
    });
    g.stats().flops += static_cast<double>(a.rows);
    blas::detail::charge_read(g, a.values, a.rows);
    blas::detail::charge_write(g, work, a.rows);
    return {work};
}

template class jacobi<float>;
template class jacobi<double>;

}  // namespace batchlin::precond
