file(REMOVE_RECURSE
  "../bench/bench_abl_formats"
  "../bench/bench_abl_formats.pdb"
  "CMakeFiles/bench_abl_formats.dir/bench_abl_formats.cpp.o"
  "CMakeFiles/bench_abl_formats.dir/bench_abl_formats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
