// Memory-space-tagged spans used by device kernels.
//
// The SYCL port in the paper places each solver vector either in shared
// local memory (SLM) or in global memory, chosen by the SLM planner
// (paper §3.5). Device-side BLAS routines need to know where an operand
// lives so that the traffic counters attribute bytes to the right level of
// the hierarchy; dspan carries that tag alongside the pointer.
//
// In BATCHLIN_XPU_CHECK builds a dspan additionally carries an xpu::check
// instrumentation tag, and operator[] returns a recording proxy instead of
// a raw reference; see xpu/check.hpp. Default builds compile the plain
// reference path with a debug-only bounds assertion.
#pragma once

#include <cassert>
#include <cstddef>

#include "util/error.hpp"
#include "util/math.hpp"
#ifdef BATCHLIN_XPU_CHECK
#include "xpu/check.hpp"
#endif

namespace batchlin::xpu {

/// Memory space an operand lives in, for traffic attribution.
enum class mem_space {
    /// Mutable global memory (HBM-backed).
    global,
    /// Shared local memory of the owning work-group.
    slm,
    /// Read-only global data (matrix values, rhs): L3-cacheable.
    constant,
};

/// A pointer+length view tagged with the memory space of its storage.
template <typename T>
struct dspan {
    T* data = nullptr;
    index_type len = 0;
    mem_space space = mem_space::global;
#ifdef BATCHLIN_XPU_CHECK
    check::span_tag tag{};
#endif

#ifdef BATCHLIN_XPU_CHECK
    check::checked_ref<T> operator[](index_type i) const
    {
        if (tag.chk != nullptr) {
            if (i < 0 || i >= len) {
                tag.chk->fail_out_of_bounds(
                    tag.region, tag.offset, i, len,
                    static_cast<size_type>(sizeof(std::remove_cv_t<T>)));
            }
            return {data + i, tag.chk, tag.region,
                    tag.offset +
                        static_cast<size_type>(i) *
                            static_cast<size_type>(
                                sizeof(std::remove_cv_t<T>))};
        }
        assert(i >= 0 && i < len && "dspan index out of bounds");
        return {data + i, nullptr, -1, 0};
    }
#else
    T& operator[](index_type i) const
    {
        assert(i >= 0 && i < len && "dspan index out of bounds");
        return data[i];
    }
#endif

    bool empty() const { return len == 0; }

    dspan subspan(index_type offset, index_type count) const
    {
        BATCHLIN_ENSURE_DIMS(offset >= 0 && count >= 0 &&
                                 offset + count <= len,
                             "subspan out of range");
        dspan out{data + offset, count, space};
#ifdef BATCHLIN_XPU_CHECK
        out.tag = {tag.chk, tag.region,
                   tag.offset + static_cast<size_type>(offset) *
                                    static_cast<size_type>(
                                        sizeof(std::remove_cv_t<T>))};
#endif
        return out;
    }

    /// Implicit view-of-const conversion.
    operator dspan<const T>() const
    {
        dspan<const T> out{data, len, space};
#ifdef BATCHLIN_XPU_CHECK
        out.tag = tag;
#endif
        return out;
    }
};

/// Bytes moved when every element of `s` is touched once.
template <typename T>
constexpr double bytes_of(const dspan<T>& s)
{
    return static_cast<double>(s.len) * sizeof(T);
}

/// Re-types the leading `count` elements of a span's storage as `To`.
///
/// Used to pack reduced-precision preconditioner payloads (fp32 factors)
/// into the solver's value-typed workspace: the caller guarantees that
/// `count * sizeof(To)` bytes fit inside the source region. The memory
/// space carries over; under BATCHLIN_XPU_CHECK the instrumentation tag
/// carries over too — tags address bytes, not elements, so accesses
/// through the re-typed span keep byte-accurate shadow tracking.
template <typename To, typename From>
dspan<To> reinterpret_span(const dspan<From>& s, index_type count)
{
    BATCHLIN_ENSURE_DIMS(
        count >= 0 && static_cast<size_type>(count) * sizeof(To) <=
                          static_cast<size_type>(s.len) * sizeof(From),
        "reinterpreted span exceeds the source region");
    dspan<To> out{reinterpret_cast<To*>(s.data), count, s.space};
#ifdef BATCHLIN_XPU_CHECK
    out.tag = s.tag;
#endif
    return out;
}

}  // namespace batchlin::xpu
