// Explicit-instantiation lists for the solver kernels.
//
// These enumerate the legal (format × preconditioner) combinations of
// Table 3: Jacobi and the identity work with every format; BatchIlu and
// BatchIsai require BatchCsr. Each solver × value-type pair instantiates in
// its own translation unit to keep any single compile job small.
#pragma once

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "precond/block_jacobi.hpp"
#include "precond/identity.hpp"
#include "precond/ilu0.hpp"
#include "precond/isai.hpp"
#include "precond/jacobi.hpp"

// Applies macro(T, S, MatBatch, Precond) to every legal combination.
// T is the compute type, S the storage type of the matrix/preconditioner
// payloads (S == T for native storage, float for fp32 storage on double).
// The instantiate/extern macros take the preconditioner variadically:
// `precond::jacobi<T, S>` contains a comma, and __VA_ARGS__ is the only
// preprocessor-clean way to pass it through a macro argument.
#define BATCHLIN_FOR_EACH_COMBO(macro, T, S)                                \
    macro(T, S, ::batchlin::mat::batch_csr<T>,                              \
          ::batchlin::precond::identity<T, S>)                              \
    macro(T, S, ::batchlin::mat::batch_csr<T>,                              \
          ::batchlin::precond::jacobi<T, S>)                                \
    macro(T, S, ::batchlin::mat::batch_csr<T>,                              \
          ::batchlin::precond::ilu0<T, S>)                                  \
    macro(T, S, ::batchlin::mat::batch_csr<T>,                              \
          ::batchlin::precond::isai<T, S>)                                  \
    macro(T, S, ::batchlin::mat::batch_csr<T>,                              \
          ::batchlin::precond::block_jacobi<T, S>)                          \
    macro(T, S, ::batchlin::mat::batch_ell<T>,                              \
          ::batchlin::precond::identity<T, S>)                              \
    macro(T, S, ::batchlin::mat::batch_ell<T>,                              \
          ::batchlin::precond::jacobi<T, S>)                                \
    macro(T, S, ::batchlin::mat::batch_dense<T>,                            \
          ::batchlin::precond::identity<T, S>)                              \
    macro(T, S, ::batchlin::mat::batch_dense<T>,                            \
          ::batchlin::precond::jacobi<T, S>)

#define BATCHLIN_INSTANTIATE_CG(T, S, MatBatch, ...)                       \
    template void run_cg<T, MatBatch, __VA_ARGS__, S>(                             \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                       \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                   \
        const stop::criterion&, const slm_plan&, const kernel_config&,      \
        log::batch_log&, xpu::batch_range);

#define BATCHLIN_INSTANTIATE_CG_BOUND(T, S, MatBatch, ...)                 \
    template void run_cg_bound<T, MatBatch, __VA_ARGS__, S>(                       \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                       \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                   \
        const stop::criterion&, const bound_plan&, const kernel_config&,    \
        spill_view<T>, log::batch_log&, xpu::batch_range);

#define BATCHLIN_INSTANTIATE_BICGSTAB(T, S, MatBatch, ...)                 \
    template void run_bicgstab<T, MatBatch, __VA_ARGS__, S>(                       \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                       \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                   \
        const stop::criterion&, const slm_plan&, const kernel_config&,      \
        log::batch_log&, xpu::batch_range);

#define BATCHLIN_INSTANTIATE_BICGSTAB_BOUND(T, S, MatBatch, ...)           \
    template void run_bicgstab_bound<T, MatBatch, __VA_ARGS__, S>(                 \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                       \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                   \
        const stop::criterion&, const bound_plan&, const kernel_config&,    \
        spill_view<T>, log::batch_log&, xpu::batch_range);

#define BATCHLIN_INSTANTIATE_RICHARDSON(T, S, MatBatch, ...)              \
    template void run_richardson<T, MatBatch, __VA_ARGS__, S>(                    \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                      \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                  \
        const stop::criterion&, const slm_plan&, const kernel_config&, T,  \
        log::batch_log&, xpu::batch_range);

#define BATCHLIN_INSTANTIATE_RICHARDSON_BOUND(T, S, MatBatch, ...)        \
    template void run_richardson_bound<T, MatBatch, __VA_ARGS__, S>(              \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                      \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                  \
        const stop::criterion&, const bound_plan&, const kernel_config&,   \
        spill_view<T>, T, log::batch_log&, xpu::batch_range);

#define BATCHLIN_INSTANTIATE_GMRES(T, S, MatBatch, ...)                    \
    template void run_gmres<T, MatBatch, __VA_ARGS__, S>(                          \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                       \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                   \
        const stop::criterion&, const slm_plan&, const kernel_config&,      \
        index_type, log::batch_log&, xpu::batch_range);

#define BATCHLIN_INSTANTIATE_GMRES_BOUND(T, S, MatBatch, ...)              \
    template void run_gmres_bound<T, MatBatch, __VA_ARGS__, S>(                    \
        xpu::queue&, const MatBatch&, const __VA_ARGS__&,                       \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                   \
        const stop::criterion&, const bound_plan&, const kernel_config&,    \
        spill_view<T>, index_type, log::batch_log&, xpu::batch_range);
