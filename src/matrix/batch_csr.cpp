#include "matrix/batch_csr.hpp"

#include <algorithm>

namespace batchlin::mat {

template <typename T>
batch_csr<T>::batch_csr(index_type num_batch_items, index_type rows,
                        index_type cols, std::vector<index_type> row_ptrs,
                        std::vector<index_type> col_idxs)
    : num_batch_(num_batch_items),
      rows_(rows),
      cols_(cols),
      nnz_(row_ptrs.empty() ? 0 : row_ptrs.back()),
      row_ptrs_(std::move(row_ptrs)),
      col_idxs_(std::move(col_idxs)),
      values_(static_cast<std::size_t>(num_batch_items) * nnz_)
{
    BATCHLIN_ENSURE_MSG(num_batch_items >= 0 && rows >= 0 && cols >= 0,
                        "negative dimension");
    BATCHLIN_ENSURE_DIMS(
        static_cast<index_type>(row_ptrs_.size()) == rows + 1,
        "row pointer array must have rows+1 entries");
    BATCHLIN_ENSURE_DIMS(static_cast<index_type>(col_idxs_.size()) == nnz_,
                         "column index array size must equal nnz");
    validate();
}

template <typename T>
T batch_csr<T>::at(index_type batch, index_type row, index_type col) const
{
    BATCHLIN_ENSURE_DIMS(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                         "entry index out of range");
    const bool compressed = storage_ == storage_precision::fp32;
    const T* vals = compressed ? nullptr : item_values(batch);
    const float* vals32 = compressed ? item_values_fp32(batch) : nullptr;
    for (index_type k = row_ptrs_[row]; k < row_ptrs_[row + 1]; ++k) {
        if (col_idxs_[k] == col) {
            return compressed ? static_cast<T>(vals32[k]) : vals[k];
        }
    }
    return T{0};
}

template <typename T>
void batch_csr<T>::set_storage_precision(storage_precision mode)
{
    mode = effective_storage<T>(mode);
    if (mode == storage_) {
        return;
    }
    if (mode == storage_precision::fp32) {
        values32_.resize(values_.size());
        std::transform(values_.begin(), values_.end(), values32_.begin(),
                       [](T v) { return static_cast<float>(v); });
        values_.clear();
        values_.shrink_to_fit();
    } else {
        values_.resize(values32_.size());
        std::transform(values32_.begin(), values32_.end(), values_.begin(),
                       [](float v) { return static_cast<T>(v); });
        values32_.clear();
        values32_.shrink_to_fit();
    }
    storage_ = mode;
}

template <typename T>
void batch_csr<T>::validate() const
{
    BATCHLIN_ENSURE_MSG(row_ptrs_.front() == 0,
                        "row pointers must start at zero");
    for (index_type row = 0; row < rows_; ++row) {
        BATCHLIN_ENSURE_MSG(row_ptrs_[row] <= row_ptrs_[row + 1],
                            "row pointers must be non-decreasing");
        for (index_type k = row_ptrs_[row]; k < row_ptrs_[row + 1]; ++k) {
            BATCHLIN_ENSURE_MSG(col_idxs_[k] >= 0 && col_idxs_[k] < cols_,
                                "column index out of range");
            if (k > row_ptrs_[row]) {
                BATCHLIN_ENSURE_MSG(col_idxs_[k - 1] < col_idxs_[k],
                                    "column indexes must be strictly "
                                    "increasing within a row");
            }
        }
    }
}

template <typename T>
std::vector<index_type> batch_csr<T>::diagonal_positions() const
{
    std::vector<index_type> positions(rows_, -1);
    for (index_type row = 0; row < rows_; ++row) {
        for (index_type k = row_ptrs_[row]; k < row_ptrs_[row + 1]; ++k) {
            if (col_idxs_[k] == row) {
                positions[row] = k;
                break;
            }
        }
    }
    return positions;
}

template class batch_csr<float>;
template class batch_csr<double>;

}  // namespace batchlin::mat
