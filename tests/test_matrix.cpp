// Unit tests for the batched matrix formats, conversions, properties, I/O.
#include <gtest/gtest.h>

#include <sstream>

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "matrix/batch_ell.hpp"
#include "matrix/conversions.hpp"
#include "matrix/io.hpp"
#include "matrix/properties.hpp"
#include "util/error.hpp"
#include "workload/stencil.hpp"

namespace bl = batchlin;
using namespace batchlin::mat;
using bl::index_type;

namespace {

/// 3x3 test batch with pattern [[d,x,0],[x,d,x],[0,x,d]], 2 items.
batch_csr<double> tridiag_batch()
{
    std::vector<index_type> row_ptrs{0, 2, 5, 7};
    std::vector<index_type> col_idxs{0, 1, 0, 1, 2, 1, 2};
    batch_csr<double> a(2, 3, 3, std::move(row_ptrs), std::move(col_idxs));
    double v0[] = {2, -1, -1, 2, -1, -1, 2};
    double v1[] = {4, -2, -2, 4, -2, -2, 4};
    std::copy(std::begin(v0), std::end(v0), a.item_values(0));
    std::copy(std::begin(v1), std::end(v1), a.item_values(1));
    return a;
}

}  // namespace

TEST(BatchDense, StorageAndAccess)
{
    batch_dense<double> m(3, 2, 4);
    EXPECT_EQ(m.num_batch_items(), 3);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 4);
    EXPECT_EQ(m.item_size(), 8);
    m.at(2, 1, 3) = 7.5;
    EXPECT_EQ(m.item_values(2)[1 * 4 + 3], 7.5);
    EXPECT_EQ(m.storage_bytes(), 3 * 8 * 8);
}

TEST(BatchDense, OutOfRangeBatchThrows)
{
    batch_dense<double> m(2, 2, 2);
    EXPECT_THROW(m.item_values(2), bl::dimension_mismatch);
    EXPECT_THROW(m.item_values(-1), bl::dimension_mismatch);
}

TEST(BatchCsr, SharedPatternSingleCopy)
{
    const batch_csr<double> a = tridiag_batch();
    EXPECT_EQ(a.nnz(), 7);
    // Fig. 2: pattern stored once, values per item.
    EXPECT_EQ(a.row_ptrs().size(), 4u);
    EXPECT_EQ(a.col_idxs().size(), 7u);
    EXPECT_EQ(a.values().size(), 14u);
    EXPECT_EQ(a.storage_bytes(),
              14 * 8 + static_cast<bl::size_type>(4 + 7) * 4);
}

TEST(BatchCsr, EntryLookup)
{
    const batch_csr<double> a = tridiag_batch();
    EXPECT_EQ(a.at(0, 1, 0), -1.0);
    EXPECT_EQ(a.at(1, 1, 2), -2.0);
    EXPECT_EQ(a.at(0, 0, 2), 0.0);  // outside pattern
}

TEST(BatchCsr, ValidateRejectsMalformedPatterns)
{
    // Unsorted columns within a row.
    EXPECT_THROW(batch_csr<double>(1, 2, 2, {0, 2, 3}, {1, 0, 0}),
                 bl::error);
    // Column out of range.
    EXPECT_THROW(batch_csr<double>(1, 2, 2, {0, 1, 2}, {0, 5}), bl::error);
    // Row-pointer length mismatch.
    EXPECT_THROW(batch_csr<double>(1, 2, 2, {0, 1}, {0}),
                 bl::dimension_mismatch);
    // Duplicate column (not strictly increasing).
    EXPECT_THROW(batch_csr<double>(1, 1, 2, {0, 2}, {1, 1}), bl::error);
}

TEST(BatchCsr, DiagonalPositions)
{
    const batch_csr<double> a = tridiag_batch();
    const auto pos = a.diagonal_positions();
    ASSERT_EQ(pos.size(), 3u);
    EXPECT_EQ(a.col_idxs()[pos[0]], 0);
    EXPECT_EQ(a.col_idxs()[pos[1]], 1);
    EXPECT_EQ(a.col_idxs()[pos[2]], 2);
}

TEST(BatchCsr, MissingDiagonalReportedAsMinusOne)
{
    batch_csr<double> a(1, 2, 2, {0, 1, 2}, {1, 0});  // anti-diagonal
    const auto pos = a.diagonal_positions();
    EXPECT_EQ(pos[0], -1);
    EXPECT_EQ(pos[1], -1);
}

TEST(BatchEll, ColumnMajorLayout)
{
    batch_ell<double> e(2, 3, 3, 2);
    // Slot (row, k) lives at k*rows + row (coalesced layout, §3.1).
    EXPECT_EQ(e.slot(1, 0), 1);
    EXPECT_EQ(e.slot(1, 1), 4);
    e.col_at(1, 1) = 2;
    e.val_at(1, 1, 1) = 9.0;
    EXPECT_EQ(e.col_idxs()[4], 2);
    EXPECT_EQ(e.item_values(1)[4], 9.0);
}

TEST(BatchEll, ValidateRejectsValuesInPadding)
{
    batch_ell<double> e(1, 2, 2, 2);
    e.col_at(0, 0) = 0;
    e.val_at(0, 0, 0) = 1.0;
    e.validate();  // padding slots hold zero: fine
    e.val_at(0, 1, 1) = 3.0;  // slot (1,1) still padding
    EXPECT_THROW(e.validate(), bl::error);
}

TEST(Conversions, CsrDenseRoundTrip)
{
    const batch_csr<double> a = tridiag_batch();
    const batch_dense<double> d = to_dense(a);
    EXPECT_EQ(d.at(0, 0, 0), 2.0);
    EXPECT_EQ(d.at(0, 0, 2), 0.0);
    EXPECT_EQ(d.at(1, 2, 1), -2.0);
    const batch_csr<double> back = to_csr(d);
    EXPECT_EQ(back.nnz(), a.nnz());
    EXPECT_EQ(back.row_ptrs(), a.row_ptrs());
    EXPECT_EQ(back.col_idxs(), a.col_idxs());
    EXPECT_EQ(back.values(), a.values());
}

TEST(Conversions, CsrEllRoundTrip)
{
    const batch_csr<double> a = tridiag_batch();
    const batch_ell<double> e = to_ell(a);
    EXPECT_EQ(e.ell_width(), 3);  // middle row has 3 entries
    EXPECT_EQ(e.nnz(), a.nnz());
    e.validate();
    const batch_csr<double> back = to_csr(e);
    EXPECT_EQ(back.row_ptrs(), a.row_ptrs());
    EXPECT_EQ(back.col_idxs(), a.col_idxs());
    EXPECT_EQ(back.values(), a.values());
}

TEST(Conversions, DenseToEllDirect)
{
    const batch_csr<double> a = tridiag_batch();
    const batch_ell<double> e = to_ell(to_dense(a));
    EXPECT_EQ(e.nnz(), a.nnz());
}

TEST(Conversions, PatternIsUnionAcrossItems)
{
    // Item 0 has a zero where item 1 is non-zero: the shared pattern must
    // still contain the position (shared-pattern invariant).
    batch_dense<double> d(2, 2, 2);
    d.at(0, 0, 0) = 1.0;
    d.at(1, 0, 0) = 2.0;
    d.at(1, 0, 1) = 3.0;  // only item 1 non-zero here
    d.at(0, 1, 1) = 4.0;
    d.at(1, 1, 1) = 5.0;
    const batch_csr<double> csr = to_csr(d);
    EXPECT_EQ(csr.nnz(), 3);
    EXPECT_EQ(csr.at(0, 0, 1), 0.0);
    EXPECT_EQ(csr.at(1, 0, 1), 3.0);
}

TEST(Properties, PatternStatsOfStencil)
{
    const auto a = batchlin::work::stencil_3pt<double>(2, 64);
    const pattern_stats s = analyze_pattern(a);
    EXPECT_EQ(s.rows, 64);
    EXPECT_EQ(s.nnz, 3 * 64 - 2);
    EXPECT_EQ(s.min_row_nnz, 2);
    EXPECT_EQ(s.max_row_nnz, 3);
    EXPECT_EQ(s.bandwidth, 1);
    EXPECT_TRUE(s.full_diagonal);
    EXPECT_TRUE(s.symmetric_pattern);
}

TEST(Properties, SymmetryAndDominance)
{
    const batch_csr<double> a = tridiag_batch();
    EXPECT_TRUE(is_symmetric(a, 0, 1e-14));
    EXPECT_TRUE(is_symmetric(a, 1, 1e-14));
    EXPECT_TRUE(is_diagonally_dominant(a, 0));
    batch_csr<double> b = tridiag_batch();
    b.item_values(0)[1] = 5.0;  // breaks symmetry and dominance
    EXPECT_FALSE(is_symmetric(b, 0, 1e-14));
    EXPECT_FALSE(is_diagonally_dominant(b, 0));
}

TEST(Properties, RowImbalance)
{
    const batch_csr<double> a = tridiag_batch();
    // max 3 vs avg 7/3.
    EXPECT_NEAR(row_imbalance(a), 3.0 / (7.0 / 3.0), 1e-12);
}

TEST(Io, MatrixMarketRoundTrip)
{
    const batch_csr<double> a = tridiag_batch();
    std::stringstream ss;
    write_matrix_market(ss, a, 1);
    const batch_csr<double> back = read_matrix_market<double>(ss);
    EXPECT_EQ(back.rows(), 3);
    EXPECT_EQ(back.nnz(), 7);
    for (index_type k = 0; k < back.nnz(); ++k) {
        EXPECT_EQ(back.item_values(0)[k], a.item_values(1)[k]);
    }
}

TEST(Io, MatrixMarketSymmetricExpansion)
{
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real symmetric\n"
       << "% comment line\n"
       << "2 2 2\n"
       << "1 1 4.0\n"
       << "2 1 -1.0\n";
    const batch_csr<double> m = read_matrix_market<double>(ss);
    EXPECT_EQ(m.nnz(), 3);
    EXPECT_EQ(m.at(0, 0, 1), -1.0);
    EXPECT_EQ(m.at(0, 1, 0), -1.0);
    EXPECT_EQ(m.at(0, 0, 0), 4.0);
}

TEST(Io, MatrixMarketRejectsGarbage)
{
    std::stringstream ss("not a matrix\n1 1 1\n");
    EXPECT_THROW(read_matrix_market<double>(ss), bl::error);
}

TEST(Io, BatchRoundTrip)
{
    const batch_csr<double> a = tridiag_batch();
    std::stringstream ss;
    write_batch(ss, a);
    const batch_csr<double> back = read_batch<double>(ss);
    EXPECT_EQ(back.num_batch_items(), 2);
    EXPECT_EQ(back.row_ptrs(), a.row_ptrs());
    EXPECT_EQ(back.col_idxs(), a.col_idxs());
    EXPECT_EQ(back.values(), a.values());
}

TEST(Io, BatchRejectsTruncatedStream)
{
    const batch_csr<double> a = tridiag_batch();
    std::stringstream ss;
    write_batch(ss, a);
    std::string text = ss.str();
    text.resize(text.size() / 2);
    std::stringstream truncated(text);
    EXPECT_THROW(read_batch<double>(truncated), bl::error);
}
