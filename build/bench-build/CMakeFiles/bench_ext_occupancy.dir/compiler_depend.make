# Empty compiler generated dependencies file for bench_ext_occupancy.
# This may be replaced when dependencies are built.
