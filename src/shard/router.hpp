// shard::router — cost-model placement of coalesced batches.
//
// Placement has two competing goals. Requests sharing a coalesce key must
// land on the *same* shard, or sharding silently destroys the batching
// the serve layer exists for; and shards must stay *balanced*, or one hot
// key serializes the fleet on a single device. The router resolves this
// with a three-level policy:
//
//  1. Affinity: weighted rendezvous hashing on the coalesce key, weighted
//     by the inverse of the perfmodel cost estimate, so equal keys are
//     routed identically (deterministic, the satellite requirement) and
//     faster devices win proportionally more keys.
//  2. Spill: when the affine shard's estimated backlog exceeds the least
//     loaded shard's by more than a full batch worth of this request's
//     cost, the request spills to the least loaded shard — cost model vs.
//     per-shard queue depth, with enough hysteresis that small same-key
//     bursts stay together and keep fusing.
//  3. Stealing (implemented in the serve lanes, thresholds here): an idle
//     shard pulls from the deepest run-queue once it holds more than a
//     full batch, so routing mistakes and load skew self-correct.
//
// Costs are int64 nanoseconds: the modeled solve of a handful of 8-row
// systems is well under a microsecond of bandwidth time, so a coarser
// unit would round every small request to the same cost and the weights
// would stop discriminating.
#pragma once

#include <cstdint>
#include <vector>

#include "perfmodel/device_spec.hpp"
#include "util/math.hpp"

namespace batchlin::shard {

/// Routing verdict: the target shard and the request's estimated cost on
/// it (the unit the lane backlog accounting runs in).
struct decision {
    index_type shard = 0;
    std::int64_t cost_ns = 0;
};

class router {
public:
    router() = default;

    explicit router(std::vector<perf::device_spec> specs);

    index_type size() const
    {
        return static_cast<index_type>(specs_.size());
    }

    /// Modeled wall cost of solving `items` systems of `rows` rows with
    /// `nnz_per_item` stored nonzeros on `spec`, in nanoseconds: one
    /// kernel launch (plus the implicit-scaling split overhead on
    /// multi-stack parts) plus the streamed bytes of a nominal iteration
    /// count over the device's sustained bandwidth. Routing needs a
    /// size- and device-proportional estimate, not a converged iteration
    /// count, so the sweep count is a fixed constant.
    static std::int64_t estimate_cost_ns(const perf::device_spec& spec,
                                         index_type items, index_type rows,
                                         index_type nnz_per_item);

    /// Routes one request. `backlog_ns` is the per-shard estimated
    /// not-yet-completed work (same unit as `estimate_cost_ns`); it may
    /// be read racily — staleness degrades balance, never correctness.
    decision route(std::uint64_t key, index_type items, index_type rows,
                   index_type nnz_per_item,
                   const std::vector<std::int64_t>& backlog_ns) const;

    /// Failover-aware routing: shards whose `alive` byte is zero are
    /// skipped in both the rendezvous draw and the spill scan, so an
    /// evicted lane keeps zero weight until its half-open probe restores
    /// it. A null or all-dead mask degrades to the unmasked policy (the
    /// caller has nowhere better to send the work anyway). The rendezvous
    /// draw for a given (key, shard) pair is unchanged by the mask, so
    /// keys return to their affine shard the moment it revives.
    decision route(std::uint64_t key, index_type items, index_type rows,
                   index_type nnz_per_item,
                   const std::vector<std::int64_t>& backlog_ns,
                   const std::vector<char>* alive) const;

private:
    std::vector<perf::device_spec> specs_;
};

}  // namespace batchlin::shard
