// Per-system convergence monitoring in depth: record the full residual
// trajectory of every system (the optional history of the batch logger)
// and print the decay of the fastest, median, and slowest system for each
// solver — the monitoring capability the paper names as a design goal
// ("monitor the solver convergence for each system in the batch
// individually", §3).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "batchlin/batchlin.hpp"

using namespace batchlin;

int main()
{
    const index_type items = 256;
    const index_type rows = 64;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 42);
    const auto b = work::random_rhs<double>(items, rows, 7);

    for (const auto kind :
         {solver::solver_type::cg, solver::solver_type::bicgstab,
          solver::solver_type::gmres}) {
        solver::solve_options opts;
        opts.solver = kind;
        opts.preconditioner = precond::type::jacobi;
        opts.criterion = stop::relative(1e-10, 200);
        opts.gmres_restart = 30;
        opts.record_history = true;

        mat::batch_dense<double> x(items, rows, 1);
        xpu::queue q(xpu::make_sycl_policy());
        const auto result = solver::solve(q, a, b, x, opts);

        // Rank systems by iteration count.
        std::vector<index_type> order(items);
        for (index_type i = 0; i < items; ++i) {
            order[i] = i;
        }
        std::sort(order.begin(), order.end(),
                  [&](index_type l, index_type r) {
                      return result.log.iterations(l) <
                             result.log.iterations(r);
                  });
        const index_type fastest = order.front();
        const index_type median = order[items / 2];
        const index_type slowest = order.back();

        std::printf("%s: iterations %d (fastest) / %d (median) / %d "
                    "(slowest), %d/%d converged\n",
                    solver::to_string(kind).c_str(),
                    result.log.iterations(fastest),
                    result.log.iterations(median),
                    result.log.iterations(slowest),
                    result.log.num_converged(), items);
        std::printf("%6s | %14s %14s %14s\n", "iter", "fastest", "median",
                    "slowest");
        const index_type show = result.log.iterations(slowest);
        for (index_type it = 0; it < show; it += std::max(show / 8, 1)) {
            auto cell = [&](index_type system) {
                const double r = result.log.residual_at(system, it);
                // Systems that already left the loop print "done".
                return std::isnan(r) ? std::string("          done")
                                     : [&] {
                                           char buf[32];
                                           std::snprintf(buf, sizeof(buf),
                                                         "%14.3e", r);
                                           return std::string(buf);
                                       }();
            };
            std::printf("%6d | %s %s %s\n", it + 1, cell(fastest).c_str(),
                        cell(median).c_str(), cell(slowest).c_str());
        }
        std::printf("\n");
    }
    std::printf("(each system leaves the fused kernel's loop as soon as "
                "its own criterion is met — the trajectories end at "
                "different iterations)\n");
    return 0;
}
