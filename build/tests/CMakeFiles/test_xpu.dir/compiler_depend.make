# Empty compiler generated dependencies file for test_xpu.
# This may be replaced when dependencies are built.
