# Empty compiler generated dependencies file for bench_abl_precision.
# This may be replaced when dependencies are built.
