// BatchCg kernel (paper Algorithm 1 / §3.5).
//
// Standard preconditioned conjugate gradients, fused into a single batched
// kernel: each work-group runs the whole iteration for its system, keeping
// r, z, p, t and the copy of x in SLM by planner priority. Convergence is
// monitored per system on the explicitly recomputed residual norm.
#pragma once

#include <cmath>

#include "blas/device_blas.hpp"
#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"
#include "solver/kernel_common.hpp"
#include "solver/run_decl.hpp"

namespace batchlin::solver {

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_cg_bound(xpu::queue& q, const MatBatch& a, const Precond& precond,
                  const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                  const stop::criterion& crit, const bound_plan& slots,
                  const kernel_config& config, spill_view<T> spill,
                  log::batch_log& logger, xpu::batch_range range)
{
    // Recordable closure: operands enter by address of caller-owned
    // storage, configuration structs by value — nothing refers to this
    // stack frame once run_batch returns (see run_decl.hpp).
    const MatBatch* const a_ptr = &a;
    const Precond* const precond_ptr = &precond;
    const mat::batch_dense<T>* const b_ptr = &b;
    mat::batch_dense<T>* const x_out = &x;
    const bound_plan* const slots_ptr = &slots;
    log::batch_log* const logger_ptr = &logger;

    q.run_batch(
        range.size(), config.work_group_size, config.sub_group_size,
        [=](xpu::group& g) {
            const index_type batch = g.id();
            const index_type local = batch - range.begin;
            workspace_binder<T> bind(g, *slots_ptr, spill.for_group(local));
            // Plan order for CG: r, z, p, t, x, precond (§3.5).
            xpu::dspan<T> r = bind.take("r");
            xpu::dspan<T> z = bind.take("z");
            xpu::dspan<T> p = bind.take("p");
            xpu::dspan<T> t = bind.take("t");
            xpu::dspan<T> x_loc = bind.take("x");
            xpu::dspan<T> pc_work = bind.take_optional("precond");

            const auto a_view = blas::item_view_as<S>(*a_ptr, batch);
            const auto b_view =
                b_ptr->item_span(batch, xpu::mem_space::constant);
            auto x_global = x_out->item_span(batch);

            const auto pc = precond_ptr->generate(g, a_view, pc_work);

            // x_loc starts from the caller's initial guess (paper §1: the
            // initial-guess capability is the point of iterative solvers).
            blas::copy<T>(g, x_global, x_loc);

            // r = b - A x.
            blas::spmv<T>(g, a_view, x_loc, r);
            blas::axpby<T>(g, T{1}, b_view, T{-1}, r);

            const T rhs_norm = blas::nrm2<T>(g, b_view, config.reduction);
            T res_norm = blas::nrm2<T>(g, r, config.reduction);

            pc.apply(g, r, z);
            blas::copy<T>(g, z, p);
            T rho = blas::dot<T>(g, r, z, config.reduction);

            index_type iter = 0;
            log::solve_status status = log::solve_status::max_iterations;
            if (stop::zero_rhs_short_circuit(crit, rhs_norm)) {
                // ||b|| == 0 under a relative tolerance: defined as solved
                // by x = 0 exactly (see stop::zero_rhs_short_circuit).
                blas::fill<T>(g, x_loc, T{0});
                res_norm = T{0};
                status = log::solve_status::converged;
            } else if (stop::is_converged(crit, res_norm, rhs_norm)) {
                status = log::solve_status::converged;
            } else if (!is_finite(res_norm)) {
                status = log::solve_status::non_finite;
            }
            while (status == log::solve_status::max_iterations &&
                   iter < crit.max_iterations) {
                blas::spmv<T>(g, a_view, p, t);
                const T pt = blas::dot<T>(g, p, t, config.reduction);
                if (pt == T{0}) {
                    status = log::solve_status::direction_annihilated;
                    break;
                }
                const T alpha = rho / pt;
                blas::axpy<T>(g, alpha, p, x_loc);
                blas::axpy<T>(g, -alpha, t, r);
                res_norm = blas::nrm2<T>(g, r, config.reduction);
                ++iter;
                logger_ptr->record_iteration(batch, iter - 1,
                                             static_cast<double>(res_norm));
                if (!is_finite(res_norm)) {
                    status = log::solve_status::non_finite;
                    break;
                }
                if (stop::is_converged(crit, res_norm, rhs_norm)) {
                    status = log::solve_status::converged;
                    break;
                }
                pc.apply(g, r, z);
                const T rho_new = blas::dot<T>(g, r, z, config.reduction);
                if (rho == T{0}) {
                    status = log::solve_status::breakdown_rho;
                    break;
                }
                const T beta = rho_new / rho;
                blas::axpby<T>(g, T{1}, z, beta, p);
                rho = rho_new;
            }

            blas::copy<T>(g, x_loc, x_global);
            record_outcome(g, *logger_ptr, batch, iter, res_norm, status);
        },
        range.begin, "batch_cg");
}

template <typename T, typename MatBatch, typename Precond,
          typename S>
void run_cg(xpu::queue& q, const MatBatch& a, const Precond& precond,
            const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
            const stop::criterion& crit, const slm_plan& plan,
            const kernel_config& config, log::batch_log& logger,
            xpu::batch_range range)
{
    const bound_plan slots(plan);  // resolved once, host side (§3.5)
    spill_buffer<T> spill(q, plan, range.size());
    run_cg_bound<T, MatBatch, Precond, S>(q, a, precond, b, x, crit, slots, config, spill.view(),
                 logger, range);
}

}  // namespace batchlin::solver
