#include "matrix/storage.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace batchlin::mat {

std::string to_string(storage_precision mode)
{
    return mode == storage_precision::native ? "native" : "fp32";
}

storage_precision parse_storage_precision(const std::string& name)
{
    if (name == "native") {
        return storage_precision::native;
    }
    if (name == "fp32") {
        return storage_precision::fp32;
    }
    BATCHLIN_ENSURE_MSG(
        false, "unknown storage precision (expected native or fp32)");
    return storage_precision::native;
}

storage_precision default_storage_precision()
{
    static const storage_precision mode = [] {
        const char* env = std::getenv("BATCHLIN_STORAGE");
        if (env == nullptr || *env == '\0') {
            return storage_precision::native;
        }
        return parse_storage_precision(env);
    }();
    return mode;
}

}  // namespace batchlin::mat
