#include "util/dense_lu.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "util/error.hpp"

namespace batchlin {

template <typename T>
bool lu_factorize(index_type n, T* a, index_type* piv)
{
    for (index_type k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude entry in column k.
        index_type p = k;
        T best = std::abs(a[k * n + k]);
        for (index_type i = k + 1; i < n; ++i) {
            const T mag = std::abs(a[i * n + k]);
            if (mag > best) {
                best = mag;
                p = i;
            }
        }
        piv[k] = p;
        if (best <= std::numeric_limits<T>::min()) {
            return false;
        }
        if (p != k) {
            for (index_type j = 0; j < n; ++j) {
                std::swap(a[k * n + j], a[p * n + j]);
            }
        }
        const T inv_pivot = T{1} / a[k * n + k];
        for (index_type i = k + 1; i < n; ++i) {
            const T factor = a[i * n + k] * inv_pivot;
            a[i * n + k] = factor;
            for (index_type j = k + 1; j < n; ++j) {
                a[i * n + j] -= factor * a[k * n + j];
            }
        }
    }
    return true;
}

template <typename T>
void lu_solve(index_type n, const T* a, const index_type* piv, T* x)
{
    // Apply the recorded row interchanges, then forward/backward substitute.
    for (index_type k = 0; k < n; ++k) {
        if (piv[k] != k) {
            std::swap(x[k], x[piv[k]]);
        }
    }
    for (index_type i = 1; i < n; ++i) {
        T sum = x[i];
        for (index_type j = 0; j < i; ++j) {
            sum -= a[i * n + j] * x[j];
        }
        x[i] = sum;
    }
    for (index_type i = n - 1; i >= 0; --i) {
        T sum = x[i];
        for (index_type j = i + 1; j < n; ++j) {
            sum -= a[i * n + j] * x[j];
        }
        x[i] = sum / a[i * n + i];
    }
}

template <typename T>
bool dense_solve(index_type n, std::vector<T> a, std::vector<T> b,
                 std::vector<T>& x)
{
    BATCHLIN_ENSURE_DIMS(static_cast<size_type>(a.size()) ==
                             static_cast<size_type>(n) * n,
                         "matrix storage does not match order");
    BATCHLIN_ENSURE_DIMS(static_cast<index_type>(b.size()) == n,
                         "rhs length does not match order");
    std::vector<index_type> piv(n);
    if (!lu_factorize(n, a.data(), piv.data())) {
        return false;
    }
    lu_solve(n, a.data(), piv.data(), b.data());
    x = std::move(b);
    return true;
}

template <typename T>
double condition_number_inf(index_type n, const std::vector<T>& a)
{
    BATCHLIN_ENSURE_DIMS(static_cast<size_type>(a.size()) ==
                             static_cast<size_type>(n) * n,
                         "matrix storage does not match order");
    std::vector<T> lu = a;
    std::vector<index_type> piv(n);
    if (!lu_factorize(n, lu.data(), piv.data())) {
        return std::numeric_limits<double>::infinity();
    }
    double norm_a = 0.0;
    double norm_inv = 0.0;
    std::vector<T> col(n);
    for (index_type i = 0; i < n; ++i) {
        double row_sum = 0.0;
        for (index_type j = 0; j < n; ++j) {
            row_sum += std::abs(static_cast<double>(a[i * n + j]));
        }
        norm_a = std::max(norm_a, row_sum);
    }
    // Column-by-column explicit inverse; fine for the small orders we use.
    std::vector<double> inv_row_sums(n, 0.0);
    for (index_type j = 0; j < n; ++j) {
        std::fill(col.begin(), col.end(), T{0});
        col[j] = T{1};
        lu_solve(n, lu.data(), piv.data(), col.data());
        for (index_type i = 0; i < n; ++i) {
            inv_row_sums[i] += std::abs(static_cast<double>(col[i]));
        }
    }
    for (index_type i = 0; i < n; ++i) {
        norm_inv = std::max(norm_inv, inv_row_sums[i]);
    }
    return norm_a * norm_inv;
}

#define BATCHLIN_INSTANTIATE_LU(T)                                          \
    template bool lu_factorize<T>(index_type, T*, index_type*);             \
    template void lu_solve<T>(index_type, const T*, const index_type*, T*); \
    template bool dense_solve<T>(index_type, std::vector<T>,                \
                                 std::vector<T>, std::vector<T>&);          \
    template double condition_number_inf<T>(index_type,                     \
                                            const std::vector<T>&)

BATCHLIN_INSTANTIATE_LU(float);
BATCHLIN_INSTANTIATE_LU(double);

}  // namespace batchlin
