// The paper's "examples/batched-solver-from-files" workflow: read the
// batch systems from disk instead of generating them in-process.
//
// This example writes a generated chemistry batch to a BatchCsr container
// file and one item to a MatrixMarket file (the formats applications
// exchange), reads them back, solves, and validates. Pass a path to an
// existing BatchCsr file to solve your own systems.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "batchlin/batchlin.hpp"

using namespace batchlin;

int main(int argc, char** argv)
{
    std::string path;
    if (argc > 1) {
        path = argv[1];
        std::printf("reading batch from %s\n", path.c_str());
    } else {
        // Self-contained mode: generate, persist, and re-read.
        path = "/tmp/batchlin_example_batch.txt";
        const work::mechanism mech = work::mechanism_by_name("drm19");
        const auto generated =
            work::generate_mechanism_batch<double>(mech, 268);
        mat::write_batch_file(path, generated);
        std::ofstream mm("/tmp/batchlin_example_item0.mtx");
        mat::write_matrix_market(mm, generated, 0);
        std::printf("wrote %d systems (%s) to %s\n",
                    generated.num_batch_items(), mech.name.c_str(),
                    path.c_str());
    }

    const mat::batch_csr<double> a_csr =
        mat::read_batch_file<double>(path);
    std::printf("loaded batch: %d systems, %dx%d, nnz %d\n",
                a_csr.num_batch_items(), a_csr.rows(), a_csr.cols(),
                a_csr.nnz());
    const auto stats = mat::analyze_pattern(a_csr);
    std::printf("pattern: %d-%d nnz/row, bandwidth %d, %s diagonal\n",
                stats.min_row_nnz, stats.max_row_nnz, stats.bandwidth,
                stats.full_diagonal ? "full" : "partial");

    const index_type items = a_csr.num_batch_items();
    const index_type rows = a_csr.rows();
    const solver::batch_matrix<double> a = a_csr;
    const auto b = work::mechanism_rhs<double>(items, rows, 99);
    mat::batch_dense<double> x(items, rows, 1);

    solver::solve_options opts;
    opts.solver = solver::solver_type::bicgstab;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-9, 300);
    batch_solver handle(perf::pvc_1s(), opts);
    const auto result = handle.solve<double>(a, b, x);

    const auto rel = solver::relative_residual_norms(a, b, x);
    double worst = 0.0;
    for (double r : rel) {
        worst = std::max(worst, r);
    }
    std::printf("solved: %d/%d converged, mean %.1f iterations, "
                "worst relative residual %.3e\n",
                result.log.num_converged(), items,
                result.log.mean_iterations(), worst);
    return result.log.num_converged() == items && worst < 1e-7
               ? EXIT_SUCCESS
               : EXIT_FAILURE;
}
