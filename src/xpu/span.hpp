// Memory-space-tagged spans used by device kernels.
//
// The SYCL port in the paper places each solver vector either in shared
// local memory (SLM) or in global memory, chosen by the SLM planner
// (paper §3.5). Device-side BLAS routines need to know where an operand
// lives so that the traffic counters attribute bytes to the right level of
// the hierarchy; dspan carries that tag alongside the pointer.
//
// In BATCHLIN_XPU_CHECK builds a dspan additionally carries an xpu::check
// instrumentation tag, and operator[] returns a recording proxy instead of
// a raw reference; see xpu/check.hpp. Default builds compile the plain
// reference path with a debug-only bounds assertion.
#pragma once

#include <cassert>
#include <cstddef>

#include "util/error.hpp"
#include "util/math.hpp"
#ifdef BATCHLIN_XPU_CHECK
#include "xpu/check.hpp"
#endif

namespace batchlin::xpu {

/// Memory space an operand lives in, for traffic attribution.
enum class mem_space {
    /// Mutable global memory (HBM-backed).
    global,
    /// Shared local memory of the owning work-group.
    slm,
    /// Read-only global data (matrix values, rhs): L3-cacheable.
    constant,
};

/// A pointer+length view tagged with the memory space of its storage.
template <typename T>
struct dspan {
    T* data = nullptr;
    index_type len = 0;
    mem_space space = mem_space::global;
#ifdef BATCHLIN_XPU_CHECK
    check::span_tag tag{};
#endif

#ifdef BATCHLIN_XPU_CHECK
    check::checked_ref<T> operator[](index_type i) const
    {
        if (tag.chk != nullptr) {
            if (i < 0 || i >= len) {
                tag.chk->fail_out_of_bounds(
                    tag.region, tag.offset, i, len,
                    static_cast<size_type>(sizeof(std::remove_cv_t<T>)));
            }
            return {data + i, tag.chk, tag.region,
                    tag.offset +
                        static_cast<size_type>(i) *
                            static_cast<size_type>(
                                sizeof(std::remove_cv_t<T>))};
        }
        assert(i >= 0 && i < len && "dspan index out of bounds");
        return {data + i, nullptr, -1, 0};
    }
#else
    T& operator[](index_type i) const
    {
        assert(i >= 0 && i < len && "dspan index out of bounds");
        return data[i];
    }
#endif

    bool empty() const { return len == 0; }

    dspan subspan(index_type offset, index_type count) const
    {
        BATCHLIN_ENSURE_DIMS(offset >= 0 && count >= 0 &&
                                 offset + count <= len,
                             "subspan out of range");
        dspan out{data + offset, count, space};
#ifdef BATCHLIN_XPU_CHECK
        out.tag = {tag.chk, tag.region,
                   tag.offset + static_cast<size_type>(offset) *
                                    static_cast<size_type>(
                                        sizeof(std::remove_cv_t<T>))};
#endif
        return out;
    }

    /// Implicit view-of-const conversion.
    operator dspan<const T>() const
    {
        dspan<const T> out{data, len, space};
#ifdef BATCHLIN_XPU_CHECK
        out.tag = tag;
#endif
        return out;
    }
};

/// Bytes moved when every element of `s` is touched once.
template <typename T>
constexpr double bytes_of(const dspan<T>& s)
{
    return static_cast<double>(s.len) * sizeof(T);
}

}  // namespace batchlin::xpu
