// Batched DIRECT solver baselines (paper §1 and related work [9, 20]).
//
// The paper's core argument for batched *iterative* solvers is made
// against these: direct methods always pay the full factorization, cannot
// exploit an initial guess, and a batched sparse direct solve needs two
// kernels with an allocation in between (the fill-in is unknown a priori),
// while the iterative solve fuses into one kernel with SLM locality.
//
//  * batch_thomas — the cuThomasBatch-style tridiagonal solver: one lane
//    per system runs the Thomas algorithm (no fine-grained parallelism,
//    exactly the limitation the paper notes for [20]).
//  * batch_dense_lu — general direct baseline: kernel 1 spreads the sparse
//    system into a dense workspace and factorizes (PLU), kernel 2
//    substitutes. Two launches and a rows^2 global workspace per system,
//    reproducing the two-kernel + allocation structure of batched sparse
//    direct solvers.
#pragma once

#include "log/logger.hpp"
#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"
#include "solver/launch.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

/// Thomas algorithm for strictly tridiagonal batches (pattern bandwidth 1,
/// full diagonal); throws otherwise. Exact up to rounding; records one
/// "iteration" per system.
template <typename T>
void run_thomas(xpu::queue& q, const mat::batch_csr<T>& a,
                const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                log::batch_log& logger, xpu::batch_range range);

/// Dense LU with partial pivoting per system, from CSR input. Uses a
/// rows^2 global workspace per system allocated between the two kernels.
/// Returns per-system success in the logger (converged == non-singular).
template <typename T>
void run_dense_lu(xpu::queue& q, const mat::batch_csr<T>& a,
                  const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                  log::batch_log& logger, xpu::batch_range range);

/// Banded Gaussian elimination without pivoting for patterns with
/// bandwidth <= `max_bandwidth` (covers the penta-diagonal systems of
/// [9]); intended for the diagonally dominant problem space, where the
/// elimination is stable without pivoting. One lane per system, SLM-
/// resident band workspace, single launch. Throws when the pattern's
/// bandwidth exceeds the limit.
template <typename T>
void run_banded(xpu::queue& q, const mat::batch_csr<T>& a,
                const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                log::batch_log& logger, xpu::batch_range range,
                index_type max_bandwidth = 2);

}  // namespace batchlin::solver
