// Tests for the SLM workspace planner (§3.5) and the launch-configuration
// heuristics (§3.6).
#include <gtest/gtest.h>

#include "solver/launch.hpp"
#include "solver/workspace.hpp"
#include "util/error.hpp"
#include "xpu/policy.hpp"

namespace bl = batchlin;
using batchlin::index_type;
using batchlin::size_type;
namespace solver = batchlin::solver;
namespace xpu = batchlin::xpu;

TEST(WorkspacePlan, CgPriorityOrderIsPaperOrder)
{
    const auto plan = solver::plan_workspace(
        solver::solver_type::cg, 64, 190, 64, 128 * 1024, 8);
    ASSERT_EQ(plan.entries.size(), 6u);
    const char* expected[] = {"r", "z", "p", "t", "x", "precond"};
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(plan.entries[i].name, expected[i]);
    }
}

TEST(WorkspacePlan, AllFitsInLargeBudget)
{
    const auto plan = solver::plan_workspace(
        solver::solver_type::cg, 64, 190, 64, 128 * 1024, 8);
    for (const auto& e : plan.entries) {
        EXPECT_TRUE(e.in_slm) << e.name;
    }
    EXPECT_EQ(plan.global_elems_per_group, 0);
    EXPECT_EQ(plan.slm_bytes, (5 * 64 + 64) * 8);
}

TEST(WorkspacePlan, GreedySpillRespectsPriority)
{
    // Budget for exactly three rows-vectors: r, z, p stay in SLM; t, x and
    // the preconditioner workspace spill (§3.5 priority).
    const index_type rows = 100;
    const size_type budget = 3 * rows * 8;
    const auto plan = solver::plan_workspace(
        solver::solver_type::cg, rows, 300, rows, budget, 8);
    EXPECT_TRUE(plan.in_slm("r"));
    EXPECT_TRUE(plan.in_slm("z"));
    EXPECT_TRUE(plan.in_slm("p"));
    EXPECT_FALSE(plan.in_slm("t"));
    EXPECT_FALSE(plan.in_slm("x"));
    EXPECT_FALSE(plan.in_slm("precond"));
    EXPECT_EQ(plan.global_elems_per_group, 3 * rows);
    EXPECT_EQ(plan.slm_bytes, budget);
}

TEST(WorkspacePlan, GreedyTakesSmallerLaterEntryWhenItFits)
{
    // GMRES: the large basis spills but the small x/y after it still fit —
    // greedy by priority, not a prefix cut.
    const index_type rows = 64;
    const index_type m = 10;
    const size_type budget =
        (rows + (m + 1) * m + 3 * (m + 1) + rows + m) * 8;  // no basis
    const auto plan =
        solver::plan_workspace(solver::solver_type::gmres, rows, 200, 0,
                               budget, 8, m);
    EXPECT_TRUE(plan.in_slm("w"));
    EXPECT_TRUE(plan.in_slm("hessenberg"));
    EXPECT_TRUE(plan.in_slm("givens"));
    EXPECT_FALSE(plan.in_slm("basis"));
    EXPECT_TRUE(plan.in_slm("x"));
    EXPECT_TRUE(plan.in_slm("y"));
}

TEST(WorkspacePlan, NoneAndAllModes)
{
    const auto none = solver::plan_workspace(
        solver::solver_type::bicgstab, 64, 190, 64, 128 * 1024, 8, 0,
        solver::slm_mode::none);
    for (const auto& e : none.entries) {
        EXPECT_FALSE(e.in_slm);
    }
    EXPECT_EQ(none.slm_bytes, 0);

    const auto all = solver::plan_workspace(
        solver::solver_type::bicgstab, 2000, 6000, 2000, 1024, 8, 0,
        solver::slm_mode::all);
    for (const auto& e : all.entries) {
        EXPECT_TRUE(e.in_slm);
    }
    EXPECT_GT(all.slm_bytes, 1024);  // exceeds budget by design (ablation)
}

TEST(WorkspacePlan, BicgstabHasNineVectors)
{
    const auto plan = solver::plan_workspace(
        solver::solver_type::bicgstab, 10, 28, 0, 1 << 20, 8);
    EXPECT_EQ(plan.entries.size(), 9u);  // no precond entry when elems == 0
    EXPECT_EQ(plan.entries.front().name, "r");
    EXPECT_EQ(plan.entries.back().name, "x");
}

TEST(WorkspacePlan, GmresRequiresRestart)
{
    EXPECT_THROW(solver::plan_workspace(solver::solver_type::gmres, 10, 28,
                                        0, 1 << 20, 8, 0),
                 bl::error);
}

TEST(WorkspacePlan, FindUnknownNameThrows)
{
    const auto plan = solver::plan_workspace(
        solver::solver_type::trsv, 10, 28, 0, 1 << 20, 8);
    EXPECT_THROW(plan.find("nonexistent"), bl::error);
}

TEST(LaunchConfig, SubGroupSwitchesAtThreshold)
{
    const auto policy = xpu::make_sycl_policy();  // switch at 64 rows
    EXPECT_EQ(solver::choose_launch_config(policy, 22).sub_group_size, 16);
    EXPECT_EQ(solver::choose_launch_config(policy, 64).sub_group_size, 16);
    EXPECT_EQ(solver::choose_launch_config(policy, 65).sub_group_size, 32);
    EXPECT_EQ(solver::choose_launch_config(policy, 144).sub_group_size, 32);
}

TEST(LaunchConfig, WorkGroupIsRowsRoundedUp)
{
    const auto policy = xpu::make_sycl_policy();
    // §3.6: rows divisible by the sub-group size -> exactly rows.
    EXPECT_EQ(solver::choose_launch_config(policy, 64).work_group_size, 64);
    // Otherwise the next round-up.
    EXPECT_EQ(solver::choose_launch_config(policy, 22).work_group_size, 32);
    EXPECT_EQ(solver::choose_launch_config(policy, 33).work_group_size, 48);
    EXPECT_EQ(solver::choose_launch_config(policy, 54).work_group_size, 64);
    // Tiny systems still get a full sub-group.
    EXPECT_EQ(solver::choose_launch_config(policy, 3).work_group_size, 16);
    // Huge systems cap at the device maximum and grid-stride.
    EXPECT_EQ(solver::choose_launch_config(policy, 2000).work_group_size,
              policy.max_work_group_size);
}

TEST(LaunchConfig, ReductionPathByMatrixSize)
{
    const auto policy = xpu::make_sycl_policy();  // sub-group reduce <= 32
    EXPECT_EQ(solver::choose_launch_config(policy, 22).reduction,
              xpu::reduce_path::sub_group);
    EXPECT_EQ(solver::choose_launch_config(policy, 64).reduction,
              xpu::reduce_path::group);
}

TEST(LaunchConfig, CudaForcesWarp32AndSubGroupReduction)
{
    const auto policy = xpu::make_cuda_policy(192 * 1024);
    const auto small = solver::choose_launch_config(policy, 22);
    EXPECT_EQ(small.sub_group_size, 32);
    EXPECT_EQ(small.reduction, xpu::reduce_path::sub_group);
    const auto large = solver::choose_launch_config(policy, 144);
    EXPECT_EQ(large.sub_group_size, 32);
    EXPECT_EQ(large.reduction, xpu::reduce_path::sub_group);
    EXPECT_EQ(large.work_group_size, 160);
}

TEST(LaunchConfig, OverridesRespected)
{
    const auto policy = xpu::make_sycl_policy();
    const auto forced = solver::choose_launch_config(policy, 100, 16);
    EXPECT_EQ(forced.sub_group_size, 16);
    const xpu::reduce_path sub = xpu::reduce_path::sub_group;
    EXPECT_EQ(solver::choose_launch_config(policy, 100, 0, &sub).reduction,
              sub);
    // Invalid override rejected.
    EXPECT_THROW(solver::choose_launch_config(policy, 100, 8), bl::error);
    const xpu::reduce_path grp = xpu::reduce_path::group;
    const auto cuda = xpu::make_cuda_policy(1 << 20);
    EXPECT_THROW(solver::choose_launch_config(cuda, 100, 0, &grp),
                 bl::error);
}

TEST(LaunchConfig, ThreadUtilization)
{
    const auto policy = xpu::make_sycl_policy();
    const auto c22 = solver::choose_launch_config(policy, 22);
    EXPECT_NEAR(solver::thread_utilization(c22, 22), 22.0 / 32.0, 1e-12);
    const auto c64 = solver::choose_launch_config(policy, 64);
    EXPECT_DOUBLE_EQ(solver::thread_utilization(c64, 64), 1.0);
}

TEST(LaunchConfig, RejectsEmptySystems)
{
    EXPECT_THROW(solver::choose_launch_config(xpu::make_sycl_policy(), 0),
                 bl::error);
}
