// Miscellaneous coverage: GMRES happy breakdown, roofline report
// rendering, I/O failure paths, zero-group launches, broadcast costing,
// and the workspace planner's alignment behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "matrix/io.hpp"
#include "matrix/operations.hpp"
#include "perfmodel/roofline.hpp"
#include "solver/dispatch.hpp"
#include "solver/handle.hpp"
#include "solver/residual.hpp"
#include "util/error.hpp"
#include "workload/chemistry.hpp"
#include "workload/stencil.hpp"
#include "xpu/group.hpp"
#include "xpu/queue.hpp"

namespace bl = batchlin;
using batchlin::index_type;
namespace mat = batchlin::mat;
namespace solver = batchlin::solver;
namespace precond = batchlin::precond;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
namespace perf = batchlin::perf;

TEST(GmresEdge, HappyBreakdownTerminatesCleanly)
{
    // Diagonal systems: GMRES produces the exact solution after the first
    // Arnoldi step (h_{1,0} == 0, the "happy breakdown").
    mat::batch_csr<double> a(3, 8, 8, [] {
        std::vector<index_type> rp(9);
        for (index_type i = 0; i <= 8; ++i) {
            rp[i] = i;
        }
        return rp;
    }(), {0, 1, 2, 3, 4, 5, 6, 7});
    for (index_type b = 0; b < 3; ++b) {
        for (index_type i = 0; i < 8; ++i) {
            a.item_values(b)[i] = 2.0 + i + b;
        }
    }
    const solver::batch_matrix<double> variant = a;
    const auto rhs = work::random_rhs<double>(3, 8, 5);
    mat::batch_dense<double> x(3, 8, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::gmres;
    opts.preconditioner = precond::type::jacobi;  // makes M A == I exactly
    opts.gmres_restart = 6;
    opts.criterion = stop::relative(1e-12, 100);
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, variant, rhs, x, opts);
    EXPECT_EQ(result.log.num_converged(), 3);
    EXPECT_LE(result.log.max_iterations(), 2);
    for (const double r :
         solver::relative_residual_norms(variant, rhs, x)) {
        EXPECT_LE(r, 1e-11);
    }
}

TEST(RooflinePrinter, RendersAllSections)
{
    const auto device = perf::pvc_1s();
    perf::solve_profile p;
    p.totals.flops = 1e12;
    p.totals.slm_bytes = 5e12;
    p.totals.constant_read_bytes = 1e12;
    p.totals.kernel_launches = 1;
    p.totals.slm_footprint_bytes = 8192;
    p.num_systems = 1 << 15;
    p.work_group_size = 64;
    p.thread_utilization = 1.0;
    p.constant_footprint_per_system = 20000;
    const auto report = perf::analyze_roofline(device, p);
    std::ostringstream os;
    perf::print_roofline(os, device, report);
    const std::string text = os.str();
    EXPECT_NE(text.find("Roofline analysis on PVC-1S"), std::string::npos);
    EXPECT_NE(text.find("SLM"), std::string::npos);
    EXPECT_NE(text.find("L3"), std::string::npos);
    EXPECT_NE(text.find("HBM"), std::string::npos);
    EXPECT_NE(text.find("occupancy"), std::string::npos);
    EXPECT_NE(text.find("GFLOP/s"), std::string::npos);
}

TEST(IoFailures, MissingFilesAndBadHeaders)
{
    EXPECT_THROW(mat::read_batch_file<double>("/nonexistent/file.bcsr"),
                 bl::error);
    EXPECT_THROW(
        mat::read_matrix_market_file<double>("/nonexistent/m.mtx"),
        bl::error);
    {
        std::stringstream ss("%%MatrixMarket matrix array real general\n");
        EXPECT_THROW(mat::read_matrix_market<double>(ss), bl::error);
    }
    {
        std::stringstream ss(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n");
        EXPECT_THROW(mat::read_matrix_market<double>(ss), bl::error);
    }
    {
        std::stringstream ss(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n"
            "5 1 1.0\n");  // coordinate out of range
        EXPECT_THROW(mat::read_matrix_market<double>(ss), bl::error);
    }
    {
        std::stringstream ss("%%WrongBanner 1 2 2 2\n");
        EXPECT_THROW(mat::read_batch<double>(ss), bl::error);
    }
}

TEST(IoFloat, BatchRoundTripInSinglePrecision)
{
    const auto a = work::stencil_3pt<float>(3, 10, 7);
    std::stringstream ss;
    mat::write_batch(ss, a);
    const auto back = mat::read_batch<float>(ss);
    EXPECT_EQ(back.values(), a.values());
    EXPECT_EQ(back.col_idxs(), a.col_idxs());
}

TEST(QueueEdge, ZeroGroupsIsAValidLaunch)
{
    xpu::queue q(xpu::make_sycl_policy());
    int calls = 0;
    q.run_batch(0, 16, 16, [&](xpu::group&) { ++calls; });
    EXPECT_EQ(calls, 0);
    EXPECT_EQ(q.stats().kernel_launches, 1);
    EXPECT_EQ(q.stats().groups_launched, 0);
}

TEST(GroupEdge, BroadcastChargesOnlyAcrossSubGroups)
{
    xpu::counters stats;
    xpu::slm_arena arena(1024);
    {
        xpu::group g(0, 16, 16, arena, stats);  // single sub-group
        EXPECT_EQ(g.broadcast(3.5), 3.5);
        EXPECT_DOUBLE_EQ(stats.slm_bytes, 0.0);
        EXPECT_EQ(stats.group_barriers, 0);
    }
    {
        xpu::group g(0, 64, 16, arena, stats);  // four sub-groups
        EXPECT_EQ(g.broadcast(2.5), 2.5);
        EXPECT_DOUBLE_EQ(stats.slm_bytes, 4.0 * sizeof(double));
        // The SLM bounce needs a work-group barrier to become visible.
        EXPECT_EQ(stats.group_barriers, 1);
    }
}

TEST(PlannerEdge, MixedAlignmentStaysWithinArena)
{
    // float workspace: byte sizes are 4-aligned; the arena must still
    // satisfy every allocation within the planned budget.
    const auto plan = solver::plan_workspace(
        solver::solver_type::bicgstab, 33, 100, 33, 2048, sizeof(float));
    xpu::slm_arena arena(2048);
    for (const auto& e : plan.entries) {
        if (e.in_slm) {
            EXPECT_NO_THROW(
                arena.alloc<float>(static_cast<index_type>(e.elems)));
        }
    }
    EXPECT_LE(arena.used(), 2048);
}

TEST(ResidualNorms, MatchManualComputation)
{
    const auto a_csr = work::stencil_3pt<double>(2, 6, 3);
    const solver::batch_matrix<double> a = a_csr;
    auto b = work::random_rhs<double>(2, 6, 4);
    mat::batch_dense<double> x(2, 6, 1);
    x.fill(0.5);
    const auto res = solver::residual_norms(a, b, x);
    for (index_type item = 0; item < 2; ++item) {
        double sq = 0.0;
        for (index_type i = 0; i < 6; ++i) {
            double r = b.at(item, i, 0);
            for (index_type j = 0; j < 6; ++j) {
                r -= a_csr.at(item, i, j) * 0.5;
            }
            sq += r * r;
        }
        EXPECT_NEAR(res[item], std::sqrt(sq), 1e-12);
    }
}

TEST(HandleEdge, RooflineAndProjectionConsistent)
{
    using namespace batchlin;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(64, 48, 21);
    const auto b = work::random_rhs<double>(64, 48, 22);
    mat::batch_dense<double> x(64, 48, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    batch_solver handle(perf::pvc_1s(), opts);
    const auto result = handle.solve<double>(a, b, x);
    const auto t = handle.project<double>(result, a, 1 << 16);
    const auto r = handle.roofline<double>(result, a, 1 << 16);
    // Same profile behind both: achieved = flops / total time.
    const double flops =
        perf::scale_counters(result.stats, (1 << 16) / 64.0).flops;
    EXPECT_NEAR(r.achieved_gflops, flops / t.total_seconds * 1e-9, 1e-6);
}

TEST(Transpose, PatternAndValuesCorrect)
{
    const auto a = work::stencil_3pt<double>(3, 12, 8);
    const auto t = mat::transpose(a);
    EXPECT_EQ(t.rows(), a.cols());
    EXPECT_EQ(t.cols(), a.rows());
    EXPECT_EQ(t.nnz(), a.nnz());
    t.validate();
    for (index_type item = 0; item < 3; ++item) {
        for (index_type i = 0; i < 12; ++i) {
            for (index_type j = 0; j < 12; ++j) {
                EXPECT_EQ(t.at(item, j, i), a.at(item, i, j));
            }
        }
    }
}

TEST(Transpose, DoubleTransposeIsIdentity)
{
    // A non-symmetric pattern: rectangular-ish structure via chemistry.
    const auto a = work::generate_mechanism<double>(
        work::mechanism_by_name("drm19"), 17);
    const auto tt = mat::transpose(mat::transpose(a));
    EXPECT_EQ(tt.row_ptrs(), a.row_ptrs());
    EXPECT_EQ(tt.col_idxs(), a.col_idxs());
    EXPECT_EQ(tt.values(), a.values());
}

TEST(ConvergenceRate, StationarySolverHasStableContraction)
{
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(4, 24, 31);
    const auto b = work::random_rhs<double>(4, 24, 32);
    mat::batch_dense<double> x(4, 24, 1);
    solver::solve_options opts;
    opts.solver = solver::solver_type::richardson;
    opts.preconditioner = precond::type::jacobi;
    opts.richardson_relaxation = 1.0;
    opts.criterion = stop::relative(1e-10, 500);
    opts.record_history = true;
    xpu::queue q(xpu::make_sycl_policy());
    const auto result = solver::solve(q, a, b, x, opts);
    for (index_type item = 0; item < 4; ++item) {
        const double rate = result.log.convergence_rate(item);
        EXPECT_GT(rate, 0.0);
        EXPECT_LT(rate, 1.0);  // convergent
    }
}

TEST(ConvergenceRate, NanWithoutHistory)
{
    bl::log::batch_log log(2);
    log.record(0, 10, 1e-10, batchlin::log::solve_status::converged);
    EXPECT_TRUE(std::isnan(log.convergence_rate(0)));
}
