file(REMOVE_RECURSE
  "../bench/bench_abl_direct_vs_iterative"
  "../bench/bench_abl_direct_vs_iterative.pdb"
  "CMakeFiles/bench_abl_direct_vs_iterative.dir/bench_abl_direct_vs_iterative.cpp.o"
  "CMakeFiles/bench_abl_direct_vs_iterative.dir/bench_abl_direct_vs_iterative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_direct_vs_iterative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
