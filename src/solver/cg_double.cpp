#include "solver/cg_impl.hpp"
#include "solver/instantiate.hpp"

namespace batchlin::solver {

BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_CG, double, double)
BATCHLIN_FOR_EACH_COMBO(BATCHLIN_INSTANTIATE_CG_BOUND, double, double)

}  // namespace batchlin::solver
