
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/logger.cpp" "src/CMakeFiles/batchlin.dir/log/logger.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/log/logger.cpp.o.d"
  "/root/repo/src/matrix/batch_csr.cpp" "src/CMakeFiles/batchlin.dir/matrix/batch_csr.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/matrix/batch_csr.cpp.o.d"
  "/root/repo/src/matrix/batch_ell.cpp" "src/CMakeFiles/batchlin.dir/matrix/batch_ell.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/matrix/batch_ell.cpp.o.d"
  "/root/repo/src/matrix/conversions.cpp" "src/CMakeFiles/batchlin.dir/matrix/conversions.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/matrix/conversions.cpp.o.d"
  "/root/repo/src/matrix/io.cpp" "src/CMakeFiles/batchlin.dir/matrix/io.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/matrix/io.cpp.o.d"
  "/root/repo/src/matrix/operations.cpp" "src/CMakeFiles/batchlin.dir/matrix/operations.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/matrix/operations.cpp.o.d"
  "/root/repo/src/matrix/properties.cpp" "src/CMakeFiles/batchlin.dir/matrix/properties.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/matrix/properties.cpp.o.d"
  "/root/repo/src/perfmodel/cluster.cpp" "src/CMakeFiles/batchlin.dir/perfmodel/cluster.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/perfmodel/cluster.cpp.o.d"
  "/root/repo/src/perfmodel/cost_model.cpp" "src/CMakeFiles/batchlin.dir/perfmodel/cost_model.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/perfmodel/cost_model.cpp.o.d"
  "/root/repo/src/perfmodel/device_spec.cpp" "src/CMakeFiles/batchlin.dir/perfmodel/device_spec.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/perfmodel/device_spec.cpp.o.d"
  "/root/repo/src/perfmodel/roofline.cpp" "src/CMakeFiles/batchlin.dir/perfmodel/roofline.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/perfmodel/roofline.cpp.o.d"
  "/root/repo/src/precond/block_jacobi.cpp" "src/CMakeFiles/batchlin.dir/precond/block_jacobi.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/precond/block_jacobi.cpp.o.d"
  "/root/repo/src/precond/ilu0.cpp" "src/CMakeFiles/batchlin.dir/precond/ilu0.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/precond/ilu0.cpp.o.d"
  "/root/repo/src/precond/isai.cpp" "src/CMakeFiles/batchlin.dir/precond/isai.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/precond/isai.cpp.o.d"
  "/root/repo/src/precond/jacobi.cpp" "src/CMakeFiles/batchlin.dir/precond/jacobi.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/precond/jacobi.cpp.o.d"
  "/root/repo/src/solver/bicgstab_double.cpp" "src/CMakeFiles/batchlin.dir/solver/bicgstab_double.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/bicgstab_double.cpp.o.d"
  "/root/repo/src/solver/bicgstab_float.cpp" "src/CMakeFiles/batchlin.dir/solver/bicgstab_float.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/bicgstab_float.cpp.o.d"
  "/root/repo/src/solver/cg_double.cpp" "src/CMakeFiles/batchlin.dir/solver/cg_double.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/cg_double.cpp.o.d"
  "/root/repo/src/solver/cg_float.cpp" "src/CMakeFiles/batchlin.dir/solver/cg_float.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/cg_float.cpp.o.d"
  "/root/repo/src/solver/direct.cpp" "src/CMakeFiles/batchlin.dir/solver/direct.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/direct.cpp.o.d"
  "/root/repo/src/solver/dispatch.cpp" "src/CMakeFiles/batchlin.dir/solver/dispatch.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/dispatch.cpp.o.d"
  "/root/repo/src/solver/gmres_double.cpp" "src/CMakeFiles/batchlin.dir/solver/gmres_double.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/gmres_double.cpp.o.d"
  "/root/repo/src/solver/gmres_float.cpp" "src/CMakeFiles/batchlin.dir/solver/gmres_float.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/gmres_float.cpp.o.d"
  "/root/repo/src/solver/handle.cpp" "src/CMakeFiles/batchlin.dir/solver/handle.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/handle.cpp.o.d"
  "/root/repo/src/solver/launch.cpp" "src/CMakeFiles/batchlin.dir/solver/launch.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/launch.cpp.o.d"
  "/root/repo/src/solver/residual.cpp" "src/CMakeFiles/batchlin.dir/solver/residual.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/residual.cpp.o.d"
  "/root/repo/src/solver/richardson_double.cpp" "src/CMakeFiles/batchlin.dir/solver/richardson_double.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/richardson_double.cpp.o.d"
  "/root/repo/src/solver/richardson_float.cpp" "src/CMakeFiles/batchlin.dir/solver/richardson_float.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/richardson_float.cpp.o.d"
  "/root/repo/src/solver/trsv.cpp" "src/CMakeFiles/batchlin.dir/solver/trsv.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/trsv.cpp.o.d"
  "/root/repo/src/solver/workspace.cpp" "src/CMakeFiles/batchlin.dir/solver/workspace.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/solver/workspace.cpp.o.d"
  "/root/repo/src/stop/criterion.cpp" "src/CMakeFiles/batchlin.dir/stop/criterion.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/stop/criterion.cpp.o.d"
  "/root/repo/src/util/dense_lu.cpp" "src/CMakeFiles/batchlin.dir/util/dense_lu.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/util/dense_lu.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/batchlin.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/util/rng.cpp.o.d"
  "/root/repo/src/workload/chemistry.cpp" "src/CMakeFiles/batchlin.dir/workload/chemistry.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/workload/chemistry.cpp.o.d"
  "/root/repo/src/workload/replicate.cpp" "src/CMakeFiles/batchlin.dir/workload/replicate.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/workload/replicate.cpp.o.d"
  "/root/repo/src/workload/stencil.cpp" "src/CMakeFiles/batchlin.dir/workload/stencil.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/workload/stencil.cpp.o.d"
  "/root/repo/src/xpu/arena.cpp" "src/CMakeFiles/batchlin.dir/xpu/arena.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/xpu/arena.cpp.o.d"
  "/root/repo/src/xpu/policy.cpp" "src/CMakeFiles/batchlin.dir/xpu/policy.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/xpu/policy.cpp.o.d"
  "/root/repo/src/xpu/queue.cpp" "src/CMakeFiles/batchlin.dir/xpu/queue.cpp.o" "gcc" "src/CMakeFiles/batchlin.dir/xpu/queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
