// Tests for the multi-device sharding layer: registry enumeration and
// policy derivation, cost-model routing (determinism, device weighting,
// spill), the per-shard circuit breaker, and the sharded serve path —
// bit-identity across shard counts (with and without injected per-shard
// faults), fault isolation, work stealing, and per-shard statistics.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "batchlin/batchlin.hpp"
#include "shard/lane.hpp"
#include "shard/registry.hpp"
#include "shard/router.hpp"

namespace bl = batchlin;
namespace mat = batchlin::mat;
namespace perf = batchlin::perf;
namespace serve = batchlin::serve;
namespace shard = batchlin::shard;
namespace solver = batchlin::solver;
namespace stop = batchlin::stop;
namespace work = batchlin::work;
namespace xpu = batchlin::xpu;
using bl::index_type;
using std::chrono::microseconds;

namespace {

solver::solve_options cg_opts()
{
    solver::solve_options opts;
    opts.solver = solver::solver_type::cg;
    opts.preconditioner = bl::precond::type::jacobi;
    opts.criterion = stop::relative(1e-8, 100);
    return opts;
}

template <typename T>
serve::solve_request<T> make_request(mat::batch_csr<T> a,
                                     const solver::solve_options& opts,
                                     std::uint64_t rhs_seed)
{
    serve::solve_request<T> req;
    const index_type items = a.num_batch_items();
    const index_type rows = a.rows();
    req.b = work::random_rhs<T>(items, rows, rhs_seed);
    req.x = mat::batch_dense<T>(items, rows, 1);
    req.a = std::move(a);
    req.opts = opts;
    return req;
}

/// Fault schedule hitting every even launch in [0, 2 * executions): each
/// faulted launch recovers on its immediate retry (the retry is a fresh,
/// odd launch the schedule no longer matches).
xpu::fault_plan even_launch_faults(index_type executions)
{
    xpu::fault_plan plan;
    for (index_type i = 0; i < executions; ++i) {
        plan.events.push_back({xpu::fault_kind::launch_fail,
                               static_cast<std::uint64_t>(2 * i), 0, 1,
                               xpu::fault_target::slm,
                               xpu::poison_mode::nan});
    }
    return plan;
}

/// Which shard of `service` the stencil pattern (items, rows) routes to,
/// discovered by submitting one request and diffing the per-shard routed
/// counters. The router is deterministic in (key, specs), so the answer
/// transfers to any service with the same shard layout.
index_type affine_shard_for(serve::solve_service& service, index_type rows,
                            std::uint64_t seed)
{
    const serve::service_stats before = service.stats();
    service
        .submit(make_request(work::stencil_3pt<double>(1, rows, seed),
                             cg_opts(), seed))
        .get();
    const serve::service_stats after = service.stats();
    for (std::size_t s = 0; s < after.shards.size(); ++s) {
        if (after.shards[s].routed_requests >
            before.shards[s].routed_requests) {
            return static_cast<index_type>(s);
        }
    }
    ADD_FAILURE() << "request routed to no shard";
    return 0;
}

/// Runs a fixed mixed request set through a service with the given shard
/// layout and returns every solution value in submission order.
std::vector<double> run_request_mix(index_type shards,
                                    std::vector<xpu::fault_plan> faults = {})
{
    serve::service_config cfg;
    cfg.shards = shards;
    cfg.workers = 2;
    cfg.max_batch = 16;
    cfg.max_wait = microseconds(200);
    cfg.shard_faults = std::move(faults);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    std::vector<serve::solve_ticket<double>> tickets;
    for (int wave = 0; wave < 4; ++wave) {
        for (const index_type rows : {16, 24, 32, 48}) {
            tickets.push_back(service.submit(
                make_request(work::stencil_3pt<double>(2, rows,
                                                       100 + rows),
                             cg_opts(), 500 + rows)));
        }
    }

    std::vector<double> out;
    for (serve::solve_ticket<double>& ticket : tickets) {
        serve::solve_reply<double> reply = ticket.get();
        EXPECT_EQ(reply.status, serve::request_status::ok);
        for (index_type i = 0; i < reply.x.num_batch_items(); ++i) {
            const double* v = reply.x.item_values(i);
            out.insert(out.end(), v, v + reply.x.rows());
        }
    }
    return out;
}

bool bit_identical(const std::vector<double>& a,
                   const std::vector<double>& b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Scoped environment override that restores the previous value.
class env_guard {
public:
    env_guard(const char* name, const char* value) : name_(name)
    {
        const char* old = std::getenv(name);
        if (old != nullptr) {
            had_old_ = true;
            old_ = old;
        }
        if (value != nullptr) {
            ::setenv(name, value, 1);
        } else {
            ::unsetenv(name);
        }
    }
    ~env_guard()
    {
        if (had_old_) {
            ::setenv(name_, old_.c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }

private:
    const char* name_;
    bool had_old_ = false;
    std::string old_;
};

}  // namespace

TEST(ShardRegistry, CanonicalNamesAndParsing)
{
    EXPECT_EQ(shard::canonical_device_name("pvc1s"), "PVC-1S");
    EXPECT_EQ(shard::canonical_device_name("PVC-1S"), "PVC-1S");
    EXPECT_EQ(shard::canonical_device_name("pvc_2s"), "PVC-2S");
    EXPECT_EQ(shard::canonical_device_name("A100"), "A100");
    EXPECT_EQ(shard::canonical_device_name("h100"), "H100");
    EXPECT_THROW(shard::canonical_device_name("mi300"), bl::error);

    const std::vector<std::string> names =
        shard::parse_device_list("pvc1s, pvc2s,a100");
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "PVC-1S");
    EXPECT_EQ(names[1], "PVC-2S");
    EXPECT_EQ(names[2], "A100");
    EXPECT_THROW(shard::parse_device_list(""), bl::error);
    EXPECT_THROW(shard::parse_device_list("pvc1s,bogus"), bl::error);
}

TEST(ShardRegistry, UniformEnumerationKeepsBasePolicyVerbatim)
{
    const xpu::exec_policy base = xpu::make_sycl_policy();
    const shard::registry reg = shard::registry::uniform(3, "pvc1s", base);
    ASSERT_EQ(reg.size(), 3);
    for (index_type s = 0; s < reg.size(); ++s) {
        const shard::device_entry& e = reg.at(s);
        EXPECT_EQ(e.id, s);
        EXPECT_EQ(e.spec.name, "PVC-1S");
        EXPECT_FALSE(e.explicit_device);
        // Uniform shards must behave exactly like the unsharded service:
        // no launch-cost emulation is grafted on.
        EXPECT_DOUBLE_EQ(e.policy.emulated_launch_us,
                         base.emulated_launch_us);
        EXPECT_DOUBLE_EQ(e.policy.emulated_replay_us,
                         base.emulated_replay_us);
    }
    EXPECT_THROW(reg.at(3), bl::error);
    EXPECT_THROW(reg.at(-1), bl::error);
}

TEST(ShardRegistry, FromNamesAppliesDeviceLaunchCosts)
{
    const xpu::exec_policy base = xpu::make_sycl_policy();
    shard::registry reg =
        shard::registry::from_names({"pvc1s", "pvc2s"}, base);
    ASSERT_EQ(reg.size(), 2);
    const perf::device_spec p1 = perf::pvc_1s();
    const perf::device_spec p2 = perf::pvc_2s();
    EXPECT_TRUE(reg.at(0).explicit_device);
    EXPECT_EQ(reg.at(0).spec.name, p1.name);
    EXPECT_DOUBLE_EQ(reg.at(0).policy.emulated_launch_us,
                     p1.kernel_launch_us);
    EXPECT_DOUBLE_EQ(reg.at(0).policy.emulated_replay_us,
                     p1.graph_replay_us);
    EXPECT_DOUBLE_EQ(reg.at(0).policy.emulated_record_us,
                     p1.graph_finalize_us);
    EXPECT_EQ(reg.at(1).spec.name, p2.name);
    EXPECT_DOUBLE_EQ(reg.at(1).policy.emulated_launch_us,
                     p2.kernel_launch_us);
    // Kernel-behavior fields stay the base policy's — the bit-identity
    // guarantee across placements.
    EXPECT_EQ(reg.at(0).policy.allowed_sub_group_sizes,
              base.allowed_sub_group_sizes);
    EXPECT_EQ(reg.at(1).policy.allowed_sub_group_sizes,
              base.allowed_sub_group_sizes);

    // The standalone per-shard queue is lazily built, then stable.
    xpu::queue& q0 = reg.queue(0);
    EXPECT_EQ(&q0, &reg.queue(0));
    EXPECT_NE(&q0, &reg.queue(1));
}

TEST(ShardRegistry, EnvOverridesParse)
{
    {
        env_guard guard("BATCHLIN_SHARDS", "4");
        const auto count = shard::shards_from_env();
        ASSERT_TRUE(count.has_value());
        EXPECT_EQ(*count, 4);
    }
    {
        env_guard guard("BATCHLIN_SHARDS", nullptr);
        EXPECT_FALSE(shard::shards_from_env().has_value());
    }
    {
        env_guard guard("BATCHLIN_SHARDS", "zero");
        EXPECT_THROW(shard::shards_from_env(), bl::error);
    }
    {
        env_guard guard("BATCHLIN_SHARD_DEVICES", "pvc1s,pvc1s");
        const auto devices = shard::shard_devices_from_env();
        ASSERT_TRUE(devices.has_value());
        ASSERT_EQ(devices->size(), 2u);
        EXPECT_EQ((*devices)[0], "PVC-1S");
    }
}

TEST(ShardRegistry, ServiceAppliesEnvOverrideToDefaultConfigOnly)
{
    env_guard devices_guard("BATCHLIN_SHARD_DEVICES", nullptr);
    env_guard guard("BATCHLIN_SHARDS", "3");
    {
        serve::solve_service service(xpu::make_sycl_policy(), {});
        EXPECT_EQ(service.devices().size(), 3);
        EXPECT_EQ(service.config().shards, 3);
    }
    {
        serve::service_config cfg;
        cfg.shards = 2;
        serve::solve_service service(xpu::make_sycl_policy(), cfg);
        EXPECT_EQ(service.devices().size(), 2);
    }
}

TEST(ShardRouter, DeterministicForEqualCostShards)
{
    const shard::router router({perf::pvc_1s(), perf::pvc_1s()});
    const std::vector<std::int64_t> idle = {0, 0};
    bool hit_shard[2] = {false, false};
    for (std::uint64_t key = 1; key <= 64; ++key) {
        const shard::decision first = router.route(key, 4, 16, 46, idle);
        for (int repeat = 0; repeat < 3; ++repeat) {
            const shard::decision again =
                router.route(key, 4, 16, 46, idle);
            EXPECT_EQ(again.shard, first.shard);
            EXPECT_EQ(again.cost_ns, first.cost_ns);
        }
        hit_shard[first.shard] = true;
        // Equal specs price the request equally on both shards.
        EXPECT_EQ(first.cost_ns,
                  shard::router::estimate_cost_ns(perf::pvc_1s(), 4, 16,
                                                  46));
    }
    // Rendezvous hashing spreads distinct keys over both shards.
    EXPECT_TRUE(hit_shard[0]);
    EXPECT_TRUE(hit_shard[1]);
}

TEST(ShardRouter, CostModelTracksDeviceBandwidthAndLaunchCost)
{
    // Large batches are bandwidth-bound: the two-stack part must price
    // them toward the paper's 1.8-1.9x stack scaling (§4.2), not the
    // ideal 2x. The shape must stream milliseconds of bytes to dominate
    // PVC-2S's 75us implicit-scaling launch overhead.
    const std::int64_t big_1s =
        shard::router::estimate_cost_ns(perf::pvc_1s(), 16384, 256, 768);
    const std::int64_t big_2s =
        shard::router::estimate_cost_ns(perf::pvc_2s(), 16384, 256, 768);
    const double ratio =
        static_cast<double>(big_1s) / static_cast<double>(big_2s);
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 1.95);

    // A single tiny system is launch-bound: the implicit-scaling split
    // overhead makes the two-stack part the *worse* home for it.
    EXPECT_LT(shard::router::estimate_cost_ns(perf::pvc_1s(), 1, 8, 22),
              shard::router::estimate_cost_ns(perf::pvc_2s(), 1, 8, 22));

    // Faster devices win proportionally more keys at equal backlog.
    const shard::router mixed({perf::pvc_1s(), perf::pvc_2s()});
    const std::vector<std::int64_t> idle = {0, 0};
    int won_by_2s = 0;
    for (std::uint64_t key = 1; key <= 512; ++key) {
        if (mixed.route(key, 16384, 256, 768, idle).shard == 1) {
            ++won_by_2s;
        }
    }
    EXPECT_GT(won_by_2s, 256);
}

TEST(ShardRouter, SpillsToLeastLoadedPastHysteresis)
{
    const shard::router router({perf::pvc_1s(), perf::pvc_1s()});
    const std::uint64_t key = 1234;
    const shard::decision affine = router.route(key, 1, 16, 46, {0, 0});
    const index_type other = affine.shard == 0 ? 1 : 0;

    // Backlog below the one-batch hysteresis margin keeps the key home
    // (same-key bursts must stay together and coalesce).
    std::vector<std::int64_t> small_backlog = {0, 0};
    small_backlog[affine.shard] = affine.cost_ns * 8;
    EXPECT_EQ(router.route(key, 1, 16, 46, small_backlog).shard,
              affine.shard);

    // Far past the margin, the request spills to the least loaded shard.
    std::vector<std::int64_t> heavy_backlog = {0, 0};
    heavy_backlog[affine.shard] = affine.cost_ns * 100;
    EXPECT_EQ(router.route(key, 1, 16, 46, heavy_backlog).shard, other);
}

TEST(ShardBreaker, TripsAndCoolsDownIndependently)
{
    shard::breaker brk;
    // Two healthy observations, then a faulted window: 2/4 = 0.5 ratio.
    EXPECT_FALSE(brk.observe(false, 0.5, 4, 3));
    EXPECT_FALSE(brk.observe(false, 0.5, 4, 3));
    EXPECT_FALSE(brk.observe(true, 0.5, 4, 3));
    EXPECT_TRUE(brk.observe(true, 0.5, 4, 3));
    EXPECT_TRUE(brk.active());
    EXPECT_TRUE(brk.suspended.load());
    EXPECT_EQ(brk.trips, 1u);
    // Cooldown counts down one launch per observation, window frozen.
    EXPECT_FALSE(brk.observe(true, 0.5, 4, 3));
    EXPECT_FALSE(brk.observe(false, 0.5, 4, 3));
    EXPECT_TRUE(brk.active());
    EXPECT_FALSE(brk.observe(false, 0.5, 4, 3));
    EXPECT_FALSE(brk.active());
    EXPECT_FALSE(brk.suspended.load());
    // A healthy window after recovery does not re-trip.
    for (int i = 0; i < 4; ++i) {
        EXPECT_FALSE(brk.observe(false, 0.5, 4, 3));
    }
    EXPECT_EQ(brk.trips, 1u);
}

TEST(ShardBreaker, CooldownFreezesTheWindowAgainstReTrips)
{
    // Design contract: faults observed DURING cooldown never re-trip or
    // extend it — the window is frozen, each observation only counts the
    // cooldown down. A breaker that re-armed on in-cooldown faults could
    // latch a shard into solo mode forever off one bad burst. Re-tripping
    // requires a fresh post-cooldown window to fault on its own.
    shard::breaker brk;
    // Trip on a fully faulted 2-wide window at ratio 0.6, cooldown 3.
    EXPECT_FALSE(brk.observe(true, 0.6, 2, 3));
    EXPECT_TRUE(brk.observe(true, 0.6, 2, 3));
    EXPECT_EQ(brk.trips, 1u);
    // Every in-cooldown observation faults; none re-trips, none extends.
    EXPECT_FALSE(brk.observe(true, 0.6, 2, 3));
    EXPECT_FALSE(brk.observe(true, 0.6, 2, 3));
    EXPECT_TRUE(brk.active());
    EXPECT_FALSE(brk.observe(true, 0.6, 2, 3));
    EXPECT_FALSE(brk.active());
    EXPECT_EQ(brk.trips, 1u);
    // The frozen window carried nothing over: the post-cooldown window
    // closes at 1/2 = 0.5 < 0.6 and does NOT re-trip. Had the three
    // in-cooldown faults leaked into it, 4/5 = 0.8 would have.
    EXPECT_FALSE(brk.observe(true, 0.6, 2, 3));
    EXPECT_FALSE(brk.observe(false, 0.6, 2, 3));
    EXPECT_FALSE(brk.active());
    EXPECT_EQ(brk.trips, 1u);
    // A fresh window faulting on its own re-trips legitimately.
    EXPECT_FALSE(brk.observe(true, 0.6, 2, 3));
    EXPECT_TRUE(brk.observe(true, 0.6, 2, 3));
    EXPECT_EQ(brk.trips, 2u);
    EXPECT_TRUE(brk.active());
}

TEST(ShardServe, BitIdenticalAcrossShardCounts)
{
    const std::vector<double> solo = run_request_mix(1);
    const std::vector<double> two = run_request_mix(2);
    const std::vector<double> four = run_request_mix(4);
    ASSERT_FALSE(solo.empty());
    EXPECT_TRUE(bit_identical(solo, two));
    EXPECT_TRUE(bit_identical(solo, four));
}

TEST(ShardServe, BitIdenticalUnderInjectedPerShardFaults)
{
    const std::vector<double> clean = run_request_mix(2);
    // Fault shard 0's workers on every even launch: every execution there
    // faults once and recovers on retry. Replies must stay ok and
    // bit-identical to the clean run.
    std::vector<xpu::fault_plan> faults(1);
    faults[0] = even_launch_faults(64);
    const std::vector<double> faulted = run_request_mix(2, std::move(faults));
    EXPECT_TRUE(bit_identical(clean, faulted));

    std::vector<xpu::fault_plan> both(2);
    both[0] = even_launch_faults(64);
    both[1] = even_launch_faults(64);
    const std::vector<double> faulted4 =
        run_request_mix(4, std::move(both));
    EXPECT_TRUE(bit_identical(clean, faulted4));
}

TEST(ShardServe, PerShardFaultsIsolateAndBreakerTripsAlone)
{
    serve::service_config probe_cfg;
    probe_cfg.shards = 2;
    probe_cfg.workers = 1;
    serve::solve_service probe(xpu::make_sycl_policy(), probe_cfg);
    const index_type faulty = affine_shard_for(probe, 16, 11);
    // Find a second pattern living on the other shard, so the healthy
    // shard demonstrably keeps serving while its neighbor faults.
    index_type healthy_rows = 0;
    for (index_type rows = 20; rows <= 96; rows += 4) {
        if (affine_shard_for(probe, rows, 11) != faulty) {
            healthy_rows = rows;
            break;
        }
    }
    ASSERT_GT(healthy_rows, 0) << "no pattern routed to the second shard";
    probe.stop();

    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.breaker_window = 4;
    cfg.breaker_cooldown = 4;
    cfg.shard_faults.resize(2);
    cfg.shard_faults[static_cast<std::size_t>(faulty)] =
        even_launch_faults(64);
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    for (int i = 0; i < 12; ++i) {
        serve::solve_reply<double> on_faulty =
            service
                .submit(make_request(work::stencil_3pt<double>(1, 16, 11),
                                     cg_opts(), 900 + i))
                .get();
        EXPECT_EQ(on_faulty.status, serve::request_status::ok);
        serve::solve_reply<double> on_healthy =
            service
                .submit(make_request(
                    work::stencil_3pt<double>(1, healthy_rows, 11),
                    cg_opts(), 950 + i))
                .get();
        EXPECT_EQ(on_healthy.status, serve::request_status::ok);
    }

    const serve::service_stats s = service.stats();
    const auto f = static_cast<std::size_t>(faulty);
    const std::size_t h = f == 0 ? 1 : 0;
    EXPECT_GE(s.shards[f].launch_faults, 8u);
    EXPECT_EQ(s.shards[h].launch_faults, 0u);
    EXPECT_GE(s.shards[f].breaker_trips, 1u);
    EXPECT_EQ(s.shards[h].breaker_trips, 0u);
    EXPECT_GE(s.shards[h].completed_systems, 12u);
    EXPECT_EQ(s.failed_requests, 0u);
    // Globals aggregate the per-shard truth.
    EXPECT_EQ(s.breaker_trips, s.shards[f].breaker_trips);
    EXPECT_EQ(s.launch_faults,
              s.shards[0].launch_faults + s.shards[1].launch_faults);
}

TEST(ShardServe, WorkStealingRebalancesAHotKey)
{
    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 8;
    cfg.steal_threshold = 4;
    cfg.max_wait = microseconds(100);
    cfg.max_queue_systems = 8192;
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    std::uint64_t total = 0;
    std::uint64_t steals = 0;
    for (int wave = 0; wave < 100 && steals == 0; ++wave) {
        std::vector<serve::solve_ticket<double>> tickets;
        tickets.reserve(64);
        for (int i = 0; i < 64; ++i) {
            tickets.push_back(service.submit(make_request(
                work::stencil_3pt<double>(1, 16, 21), cg_opts(),
                static_cast<std::uint64_t>(wave * 64 + i))));
        }
        for (serve::solve_ticket<double>& ticket : tickets) {
            EXPECT_EQ(ticket.get().status, serve::request_status::ok);
            ++total;
        }
        steals = service.stats().steals;
    }
    // Replies resolve before the workers' locked bookkeeping; drain
    // settles the books before the consistency checks below.
    service.drain();
    const serve::service_stats s = service.stats();
    EXPECT_GE(s.steals, 1u);
    EXPECT_EQ(s.completed_systems, total);
    // Every system completed exactly once, on whichever shard executed it
    // (on a single host core the scheduler may let one shard's worker do
    // all the executing — including the stolen work — so no claim is made
    // about which shard ran what, only that the books balance).
    EXPECT_EQ(s.shards[0].completed_systems + s.shards[1].completed_systems,
              total);
    EXPECT_EQ(s.shards[0].steals + s.shards[1].steals, s.steals);
    EXPECT_GE(s.shards[0].stolen_systems + s.shards[1].stolen_systems, 1u);
}

TEST(ShardServe, PerShardStatsAreConsistentAfterDrain)
{
    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 8;
    serve::solve_service service(xpu::make_sycl_policy(), cfg);

    std::vector<serve::solve_ticket<double>> tickets;
    for (int i = 0; i < 20; ++i) {
        const index_type rows = 16 + 8 * (i % 4);
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(2, rows, 33), cg_opts(),
                         static_cast<std::uint64_t>(i))));
    }
    for (serve::solve_ticket<double>& ticket : tickets) {
        EXPECT_EQ(ticket.get().status, serve::request_status::ok);
    }
    service.drain();

    const serve::service_stats s = service.stats();
    ASSERT_EQ(s.shards.size(), 2u);
    std::uint64_t routed_requests = 0;
    std::uint64_t routed_systems = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    for (const serve::shard_stats& ss : s.shards) {
        EXPECT_EQ(ss.device, "PVC-1S");
        EXPECT_EQ(ss.queue_depth_systems, 0u);
        EXPECT_EQ(ss.backlog_ns, 0);
        EXPECT_FALSE(ss.breaker_active);
        routed_requests += ss.routed_requests;
        routed_systems += ss.routed_systems;
        completed += ss.completed_systems;
        batches += ss.batches_launched;
        if (ss.batches_launched > 0) {
            EXPECT_GT(ss.modeled_busy_seconds, 0.0);
        }
    }
    EXPECT_EQ(routed_requests, s.submitted_requests);
    EXPECT_EQ(routed_systems, s.submitted_systems);
    EXPECT_EQ(completed, s.completed_systems);
    EXPECT_EQ(completed, 40u);
    EXPECT_EQ(batches, s.batches_launched);
    EXPECT_EQ(s.queue_depth_systems, 0u);
}

TEST(ShardServe, PersistentModeShardsServeAndStayConsistent)
{
    xpu::exec_policy policy = xpu::make_sycl_policy();
    policy.launch_mode = xpu::launch_mode::persistent;
    serve::service_config cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.max_batch = 16;
    cfg.max_queue_systems = 8192;
    serve::solve_service service(policy, cfg);
    ASSERT_EQ(service.launch_mode(), xpu::launch_mode::persistent);

    std::vector<serve::solve_ticket<double>> tickets;
    for (int i = 0; i < 128; ++i) {
        const index_type rows = (i % 2) == 0 ? 16 : 24;
        tickets.push_back(service.submit(
            make_request(work::stencil_3pt<double>(1, rows, 44), cg_opts(),
                         static_cast<std::uint64_t>(i))));
    }
    for (serve::solve_ticket<double>& ticket : tickets) {
        EXPECT_EQ(ticket.get().status, serve::request_status::ok);
    }
    service.drain();

    const serve::service_stats s = service.stats();
    ASSERT_EQ(s.shards.size(), 2u);
    EXPECT_EQ(s.completed_systems, 128u);
    EXPECT_EQ(s.shards[0].completed_systems + s.shards[1].completed_systems,
              128u);
    EXPECT_EQ(s.queue_depth_systems, 0u);
    EXPECT_EQ(s.shards[0].backlog_ns, 0);
    EXPECT_EQ(s.shards[1].backlog_ns, 0);
    service.stop();
}
