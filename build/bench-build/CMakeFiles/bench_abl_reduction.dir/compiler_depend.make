# Empty compiler generated dependencies file for bench_abl_reduction.
# This may be replaced when dependencies are built.
