file(REMOVE_RECURSE
  "CMakeFiles/test_direct_ops.dir/test_direct_ops.cpp.o"
  "CMakeFiles/test_direct_ops.dir/test_direct_ops.cpp.o.d"
  "test_direct_ops"
  "test_direct_ops.pdb"
  "test_direct_ops[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_direct_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
