// Memory-space-tagged spans used by device kernels.
//
// The SYCL port in the paper places each solver vector either in shared
// local memory (SLM) or in global memory, chosen by the SLM planner
// (paper §3.5). Device-side BLAS routines need to know where an operand
// lives so that the traffic counters attribute bytes to the right level of
// the hierarchy; dspan carries that tag alongside the pointer.
#pragma once

#include <cstddef>

#include "util/error.hpp"
#include "util/math.hpp"

namespace batchlin::xpu {

/// Memory space an operand lives in, for traffic attribution.
enum class mem_space {
    /// Mutable global memory (HBM-backed).
    global,
    /// Shared local memory of the owning work-group.
    slm,
    /// Read-only global data (matrix values, rhs): L3-cacheable.
    constant,
};

/// A pointer+length view tagged with the memory space of its storage.
template <typename T>
struct dspan {
    T* data = nullptr;
    index_type len = 0;
    mem_space space = mem_space::global;

    T& operator[](index_type i) const { return data[i]; }

    bool empty() const { return len == 0; }

    dspan subspan(index_type offset, index_type count) const
    {
        BATCHLIN_ENSURE_DIMS(offset >= 0 && count >= 0 &&
                                 offset + count <= len,
                             "subspan out of range");
        return {data + offset, count, space};
    }

    /// Implicit view-of-const conversion.
    operator dspan<const T>() const { return {data, len, space}; }
};

/// Bytes moved when every element of `s` is touched once.
template <typename T>
constexpr double bytes_of(const dspan<T>& s)
{
    return static_cast<double>(s.len) * sizeof(T);
}

}  // namespace batchlin::xpu
