// Command-graph record/replay — the simulator's analogue of SYCL
// `khr::command_graph` (SNIPPETS.md #2).
//
// A real Level-Zero command graph captures the submissions made to a queue
// between `begin_recording` and `end_recording`, finalizes them into an
// immutable executable, and replays that executable at a fraction of an
// eager submit's cost: the runtime skips argument marshalling, kernel
// lookup, and JIT checks. The simulator mirrors the lifecycle exactly:
//
//   command_graph g;
//   g.begin_recording(q);
//   q.run_batch(...);          // captured, NOT executed
//   g.end_recording();
//   graph_exec exec = g.finalize();   // charges emulated_record_us once
//   exec.replay(q);            // executes, charging emulated_replay_us
//
// Replays go through the queue's normal launch path, so the launch counter
// advances and `xpu::fault_plan` events fire on replays just as they do on
// eager submissions — resilience retries work unchanged. A replay that
// observes a device fault should be followed by `invalidate()` so a retry
// re-records rather than replaying a poisoned graph; replaying an
// invalidated executable throws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/math.hpp"

namespace batchlin::xpu {

class group;
class queue;
class command_graph;

/// One captured kernel submission: the launch geometry plus a type-erased
/// kernel body. The body must not dangle — recordable kernels capture
/// their operands by value (raw pointers into storage that outlives the
/// graph), never by reference to stack locals.
struct graph_node {
    index_type num_groups = 0;
    index_type work_group_size = 0;
    index_type sub_group_size = 0;
    index_type first_group = 0;
    const char* kernel_label = "kernel";
    std::function<void(group&)> body;
};

/// What a graph submission costs on the host, per replay.
enum class submit_cost {
    /// Full eager-launch cost (`emulated_launch_us`) — for comparisons.
    eager,
    /// Finalized-graph replay cost (`emulated_replay_us`). The default.
    replay,
    /// Zero host cost: the consuming kernel is already resident on the
    /// device (persistent-worker mode) and no submission happens at all.
    resident,
};

/// A finalized, replayable executable. Cheap to move; replay is not
/// thread-safe (replay on one queue at a time, like the queue itself).
class graph_exec {
public:
    graph_exec() = default;

    /// Executes every recorded node on `q` in record order. Each node goes
    /// through the queue's launch path — the launch counter advances and
    /// fault events keyed to it fire — but is charged `cost` instead of
    /// the eager launch overhead. Throws whatever the kernels throw;
    /// throws `state_error` when the executable has been invalidated.
    void replay(queue& q, submit_cost cost = submit_cost::replay);

    /// Number of completed `replay` calls (a throwing replay counts: the
    /// submission happened, like a failed launch advancing the counter).
    std::uint64_t replays() const { return replays_; }

    index_type num_nodes() const
    {
        return nodes_ ? static_cast<index_type>(nodes_->size()) : 0;
    }

    /// True until `invalidate()` — an empty executable is not valid.
    bool valid() const { return nodes_ != nullptr && !invalidated_; }

    /// Marks the executable unusable. Called after a replay observed a
    /// device fault: the graph may have been half-executed, so retries
    /// must re-record instead of replaying it.
    void invalidate() { invalidated_ = true; }

private:
    friend class command_graph;
    explicit graph_exec(std::shared_ptr<const std::vector<graph_node>> nodes)
        : nodes_(std::move(nodes))
    {}

    std::shared_ptr<const std::vector<graph_node>> nodes_;
    std::uint64_t replays_ = 0;
    bool invalidated_ = false;
};

/// Records queue submissions into nodes. One recording at a time; the
/// queue validates each captured launch eagerly (geometry errors surface
/// at record time, not replay time) but executes nothing.
class command_graph {
public:
    command_graph() = default;
    ~command_graph();

    command_graph(const command_graph&) = delete;
    command_graph& operator=(const command_graph&) = delete;

    /// Starts capturing `q`'s submissions. The queue must not already be
    /// recording, and must not be mid-launch.
    void begin_recording(queue& q);

    /// Stops capturing. The queue resumes eager execution.
    void end_recording();

    /// Bakes the captured nodes into an immutable executable and charges
    /// the recording queue `emulated_record_us` once — modeling the
    /// runtime's graph-build cost. The recorder is left empty, ready for
    /// another `begin_recording`. Requires at least one captured node.
    graph_exec finalize();

    /// Appends a captured node (called by `queue::run_batch` while this
    /// recorder is attached).
    void add(graph_node node) { nodes_.push_back(std::move(node)); }

    bool recording() const { return active_; }
    index_type num_nodes() const
    {
        return static_cast<index_type>(nodes_.size());
    }
    /// Number of completed `finalize()` calls on this recorder.
    std::uint64_t records() const { return records_; }

private:
    /// Attached queue: set by begin_recording, kept through end_recording
    /// so finalize() can charge the record cost, cleared by finalize().
    queue* queue_ = nullptr;
    bool active_ = false;
    std::vector<graph_node> nodes_;
    std::uint64_t records_ = 0;
};

}  // namespace batchlin::xpu
