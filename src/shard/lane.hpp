// shard::lane — per-shard runtime state of the sharded serve layer, and
// the per-shard circuit breaker.
//
// One lane per registry entry: its run-queue (windowed modes) or MPMC
// ring (persistent mode), the backlog estimate the router balances on,
// the breaker and fault accounting that isolate a misbehaving shard, and
// the per-shard counters `serve::stats` exposes. The lane itself holds no
// threads and no locks: the windowed fields are guarded by the service
// mutex, the ring and the atomics are lock-free, and the `xpu::queue`s
// executing a lane's work are owned by the service's worker threads (one
// queue per worker, the single-threaded contract `xpu::queue` documents).
//
// The struct is templated on the queued entry pointer so this header
// does not depend on the serve layer's pending-entry internals (which in
// turn include this header's sibling registry).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>

#include "conc/shim.hpp"
#include "perfmodel/device_spec.hpp"
#include "serve/ring.hpp"
#include "util/math.hpp"
#include "xpu/policy.hpp"

namespace batchlin::shard {

/// Per-shard circuit breaker over the PR 5 fault taxonomy: when the
/// faulted fraction of the last `window` fused launches reaches
/// `fault_ratio`, the shard suspends coalescing for `cooldown` launches
/// (its workers degrade to solo/native solves) while the other shards
/// keep serving fused batches. State is guarded by the service mutex;
/// `suspended` mirrors `remaining > 0` for lock-free readers (the
/// persistent loop checks it per batch).
struct breaker {
    std::uint32_t window_count = 0;
    std::uint32_t window_faulted = 0;
    /// Remaining launches of a tripped breaker's cooldown; > 0 suspends
    /// coalescing on this shard.
    std::uint32_t remaining = 0;
    std::uint64_t trips = 0;
    conc::atomic<bool> suspended{false};

    bool active() const { return remaining > 0; }

    /// One observation per fused execution (`faulted` when any attempt
    /// faulted). During cooldown the window stays frozen and each solo
    /// execution counts the cooldown down. Returns whether this
    /// observation tripped the breaker.
    bool observe(bool faulted, double fault_ratio, std::uint32_t window,
                 std::uint32_t cooldown)
    {
        bool tripped = false;
        if (remaining > 0) {
            --remaining;
        } else {
            ++window_count;
            if (faulted) {
                ++window_faulted;
            }
            if (window > 0 && window_count >= window) {
                const double ratio = static_cast<double>(window_faulted) /
                                     static_cast<double>(window_count);
                if (ratio >= fault_ratio && cooldown > 0) {
                    ++trips;
                    remaining = cooldown;
                    tripped = true;
                }
                window_count = 0;
                window_faulted = 0;
            }
        }
        suspended.store(remaining > 0, std::memory_order_release);
        return tripped;
    }
};

/// Runtime state of one shard. Not movable (atomics); the service keeps
/// lanes in a deque for address stability.
template <typename EntryPtr>
struct lane {
    index_type id = 0;
    /// The emulated device (routing costs, stats labels, modeled busy
    /// time).
    perf::device_spec spec;
    /// Policy this lane's worker queues are built from (registry entry
    /// policy plus any per-shard injected fault schedule).
    xpu::exec_policy policy;

    /// Windowed-mode run-queue, guarded by the service mutex.
    std::deque<EntryPtr> queue;
    size_type queued_systems = 0;

    /// Persistent-mode admission ring (null in the windowed modes) and
    /// its system count — the steal-victim depth signal.
    std::unique_ptr<serve::mpmc_ring<EntryPtr>> ring;
    conc::atomic<size_type> ring_systems{0};

    /// Estimated nanoseconds of routed-but-uncompleted work (the router
    /// cost model); read lock-free by the router, moved between lanes
    /// when work is stolen. conc::atomic (= std::atomic in the default
    /// build): the backlog books-balance property in tests/test_conc.cpp
    /// model-checks the submit/steal/retire transfers on these counters.
    conc::atomic<std::int64_t> backlog_ns{0};

    breaker brk;

    /// Submission-side counters (atomic: bumped on submitter threads,
    /// outside the service mutex in persistent mode).
    conc::atomic<std::uint64_t> routed_requests{0};
    conc::atomic<std::uint64_t> routed_systems{0};
    /// Steals this lane's workers performed as the thief (atomic: the
    /// persistent loop bumps them outside the mutex).
    conc::atomic<std::uint64_t> steals{0};
    conc::atomic<std::uint64_t> stolen_systems{0};

    /// Completion-side counters, guarded by the service mutex (updated
    /// in the workers' post-batch bookkeeping).
    std::uint64_t completed_systems = 0;
    std::uint64_t batches_launched = 0;
    std::uint64_t launch_faults = 0;
    /// Modeled device-busy nanoseconds accumulated by this shard's fused
    /// launches (the router cost model applied to the fused sizes that
    /// actually ran). On a host whose single core serializes all shards,
    /// this is what the scaling shape of the shard sweep is measured on.
    std::uint64_t modeled_busy_ns = 0;
};

}  // namespace batchlin::shard
