// Synthetic PeleLM+SUNDIALS chemistry workload (paper §4.1, Table 4).
//
// The paper benchmarks matrices extracted from reactive-flow simulations:
// BDF/Newton iteration Jacobian systems of the form A = I - gamma*J, where
// J couples the chemical species of a mechanism (all cells share the
// sparsity pattern, each cell has its own values). We do not have the
// proprietary extraction, so this generator reproduces the documented
// structure: Table 4's exact sizes and non-zero counts, a shared pattern
// with full diagonal plus a dense last row/column (the temperature coupling
// typical of these Jacobians), non-symmetric diagonally dominant values,
// and `num_unique` distinct matrices replicated over the mesh cells
// (exactly what the paper does: "we extract the matrices ... for a few
// cells and replicate").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/batch_csr.hpp"
#include "matrix/batch_dense.hpp"

namespace batchlin::work {

/// One Table 4 row.
struct mechanism {
    std::string name;
    index_type num_unique = 0;
    index_type rows = 0;
    index_type nnz = 0;
};

/// The five PeleLM mechanisms exactly as listed in Table 4.
std::vector<mechanism> pele_mechanisms();

/// Lookup by name; throws on unknown mechanism.
mechanism mechanism_by_name(const std::string& name);

/// Generates the `num_unique` distinct systems of a mechanism (batch size
/// == num_unique); replicate() expands them to a mesh-sized batch.
template <typename T>
mat::batch_csr<T> generate_mechanism(const mechanism& mech,
                                     std::uint64_t seed = 1234);

/// Full workload: unique systems replicated cyclically (with a small value
/// perturbation per copy) to `batch_size` cells, as in §4.1.
template <typename T>
mat::batch_csr<T> generate_mechanism_batch(const mechanism& mech,
                                           index_type batch_size,
                                           std::uint64_t seed = 1234);

/// Right-hand sides mimicking the Newton residuals: random smooth entries.
template <typename T>
mat::batch_dense<T> mechanism_rhs(index_type num_items, index_type rows,
                                  std::uint64_t seed = 77);

}  // namespace batchlin::work
