file(REMOVE_RECURSE
  "../bench/bench_ext_occupancy"
  "../bench/bench_ext_occupancy.pdb"
  "CMakeFiles/bench_ext_occupancy.dir/bench_ext_occupancy.cpp.o"
  "CMakeFiles/bench_ext_occupancy.dir/bench_ext_occupancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
