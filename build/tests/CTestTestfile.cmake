# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_xpu[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_precond[1]_include.cmake")
include("/root/repo/build/tests/test_stop_log[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_workspace_launch[1]_include.cmake")
include("/root/repo/build/tests/test_direct_ops[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_edge[1]_include.cmake")
include("/root/repo/build/tests/test_blockjacobi_banded[1]_include.cmake")
include("/root/repo/build/tests/test_richardson_profiling[1]_include.cmake")
include("/root/repo/build/tests/test_float_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_final_edge[1]_include.cmake")
