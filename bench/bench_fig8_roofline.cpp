// Figure 8 reproduction: roofline analysis and memory metrics of
// BatchBicgstab for the dodecane_lu input with 2^17 matrices on one stack
// of the PVC.
//
// The paper's Advisor findings this bench reproduces in shape:
//  * ~50% XVE threading occupancy (SLM footprint limits resident groups),
//  * the majority of memory-transaction time spent on SLM requests (~65%),
//  * SLM traffic far exceeding L3 and HBM traffic (~3 TB through SLM),
//  * constant operands (matrices + rhs) served from the L3,
//  * the kernel sitting under the L3/SLM bandwidth region of the roofline,
//    not reaching the SLM bandwidth roof.
#include <cstdio>
#include <iostream>

#include "common.hpp"

using namespace bench;

int main()
{
    const index_type target_batch = 1 << 17;
    const perf::device_spec device = perf::pvc_1s();
    const work::mechanism mech = work::mechanism_by_name("dodecane_lu");

    const index_type items = measurement_batch(mech.num_unique);
    const solver::batch_matrix<double> a =
        work::generate_mechanism_batch<double>(mech, items);
    const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);
    const measured_solve m = measure(device, a, b, pele_options());

    perf::solve_profile profile;
    const double factor =
        static_cast<double>(target_batch) / m.measured_items;
    profile.totals = perf::scale_counters(m.result.stats, factor);
    profile.num_systems = target_batch;
    profile.work_group_size = m.result.config.work_group_size;
    profile.thread_utilization =
        solver::thread_utilization(m.result.config, m.rows);
    profile.constant_footprint_per_system = m.constant_bytes_per_system;
    profile.fp64 = true;

    std::printf("Figure 8: roofline analysis of BatchBicgstab, "
                "dodecane_lu, 2^17 matrices, %s\n\n",
                device.name.c_str());
    const perf::roofline_report report =
        perf::analyze_roofline(device, profile);
    perf::print_roofline(std::cout, device, report);

    const perf::time_breakdown t = perf::estimate_time(device, profile);
    std::printf("\nsolver kernel: %d work-groups of %d items "
                "(sub-group %d, %s reduction), SLM footprint %lld B/group\n",
                profile.num_systems, profile.work_group_size,
                m.result.config.sub_group_size,
                xpu::to_string(m.result.config.reduction).c_str(),
                static_cast<long long>(
                    m.result.stats.slm_footprint_bytes));
    std::printf("groups in flight: %d, projected runtime %.3f ms\n",
                t.groups_in_flight, t.total_seconds * 1e3);
    std::printf("\npaper reference: ~50%% XVE occupancy, ~65%% of memory "
                "time on SLM, SLM >> L3/HBM traffic,\n"
                "                 performance on the L3 roof and below the "
                "SLM bandwidth roof\n");
    return 0;
}
