// BatchDense: batched dense matrices and multivectors (paper §3.1, Fig. 2).
//
// Stores `num_batch_items` row-major rows×cols blocks contiguously
// (batch-major). Right-hand sides and solution vectors of the batched
// solvers are BatchDense objects with one column, following Ginkgo's
// convention.
#pragma once

#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/span.hpp"

namespace batchlin::mat {

template <typename T>
class batch_dense {
public:
    using value_type = T;

    batch_dense() = default;

    /// Allocates storage for `num_batch_items` matrices of size rows×cols,
    /// zero-initialized.
    batch_dense(index_type num_batch_items, index_type rows, index_type cols)
        : num_batch_(num_batch_items),
          rows_(rows),
          cols_(cols),
          values_(static_cast<std::size_t>(num_batch_items) * rows * cols)
    {
        BATCHLIN_ENSURE_MSG(num_batch_items >= 0 && rows >= 0 && cols >= 0,
                            "negative dimension");
    }

    index_type num_batch_items() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type cols() const { return cols_; }
    /// Entries of one batch item.
    size_type item_size() const
    {
        return static_cast<size_type>(rows_) * cols_;
    }

    T& at(index_type batch, index_type row, index_type col)
    {
        return values_[item_offset(batch) + static_cast<size_type>(row) *
                       cols_ + col];
    }
    const T& at(index_type batch, index_type row, index_type col) const
    {
        return values_[item_offset(batch) + static_cast<size_type>(row) *
                       cols_ + col];
    }

    T* item_values(index_type batch)
    {
        return values_.data() + item_offset(batch);
    }
    const T* item_values(index_type batch) const
    {
        return values_.data() + item_offset(batch);
    }

    /// Tagged view of one item's values for device kernels.
    xpu::dspan<T> item_span(index_type batch,
                            xpu::mem_space space = xpu::mem_space::global)
    {
        return {item_values(batch), static_cast<index_type>(item_size()),
                space};
    }
    xpu::dspan<const T> item_span(
        index_type batch,
        xpu::mem_space space = xpu::mem_space::global) const
    {
        return {item_values(batch), static_cast<index_type>(item_size()),
                space};
    }

    std::vector<T>& values() { return values_; }
    const std::vector<T>& values() const { return values_; }

    void fill(T value)
    {
        std::fill(values_.begin(), values_.end(), value);
    }

    /// Total value storage in bytes (the BatchDense row of Fig. 2).
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size()) * sizeof(T);
    }

private:
    size_type item_offset(index_type batch) const
    {
        BATCHLIN_ENSURE_DIMS(batch >= 0 && batch < num_batch_,
                             "batch index out of range");
        return static_cast<size_type>(batch) * item_size();
    }

    index_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type cols_ = 0;
    std::vector<T> values_;
};

}  // namespace batchlin::mat
