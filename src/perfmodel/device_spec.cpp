#include "perfmodel/device_spec.hpp"

#include "util/error.hpp"

namespace batchlin::perf {

xpu::exec_policy device_spec::make_policy() const
{
    if (model == xpu::prog_model::cuda) {
        return xpu::make_cuda_policy(slm_per_core_bytes);
    }
    return xpu::make_sycl_policy(num_stacks, slm_per_core_bytes);
}

device_spec a100()
{
    device_spec d;
    d.name = "A100";
    d.model = xpu::prog_model::cuda;
    d.num_cores = 108;
    d.num_stacks = 1;
    d.fp64_peak_tflops = 9.7;   // Table 5
    d.fp32_peak_tflops = 19.5;
    d.hbm_bw_tbs = 1.6;         // Table 5
    d.slm_per_core_bytes = 192 * 1024;  // Table 5
    d.slm_bw_core_gbs = 130.0;  // effective shared-mem BW per SM
    d.l2_bw_tbs = 4.5;
    d.l2_size_bytes = 40l * 1024 * 1024;
    d.kernel_launch_us = 4.0;
    d.graph_replay_us = 2.0;
    d.graph_finalize_us = 25.0;
    d.max_groups_per_core = 32;
    d.max_threads_per_core = 2048;
    d.efficiency = 0.62;
    return d;
}

device_spec h100()
{
    device_spec d;
    d.name = "H100";
    d.model = xpu::prog_model::cuda;
    d.num_cores = 114;
    d.num_stacks = 1;
    d.fp64_peak_tflops = 26.0;  // Table 5
    d.fp32_peak_tflops = 51.0;
    d.hbm_bw_tbs = 2.0;         // Table 5
    d.slm_per_core_bytes = 228 * 1024;  // Table 5
    d.slm_bw_core_gbs = 147.0;  // effective shared-mem BW per SM
    d.l2_bw_tbs = 6.0;
    d.l2_size_bytes = 50l * 1024 * 1024;
    d.kernel_launch_us = 4.0;
    d.graph_replay_us = 2.0;
    d.graph_finalize_us = 25.0;
    d.max_groups_per_core = 32;
    d.max_threads_per_core = 2048;
    d.efficiency = 0.62;
    return d;
}

device_spec pvc_1s()
{
    device_spec d;
    d.name = "PVC-1S";
    d.model = xpu::prog_model::sycl;
    d.num_cores = 64;  // Xe-cores per stack (§2.2: 4 slices x 16)
    d.num_stacks = 1;
    d.fp64_peak_tflops = 22.9;  // Table 5
    d.fp32_peak_tflops = 45.8;
    d.hbm_bw_tbs = 1.6;         // Table 5
    d.slm_per_core_bytes = 128 * 1024;  // Table 5
    // The PVC allocates SLM in the L1 (§2.3), which gives it a per-core
    // local-memory bandwidth advantage — the mechanism behind the paper's
    // SLM-bound solver winning on this device (Fig. 8).
    d.slm_bw_core_gbs = 351.0;
    d.l2_bw_tbs = 13.0;
    d.l2_size_bytes = 192l * 1024 * 1024;  // per-stack L2 ("L3" in Advisor)
    d.kernel_launch_us = 8.0;
    // SYCL-Graph replay on the Level Zero backend: immediate command
    // lists make replays cheap relative to the eager 8us launch.
    d.graph_replay_us = 1.0;
    d.graph_finalize_us = 30.0;
    d.max_groups_per_core = 64;
    d.max_threads_per_core = 1024;  // 8 threads x SIMD
    d.efficiency = 0.62;
    return d;
}

device_spec pvc_2s()
{
    device_spec d = pvc_1s();
    d.name = "PVC-2S";
    d.num_stacks = 2;
    d.num_cores *= 2;
    d.fp64_peak_tflops = 45.8;  // Table 5
    d.fp32_peak_tflops = 91.6;
    d.hbm_bw_tbs = 3.2;         // Table 5
    d.l2_size_bytes *= 2;
    d.l2_bw_tbs *= 2.0;
    // §4.2: implicit scaling reaches 1.8-1.9x rather than the ideal 2x,
    // and small problems additionally pay the driver's split overhead.
    d.stack_scaling_efficiency = 0.93;
    d.implicit_scaling_overhead_us = 75.0;
    return d;
}

std::vector<device_spec> paper_devices()
{
    return {a100(), h100(), pvc_1s(), pvc_2s()};
}

double sustained_bw_tbs(const device_spec& d)
{
    return d.hbm_bw_tbs * d.efficiency * d.stack_scaling_efficiency;
}

device_spec device_by_name(const std::string& name)
{
    for (device_spec& d : paper_devices()) {
        if (d.name == name) {
            return d;
        }
    }
    BATCHLIN_ENSURE_MSG(false, "unknown device: " + name);
    return {};
}

}  // namespace batchlin::perf
