# Empty dependencies file for batchlin.
# This may be replaced when dependencies are built.
