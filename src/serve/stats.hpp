// Observability of the solve service: counters, batch-size histogram, and
// latency percentiles, exposed as an immutable snapshot so operators can
// poll a running service without perturbing it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/math.hpp"

namespace batchlin::serve {

/// Point-in-time view of one device shard (see `service_stats::shards`).
/// Present even for a single-shard service (one entry).
struct shard_stats {
    index_type shard = 0;
    /// Device-spec name the shard emulates ("PVC-1S", ...).
    std::string device;
    /// Requests / systems the router placed on this shard.
    std::uint64_t routed_requests = 0;
    std::uint64_t routed_systems = 0;
    /// Systems completed ok by this shard's workers (stolen work counts
    /// for the thief — the shard that executed it).
    std::uint64_t completed_systems = 0;
    std::uint64_t batches_launched = 0;
    /// Steals this shard's workers performed (as the thief) and the
    /// systems they pulled over.
    std::uint64_t steals = 0;
    std::uint64_t stolen_systems = 0;
    std::uint64_t launch_faults = 0;
    /// Per-shard circuit breaker (each shard trips and cools down
    /// independently; a faulting shard degrades to solo launches while
    /// the others keep coalescing).
    std::uint64_t breaker_trips = 0;
    bool breaker_active = false;
    /// Failover state machine (PR 10): "healthy", "evicted", "probing".
    std::string state = "healthy";
    /// Times this shard was declared lost (worker retry exhaustion or the
    /// watchdog's launch-age signal).
    std::uint64_t evictions = 0;
    /// Half-open probes sent after an eviction, and how they resolved.
    std::uint64_t probes = 0;
    std::uint64_t probe_successes = 0;
    /// Requests/systems failover migrated OFF this shard.
    std::uint64_t migrated_requests = 0;
    std::uint64_t migrated_systems = 0;
    /// Worker-loop liveness counter (stalls while work is queued mean a
    /// wedged lane).
    std::uint64_t heartbeat = 0;
    /// Current run-queue depth of this shard, in systems.
    std::uint64_t queue_depth_systems = 0;
    /// Estimated not-yet-completed work (router cost model) — what the
    /// placement policy balances on.
    std::int64_t backlog_ns = 0;
    /// Modeled device-busy time of this shard's launches (router cost
    /// model over the fused sizes that actually ran). The shard sweep's
    /// aggregate throughput is completed systems over the busiest
    /// shard's modeled busy time.
    double modeled_busy_seconds = 0.0;
    /// Completed systems per wall-clock second since service start.
    double solves_per_sec = 0.0;
};

/// Point-in-time view of a `solve_service` (see `solve_service::stats`).
/// All request counters are in requests; the `*_systems` counters are in
/// linear systems (a request may carry a whole batch).
struct service_stats {
    /// Requests accepted into the queue since start.
    std::uint64_t submitted_requests = 0;
    std::uint64_t submitted_systems = 0;
    /// Requests completed successfully (status ok).
    std::uint64_t completed_requests = 0;
    std::uint64_t completed_systems = 0;
    /// Requests refused by admission control (bounded queue full or
    /// service no longer accepting).
    std::uint64_t rejected_requests = 0;
    /// Requests whose deadline passed before their batch launched.
    std::uint64_t expired_requests = 0;
    /// Requests whose batch solve threw.
    std::uint64_t failed_requests = 0;
    /// Fused launches executed by the worker pool.
    std::uint64_t batches_launched = 0;

    /// `xpu::device_error` launch failures observed (one per failed
    /// attempt, retries included).
    std::uint64_t launch_faults = 0;
    /// Retry attempts issued after a launch fault.
    std::uint64_t launch_retries = 0;
    /// Batches that exhausted their retries and degraded to per-request
    /// solo solves.
    std::uint64_t degraded_launches = 0;
    /// Requests that completed ok only via retry or degradation.
    std::uint64_t recovered_requests = 0;
    /// Times the circuit breaker tripped (suspending coalescing).
    std::uint64_t breaker_trips = 0;
    /// Whether coalescing is currently suspended by the breaker.
    bool breaker_active = false;

    /// Graph-launch counters (zero in `launch_mode::direct`). A recording
    /// happens on the first batch of a (pattern, options, size) shape and
    /// again after a fault invalidates the cached graph; every subsequent
    /// compatible batch only swaps values (`rebind_only`) and replays.
    /// `replays / batches_launched` close to 1 means the launch path is
    /// amortized to rebind cost — the effectiveness metric of the mode.
    std::uint64_t launches_recorded = 0;
    /// Graph submissions (each one fused launch replayed from a graph).
    std::uint64_t replays = 0;
    /// Replays that reused a cached recording without re-recording.
    std::uint64_t rebind_only = 0;

    /// Mixed-precision refinement counters (zero unless requests carry
    /// `refine_sweeps > 0`). A refined batch runs the iterative-
    /// refinement driver (`solver::solve_refined`) instead of the plain
    /// fused solve: fp32-storage inner solves plus FP64 correction
    /// sweeps.
    std::uint64_t refined_batches = 0;
    /// Correction sweeps summed over all refined batches; divide by
    /// `refined_batches` for the mean sweeps-to-converge.
    std::uint64_t refine_sweeps = 0;
    /// Refined batches that stalled and fell back to a native-storage
    /// resilient solve.
    std::uint64_t refine_fallbacks = 0;

    /// Failover counters (PR 10; all zero unless `config.failover`).
    /// Lane evictions (sum over shards) and the subset declared by the
    /// watchdog's launch-age signal rather than a worker's retry
    /// exhaustion.
    std::uint64_t evictions = 0;
    std::uint64_t watchdog_evictions = 0;
    /// Requests/systems drained off a dead lane and re-routed to a
    /// surviving one.
    std::uint64_t migrations = 0;
    std::uint64_t migrated_systems = 0;
    /// Half-open probes sent by evicted lanes and the successes that
    /// restored routing weight.
    std::uint64_t probes = 0;
    std::uint64_t probe_successes = 0;

    /// Overload-degradation counters (PR 10). Sheds are the subset of
    /// `rejected_requests` refused by the watermark policy (priority <= 0
    /// while the queue sits above `shed_watermark`) rather than by a hard
    /// queue-full.
    std::uint64_t shed_requests = 0;
    /// Brownout ladder: current level (0 = off, 1 = shrunk coalescing
    /// window, 2 = + capped refinement sweeps, 3 = + capped GMRES
    /// restart), the highest level reached, and how many fused launches
    /// executed at level > 0.
    int brownout_level = 0;
    int brownout_max = 0;
    std::uint64_t brownout_batches = 0;

    /// Current admission queue depth (all shards).
    std::uint64_t queue_depth_requests = 0;
    std::uint64_t queue_depth_systems = 0;

    /// Per-shard breakdown (one entry per registry shard). The global
    /// counters above aggregate across shards: `breaker_trips` sums the
    /// per-shard trips and `breaker_active` is true when any shard's
    /// breaker is active.
    std::vector<shard_stats> shards;
    /// Cross-shard steals (sum over shards).
    std::uint64_t steals = 0;

    /// batch_size_histogram[k] counts launches that fused k systems;
    /// index 0 aggregates launches larger than the histogram (cannot
    /// happen while `max_batch` bounds the batcher).
    std::vector<std::uint64_t> batch_size_histogram;

    /// Submit-to-reply latency percentiles over a sliding window of the
    /// most recent completed requests; zero until the first completion.
    double p50_latency_seconds = 0.0;
    double p99_latency_seconds = 0.0;

    /// Completed systems per wall-clock second since service start.
    double solves_per_sec = 0.0;
    /// Mean fused-launch size in systems; zero before the first launch.
    double mean_batch_size = 0.0;
    double uptime_seconds = 0.0;

    /// Machine-readable dump: one JSON object with every counter above
    /// plus a "shards" array, so CI and the chaos harness assert on
    /// parsed counters instead of scraping human-readable text.
    std::string to_json() const;
};

/// Fixed-size sliding window of recent latency samples. Percentiles are
/// computed on demand from an unordered copy; the ring itself is O(1) per
/// sample so the service's completion path stays cheap.
class latency_window {
public:
    explicit latency_window(std::size_t capacity = 8192)
        : capacity_(capacity)
    {
        samples_.reserve(capacity_);
    }

    void record(double seconds)
    {
        if (samples_.size() < capacity_) {
            samples_.push_back(seconds);
            return;
        }
        samples_[next_] = seconds;
        next_ = (next_ + 1) % capacity_;
    }

    /// quantile in [0, 1]; zero when no samples were recorded yet.
    double quantile(double q) const;

    std::size_t size() const { return samples_.size(); }

private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    std::vector<double> samples_;
};

}  // namespace batchlin::serve
