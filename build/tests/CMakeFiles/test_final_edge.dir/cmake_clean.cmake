file(REMOVE_RECURSE
  "CMakeFiles/test_final_edge.dir/test_final_edge.cpp.o"
  "CMakeFiles/test_final_edge.dir/test_final_edge.cpp.o.d"
  "test_final_edge"
  "test_final_edge.pdb"
  "test_final_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_final_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
