# Empty compiler generated dependencies file for batchsolve.
# This may be replaced when dependencies are built.
