// Identity preconditioner: the no-op baseline every solver accepts.
#pragma once

#include "blas/device_blas.hpp"
#include "precond/types.hpp"

namespace batchlin::precond {

/// M = I. Needs no workspace and no generation work; apply is a copy.
/// S is the storage type of the (unused) matrix payload — kept as a
/// template parameter so the dispatch combos treat every preconditioner
/// uniformly.
template <typename T, typename S = T>
class identity {
public:
    static constexpr type kind = type::none;

    static size_type workspace_elems(index_type /*rows*/, index_type /*nnz*/)
    {
        return 0;
    }

    struct applier {
        void apply(xpu::group& g, xpu::dspan<const T> r,
                   xpu::dspan<T> z) const
        {
            blas::copy(g, r, z);
        }
    };

    template <typename View>
    applier generate(xpu::group& /*g*/, const View& /*a*/,
                     xpu::dspan<T> /*work*/) const
    {
        return {};
    }
};

}  // namespace batchlin::precond
