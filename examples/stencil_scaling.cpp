// The paper's "examples/batched-solver" study (§4.2) as a runnable
// example: sweep matrix size and batch size on the synthetic 3-point
// stencil input, print solve statistics and the projected device runtime,
// and verify the solutions against the known exact solution x* = 1.
#include <cmath>
#include <cstdio>

#include "batchlin/batchlin.hpp"

using namespace batchlin;

int main(int argc, char** argv)
{
    // Usage: stencil_scaling [rows] [batch_items]
    const index_type rows = argc > 1 ? std::atoi(argv[1]) : 64;
    const index_type items = argc > 2 ? std::atoi(argv[2]) : 2048;

    std::printf("3-point stencil scaling study: %d systems of %dx%d\n\n",
                items, rows, rows);

    const mat::batch_csr<double> a_csr =
        work::stencil_3pt<double>(items, rows, 42);
    // b = A * 1 makes the exact solution the all-ones vector.
    const mat::batch_dense<double> b = work::rhs_for_unit_solution(a_csr);
    const solver::batch_matrix<double> a = a_csr;

    solver::solve_options opts;
    opts.criterion = stop::relative(1e-10, 500);
    std::printf("%-14s | %10s | %10s | %12s | %14s\n", "solver",
                "converged", "mean iters", "PVC-1S [ms]", "max |x-1|");
    for (const auto kind :
         {solver::solver_type::cg, solver::solver_type::bicgstab,
          solver::solver_type::gmres}) {
        opts.solver = kind;
        opts.gmres_restart = 30;
        batch_solver handle(perf::pvc_1s(), opts);
        mat::batch_dense<double> x(items, rows, 1);
        const auto result = handle.solve<double>(a, b, x);
        double max_err = 0.0;
        for (const double v : x.values()) {
            max_err = std::max(max_err, std::abs(v - 1.0));
        }
        const auto t = handle.project<double>(result, a, items);
        std::printf("%-14s | %6d/%-4d | %10.1f | %12.3f | %14.3e\n",
                    solver::to_string(kind).c_str(),
                    result.log.num_converged(), items,
                    result.log.mean_iterations(), t.total_seconds * 1e3,
                    max_err);
    }

    std::printf("\nkernel configuration chosen by the §3.6 heuristics for "
                "%d rows:\n", rows);
    const auto config =
        solver::choose_launch_config(perf::pvc_1s().make_policy(), rows);
    std::printf("  work-group %d, sub-group %d, %s reduction\n",
                config.work_group_size, config.sub_group_size,
                xpu::to_string(config.reduction).c_str());
    return 0;
}
