// Figure 7 reproduction: normalized speedup on the PeleLM inputs with
// 2^17 matrices, baseline = A100 runtime.
//
// The paper reports averages across the five inputs: PVC-1S 1.7x vs A100
// and 1.3x vs H100; PVC-2S 3.1x vs A100 and 2.4x vs H100; gri12 is the one
// case where PVC-1S does not clearly beat the NVIDIA GPUs.
#include <cstdio>

#include "common.hpp"

using namespace bench;

int main()
{
    const index_type target_batch = 1 << 17;
    const perf::device_spec devices[] = {perf::a100(), perf::h100(),
                                         perf::pvc_1s(), perf::pvc_2s()};

    std::printf("Figure 7: normalized speedup vs A100 "
                "(PeleLM inputs, 2^17 matrices, BatchBicgstab+Jacobi)\n\n");
    std::printf("%-12s |", "input");
    for (const auto& d : devices) {
        std::printf(" %8s", d.name.c_str());
    }
    std::printf("\n");
    rule(52);

    double sum_speedup[4] = {0, 0, 0, 0};
    double h100_ms_sum = 0.0;
    double pvc1_ms_sum = 0.0;
    double pvc2_ms_sum = 0.0;
    double speedup_vs_h100_1s = 0.0;
    double speedup_vs_h100_2s = 0.0;
    int count = 0;
    for (const work::mechanism& mech : work::pele_mechanisms()) {
        const index_type items = measurement_batch(mech.num_unique);
        const solver::batch_matrix<double> a =
            work::generate_mechanism_batch<double>(mech, items);
        const auto b = work::mechanism_rhs<double>(items, mech.rows, 77);

        const measured_solve on_a100 =
            measure(devices[0], a, b, pele_options());
        const measured_solve on_h100 =
            measure(devices[1], a, b, pele_options());
        const measured_solve on_pvc =
            measure(devices[2], a, b, pele_options());
        const measured_solve* per_device[] = {&on_a100, &on_h100, &on_pvc,
                                              &on_pvc};

        double ms[4];
        for (int d = 0; d < 4; ++d) {
            ms[d] = projected_ms(devices[d], *per_device[d], target_batch);
        }
        std::printf("%-12s |", mech.name.c_str());
        for (int d = 0; d < 4; ++d) {
            std::printf(" %7.2fx", ms[0] / ms[d]);
            sum_speedup[d] += ms[0] / ms[d];
        }
        std::printf("\n");
        h100_ms_sum += ms[1];
        pvc1_ms_sum += ms[2];
        pvc2_ms_sum += ms[3];
        speedup_vs_h100_1s += ms[1] / ms[2];
        speedup_vs_h100_2s += ms[1] / ms[3];
        ++count;
    }
    rule(52);
    std::printf("%-12s |", "average");
    for (int d = 0; d < 4; ++d) {
        std::printf(" %7.2fx", sum_speedup[d] / count);
    }
    std::printf("\n\n");
    std::printf("average vs H100:  PVC-1S %.2fx (paper 1.3x),  "
                "PVC-2S %.2fx (paper 2.4x)\n",
                speedup_vs_h100_1s / count, speedup_vs_h100_2s / count);
    std::printf("average vs A100:  PVC-1S %.2fx (paper 1.7x),  "
                "PVC-2S %.2fx (paper 3.1x)\n",
                sum_speedup[2] / count, sum_speedup[3] / count);
    return 0;
}
