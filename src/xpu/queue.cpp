#include "xpu/queue.hpp"

#include <algorithm>
#include <chrono>

namespace batchlin::xpu {

double queue::now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void queue::emulate_launch_cost(double us)
{
    const auto until =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::micro>(us));
    while (std::chrono::steady_clock::now() < until) {
    }
}

std::byte* scratch_pool::acquire(size_type bytes, bool zeroed)
{
    if (static_cast<size_type>(storage_.size()) < bytes) {
        // The grown tail is value-initialized by resize, so a non-zeroed
        // acquisition still never hands out uninitialized memory.
        storage_.resize(static_cast<std::size_t>(bytes));
    }
    if (zeroed) {
        std::fill_n(storage_.data(), static_cast<std::size_t>(bytes),
                    std::byte{0});
    }
    return storage_.data();
}

void queue::run_recorded(const graph_node& node, double emulated_us)
{
    BATCHLIN_ENSURE_MSG(static_cast<bool>(node.body),
                        "replay of an empty graph node");
    BATCHLIN_ENSURE_MSG(recorder_ == nullptr,
                        "cannot replay a graph while recording");
    run_batch_impl(node.num_groups, node.work_group_size,
                   node.sub_group_size, node.body, node.first_group,
                   node.kernel_label, emulated_us);
}

std::vector<launch_record> queue::launch_history() const
{
    std::vector<launch_record> ordered;
    ordered.reserve(history_.size());
    const std::size_t head = static_cast<std::size_t>(history_head_);
    ordered.insert(ordered.end(), history_.begin() + head, history_.end());
    ordered.insert(ordered.end(), history_.begin(),
                   history_.begin() + head);
    return ordered;
}

void queue::set_launch_history_capacity(size_type capacity)
{
    BATCHLIN_ENSURE_MSG(capacity > 0,
                        "launch history capacity must be positive");
    // Materialize in chronological order, keep the newest `capacity`.
    std::vector<launch_record> ordered = launch_history();
    if (static_cast<size_type>(ordered.size()) > capacity) {
        ordered.erase(ordered.begin(),
                      ordered.end() - static_cast<std::size_t>(capacity));
    }
    history_ = std::move(ordered);
    history_head_ = 0;
    history_capacity_ = capacity;
}

void queue::record_launch(launch_record record)
{
    if (static_cast<size_type>(history_.size()) < history_capacity_) {
        history_.push_back(std::move(record));
        return;
    }
    history_[static_cast<std::size_t>(history_head_)] = std::move(record);
    history_head_ = (history_head_ + 1) % history_capacity_;
    ++history_dropped_;
}

void queue::prepare_launch(int num_threads)
{
    while (static_cast<int>(arena_pool_.size()) < num_threads) {
        arena_pool_.emplace_back(policy_.slm_bytes_per_group);
    }
    if (static_cast<int>(thread_stats_.size()) < num_threads) {
        thread_stats_.resize(static_cast<std::size_t>(num_threads));
    }
#ifdef BATCHLIN_XPU_CHECK
    if (static_cast<int>(checker_pool_.size()) < num_threads) {
        checker_pool_.resize(static_cast<std::size_t>(num_threads));
    }
#endif
    // Zero only the blocks this launch merges; stale entries beyond
    // `num_threads` (from a launch with more threads) are never read.
    for (int t = 0; t < num_threads; ++t) {
        thread_stats_[static_cast<std::size_t>(t)] = counters{};
    }
}

batch_range stack_partition(index_type num_items, index_type num_stacks,
                            index_type stack_id)
{
    BATCHLIN_ENSURE_MSG(num_stacks > 0, "need at least one stack");
    BATCHLIN_ENSURE_MSG(stack_id >= 0 && stack_id < num_stacks,
                        "stack id out of range");
    const index_type base = num_items / num_stacks;
    const index_type extra = num_items % num_stacks;
    const index_type begin =
        stack_id * base + (stack_id < extra ? stack_id : extra);
    const index_type len = base + (stack_id < extra ? 1 : 0);
    return {begin, begin + len};
}

queue make_stack_queue(const queue& parent)
{
    exec_policy policy = parent.policy();
    policy.num_stacks = 1;
    return queue(policy);
}

}  // namespace batchlin::xpu
