#include "xpu/queue.hpp"

#include <chrono>

namespace batchlin::xpu {

double queue::now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

batch_range stack_partition(index_type num_items, index_type num_stacks,
                            index_type stack_id)
{
    BATCHLIN_ENSURE_MSG(num_stacks > 0, "need at least one stack");
    BATCHLIN_ENSURE_MSG(stack_id >= 0 && stack_id < num_stacks,
                        "stack id out of range");
    const index_type base = num_items / num_stacks;
    const index_type extra = num_items % num_stacks;
    const index_type begin =
        stack_id * base + (stack_id < extra ? stack_id : extra);
    const index_type len = base + (stack_id < extra ? 1 : 0);
    return {begin, begin + len};
}

queue make_stack_queue(const queue& parent)
{
    exec_policy policy = parent.policy();
    policy.num_stacks = 1;
    return queue(policy);
}

}  // namespace batchlin::xpu
