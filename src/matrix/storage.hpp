// Storage-precision policy: decouple how matrix values are *stored* from
// the precision the solvers *compute* in.
//
// Every solver in this codebase is bandwidth-bound (paper §roofline,
// bench_fig8_roofline), so the bytes streamed for the matrix values and
// preconditioner payloads — not flops — set the solves/sec ceiling. The
// Ginkgo Intel-port line of work shows that storing those read-only
// payloads in FP32 while keeping FP64 arithmetic roughly halves the
// dominant traffic term. The lost bits are recovered by an outer
// iterative-refinement loop (solver::solve_refined) that measures the true
// FP64 residual against the native-precision matrix.
#pragma once

#include <string>

#include "util/math.hpp"

namespace batchlin::mat {

/// How a batched matrix holds its values (and, downstream, how the
/// preconditioner payloads derived from it are held).
enum class storage_precision {
    /// Values stored in the compute type T (the historical behaviour).
    native,
    /// Values stored as float regardless of T; kernels widen on read.
    fp32,
};

std::string to_string(storage_precision mode);

/// Parses "native" / "fp32"; throws on anything else.
storage_precision parse_storage_precision(const std::string& name);

/// fp32 storage is meaningless when the compute type already is 4 bytes
/// wide; collapse it to native so `storage_mode() == fp32` reliably means
/// "the values arrays really are float and really are half-width".
template <typename T>
constexpr storage_precision effective_storage(storage_precision mode)
{
    if (sizeof(T) <= sizeof(float)) {
        return storage_precision::native;
    }
    return mode;
}

/// Process-wide default, read once from BATCHLIN_STORAGE ("native"|"fp32",
/// unset means native). The env override exists so scripts/check.sh can
/// re-run whole suites under compressed storage without touching each
/// call site (same pattern as BATCHLIN_LAUNCH_MODE).
storage_precision default_storage_precision();

}  // namespace batchlin::mat
