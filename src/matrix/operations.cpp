#include "matrix/operations.hpp"

#include <cmath>
#include <tuple>

#include "blas/matrix_view.hpp"
#include "blas/spmv.hpp"
#include "solver/launch.hpp"
#include "util/error.hpp"

namespace batchlin::mat {

namespace {

template <typename T>
void check_apply_dims(const any_batch<T>& a, const batch_dense<T>& x,
                      const batch_dense<T>& y)
{
    const auto [items, rows, cols] = std::visit(
        [](const auto& m) {
            return std::tuple<index_type, index_type, index_type>{
                m.num_batch_items(), m.rows(), m.cols()};
        },
        a);
    BATCHLIN_ENSURE_DIMS(x.num_batch_items() == items &&
                             y.num_batch_items() == items,
                         "batch sizes must match");
    BATCHLIN_ENSURE_DIMS(x.rows() == cols && y.rows() == rows,
                         "vector lengths must match the matrix shape");
    BATCHLIN_ENSURE_DIMS(x.cols() == 1 && y.cols() == 1,
                         "apply expects single-column multivectors");
}

}  // namespace

template <typename T>
void apply(xpu::queue& q, const any_batch<T>& a, const batch_dense<T>& x,
           batch_dense<T>& y)
{
    check_apply_dims(a, x, y);
    const index_type rows =
        std::visit([](const auto& m) { return m.rows(); }, a);
    const index_type items =
        std::visit([](const auto& m) { return m.num_batch_items(); }, a);
    const solver::kernel_config config =
        solver::choose_launch_config(q.policy(), rows);
    const batch_dense<T>* x_in = &x;
    batch_dense<T>* y_out = &y;
    std::visit(
        [&](const auto& m) {
            q.run_batch(items, config.work_group_size,
                        config.sub_group_size, [&](xpu::group& g) {
                            blas::spmv<T>(
                                g, blas::item_view(m, g.id()),
                                x_in->item_span(g.id(),
                                                xpu::mem_space::global),
                                y_out->item_span(g.id()));
                        },
                        0, "batch_spmv");
        },
        a);
}

template <typename T>
void advanced_apply(xpu::queue& q, T alpha, const any_batch<T>& a,
                    const batch_dense<T>& x, T beta, batch_dense<T>& y)
{
    check_apply_dims(a, x, y);
    const index_type rows =
        std::visit([](const auto& m) { return m.rows(); }, a);
    const index_type items =
        std::visit([](const auto& m) { return m.num_batch_items(); }, a);
    const solver::kernel_config config =
        solver::choose_launch_config(q.policy(), rows);
    const batch_dense<T>* x_in = &x;
    batch_dense<T>* y_out = &y;
    std::visit(
        [&](const auto& m) {
            q.run_batch(items, config.work_group_size,
                        config.sub_group_size, [&](xpu::group& g) {
                            xpu::dspan<T> scratch =
                                g.slm().alloc<T>(rows);
                            blas::advanced_spmv(
                                g, alpha, blas::item_view(m, g.id()),
                                x_in->item_span(g.id(),
                                                xpu::mem_space::global),
                                beta, y_out->item_span(g.id()), scratch);
                        },
                        0, "batch_advanced_spmv");
        },
        a);
}

template <typename T>
batch_csr<T> transpose(const batch_csr<T>& a)
{
    const index_type rows = a.rows();
    const index_type cols = a.cols();
    const index_type nnz = a.nnz();
    // Counting sort of the shared pattern by column; `permutation[k]` is
    // the position of source entry k in the transposed values array.
    std::vector<index_type> t_row_ptrs(cols + 1, 0);
    for (index_type k = 0; k < nnz; ++k) {
        ++t_row_ptrs[a.col_idxs()[k] + 1];
    }
    for (index_type c = 0; c < cols; ++c) {
        t_row_ptrs[c + 1] += t_row_ptrs[c];
    }
    std::vector<index_type> t_col_idxs(nnz);
    std::vector<index_type> permutation(nnz);
    std::vector<index_type> cursor(t_row_ptrs.begin(),
                                   t_row_ptrs.end() - 1);
    for (index_type i = 0; i < rows; ++i) {
        for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
             ++k) {
            const index_type pos = cursor[a.col_idxs()[k]]++;
            t_col_idxs[pos] = i;
            permutation[k] = pos;
        }
    }
    batch_csr<T> t(a.num_batch_items(), cols, rows, std::move(t_row_ptrs),
                   std::move(t_col_idxs));
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        const T* src = a.item_values(item);
        T* dst = t.item_values(item);
        for (index_type k = 0; k < nnz; ++k) {
            dst[permutation[k]] = src[k];
        }
    }
    return t;
}

template <typename T>
batch_scaling<T> compute_equilibration(const batch_csr<T>& a)
{
    BATCHLIN_ENSURE_MSG(a.rows() == a.cols(),
                        "equilibration expects square systems");
    const index_type items = a.num_batch_items();
    const index_type n = a.rows();
    batch_scaling<T> s{batch_dense<T>(items, n, 1),
                       batch_dense<T>(items, n, 1)};
    for (index_type item = 0; item < items; ++item) {
        const T* vals = a.item_values(item);
        // Row pass: scale each row to unit infinity norm.
        for (index_type i = 0; i < n; ++i) {
            T row_max{};
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                row_max = std::max(row_max, std::abs(vals[k]));
            }
            s.row.at(item, i, 0) =
                row_max > T{0} ? T{1} / row_max : T{1};
        }
        // Column pass on the row-scaled values.
        std::vector<T> col_max(n, T{0});
        for (index_type i = 0; i < n; ++i) {
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                const T scaled = std::abs(vals[k]) * s.row.at(item, i, 0);
                col_max[a.col_idxs()[k]] =
                    std::max(col_max[a.col_idxs()[k]], scaled);
            }
        }
        for (index_type j = 0; j < n; ++j) {
            s.col.at(item, j, 0) =
                col_max[j] > T{0} ? T{1} / col_max[j] : T{1};
        }
    }
    return s;
}

template <typename T>
void scale_system(batch_csr<T>& a, const batch_scaling<T>& s)
{
    BATCHLIN_ENSURE_DIMS(s.row.num_batch_items() == a.num_batch_items() &&
                             s.row.rows() == a.rows(),
                         "scaling does not match the batch");
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        T* vals = a.item_values(item);
        for (index_type i = 0; i < a.rows(); ++i) {
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                vals[k] *= s.row.at(item, i, 0) *
                           s.col.at(item, a.col_idxs()[k], 0);
            }
        }
    }
}

template <typename T>
void scale_rhs(batch_dense<T>& b, const batch_scaling<T>& s)
{
    for (index_type item = 0; item < b.num_batch_items(); ++item) {
        for (index_type i = 0; i < b.rows(); ++i) {
            b.at(item, i, 0) *= s.row.at(item, i, 0);
        }
    }
}

template <typename T>
void unscale_solution(batch_dense<T>& x, const batch_scaling<T>& s)
{
    for (index_type item = 0; item < x.num_batch_items(); ++item) {
        for (index_type i = 0; i < x.rows(); ++i) {
            x.at(item, i, 0) *= s.col.at(item, i, 0);
        }
    }
}

#define BATCHLIN_INSTANTIATE_OPERATIONS(T)                                 \
    template void apply<T>(xpu::queue&, const any_batch<T>&,               \
                           const batch_dense<T>&, batch_dense<T>&);        \
    template void advanced_apply<T>(xpu::queue&, T, const any_batch<T>&,   \
                                    const batch_dense<T>&, T,              \
                                    batch_dense<T>&);                      \
    template batch_csr<T> transpose<T>(const batch_csr<T>&);               \
    template batch_scaling<T> compute_equilibration<T>(                    \
        const batch_csr<T>&);                                              \
    template void scale_system<T>(batch_csr<T>&,                           \
                                  const batch_scaling<T>&);                \
    template void scale_rhs<T>(batch_dense<T>&, const batch_scaling<T>&);  \
    template void unscale_solution<T>(batch_dense<T>&,                     \
                                      const batch_scaling<T>&)

BATCHLIN_INSTANTIATE_OPERATIONS(float);
BATCHLIN_INSTANTIATE_OPERATIONS(double);

}  // namespace batchlin::mat
