// Mixed-precision iterative refinement driver.
//
// The bandwidth-bound solve path spends most of its bytes streaming matrix
// values and preconditioner payloads; fp32 storage halves that traffic but
// floors the attainable true residual near fp32 epsilon. `solve_refined`
// recovers full working-precision accuracy on top of the compressed solve:
//
//   1. inner solve   A32 x = b   to a loose tolerance on fp32 storage,
//   2. explicit FP64 residual    r = b - A x   against the native matrix,
//   3. correction    A32 d = r,  x += d,  repeat until the FP64 target
//      holds (classic iterative refinement with a compressed inner
//      operator),
//   4. on a stalled sweep, demote to the native-storage resilience chain
//      (`solve_resilient`) so accuracy never regresses below a plain
//      native solve.
//
// The driver therefore needs the NATIVE matrix (for the residuals); the
// compressed operator is either converted once per call or supplied
// pre-compressed by hot paths (serve, benchmarks) that reuse it across
// many solves.
#pragma once

#include <vector>

#include "solver/assemble.hpp"
#include "solver/dispatch.hpp"

namespace batchlin::solver {

/// Tuning knobs of the refinement loop.
struct refine_options {
    /// Correction sweeps allowed after the initial inner solve.
    index_type max_sweeps = 4;
    /// Tolerance of the compressed inner solves (same tolerance type as
    /// the outer criterion). Looser than fp32 epsilon is wasted accuracy;
    /// tighter is unreachable on fp32 storage. Floored at the outer
    /// tolerance so a loose outer request is honored directly.
    double inner_tolerance = 1e-6;
    /// A sweep counts as progress when it shrinks the worst unconverged
    /// true residual by at least this factor; otherwise refinement has
    /// stalled (the compressed operator cannot resolve the remaining
    /// error) and the fallback engages.
    double stall_threshold = 0.5;
    /// Demote stalled batches to a native-storage `solve_resilient` run.
    /// Disabled, a stall returns with the systems' best-effort iterates
    /// and non-converged statuses.
    bool fallback_to_native = true;

    friend bool operator==(const refine_options&,
                           const refine_options&) = default;
};

/// Outcome of a refined solve.
struct refined_result {
    /// Per-system record: iterations summed over all inner solves, the
    /// final TRUE (FP64, explicit) residual norm, and a status judged
    /// against the outer criterion on that true residual.
    log::batch_log log;
    /// Counters summed over every inner launch (and the fallback, if it
    /// ran) — this is where the fp32 traffic reduction shows up.
    xpu::counters stats;
    /// Correction sweeps performed (0 = the first inner solve already met
    /// the outer target, or refinement was not applicable).
    index_type sweeps = 0;
    /// Whether the stall fallback re-solved on native storage.
    bool fell_back = false;
    /// Final FP64 relative residuals per system (absolute when b is 0).
    std::vector<double> true_residuals;
    double wall_seconds = 0.0;
};

/// Refined solve of A x = b. `a` must carry NATIVE storage — the FP64
/// residuals read it directly. When the effective storage of `opts` is
/// native (or T is float), this is a plain `solve` plus a true-residual
/// report. The compressed operator is converted from `a` once per call;
/// hot paths should use the pre-compressed overload.
template <typename T>
refined_result solve_refined(xpu::queue& q, const batch_matrix<T>& a,
                             const mat::batch_dense<T>& b,
                             mat::batch_dense<T>& x,
                             const solve_options& opts,
                             const refine_options& ropts = {});

/// Pre-compressed overload: `compressed` must be the fp32-storage copy of
/// `a` (same pattern, same values narrowed). Skips the per-call
/// conversion — benchmark and serving hot paths convert once and reuse.
template <typename T>
refined_result solve_refined(xpu::queue& q, const batch_matrix<T>& a,
                             const batch_matrix<T>& compressed,
                             const mat::batch_dense<T>& b,
                             mat::batch_dense<T>& x,
                             const solve_options& opts,
                             const refine_options& ropts = {});

/// Coalesced variant (the serve:: integration): gathers the parts into
/// one combined batch, refines it, scatters the solutions back. Same
/// part-order contract as `solve_coalesced`.
template <typename T>
refined_result solve_refined_coalesced(
    xpu::queue& q, const std::vector<assembly_part<T>>& parts,
    const solve_options& opts, const refine_options& ropts = {});

}  // namespace batchlin::solver
