// shard::registry — enumeration of the logical devices the serve layer
// shards across.
//
// The paper's scaling claim (§4.2, Fig. 5) is that batched solves extend
// near-linearly from one PVC stack to two and onward to multiple GPUs,
// because the batch partitions with no solver communication. To reproduce
// that shape end to end through `serve::solve_service`, devices must be
// first-class: this registry enumerates N logical shards — emulated
// devices on the host, each keyed to a `perfmodel::device_spec` entry
// (A100 / H100 / PVC-1S / PVC-2S) — and derives the per-shard execution
// policy and launch-cost emulation the serving lanes run under. It also
// owns one lazily-built standalone `xpu::queue` per shard for callers
// that drive devices directly (benches, tools) so there is exactly one
// device-enumeration path in the repo.
//
// Policy derivation rule: a shard's policy copies the base policy's
// kernel-behavior fields (programming model, sub-group sizes, reduction
// paths, stacks) verbatim — the device spec only contributes *cost*
// emulation (kernel_launch_us and the graph replay/record costs), and
// only for explicitly named devices. This is what keeps replies
// bit-identical no matter which shard a batch lands on: placement and
// stealing may move work freely without perturbing kernel numerics.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "perfmodel/device_spec.hpp"
#include "xpu/policy.hpp"
#include "xpu/queue.hpp"

namespace batchlin::shard {

/// One logical device of the registry.
struct device_entry {
    /// Shard id: dense 0-based index, also the routing target.
    index_type id = 0;
    /// The performance-model device this shard emulates; drives the
    /// router's cost estimates and the per-shard stats labels.
    perf::device_spec spec;
    /// Execution policy the shard's queues are built from (base policy
    /// plus, for explicit devices, the spec's launch-cost emulation).
    xpu::exec_policy policy;
    /// Whether the device was named explicitly (CLI / config / env) as
    /// opposed to defaulted — only explicit devices charge the modeled
    /// launch costs as wall time.
    bool explicit_device = false;
};

/// Normalizes a user-supplied device name ("pvc1s", "PVC-1S", "pvc_1s",
/// "a100", ...) to the canonical `perfmodel` spelling; throws on unknown
/// devices.
std::string canonical_device_name(const std::string& name);

/// Splits a comma-separated device list ("pvc1s,pvc1s") into canonical
/// names; throws on unknown devices or an empty list.
std::vector<std::string> parse_device_list(const std::string& list);

/// BATCHLIN_SHARDS environment override: the shard count, when set to a
/// positive integer. Throws on garbage so a typo cannot silently run
/// unsharded.
std::optional<index_type> shards_from_env();

/// BATCHLIN_SHARD_DEVICES environment override: an explicit device list.
std::optional<std::vector<std::string>> shard_devices_from_env();

/// The device registry. Build it with one of the factories; entries are
/// immutable afterwards.
class registry {
public:
    registry() = default;

    /// `count` identical shards of the named device. The base policy is
    /// used verbatim (no launch-cost emulation): uniform registries back
    /// the BATCHLIN_SHARDS sweep where behavior must match the unsharded
    /// service exactly.
    static registry uniform(index_type count, const std::string& device_name,
                            const xpu::exec_policy& base);

    /// One shard per (canonical or shorthand) name, each charging its
    /// spec's kernel-launch / graph replay / graph record costs as
    /// emulated wall time on top of the base policy.
    static registry from_names(const std::vector<std::string>& names,
                               const xpu::exec_policy& base);

    index_type size() const
    {
        return static_cast<index_type>(entries_.size());
    }

    const device_entry& at(index_type shard) const;

    const std::vector<device_entry>& entries() const { return entries_; }

    /// The shard's standalone queue, built on first use from the entry's
    /// policy. For direct (non-serve) device use by benches and tools;
    /// the serve layer builds its own per-worker queues instead because
    /// `xpu::queue` is single-threaded by contract.
    xpu::queue& queue(index_type shard);

private:
    std::vector<device_entry> entries_;
    /// Lazily-populated standalone queues, index-aligned with entries_.
    std::vector<std::unique_ptr<xpu::queue>> queues_;
};

}  // namespace batchlin::shard
