// BatchEll: batched ELLPACK matrices with one shared pattern
// (paper §3.1, Fig. 2).
//
// Rows are padded to a uniform width (max non-zeros per row), removing the
// row-pointer array. Column indexes and values are stored column-major —
// entry (row, k) of the padded layout lives at k*rows + row — so that
// consecutive work-items (one per row, §3.2) access consecutive addresses:
// the coalescing property the paper optimizes for.
#pragma once

#include <vector>

#include "util/error.hpp"
#include "util/math.hpp"
#include "xpu/span.hpp"

namespace batchlin::mat {

/// Column index marking a padding slot of the ELL layout.
inline constexpr index_type ell_padding = -1;

template <typename T>
class batch_ell {
public:
    using value_type = T;

    batch_ell() = default;

    /// Allocates a batch with the given padded width; pattern slots start as
    /// padding and values as zero.
    batch_ell(index_type num_batch_items, index_type rows, index_type cols,
              index_type ell_width)
        : num_batch_(num_batch_items),
          rows_(rows),
          cols_(cols),
          width_(ell_width),
          col_idxs_(static_cast<std::size_t>(rows) * ell_width, ell_padding),
          values_(static_cast<std::size_t>(num_batch_items) * rows *
                  ell_width)
    {
        BATCHLIN_ENSURE_MSG(
            num_batch_items >= 0 && rows >= 0 && cols >= 0 && ell_width >= 0,
            "negative dimension");
    }

    index_type num_batch_items() const { return num_batch_; }
    index_type rows() const { return rows_; }
    index_type cols() const { return cols_; }
    /// Uniform (padded) number of stored entries per row.
    index_type ell_width() const { return width_; }
    /// Stored entries per item including padding.
    size_type stored_per_item() const
    {
        return static_cast<size_type>(rows_) * width_;
    }

    /// Column-major linear index of padded slot (row, k).
    size_type slot(index_type row, index_type k) const
    {
        BATCHLIN_ENSURE_DIMS(row >= 0 && row < rows_ && k >= 0 && k < width_,
                             "ELL slot out of range");
        return static_cast<size_type>(k) * rows_ + row;
    }

    index_type& col_at(index_type row, index_type k)
    {
        return col_idxs_[slot(row, k)];
    }
    index_type col_at(index_type row, index_type k) const
    {
        return col_idxs_[slot(row, k)];
    }

    T& val_at(index_type batch, index_type row, index_type k)
    {
        return values_[item_offset(batch) + slot(row, k)];
    }
    T val_at(index_type batch, index_type row, index_type k) const
    {
        return values_[item_offset(batch) + slot(row, k)];
    }

    const std::vector<index_type>& col_idxs() const { return col_idxs_; }
    std::vector<index_type>& col_idxs() { return col_idxs_; }
    const std::vector<T>& values() const { return values_; }
    std::vector<T>& values() { return values_; }

    T* item_values(index_type batch)
    {
        return values_.data() + item_offset(batch);
    }
    const T* item_values(index_type batch) const
    {
        return values_.data() + item_offset(batch);
    }

    xpu::dspan<const T> item_span(index_type batch) const
    {
        return {item_values(batch),
                static_cast<index_type>(stored_per_item()),
                xpu::mem_space::constant};
    }

    /// Throws on malformed patterns: out-of-range columns or values stored
    /// in padding slots.
    void validate() const;

    /// Non-padding entries per item (the logical nnz).
    index_type nnz() const;

    /// Total storage in bytes including the shared pattern (Fig. 2).
    size_type storage_bytes() const
    {
        return static_cast<size_type>(values_.size()) * sizeof(T) +
               static_cast<size_type>(col_idxs_.size()) * sizeof(index_type);
    }

private:
    size_type item_offset(index_type batch) const
    {
        BATCHLIN_ENSURE_DIMS(batch >= 0 && batch < num_batch_,
                             "batch index out of range");
        return static_cast<size_type>(batch) * stored_per_item();
    }

    index_type num_batch_ = 0;
    index_type rows_ = 0;
    index_type cols_ = 0;
    index_type width_ = 0;
    std::vector<index_type> col_idxs_;
    std::vector<T> values_;
};

}  // namespace batchlin::mat
