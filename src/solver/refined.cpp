#include "solver/refined.hpp"

#include <algorithm>
#include <cmath>
#include <variant>

#include "solver/residual.hpp"
#include "solver/resilient.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace batchlin::solver {

namespace {

template <typename T>
index_type items_of(const batch_matrix<T>& a)
{
    return std::visit([](const auto& m) { return m.num_batch_items(); }, a);
}

template <typename T>
index_type rows_of(const batch_matrix<T>& a)
{
    return std::visit([](const auto& m) { return m.rows(); }, a);
}

template <typename T>
mat::storage_precision storage_of(const batch_matrix<T>& a)
{
    return std::visit([](const auto& m) { return m.storage_mode(); }, a);
}

// r = b - A x accumulated in FP64, reading the native matrix. This is the
// refinement RHS, so the vector itself is needed, not just its norm
// (residual.hpp covers the norm-only case).
template <typename T>
void residual_vector(const mat::batch_csr<T>& a, const mat::batch_dense<T>& b,
                     const mat::batch_dense<T>& x, mat::batch_dense<T>& r)
{
#pragma omp parallel for schedule(static)
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        const T* vals = a.item_values(item);
        for (index_type i = 0; i < a.rows(); ++i) {
            double acc = static_cast<double>(b.at(item, i, 0));
            for (index_type k = a.row_ptrs()[i]; k < a.row_ptrs()[i + 1];
                 ++k) {
                acc -= static_cast<double>(vals[k]) *
                       static_cast<double>(x.at(item, a.col_idxs()[k], 0));
            }
            r.at(item, i, 0) = static_cast<T>(acc);
        }
    }
}

template <typename T>
void residual_vector(const mat::batch_ell<T>& a, const mat::batch_dense<T>& b,
                     const mat::batch_dense<T>& x, mat::batch_dense<T>& r)
{
#pragma omp parallel for schedule(static)
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        for (index_type i = 0; i < a.rows(); ++i) {
            double acc = static_cast<double>(b.at(item, i, 0));
            for (index_type k = 0; k < a.ell_width(); ++k) {
                const index_type col = a.col_at(i, k);
                if (col != mat::ell_padding) {
                    acc -= static_cast<double>(a.val_at(item, i, k)) *
                           static_cast<double>(x.at(item, col, 0));
                }
            }
            r.at(item, i, 0) = static_cast<T>(acc);
        }
    }
}

template <typename T>
void residual_vector(const mat::batch_dense<T>& a,
                     const mat::batch_dense<T>& b,
                     const mat::batch_dense<T>& x, mat::batch_dense<T>& r)
{
#pragma omp parallel for schedule(static)
    for (index_type item = 0; item < a.num_batch_items(); ++item) {
        for (index_type i = 0; i < a.rows(); ++i) {
            double acc = static_cast<double>(b.at(item, i, 0));
            for (index_type j = 0; j < a.cols(); ++j) {
                acc -= static_cast<double>(a.at(item, i, j)) *
                       static_cast<double>(x.at(item, j, 0));
            }
            r.at(item, i, 0) = static_cast<T>(acc);
        }
    }
}

template <typename T>
std::vector<double> column_norms(const mat::batch_dense<T>& v)
{
    std::vector<double> out(static_cast<std::size_t>(v.num_batch_items()),
                            0.0);
    for (index_type item = 0; item < v.num_batch_items(); ++item) {
        double sq = 0.0;
        for (index_type i = 0; i < v.rows(); ++i) {
            const double e = static_cast<double>(v.at(item, i, 0));
            sq += e * e;
        }
        out[static_cast<std::size_t>(item)] = std::sqrt(sq);
    }
    return out;
}

}  // namespace

template <typename T>
refined_result solve_refined(xpu::queue& q, const batch_matrix<T>& a,
                             const batch_matrix<T>& compressed,
                             const mat::batch_dense<T>& b,
                             mat::batch_dense<T>& x,
                             const solve_options& opts,
                             const refine_options& ropts)
{
    opts.criterion.validate();
    BATCHLIN_ENSURE_MSG(ropts.max_sweeps >= 0,
                        "negative refinement sweep budget");
    BATCHLIN_ENSURE_MSG(
        storage_of(a) == mat::storage_precision::native,
        "solve_refined needs the native-storage matrix for its FP64 "
        "residuals");
    wall_timer timer;
    refined_result out;
    const index_type items = items_of(a);
    const index_type rows = rows_of(a);

    if (mat::effective_storage<T>(opts.storage) ==
        mat::storage_precision::native) {
        // Nothing to refine: plain solve plus a true-residual report.
        solve_options direct = opts;
        direct.refine_sweeps = 0;
        const solve_result res = solve(q, a, b, x, direct);
        out.log = res.log;
        out.stats = res.stats;
        out.true_residuals = relative_residual_norms(a, b, x);
        out.wall_seconds = timer.seconds();
        return out;
    }

    BATCHLIN_ENSURE_MSG(
        storage_of(compressed) == mat::storage_precision::fp32 &&
            same_shape(a, compressed),
        "the compressed operator must be the fp32-storage copy of a");

    // Inner solves run on the compressed operator to the loose inner
    // tolerance — a tighter target is unreachable on fp32 storage anyway.
    solve_options inner = opts;
    inner.refine_sweeps = 0;
    inner.record_history = false;
    inner.criterion.tolerance =
        std::max(opts.criterion.tolerance, ropts.inner_tolerance);

    std::vector<index_type> iterations(static_cast<std::size_t>(items), 0);
    const auto accumulate = [&](const solve_result& res) {
        out.stats += res.stats;
        for (index_type i = 0; i < items; ++i) {
            iterations[static_cast<std::size_t>(i)] +=
                res.log.iterations(i);
        }
    };

    accumulate(solve(q, compressed, b, x, inner));

    const std::vector<double> bnorm = column_norms(b);
    const auto target = [&](index_type i) {
        return opts.criterion.type == stop::tolerance_type::absolute
                   ? opts.criterion.tolerance
                   : opts.criterion.tolerance *
                         bnorm[static_cast<std::size_t>(i)];
    };

    mat::batch_dense<T> r(items, rows, 1);
    mat::batch_dense<T> d(items, rows, 1);
    const auto true_norms = [&] {
        std::visit([&](const auto& m) { residual_vector(m, b, x, r); }, a);
        return column_norms(r);
    };
    std::vector<double> rnorm = true_norms();
    const auto all_met = [&] {
        for (index_type i = 0; i < items; ++i) {
            if (rnorm[static_cast<std::size_t>(i)] > target(i)) {
                return false;
            }
        }
        return true;
    };

    bool stalled = false;
    while (!all_met() && out.sweeps < ropts.max_sweeps && !stalled) {
        // Correction solve A32 d = r from a zero guess; its stop target is
        // relative to the correction RHS, which is exactly what the inner
        // relative criterion gives when solving against r.
        d.fill(T{});
        accumulate(solve(q, compressed, r, d, inner));
        {
            auto& xv = x.values();
            const auto& dv = d.values();
            for (std::size_t s = 0; s < xv.size(); ++s) {
                xv[s] += dv[s];
            }
        }
        // Progress check on the worst still-unconverged system: classic IR
        // contracts the error by ~cond(A)·eps32 per sweep, so a sweep that
        // fails the threshold signals an operator the compressed storage
        // cannot resolve — keep sweeping would burn launches for nothing.
        double worst_before = 0.0;
        for (index_type i = 0; i < items; ++i) {
            if (rnorm[static_cast<std::size_t>(i)] > target(i)) {
                worst_before = std::max(
                    worst_before, rnorm[static_cast<std::size_t>(i)]);
            }
        }
        rnorm = true_norms();
        ++out.sweeps;
        double worst_after = 0.0;
        for (index_type i = 0; i < items; ++i) {
            if (rnorm[static_cast<std::size_t>(i)] > target(i)) {
                worst_after = std::max(worst_after,
                                       rnorm[static_cast<std::size_t>(i)]);
            }
        }
        if (worst_after > 0.0 &&
            worst_after > ropts.stall_threshold * worst_before) {
            stalled = true;
        }
    }

    if (!all_met() && ropts.fallback_to_native) {
        // Refinement stalled (or ran out of sweeps) short of the target:
        // demote to the native-storage fallback chain so the caller never
        // gets worse accuracy than a plain native solve. (The resilience
        // layer reports no counters; only the inner launches are summed.)
        solve_options primary = opts;
        primary.storage = mat::storage_precision::native;
        primary.refine_sweeps = 0;
        const resilient_result rr =
            solve_resilient(q, a, b, x, default_chain(primary));
        out.fell_back = true;
        for (index_type i = 0; i < items; ++i) {
            iterations[static_cast<std::size_t>(i)] += rr.log.iterations(i);
        }
        rnorm = true_norms();
    }

    out.log = log::batch_log(items);
    out.true_residuals.resize(static_cast<std::size_t>(items));
    for (index_type i = 0; i < items; ++i) {
        const double norm = rnorm[static_cast<std::size_t>(i)];
        const double bn = bnorm[static_cast<std::size_t>(i)];
        out.true_residuals[static_cast<std::size_t>(i)] =
            bn > 0.0 ? norm / bn : norm;
        out.log.record(i, iterations[static_cast<std::size_t>(i)], norm,
                       norm <= target(i)
                           ? log::solve_status::converged
                           : log::solve_status::max_iterations);
    }
    out.wall_seconds = timer.seconds();
    return out;
}

template <typename T>
refined_result solve_refined(xpu::queue& q, const batch_matrix<T>& a,
                             const mat::batch_dense<T>& b,
                             mat::batch_dense<T>& x,
                             const solve_options& opts,
                             const refine_options& ropts)
{
    if (mat::effective_storage<T>(opts.storage) ==
        mat::storage_precision::native) {
        // The compressed operand is never touched on the native path.
        return solve_refined(q, a, a, b, x, opts, ropts);
    }
    batch_matrix<T> compressed = a;
    std::visit(
        [](auto& m) {
            m.set_storage_precision(mat::storage_precision::fp32);
        },
        compressed);
    return solve_refined(q, a, compressed, b, x, opts, ropts);
}

template <typename T>
refined_result solve_refined_coalesced(
    xpu::queue& q, const std::vector<assembly_part<T>>& parts,
    const solve_options& opts, const refine_options& ropts)
{
    const index_type total_items = detail::validate_assembly(parts);
    const index_type rows = rows_of(*parts.front().a);

    if (parts.size() == 1) {
        return solve_refined(q, *parts.front().a, *parts.front().b,
                             *parts.front().x, opts, ropts);
    }

    const batch_matrix<T> a = detail::gather_matrix(parts, total_items);
    mat::batch_dense<T> b(total_items, rows, 1);
    mat::batch_dense<T> x(total_items, rows, 1);
    auto b_out = b.values().begin();
    auto x_out = x.values().begin();
    for (const assembly_part<T>& part : parts) {
        b_out = std::copy(part.b->values().begin(), part.b->values().end(),
                          b_out);
        x_out = std::copy(part.x->values().begin(), part.x->values().end(),
                          x_out);
    }

    refined_result result = solve_refined(q, a, b, x, opts, ropts);

    auto x_in = x.values().begin();
    for (const assembly_part<T>& part : parts) {
        std::copy_n(x_in, part.x->values().size(),
                    part.x->values().begin());
        x_in += static_cast<std::ptrdiff_t>(part.x->values().size());
    }
    return result;
}

#define BATCHLIN_INSTANTIATE_REFINED(T)                                     \
    template refined_result solve_refined<T>(                               \
        xpu::queue&, const batch_matrix<T>&, const batch_matrix<T>&,        \
        const mat::batch_dense<T>&, mat::batch_dense<T>&,                   \
        const solve_options&, const refine_options&);                       \
    template refined_result solve_refined<T>(                               \
        xpu::queue&, const batch_matrix<T>&, const mat::batch_dense<T>&,    \
        mat::batch_dense<T>&, const solve_options&,                         \
        const refine_options&);                                             \
    template refined_result solve_refined_coalesced<T>(                     \
        xpu::queue&, const std::vector<assembly_part<T>>&,                  \
        const solve_options&, const refine_options&)

BATCHLIN_INSTANTIATE_REFINED(float);
BATCHLIN_INSTANTIATE_REFINED(double);

}  // namespace batchlin::solver
