// Model-check suite for the lock-free serve/shard protocols (conc::).
//
// Three layers, all `Conc*` suites so scripts/check.sh config 9 selects
// them with one regex:
//
//  * ConcEngine — self-tests of the scheduler and race detector: the
//    checker's own teeth (determinism, race detection, deadlock-as-
//    lost-wake, spurious wakeup injection, preemption bounding).
//  * ConcRing / ConcSlot / ConcBell / ConcShard — the load-bearing
//    invariants of the production protocols, run against the *production*
//    code (serve::mpmc_ring, serve::detail::reply_slot, serve::doorbell,
//    shard::lane counters) under exhaustive exploration at 2-3 threads
//    plus seeded random walks at higher thread counts.
//  * ConcMutant — the detector-teeth suite: each test seeds one defect
//    (a weakened memory order via the ring's Orders traits, a dropped
//    futex wake, a flipped Dekker registration, a lost counter update)
//    and asserts the checker reports it within the schedule budget. A
//    mutant the checker cannot catch would be a hole in the properties.
//
// Every test body is loop-bounded: the engine enumerates schedules by
// depth-first replay, so an unbounded retry loop would make the schedule
// tree infinite (the engine reports it as a max_ops_per_run failure).
// Consumers therefore make a fixed number of attempts and the root
// drains / checks the balance after joining — which still explores every
// interleaving of the bounded ops.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "conc/conc.hpp"
#include "serve/doorbell.hpp"
#include "serve/futex.hpp"
#include "serve/reply_slot.hpp"
#include "serve/ring.hpp"
#include "shard/lane.hpp"

namespace conc = batchlin::conc;
namespace serve = batchlin::serve;
namespace shard = batchlin::shard;

namespace {

conc::options exhaustive(int preemption_bound = 2)
{
    conc::options o;
    o.mode = conc::explore_mode::exhaustive;
    o.preemption_bound = preemption_bound;
    return o;
}

conc::options random_walks(long seeds, std::uint64_t seed0 = 1)
{
    conc::options o;
    o.mode = conc::explore_mode::random;
    o.seeds = seeds;
    o.seed0 = seed0;
    o.preemption_bound = -1;  // random walks explore unbounded preemption
    return o;
}

// ---------------------------------------------------------------------------
// ConcEngine: the checker's own teeth.
// ---------------------------------------------------------------------------

TEST(ConcEngine, ExhaustiveExplorationIsDeterministic)
{
    auto body = [] {
        conc::atomic<int> a{0};
        conc::atomic<int> b{0};
        conc::thread t1([&] { a.store(1); b.store(1); });
        conc::thread t2([&] { b.store(2); a.store(2); });
        t1.join();
        t2.join();
    };
    const conc::report r1 = conc::explore(exhaustive(), body);
    const conc::report r2 = conc::explore(exhaustive(), body);
    ASSERT_TRUE(r1.ok) << r1.summary();
    EXPECT_TRUE(r1.complete) << r1.summary();
    EXPECT_GT(r1.schedules, 1);
    EXPECT_EQ(r1.schedules, r2.schedules);
    EXPECT_EQ(r1.pruned, r2.pruned);
}

TEST(ConcEngine, UnsynchronizedPlainWritesAreARace)
{
    const conc::report rep = conc::explore(exhaustive(), [] {
        int x = 0;
        conc::thread t1([&] {
            conc::plain_write(&x);
            x = 1;
        });
        conc::thread t2([&] {
            conc::plain_write(&x);
            x = 2;
        });
        t1.join();
        t2.join();
    });
    ASSERT_FALSE(rep.ok) << rep.summary();
    EXPECT_NE(rep.failure.find("data race"), std::string::npos) << rep.failure;
}

TEST(ConcEngine, ReleaseAcquirePublicationIsRaceFree)
{
    const conc::report rep = conc::explore(exhaustive(), [] {
        int data = 0;
        conc::atomic<int> flag{0};
        conc::thread writer([&] {
            conc::plain_write(&data);
            data = 42;
            flag.store(1, std::memory_order_release);
        });
        if (flag.load(std::memory_order_acquire) == 1) {
            conc::plain_read(&data);
            conc::require(data == 42, "published value visible after acquire");
        }
        writer.join();
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcEngine, RelaxedPublicationIsARace)
{
    const conc::report rep = conc::explore(exhaustive(), [] {
        int data = 0;
        conc::atomic<int> flag{0};
        conc::thread writer([&] {
            conc::plain_write(&data);
            data = 42;
            flag.store(1, std::memory_order_relaxed);
        });
        if (flag.load(std::memory_order_relaxed) == 1) {
            conc::plain_read(&data);
        }
        writer.join();
    });
    ASSERT_FALSE(rep.ok) << rep.summary();
    EXPECT_NE(rep.failure.find("data race"), std::string::npos) << rep.failure;
}

TEST(ConcEngine, MutexOrdersCriticalSections)
{
    const conc::report rep = conc::explore(exhaustive(), [] {
        int counter = 0;
        conc::mutex m;
        auto bump = [&] {
            m.lock();
            conc::plain_write(&counter);
            ++counter;
            m.unlock();
        };
        conc::thread t1(bump);
        conc::thread t2(bump);
        t1.join();
        t2.join();
        conc::require(counter == 2, "both increments retained");
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcEngine, LostWakeIsReportedAsDeadlock)
{
    // The waiter parks on a word nobody ever wakes. Spurious wakeups must
    // not rescue it: a protocol is broken if it relies on them.
    const conc::report rep = conc::explore(exhaustive(), [] {
        conc::atomic<std::uint32_t> word{0};
        conc::thread waiter([&] { conc::futex_wait(word, 0); });
        waiter.join();
    });
    ASSERT_FALSE(rep.ok) << rep.summary();
    EXPECT_NE(rep.failure.find("deadlock"), std::string::npos) << rep.failure;
}

TEST(ConcEngine, SpuriousWakeupsAreInjectedAndTolerated)
{
    // A correct wait loop re-checks its predicate, so the injected spurious
    // returns (one credit per thread per schedule) never break it.
    const conc::report rep = conc::explore(exhaustive(), [] {
        conc::atomic<std::uint32_t> word{0};
        conc::thread waker([&] {
            word.store(1, std::memory_order_release);
            conc::futex_wake_all(word);
        });
        while (word.load(std::memory_order_acquire) == 0) {
            conc::futex_wait(word, 0);
        }
        waker.join();
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcEngine, RequireViolationReportsSiteAndTrace)
{
    const conc::report rep = conc::explore(exhaustive(), [] {
        conc::atomic<int> turn{0};
        conc::thread t([&] { turn.store(1); });
        conc::require(turn.load() == 0, "root ran before the child stored");
        t.join();
    });
    ASSERT_FALSE(rep.ok) << rep.summary();
    EXPECT_NE(rep.failure.find("property violated"), std::string::npos);
    EXPECT_NE(rep.failure.find("test_conc.cpp"), std::string::npos) << rep.failure;
    EXPECT_NE(rep.trace.find("schedule"), std::string::npos) << rep.trace;
}

TEST(ConcEngine, RandomModeReportsTheFailingSeed)
{
    const conc::report rep = conc::explore(random_walks(200), [] {
        int x = 0;
        conc::thread t1([&] {
            conc::plain_write(&x);
            x = 1;
        });
        conc::thread t2([&] {
            conc::plain_write(&x);
            x = 2;
        });
        t1.join();
        t2.join();
    });
    ASSERT_FALSE(rep.ok) << rep.summary();
    EXPECT_NE(rep.trace.find("seed"), std::string::npos) << rep.trace;
}

TEST(ConcEngine, PreemptionBoundPrunesInterleavings)
{
    auto body = [] {
        conc::atomic<int> a{0};
        conc::thread t1([&] {
            a.store(1);
            a.store(2);
            a.store(3);
        });
        conc::thread t2([&] {
            a.store(4);
            a.store(5);
            a.store(6);
        });
        t1.join();
        t2.join();
    };
    const conc::report bounded = conc::explore(exhaustive(0), body);
    const conc::report full = conc::explore(exhaustive(-1), body);
    ASSERT_TRUE(bounded.ok) << bounded.summary();
    ASSERT_TRUE(full.ok) << full.summary();
    EXPECT_LT(bounded.schedules, full.schedules);
}

// ---------------------------------------------------------------------------
// ConcRing: serve::mpmc_ring no-loss / no-duplication / FIFO-per-producer.
// ---------------------------------------------------------------------------

// Drives the production ring (or an Orders-weakened mutant of it) with one
// producer and one bounded consumer; the root drains after joining. With
// `items <= capacity` every push succeeds on the first attempt, so the
// whole body is loop-bounded.
template <typename Orders>
conc::report explore_ring_1p1c(const conc::options& o, std::size_t capacity,
                               std::size_t start_pos, int items, int attempts)
{
    return conc::explore(o, [=] {
        serve::mpmc_ring<int, Orders> ring(capacity, start_pos);
        int pushed = 0;
        std::vector<int> got;
        conc::thread producer([&] {
            for (int i = 1; i <= items; ++i) {
                int v = i;
                for (int tries = 0; tries < attempts; ++tries) {
                    if (ring.try_push(v)) {
                        ++pushed;
                        break;
                    }
                }
            }
        });
        conc::thread consumer([&] {
            for (int a = 0; a < attempts; ++a) {
                int v = 0;
                if (ring.try_pop(v)) {
                    got.push_back(v);
                }
            }
        });
        producer.join();
        consumer.join();
        int v = 0;
        while (ring.try_pop(v)) {
            got.push_back(v);
        }
        // No loss, no duplication, FIFO: everything successfully pushed
        // comes back exactly once, in order.
        conc::require(static_cast<int>(got.size()) == pushed,
                      "every pushed element is popped exactly once");
        for (std::size_t i = 0; i < got.size(); ++i) {
            conc::require(got[i] == static_cast<int>(i) + 1,
                          "FIFO order per producer");
        }
    });
}

TEST(ConcRing, NoLossNoDupFifoOneProducerOneConsumer)
{
    const conc::report rep =
        explore_ring_1p1c<serve::ring_orders>(exhaustive(), 4, 0, 2, 4);
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcRing, CellReuseAcrossALapIsOrdered)
{
    // capacity 2, three items: the third push reuses the first item's cell,
    // exercising the retire(release) -> seq_load(acquire) edge under every
    // schedule.
    const conc::report rep =
        explore_ring_1p1c<serve::ring_orders>(exhaustive(), 2, 0, 3, 4);
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcRing, SurvivesPositionCounterWraparound)
{
    // Start both cursors just below SIZE_MAX (the production seam for this
    // is the two-arg constructor): the position counter itself overflows
    // mid-test and the seq/pos difference arithmetic must keep working.
    const std::size_t start = std::numeric_limits<std::size_t>::max() - 1;
    const conc::report rep =
        explore_ring_1p1c<serve::ring_orders>(exhaustive(), 2, start, 3, 4);
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcRing, TwoProducersKeepPerProducerFifo)
{
    const conc::report rep = conc::explore(exhaustive(1), [] {
        serve::mpmc_ring<int> ring(4);
        std::vector<int> got;
        conc::thread p1([&] {
            for (int v0 : {101, 102}) {
                int v = v0;
                conc::require(ring.try_push(v), "ring has room for p1");
            }
        });
        conc::thread p2([&] {
            for (int v0 : {201, 202}) {
                int v = v0;
                conc::require(ring.try_push(v), "ring has room for p2");
            }
        });
        conc::thread consumer([&] {
            for (int a = 0; a < 5; ++a) {
                int v = 0;
                if (ring.try_pop(v)) {
                    got.push_back(v);
                }
            }
        });
        p1.join();
        p2.join();
        consumer.join();
        int v = 0;
        while (ring.try_pop(v)) {
            got.push_back(v);
        }
        conc::require(got.size() == 4, "no element lost or duplicated");
        int last1 = 0;
        int last2 = 0;
        for (int g : got) {
            int& last = g < 200 ? last1 : last2;
            conc::require(g > last, "FIFO per producer");
            last = g;
        }
        conc::require(last1 == 102 && last2 == 202, "all elements delivered");
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcRing, RandomSchedulesTwoProducersTwoConsumers)
{
    // Higher thread count than the exhaustive runs can afford: >= 10k
    // seeded random schedules (the fixed seed set check.sh config 9 pins).
    const conc::report rep = conc::explore(random_walks(10000), [] {
        serve::mpmc_ring<int> ring(8);
        std::vector<int> got1;
        std::vector<int> got2;
        conc::thread p1([&] {
            for (int v0 : {101, 102}) {
                int v = v0;
                conc::require(ring.try_push(v), "ring has room for p1");
            }
        });
        conc::thread p2([&] {
            for (int v0 : {201, 202}) {
                int v = v0;
                conc::require(ring.try_push(v), "ring has room for p2");
            }
        });
        auto consume = [&](std::vector<int>& got) {
            for (int a = 0; a < 3; ++a) {
                int v = 0;
                if (ring.try_pop(v)) {
                    got.push_back(v);
                }
            }
        };
        conc::thread c1([&] { consume(got1); });
        conc::thread c2([&] { consume(got2); });
        p1.join();
        p2.join();
        c1.join();
        c2.join();
        std::vector<int> rest;
        int v = 0;
        while (ring.try_pop(v)) {
            rest.push_back(v);
        }
        // Per-consumer streams see each producer's elements in order
        // (dequeue positions are claimed monotonically).
        for (const std::vector<int>* g : {&got1, &got2, &rest}) {
            int last1 = 0;
            int last2 = 0;
            for (int x : *g) {
                int& last = x < 200 ? last1 : last2;
                conc::require(x > last, "per-producer order within a consumer");
                last = x;
            }
        }
        // No loss, no duplication: multiset equality via a sum+count check
        // over distinct values.
        long sum = 0;
        std::size_t n = rest.size();
        for (int x : rest) {
            sum += x;
        }
        for (const std::vector<int>* g : {&got1, &got2}) {
            n += g->size();
            for (int x : *g) {
                sum += x;
            }
        }
        conc::require(n == 4, "all four elements popped exactly once");
        conc::require(sum == 101 + 102 + 201 + 202, "element set preserved");
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_EQ(rep.schedules, 10000);
}

// ---------------------------------------------------------------------------
// ConcSlot: reply_slot resolver/waiter never loses a wake.
// ---------------------------------------------------------------------------

TEST(ConcSlot, ResolverAlwaysWakesARegisteredWaiter)
{
    const conc::report rep = conc::explore(exhaustive(), [] {
        serve::detail::reply_slot<int> slot;
        conc::thread waiter([&] {
            const int v = slot.wait_and_take();
            conc::require(v == 7, "payload delivered intact");
        });
        conc::thread resolver([&] {
            slot.store_reply(7);
            if (conc::atomic<std::uint32_t>* w = slot.resolve()) {
                serve::detail::futex_wake_all(*w);
            }
        });
        waiter.join();
        resolver.join();
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcSlot, DeferredWakeSweepResolvesEveryWaiter)
{
    // Persistent mode defers wakes to a per-batch sweep: both slots are
    // resolved first, then every collected word is woken. No waiter may be
    // lost in between.
    const conc::report rep = conc::explore(exhaustive(1), [] {
        serve::detail::reply_slot<int> s1;
        serve::detail::reply_slot<int> s2;
        conc::thread w1([&] {
            conc::require(s1.wait_and_take() == 1, "waiter 1 payload");
        });
        conc::thread w2([&] {
            conc::require(s2.wait_and_take() == 2, "waiter 2 payload");
        });
        conc::thread resolver([&] {
            std::vector<conc::atomic<std::uint32_t>*> wake_list;
            s1.store_reply(1);
            if (conc::atomic<std::uint32_t>* w = s1.resolve()) {
                wake_list.push_back(w);
            }
            s2.store_reply(2);
            if (conc::atomic<std::uint32_t>* w = s2.resolve()) {
                wake_list.push_back(w);
            }
            for (conc::atomic<std::uint32_t>* w : wake_list) {
                serve::detail::futex_wake_all(*w);
            }
        });
        w1.join();
        w2.join();
        resolver.join();
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

// ---------------------------------------------------------------------------
// ConcBell: the doorbell Dekker handshake (PR 9 satellite audit).
// ---------------------------------------------------------------------------

// The admission handshake reduced to its schedule-relevant skeleton: a
// producer publishes one unit of work (seq_cst, as submit_to_ring does)
// and rings; the consumer loops consume-or-park. `parker` and `ringer`
// default to the production doorbell; mutants substitute broken variants.
conc::report explore_bell_protocol(
    const conc::options& o,
    const std::function<void(serve::doorbell&, const std::function<bool()>&)>&
        parker,
    const std::function<void(serve::doorbell&)>& ringer)
{
    return conc::explore(o, [&] {
        serve::doorbell bell;
        conc::atomic<std::uint32_t> pending{0};
        bool consumed = false;
        conc::thread consumer([&] {
            while (!consumed) {
                if (pending.load(std::memory_order_seq_cst) > 0) {
                    pending.fetch_sub(1, std::memory_order_seq_cst);
                    consumed = true;
                } else {
                    parker(bell, [&] {
                        return pending.load(std::memory_order_seq_cst) > 0;
                    });
                }
            }
        });
        conc::thread producer([&] {
            pending.fetch_add(1, std::memory_order_seq_cst);
            ringer(bell);
        });
        consumer.join();
        producer.join();
        conc::require(consumed && pending.load() == 0,
                      "work consumed exactly once");
    });
}

void production_park(serve::doorbell& bell, const std::function<bool()>& keep)
{
    bell.park(keep);
}

void production_ring(serve::doorbell& bell) { bell.ring(); }

TEST(ConcBell, SubmitNeverLosesAWakeAgainstPark)
{
    const conc::report rep =
        explore_bell_protocol(exhaustive(), production_park, production_ring);
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcBell, StopAlwaysWakesAParkedWorker)
{
    // The shutdown path: stop() sets the flag and rings unconditionally;
    // a worker parking concurrently must always observe one or the other.
    const conc::report rep = conc::explore(exhaustive(), [] {
        serve::doorbell bell;
        conc::atomic<bool> stopping{false};
        conc::thread worker([&] {
            int rounds = 0;
            while (!stopping.load(std::memory_order_acquire)) {
                bell.park([&] {
                    return stopping.load(std::memory_order_acquire);
                });
                conc::require(++rounds <= 4,
                              "worker re-parks without a stop signal");
            }
        });
        conc::thread stopper([&] {
            stopping.store(true, std::memory_order_release);
            bell.ring_always();
        });
        worker.join();
        stopper.join();
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

// ---------------------------------------------------------------------------
// ConcShard: lane backlog books and the breaker's lock-free flag.
// ---------------------------------------------------------------------------

TEST(ConcShard, BacklogBooksBalanceAcrossSubmitStealRetire)
{
    // The transfer discipline of the persistent loop (service.cpp): a
    // submit adds to the routed lane, a steal moves fetch_sub/fetch_add
    // between lanes, a retire subtracts what actually ran. The books must
    // balance under every interleaving.
    const conc::report rep = conc::explore(exhaustive(), [] {
        shard::lane<int> victim;
        shard::lane<int> thief;
        victim.backlog_ns.store(100, std::memory_order_relaxed);
        conc::thread submitter([&] {
            victim.backlog_ns.fetch_add(40, std::memory_order_relaxed);
        });
        conc::thread worker([&] {
            victim.backlog_ns.fetch_sub(60, std::memory_order_relaxed);
            thief.backlog_ns.fetch_add(60, std::memory_order_relaxed);
            thief.backlog_ns.fetch_sub(60, std::memory_order_relaxed);
        });
        submitter.join();
        worker.join();
        conc::require(victim.backlog_ns.load() + thief.backlog_ns.load() ==
                          100 + 40 - 60,
                      "backlog books balance: submitted - retired");
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcShard, BreakerSuspendedFlagIsMonotoneOverCooldown)
{
    // The breaker's plain fields are service-mutex-guarded; `suspended` is
    // the lock-free mirror the persistent loop reads per batch. A tripped
    // breaker must read true for exactly the cooldown, then false.
    const conc::report rep = conc::explore(exhaustive(), [] {
        shard::breaker brk;
        conc::mutex m;
        conc::thread observer([&] {
            m.lock();
            brk.observe(true, 0.5, 1, 2);  // 1/1 faulted trips, cooldown 2
            m.unlock();
        });
        conc::thread reader([&] {
            // Lock-free read concurrent with the trip: either state is
            // fine, what matters is that it is not a data race.
            (void)brk.suspended.load(std::memory_order_acquire);
        });
        observer.join();
        reader.join();
        conc::require(brk.suspended.load(std::memory_order_acquire),
                      "tripped breaker suspends coalescing");
        m.lock();
        brk.observe(false, 0.5, 1, 2);
        m.unlock();
        conc::require(brk.suspended.load(std::memory_order_acquire),
                      "still suspended mid-cooldown");
        m.lock();
        brk.observe(false, 0.5, 1, 2);
        m.unlock();
        conc::require(!brk.suspended.load(std::memory_order_acquire),
                      "cooldown exhausted resumes coalescing");
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcShard, RacingEvictionsHaveExactlyOneWinner)
{
    // A worker exhausting its retries and the hang watchdog can race to
    // declare the same lane lost. The eviction CAS must admit exactly one
    // winner under every interleaving — the winner drains and migrates the
    // lane's queue, the loser must see `available()` already false and
    // back off — and the eviction counter must count the event once.
    const conc::report rep = conc::explore(exhaustive(), [] {
        shard::lane_guard guard;
        int winners = 0;
        conc::mutex m;
        auto contender = [&] {
            const bool won = guard.try_evict();
            m.lock();
            if (won) {
                ++winners;
            }
            m.unlock();
            conc::require(won || !guard.available(),
                          "loser observes the lane as already evicted");
        };
        conc::thread worker(contender);
        conc::thread watchdog(contender);
        worker.join();
        watchdog.join();
        conc::require(winners == 1, "exactly one eviction winner");
        conc::require(guard.evictions.load() == 1,
                      "the race counts as one eviction");
        conc::require(guard.current() == shard::lane_state::evicted,
                      "lane ends evicted");
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

TEST(ConcShard, HalfOpenProbeAdmitsOneProberAcrossSchedules)
{
    // Two evicted-lane workers race for the half-open probe slot while a
    // third keeps asking "is this lane alive?" lock-free. Exactly one
    // prober wins; after its failed probe the lane is evicted again and
    // the next claim succeeds — the re-trip path of the half-open state.
    const conc::report rep = conc::explore(exhaustive(1), [] {
        shard::lane_guard guard;
        conc::require(guard.try_evict(), "setup eviction");
        int probers = 0;
        conc::mutex m;
        auto claimant = [&] {
            if (guard.try_begin_probe()) {
                m.lock();
                ++probers;
                m.unlock();
            }
        };
        conc::thread p1(claimant);
        conc::thread p2(claimant);
        conc::thread reader([&] {
            conc::require(!guard.available(),
                          "evicted/probing lane never reads available");
        });
        p1.join();
        p2.join();
        reader.join();
        conc::require(probers == 1, "one half-open probe at a time");
        guard.probe_failed();
        conc::require(guard.current() == shard::lane_state::evicted,
                      "failed probe re-trips the eviction");
        conc::require(guard.try_begin_probe(),
                      "cooldown re-arms: next claim admitted");
        guard.probe_succeeded();
        conc::require(guard.available(),
                      "successful probe restores routing weight");
    });
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_TRUE(rep.complete) << rep.summary();
}

// ---------------------------------------------------------------------------
// ConcMutant: seeded defects the checker must catch (detector teeth).
// ---------------------------------------------------------------------------

// Orders mutants derive from the production traits and weaken exactly one
// member, so the *production* ring code runs with one load-bearing order
// removed.
struct publish_relaxed : serve::ring_orders {
    static constexpr std::memory_order publish = std::memory_order_relaxed;
};
struct seq_load_relaxed : serve::ring_orders {
    static constexpr std::memory_order seq_load = std::memory_order_relaxed;
};
struct retire_relaxed : serve::ring_orders {
    static constexpr std::memory_order retire = std::memory_order_relaxed;
};

TEST(ConcMutant, RingRelaxedPublishIsCaught)
{
    const conc::report rep =
        explore_ring_1p1c<publish_relaxed>(exhaustive(), 4, 0, 2, 4);
    ASSERT_FALSE(rep.ok) << "weakened publish order went undetected: "
                         << rep.summary();
    EXPECT_NE(rep.failure.find("data race"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, RingRelaxedSeqLoadIsCaught)
{
    const conc::report rep =
        explore_ring_1p1c<seq_load_relaxed>(exhaustive(), 4, 0, 2, 4);
    ASSERT_FALSE(rep.ok) << "weakened seq_load order went undetected: "
                         << rep.summary();
    EXPECT_NE(rep.failure.find("data race"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, RingRelaxedRetireIsCaughtOnCellReuse)
{
    // The retire edge only matters a lap later: capacity 2, three items,
    // so the third push reuses the first cell.
    const conc::report rep =
        explore_ring_1p1c<retire_relaxed>(exhaustive(), 2, 0, 3, 4);
    ASSERT_FALSE(rep.ok) << "weakened retire order went undetected: "
                         << rep.summary();
    EXPECT_NE(rep.failure.find("data race"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, SlotRelaxedResolveIsCaught)
{
    // The resolver's exchange must be (at least) release: relaxed breaks
    // the payload publication and the waiter reads the reply racily. The
    // waiter side is the production wait_and_take.
    const conc::report rep = conc::explore(exhaustive(), [] {
        serve::detail::reply_slot<int> slot;
        conc::thread waiter([&] { (void)slot.wait_and_take(); });
        conc::thread resolver([&] {
            slot.store_reply(7);
            const std::uint32_t old = slot.state.exchange(
                serve::detail::slot_ready, std::memory_order_relaxed);
            if (old == serve::detail::slot_pending_waiting) {
                serve::detail::futex_wake_all(slot.state);
            }
        });
        waiter.join();
        resolver.join();
    });
    ASSERT_FALSE(rep.ok) << "relaxed resolve went undetected: " << rep.summary();
    EXPECT_NE(rep.failure.find("data race"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, SlotResolveWithoutWakeIsCaughtAsDeadlock)
{
    // A resolver that publishes ready but skips the waiter-bit handshake
    // (plain store, no wake) strands any registered waiter: the schedule
    // where the waiter parked first must be reported as a lost wake.
    const conc::report rep = conc::explore(exhaustive(), [] {
        serve::detail::reply_slot<int> slot;
        conc::thread waiter([&] { (void)slot.wait_and_take(); });
        conc::thread resolver([&] {
            slot.store_reply(7);
            slot.state.store(serve::detail::slot_ready,
                             std::memory_order_release);
        });
        waiter.join();
        resolver.join();
    });
    ASSERT_FALSE(rep.ok) << "dropped wake went undetected: " << rep.summary();
    EXPECT_NE(rep.failure.find("deadlock"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, DoorbellRingWithoutWakeIsCaughtAsDeadlock)
{
    // Bumping the generation without the futex wake leaves an already-
    // sleeping worker asleep forever (the futex checks the word only at
    // sleep time).
    const conc::report rep = explore_bell_protocol(
        exhaustive(), production_park, [](serve::doorbell& bell) {
            if (bell.parked.load(std::memory_order_seq_cst) > 0) {
                bell.word.fetch_add(1, std::memory_order_release);
                // mutant: futex_wake_all dropped
            }
        });
    ASSERT_FALSE(rep.ok) << "dropped doorbell wake went undetected: "
                         << rep.summary();
    EXPECT_NE(rep.failure.find("deadlock"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, DoorbellParkCheckBeforeRegisterIsCaught)
{
    // The satellite-audit regression: the Dekker handshake requires
    // parked++ *before* the predicate re-check. Flipping the order opens
    // the classic missed-wake window — producer sees parked == 0 and
    // skips the ring, consumer saw no pending work and sleeps.
    const conc::report rep = explore_bell_protocol(
        exhaustive(),
        [](serve::doorbell& bell, const std::function<bool()>& keep_awake) {
            const std::uint32_t heard =
                bell.word.load(std::memory_order_acquire);
            const bool awake = keep_awake();  // mutant: before parked++
            bell.parked.fetch_add(1, std::memory_order_seq_cst);
            if (!awake && bell.word.load(std::memory_order_acquire) == heard) {
                serve::detail::futex_wait(bell.word, heard);
            }
            bell.parked.fetch_sub(1, std::memory_order_seq_cst);
        },
        production_ring);
    ASSERT_FALSE(rep.ok) << "flipped Dekker order went undetected: "
                         << rep.summary();
    EXPECT_NE(rep.failure.find("deadlock"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, DoorbellParkFreshExpectedIsCaught)
{
    // The other satellite-audit regression: sleeping on a *fresh* read of
    // the word instead of the generation heard before registering erases
    // the ring that landed in between — the futex value check then
    // matches and the worker sleeps through its own wake.
    const conc::report rep = explore_bell_protocol(
        exhaustive(),
        [](serve::doorbell& bell, const std::function<bool()>& keep_awake) {
            bell.parked.fetch_add(1, std::memory_order_seq_cst);
            if (!keep_awake()) {
                serve::detail::futex_wait(
                    bell.word,
                    bell.word.load(std::memory_order_acquire));  // mutant
            }
            bell.parked.fetch_sub(1, std::memory_order_seq_cst);
        },
        production_ring);
    ASSERT_FALSE(rep.ok) << "fresh-expected park went undetected: "
                         << rep.summary();
    EXPECT_NE(rep.failure.find("deadlock"), std::string::npos) << rep.failure;
}

TEST(ConcMutant, BacklogLostUpdateIsCaught)
{
    // The steal transfer rewritten as load+store instead of fetch_sub: a
    // submit landing in between is erased and the books no longer balance.
    const conc::report rep = conc::explore(exhaustive(), [] {
        shard::lane<int> victim;
        shard::lane<int> thief;
        victim.backlog_ns.store(100, std::memory_order_relaxed);
        conc::thread submitter([&] {
            victim.backlog_ns.fetch_add(40, std::memory_order_relaxed);
        });
        conc::thread worker([&] {
            const std::int64_t snap =
                victim.backlog_ns.load(std::memory_order_relaxed);
            victim.backlog_ns.store(snap - 60,
                                    std::memory_order_relaxed);  // mutant
            thief.backlog_ns.fetch_add(60, std::memory_order_relaxed);
            thief.backlog_ns.fetch_sub(60, std::memory_order_relaxed);
        });
        submitter.join();
        worker.join();
        conc::require(victim.backlog_ns.load() + thief.backlog_ns.load() ==
                          100 + 40 - 60,
                      "backlog books balance: submitted - retired");
    });
    ASSERT_FALSE(rep.ok) << "lost backlog update went undetected: "
                         << rep.summary();
    EXPECT_NE(rep.failure.find("property violated"), std::string::npos)
        << rep.failure;
}

}  // namespace
