#include "shard/registry.hpp"

#include <cctype>
#include <cstdlib>

#include "util/error.hpp"

namespace batchlin::shard {

namespace {

/// Lowercases and strips separators so "PVC-1S", "pvc_1s" and "pvc1s"
/// all compare equal.
std::string fold_name(const std::string& name)
{
    std::string folded;
    folded.reserve(name.size());
    for (const char c : name) {
        if (c == '-' || c == '_' || c == ' ') {
            continue;
        }
        folded.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
    return folded;
}

}  // namespace

std::string canonical_device_name(const std::string& name)
{
    const std::string folded = fold_name(name);
    if (folded == "a100") {
        return "A100";
    }
    if (folded == "h100") {
        return "H100";
    }
    if (folded == "pvc1s") {
        return "PVC-1S";
    }
    if (folded == "pvc2s") {
        return "PVC-2S";
    }
    BATCHLIN_ENSURE_MSG(false, "unknown shard device: '" + name +
                                   "' (expected a100|h100|pvc1s|pvc2s)");
    return {};
}

std::vector<std::string> parse_device_list(const std::string& list)
{
    std::vector<std::string> names;
    std::string token;
    for (const char c : list) {
        if (c == ',') {
            if (!token.empty()) {
                names.push_back(canonical_device_name(token));
                token.clear();
            }
            continue;
        }
        token.push_back(c);
    }
    if (!token.empty()) {
        names.push_back(canonical_device_name(token));
    }
    BATCHLIN_ENSURE_MSG(!names.empty(),
                        "empty shard device list: '" + list + "'");
    return names;
}

std::optional<index_type> shards_from_env()
{
    // Read-only env lookup; nothing in batchlin calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("BATCHLIN_SHARDS");
    if (env == nullptr || *env == '\0') {
        return std::nullopt;
    }
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    BATCHLIN_ENSURE_MSG(end != nullptr && *end == '\0' && value > 0,
                        std::string("BATCHLIN_SHARDS must be a positive "
                                    "integer, got '") +
                            env + "'");
    return static_cast<index_type>(value);
}

std::optional<std::vector<std::string>> shard_devices_from_env()
{
    // Read-only env lookup; nothing in batchlin calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("BATCHLIN_SHARD_DEVICES");
    if (env == nullptr || *env == '\0') {
        return std::nullopt;
    }
    return parse_device_list(env);
}

registry registry::uniform(index_type count, const std::string& device_name,
                           const xpu::exec_policy& base)
{
    BATCHLIN_ENSURE_MSG(count > 0, "registry needs at least one shard");
    registry reg;
    const perf::device_spec spec =
        perf::device_by_name(canonical_device_name(device_name));
    reg.entries_.reserve(static_cast<std::size_t>(count));
    for (index_type i = 0; i < count; ++i) {
        device_entry e;
        e.id = i;
        e.spec = spec;
        e.policy = base;
        e.explicit_device = false;
        reg.entries_.push_back(std::move(e));
    }
    reg.queues_.resize(static_cast<std::size_t>(count));
    return reg;
}

registry registry::from_names(const std::vector<std::string>& names,
                              const xpu::exec_policy& base)
{
    BATCHLIN_ENSURE_MSG(!names.empty(),
                        "registry needs at least one shard device");
    registry reg;
    reg.entries_.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        device_entry e;
        e.id = static_cast<index_type>(i);
        e.spec = perf::device_by_name(canonical_device_name(names[i]));
        // Kernel behavior stays the base policy's (bit-identity across
        // placements); the spec contributes launch-cost emulation only.
        e.policy = base;
        e.policy.emulated_launch_us = e.spec.kernel_launch_us;
        e.policy.emulated_replay_us = e.spec.graph_replay_us;
        e.policy.emulated_record_us = e.spec.graph_finalize_us;
        e.explicit_device = true;
        reg.entries_.push_back(std::move(e));
    }
    reg.queues_.resize(names.size());
    return reg;
}

const device_entry& registry::at(index_type shard) const
{
    BATCHLIN_ENSURE_MSG(shard >= 0 && shard < size(),
                        "shard id out of range: " + std::to_string(shard));
    return entries_[static_cast<std::size_t>(shard)];
}

xpu::queue& registry::queue(index_type shard)
{
    const device_entry& e = at(shard);
    auto& slot = queues_[static_cast<std::size_t>(shard)];
    if (!slot) {
        slot = std::make_unique<xpu::queue>(e.policy);
    }
    return *slot;
}

}  // namespace batchlin::shard
