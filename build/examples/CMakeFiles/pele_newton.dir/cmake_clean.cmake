file(REMOVE_RECURSE
  "CMakeFiles/pele_newton.dir/pele_newton.cpp.o"
  "CMakeFiles/pele_newton.dir/pele_newton.cpp.o.d"
  "pele_newton"
  "pele_newton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pele_newton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
