// tune — determines the §3.6 launch-heuristic thresholds experimentally.
//
// The paper: "the thresholds between small and large matrix sizes are
// different for different GPUs capabilities, these thresholds need to be
// determined experimentally for each targeted device before using these
// solvers". This tool sweeps the matrix size on a chosen device model,
// measures both sub-group sizes and both reduction strategies at each
// size, finds the crossovers, and prints the exec_policy settings to use.
//
// Usage: tune [--device PVC-1S] [--solver bicgstab] [--max-rows 256]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "batchlin/batchlin.hpp"

using namespace batchlin;

namespace {

struct sweep_point {
    index_type rows = 0;
    double sg16_ms = 0.0;
    double sg32_ms = 0.0;
    double group_ms = 0.0;
    double subgroup_ms = 0.0;
};

double measure_config(const perf::device_spec& device,
                      solver::solver_type kind, index_type rows,
                      index_type sub_group,
                      std::optional<xpu::reduce_path> reduction,
                      index_type target)
{
    const index_type items = 192;
    const solver::batch_matrix<double> a =
        work::stencil_3pt<double>(items, rows, 42);
    const auto b = work::random_rhs<double>(items, rows, 7);
    mat::batch_dense<double> x(items, rows, 1);
    solver::solve_options opts;
    opts.solver = kind;
    opts.preconditioner = precond::type::jacobi;
    opts.criterion = stop::relative(1e-8, 300);
    opts.sub_group_size = sub_group;
    opts.reduction = reduction;
    batch_solver handle(device, opts);
    const auto result = handle.solve<double>(a, b, x);
    return handle.project<double>(result, a, target).total_seconds * 1e3;
}

}  // namespace

int main(int argc, char** argv)
try {
    std::string device_name = "PVC-1S";
    std::string solver_name = "bicgstab";
    index_type max_rows = 256;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--device" && i + 1 < argc) {
            device_name = argv[++i];
        } else if (arg == "--solver" && i + 1 < argc) {
            solver_name = argv[++i];
        } else if (arg == "--max-rows" && i + 1 < argc) {
            max_rows = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--device D] [--solver cg|bicgstab] "
                         "[--max-rows N]\n",
                         argv[0]);
            return 2;
        }
    }
    const perf::device_spec device = perf::device_by_name(device_name);
    const solver::solver_type kind = solver_name == "cg"
                                         ? solver::solver_type::cg
                                         : solver::solver_type::bicgstab;
    const index_type target = 1 << 17;
    const bool has_sg16 = device.make_policy().supports_sub_group(16);
    const bool has_group = device.make_policy().has_group_reduction;

    std::printf("tuning %s on %s (2^17-system projection, 3pt stencil)\n\n",
                solver_name.c_str(), device_name.c_str());
    std::printf("%6s |", "rows");
    if (has_sg16) {
        std::printf(" %10s %10s |", "sg16 [ms]", "sg32 [ms]");
    }
    if (has_group) {
        std::printf(" %10s %11s", "group [ms]", "subgrp [ms]");
    }
    std::printf("\n");

    std::vector<sweep_point> points;
    for (index_type rows = 8; rows <= max_rows; rows *= 2) {
        sweep_point p;
        p.rows = rows;
        if (has_sg16) {
            p.sg16_ms = measure_config(device, kind, rows, 16, {}, target);
            p.sg32_ms = measure_config(device, kind, rows, 32, {}, target);
        }
        if (has_group) {
            p.group_ms = measure_config(device, kind, rows, 0,
                                        xpu::reduce_path::group, target);
            p.subgroup_ms = measure_config(
                device, kind, rows, 0, xpu::reduce_path::sub_group, target);
        }
        points.push_back(p);
        std::printf("%6d |", rows);
        if (has_sg16) {
            std::printf(" %10.3f %10.3f |", p.sg16_ms, p.sg32_ms);
        }
        if (has_group) {
            std::printf(" %10.3f %11.3f", p.group_ms, p.subgroup_ms);
        }
        std::printf("\n");
    }

    std::printf("\nrecommended exec_policy settings for %s:\n",
                device_name.c_str());
    if (has_sg16) {
        // Largest size where sg16 still wins (within 1%).
        index_type switch_rows = 0;
        for (const sweep_point& p : points) {
            if (p.sg16_ms <= p.sg32_ms * 1.01) {
                switch_rows = p.rows;
            }
        }
        std::printf("  sub_group_switch_rows = %d\n", switch_rows);
    } else {
        std::printf("  sub-group size fixed at 32 (CUDA model)\n");
    }
    if (has_group) {
        index_type reduce_rows = 0;
        for (const sweep_point& p : points) {
            if (p.subgroup_ms <= p.group_ms * 1.01) {
                reduce_rows = p.rows;
            }
        }
        std::printf("  sub_group_reduce_rows = %d\n", reduce_rows);
    } else {
        std::printf("  reductions fixed to the warp path (CUDA model)\n");
    }
    return 0;
} catch (const std::exception& e) {
    std::fprintf(stderr, "tune: %s\n", e.what());
    return 2;
}
