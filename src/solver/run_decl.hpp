// Declarations of the fused batched solver kernels.
//
// Definitions live in the *_impl.hpp headers and are explicitly
// instantiated (per value type, matrix format, and preconditioner — the
// template axes of the multi-level dispatch, §3.3) in the per-solver
// translation units, keeping the dispatch layer itself cheap to compile.
#pragma once

#include "log/logger.hpp"
#include "matrix/batch_dense.hpp"
#include "solver/kernel_common.hpp"
#include "solver/launch.hpp"
#include "solver/workspace.hpp"
#include "stop/criterion.hpp"
#include "xpu/queue.hpp"

namespace batchlin::solver {

// Every kernel carries a fourth template axis S — the *storage* type of
// the matrix and preconditioner payloads (mat::storage_precision). It is
// not deducible from the argument list (the matrix batch owns both typed
// arrays), so callers that want compressed storage pass it explicitly:
// run_cg<T, MatBatch, Precond, float>(...). S defaults to T.
//
// The `run_X` entry points below resolve the workspace plan, acquire the
// spill backing from the queue, and launch. Their `run_X_bound` siblings
// take the already-bound resources (`bound_plan` + `spill_view`) instead:
// their kernel closures capture every operand by value (raw pointers into
// caller-owned storage, small structs copied), never by reference to stack
// locals — which makes the submission recordable into an `xpu::graph` and
// replayable long after the recording call returned. The caller owns the
// lifetime of a, precond, b, x, crit, slots, spill backing, and logger for
// as long as a recorded graph may replay. Eager callers (the `run_X`
// wrappers) satisfy that trivially.

/// Preconditioned conjugate gradients (Algorithm 1 of the paper) for the
/// batch entries in `range`; one fused kernel launch.
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_cg(xpu::queue& q, const MatBatch& a, const Precond& precond,
            const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
            const stop::criterion& crit, const slm_plan& plan,
            const kernel_config& config, log::batch_log& logger,
            xpu::batch_range range);

/// Recordable CG: bound resources, value-captured kernel closure.
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_cg_bound(xpu::queue& q, const MatBatch& a, const Precond& precond,
                  const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                  const stop::criterion& crit, const bound_plan& slots,
                  const kernel_config& config, spill_view<T> spill,
                  log::batch_log& logger, xpu::batch_range range);

/// Preconditioned BiCGSTAB — the solver used for the non-SPD PeleLM inputs.
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_bicgstab(xpu::queue& q, const MatBatch& a, const Precond& precond,
                  const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
                  const stop::criterion& crit, const slm_plan& plan,
                  const kernel_config& config, log::batch_log& logger,
                  xpu::batch_range range);

/// Recordable BiCGSTAB: bound resources, value-captured kernel closure.
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_bicgstab_bound(xpu::queue& q, const MatBatch& a,
                        const Precond& precond, const mat::batch_dense<T>& b,
                        mat::batch_dense<T>& x, const stop::criterion& crit,
                        const bound_plan& slots, const kernel_config& config,
                        spill_view<T> spill, log::batch_log& logger,
                        xpu::batch_range range);

/// Preconditioned Richardson iteration x += relaxation * M(b - A x)
/// (library extension; the baseline/smoother of the solver hierarchy).
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_richardson(xpu::queue& q, const MatBatch& a,
                    const Precond& precond, const mat::batch_dense<T>& b,
                    mat::batch_dense<T>& x, const stop::criterion& crit,
                    const slm_plan& plan, const kernel_config& config,
                    T relaxation, log::batch_log& logger,
                    xpu::batch_range range);

/// Recordable Richardson: bound resources, value-captured kernel closure.
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_richardson_bound(xpu::queue& q, const MatBatch& a,
                          const Precond& precond,
                          const mat::batch_dense<T>& b,
                          mat::batch_dense<T>& x, const stop::criterion& crit,
                          const bound_plan& slots,
                          const kernel_config& config, spill_view<T> spill,
                          T relaxation, log::batch_log& logger,
                          xpu::batch_range range);

/// Restarted GMRES(m) with left preconditioning; `restart` == m.
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_gmres(xpu::queue& q, const MatBatch& a, const Precond& precond,
               const mat::batch_dense<T>& b, mat::batch_dense<T>& x,
               const stop::criterion& crit, const slm_plan& plan,
               const kernel_config& config, index_type restart,
               log::batch_log& logger, xpu::batch_range range);

/// Recordable GMRES(m): bound resources, value-captured kernel closure.
template <typename T, typename MatBatch, typename Precond,
          typename S = T>
void run_gmres_bound(xpu::queue& q, const MatBatch& a,
                     const Precond& precond, const mat::batch_dense<T>& b,
                     mat::batch_dense<T>& x, const stop::criterion& crit,
                     const bound_plan& slots, const kernel_config& config,
                     spill_view<T> spill, index_type restart,
                     log::batch_log& logger, xpu::batch_range range);

}  // namespace batchlin::solver
